//! Bounded-independence randomness for local computation algorithms.
//!
//! LCAs answer every query with respect to one *fixed* random tape, so all of
//! their randomness must be reproducible from a short seed: given the ID of a
//! vertex, an LCA must decide — with **no probes** — whether that vertex was
//! sampled as a center, which random indices it drew, what its random rank is,
//! and so on (paper, Observation 2.3 and Section 5).
//!
//! This crate provides exactly that substrate:
//!
//! * [`Seed`] — a 64-bit master seed with deterministic derivation of
//!   independent sub-seeds per context (SplitMix64 mixing).
//! * [`KWiseHash`] — a d-wise independent hash family implemented as random
//!   degree-(d−1) polynomials over the Mersenne prime field GF(2⁶¹−1)
//!   (the classical construction behind Lemma 5.2 of the paper).
//! * [`Coin`] — per-ID biased coins (“is v a center?”) built on a hash.
//! * [`IndexSampler`] — per-ID pseudorandom index sequences (the Θ(log n)
//!   random neighbor-list indices used by the representative method, §3).
//! * [`RankAssigner`] — the block-concatenated rank function
//!   r(v) = h₁(ID(v)) ∘ … ∘ h_T(ID(v)) of Section 5.2, with per-block access
//!   for the inductive O(k)-step argument of Lemma 5.5.
//!
//! # Example
//!
//! ```
//! use lca_rand::{Seed, Coin};
//!
//! let seed = Seed::new(42);
//! // Sample vertices as centers with probability 0.25, 16-wise independently.
//! let coin = Coin::new(seed.derive(1), 0.25, 16);
//! let centers: Vec<u64> = (0..1000).filter(|&v| coin.flip(v)).collect();
//! assert!(!centers.is_empty());
//! // The decision never changes for a fixed seed.
//! assert_eq!(coin.flip(7), Coin::new(Seed::new(42).derive(1), 0.25, 16).flip(7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coin;
mod field;
mod kwise;
mod rank;
mod splitmix;

pub use coin::{Coin, IndexSampler};
pub use field::{add_mod, mul_mod, pow_mod, MERSENNE_PRIME_61};
pub use kwise::KWiseHash;
pub use rank::{Rank, RankAssigner};
pub use splitmix::{Seed, SplitMix64};
