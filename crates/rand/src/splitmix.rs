//! Seed management and the SplitMix64 generator.
//!
//! SplitMix64 is used in two roles: as a stream generator to draw the random
//! coefficients of [`crate::KWiseHash`] polynomials, and as a *mixer* to derive
//! statistically independent sub-seeds from a single master seed, one per
//! algorithmic context (“center sampling”, “rank block 3”, …).

/// The SplitMix64 finalizer: a fixed bijective mixing function on `u64`.
///
/// This is the avalanche core of the SplitMix64 generator (Steele, Lea &
/// Flood, OOPSLA'14); it is used both for stream generation and seed
/// derivation.
#[inline]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic 64-bit pseudorandom stream (SplitMix64).
///
/// Not cryptographic; used only to expand a [`Seed`] into hash-family
/// coefficients and test fixtures.
///
/// # Example
///
/// ```
/// use lca_rand::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from a 64-bit state.
    pub fn new(state: u64) -> Self {
        Self { state }
    }

    /// Returns the next 64-bit value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniform in `[0, bound)`.
    ///
    /// Uses the widening-multiply technique, which has negligible bias for
    /// bounds far below 2⁶⁴.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a value uniform in `[0.0, 1.0)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 uniform mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A 64-bit master seed for one LCA run (the paper's “random tape”).
///
/// All pseudorandom objects in this workspace are constructed from a `Seed`.
/// [`Seed::derive`] produces a sub-seed for a tagged context, so that distinct
/// algorithmic components (center sampling, ranks, representatives, …) consume
/// disjoint, reproducible randomness from one tape.
///
/// # Example
///
/// ```
/// use lca_rand::Seed;
/// let s = Seed::new(99);
/// assert_eq!(s.derive(3), Seed::new(99).derive(3));
/// assert_ne!(s.derive(3), s.derive(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Seed(u64);

impl Seed {
    /// Wraps a raw 64-bit value as a seed.
    pub fn new(value: u64) -> Self {
        Self(value)
    }

    /// Returns the raw 64-bit value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Derives an independent sub-seed for the given context tag.
    ///
    /// Derivation is a fixed bijective mix of `(seed, tag)`; derived seeds for
    /// distinct tags behave as independent streams.
    pub fn derive(self, tag: u64) -> Seed {
        Seed(mix(self.0 ^ mix(tag.wrapping_mul(0xA24B_AED4_963E_E407))))
    }

    /// Derives a sub-seed from a two-level context `(tag, index)`.
    pub fn derive2(self, tag: u64, index: u64) -> Seed {
        self.derive(tag).derive(index)
    }

    /// Creates a SplitMix64 stream starting from this seed.
    pub fn stream(self) -> SplitMix64 {
        SplitMix64::new(self.0)
    }
}

impl From<u64> for Seed {
    fn from(value: u64) -> Self {
        Seed::new(value)
    }
}

impl Default for Seed {
    /// The all-zero seed; fine for examples, tests should vary it.
    fn default() -> Self {
        Seed::new(0)
    }
}

impl std::fmt::Display for Seed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed:{:#018x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_with_different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut s = SplitMix64::new(77);
        for bound in [1u64, 2, 3, 10, 1000, u32::MAX as u64] {
            for _ in 0..50 {
                assert!(s.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut s = SplitMix64::new(5);
        let mut buckets = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[s.next_below(8) as usize] += 1;
        }
        let expect = n as f64 / 8.0;
        for &b in &buckets {
            assert!(
                (b as f64 - expect).abs() < expect * 0.1,
                "bucket {b} vs {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut s = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = s.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn derive_is_deterministic_and_tag_sensitive() {
        let s = Seed::new(42);
        assert_eq!(s.derive(0), s.derive(0));
        assert_ne!(s.derive(0), s.derive(1));
        assert_ne!(s.derive(0), s);
        assert_ne!(Seed::new(1).derive(0), Seed::new(2).derive(0));
    }

    #[test]
    fn derive2_distinguishes_indices() {
        let s = Seed::new(42);
        assert_ne!(s.derive2(1, 0), s.derive2(1, 1));
        assert_ne!(s.derive2(0, 1), s.derive2(1, 0));
        assert_eq!(s.derive2(5, 6), s.derive(5).derive(6));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(format!("{}", Seed::new(0)).contains("seed:"));
    }

    #[test]
    fn derived_seeds_have_no_obvious_collisions() {
        let s = Seed::new(0xDEADBEEF);
        let mut seen = std::collections::HashSet::new();
        for tag in 0..10_000u64 {
            assert!(seen.insert(s.derive(tag)), "collision at tag {tag}");
        }
    }
}
