//! d-wise independent hash functions (random polynomials over GF(2⁶¹ − 1)).

use crate::field::{add_mod, into_field, mul_mod, MERSENNE_PRIME_61};
use crate::splitmix::Seed;

/// A hash function drawn from a d-wise independent family.
///
/// The function is a uniformly random polynomial of degree `d − 1` over
/// GF(2⁶¹ − 1); evaluations at any `d` distinct points are independent and
/// uniform over the field. This is the explicit construction behind the
/// paper's Lemma 5.2: drawing the function costs `d` field elements of seed
/// material, and evaluating it costs `O(d)` time and **zero probes** — which is
/// what lets an LCA decide “is `v` a center?” from the random tape alone
/// (Observation 2.3).
///
/// The paper's algorithms use `d = Θ(log n)`-wise independence throughout
/// (Section 5); callers pick `d` explicitly so tests can exercise both small
/// and large independence.
///
/// # Example
///
/// ```
/// use lca_rand::{KWiseHash, Seed};
/// let h = KWiseHash::new(Seed::new(7), 8);
/// assert_eq!(h.hash(42), h.hash(42));              // deterministic
/// assert!(h.hash(42) < lca_rand::MERSENNE_PRIME_61); // field element
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KWiseHash {
    /// Polynomial coefficients, constant term first. Length = independence.
    coeffs: Vec<u64>,
}

impl KWiseHash {
    /// Draws a function from the `independence`-wise independent family.
    ///
    /// # Panics
    ///
    /// Panics if `independence == 0`.
    pub fn new(seed: Seed, independence: usize) -> Self {
        assert!(independence > 0, "independence must be at least 1");
        let mut stream = seed.stream();
        let mut coeffs = Vec::with_capacity(independence);
        for _ in 0..independence {
            // Rejection-sample a uniform field element from 61 random bits;
            // only the single value 2^61 - 1 is rejected.
            loop {
                let v = stream.next_u64() & MERSENNE_PRIME_61;
                if v != MERSENNE_PRIME_61 {
                    coeffs.push(v);
                    break;
                }
            }
        }
        Self { coeffs }
    }

    /// The independence parameter `d` of the family this function was drawn
    /// from.
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluates the hash at `x`, returning a uniform element of
    /// `[0, 2⁶¹ − 1)`.
    ///
    /// Keys are reduced into the field first, so keys that differ by a
    /// multiple of 2⁶¹ − 1 collide; vertex labels in this workspace are
    /// well below that bound.
    pub fn hash(&self, x: u64) -> u64 {
        let x = into_field(x);
        // Horner evaluation, highest-degree coefficient first.
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = add_mod(mul_mod(acc, x), c);
        }
        acc
    }

    /// Evaluates the hash and folds it to a uniform value in `[0, bound)`.
    ///
    /// Bias is at most `bound / 2⁶¹`, negligible for the bounds used here.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn hash_below(&self, x: u64, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.hash(x) as u128 * bound as u128) >> 61) as u64
    }

    /// Evaluates the hash as a uniform value in `[0.0, 1.0)`.
    pub fn hash_unit(&self, x: u64) -> f64 {
        self.hash(x) as f64 / MERSENNE_PRIME_61 as f64
    }

    /// Extracts `bits` pseudorandom bits (`1..=32`) from the evaluation at
    /// `x`; used by the block-rank construction of Section 5.2.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `bits > 32`.
    pub fn hash_bits(&self, x: u64, bits: u32) -> u64 {
        assert!((1..=32).contains(&bits), "bits must be in 1..=32");
        // Use the high-order bits of the field element; the field is not a
        // power of two but the deviation from uniform is < 2^-29 per block.
        self.hash(x) >> (61 - bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = KWiseHash::new(Seed::new(5), 4);
        let b = KWiseHash::new(Seed::new(5), 4);
        for x in 0..100 {
            assert_eq!(a.hash(x), b.hash(x));
        }
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let a = KWiseHash::new(Seed::new(5), 4);
        let b = KWiseHash::new(Seed::new(6), 4);
        let agree = (0..256).filter(|&x| a.hash(x) == b.hash(x)).count();
        assert!(agree <= 3, "functions agree on {agree}/256 points");
    }

    #[test]
    #[should_panic(expected = "independence must be at least 1")]
    fn zero_independence_panics() {
        let _ = KWiseHash::new(Seed::new(0), 0);
    }

    #[test]
    fn values_are_field_elements() {
        let h = KWiseHash::new(Seed::new(1), 8);
        for x in 0..10_000u64 {
            assert!(h.hash(x) < MERSENNE_PRIME_61);
        }
    }

    #[test]
    fn hash_below_in_range_and_roughly_uniform() {
        let h = KWiseHash::new(Seed::new(11), 16);
        let m = 10u64;
        let mut buckets = vec![0u32; m as usize];
        let n = 100_000u64;
        for x in 0..n {
            let v = h.hash_below(x, m);
            assert!(v < m);
            buckets[v as usize] += 1;
        }
        let expect = n as f64 / m as f64;
        for &b in &buckets {
            assert!(
                (b as f64 - expect).abs() < expect * 0.08,
                "bucket {b} vs expected {expect}"
            );
        }
    }

    #[test]
    fn hash_unit_in_unit_interval_with_correct_mean() {
        let h = KWiseHash::new(Seed::new(3), 8);
        let n = 50_000;
        let mut sum = 0.0;
        for x in 0..n {
            let v = h.hash_unit(x);
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn hash_bits_in_range() {
        let h = KWiseHash::new(Seed::new(21), 8);
        for bits in [1u32, 4, 8, 16, 32] {
            for x in 0..200 {
                assert!(h.hash_bits(x, bits) < (1u64 << bits));
            }
        }
    }

    #[test]
    fn pairwise_independence_empirically() {
        // For a 2-wise independent family, Pr[h(x)=h(y) mod m] ≈ 1/m for x≠y.
        let m = 64u64;
        let mut collisions = 0u32;
        let trials = 4_000u64;
        for t in 0..trials {
            let h = KWiseHash::new(Seed::new(1000 + t), 2);
            if h.hash_below(17, m) == h.hash_below(23, m) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        let expect = 1.0 / m as f64;
        assert!(
            (rate - expect).abs() < 0.015,
            "collision rate {rate}, expected ≈{expect}"
        );
    }

    #[test]
    fn degree_one_family_is_constant_in_seed_only() {
        // independence = 1 means a constant polynomial: same value everywhere.
        let h = KWiseHash::new(Seed::new(9), 1);
        let v = h.hash(0);
        for x in 1..100 {
            assert_eq!(h.hash(x), v);
        }
    }

    #[test]
    fn sum_of_coin_like_events_concentrates() {
        // Property (HI) of Section 5: with Θ(log n)-wise independence, the
        // number of sampled vertices concentrates around pn.
        let n = 20_000u64;
        let p = 0.02f64;
        let h = KWiseHash::new(Seed::new(77), 32);
        let thresh = (p * MERSENNE_PRIME_61 as f64) as u64;
        let count = (0..n).filter(|&x| h.hash(x) < thresh).count() as f64;
        let expect = p * n as f64;
        assert!(
            (count - expect).abs() < 4.0 * expect.sqrt() + 10.0,
            "count {count}, expected {expect}"
        );
    }
}
