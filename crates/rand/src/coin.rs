//! Per-ID biased coins and pseudorandom index sequences.

use crate::field::MERSENNE_PRIME_61;
use crate::kwise::KWiseHash;
use crate::splitmix::Seed;

/// A per-ID biased coin with bounded independence.
///
/// `Coin` realizes the paper's hitting-set sampler (Section 5, “Bounded
/// independence for hitting set procedures”): each ID `x` flips an independent
/// coin with success probability `p`, the flips are d-wise independent, and —
/// crucially for the LCA model — the outcome for any ID is recomputable from
/// the seed with **no probes** (Observation 2.3).
///
/// # Example
///
/// ```
/// use lca_rand::{Coin, Seed};
/// let coin = Coin::new(Seed::new(1), 0.5, 8);
/// let heads = (0..10_000).filter(|&x| coin.flip(x)).count();
/// assert!((4_000..6_000).contains(&heads));
/// ```
#[derive(Debug, Clone)]
pub struct Coin {
    hash: KWiseHash,
    threshold: u64,
    prob: f64,
}

impl Coin {
    /// Creates a coin with success probability `prob` (clamped to `[0, 1]`)
    /// and the given independence.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is NaN or `independence == 0`.
    pub fn new(seed: Seed, prob: f64, independence: usize) -> Self {
        assert!(!prob.is_nan(), "probability must not be NaN");
        let prob = prob.clamp(0.0, 1.0);
        let threshold = if prob >= 1.0 {
            MERSENNE_PRIME_61
        } else {
            (prob * MERSENNE_PRIME_61 as f64) as u64
        };
        Self {
            hash: KWiseHash::new(seed, independence),
            threshold,
            prob,
        }
    }

    /// The success probability this coin was built with (after clamping).
    pub fn prob(&self) -> f64 {
        self.prob
    }

    /// Flips the coin for ID `x`.
    pub fn flip(&self, x: u64) -> bool {
        self.hash.hash(x) < self.threshold
    }
}

/// A per-ID sequence of pseudorandom indices in `[0, bound)`.
///
/// This implements the representative method's index sampling (Section 3 /
/// Section 5.1): vertex `v` draws `Θ(log n)` random positions inside its first
/// ∆_med neighbors, reproducibly from the seed and `ID(v)` alone. Index `j` of
/// ID `x` is `h((x, j))` for a d-wise independent `h`, so the whole collection
/// of draws across vertices retains bounded independence.
///
/// # Example
///
/// ```
/// use lca_rand::{IndexSampler, Seed};
/// let s = IndexSampler::new(Seed::new(2), 16);
/// let picks: Vec<u64> = s.indices(/*id=*/5, /*count=*/4, /*bound=*/10).collect();
/// assert_eq!(picks.len(), 4);
/// assert!(picks.iter().all(|&i| i < 10));
/// ```
#[derive(Debug, Clone)]
pub struct IndexSampler {
    hash: KWiseHash,
}

impl IndexSampler {
    /// Creates a sampler with the given independence.
    pub fn new(seed: Seed, independence: usize) -> Self {
        Self {
            hash: KWiseHash::new(seed, independence),
        }
    }

    /// Returns the `j`-th pseudorandom index for ID `x`, uniform in
    /// `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&self, x: u64, j: u64, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Pair (x, j) → single key. Keys stay distinct as long as j < 2^20
        // and x < 2^44, which holds for every use in this workspace.
        let key = x
            .wrapping_mul(0x100_0000)
            .wrapping_add(j)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(23)
            ^ x;
        self.hash.hash_below(key, bound)
    }

    /// Returns `count` pseudorandom indices for ID `x`, each uniform in
    /// `[0, bound)` (not necessarily distinct, matching the paper's R_v).
    pub fn indices(&self, x: u64, count: usize, bound: u64) -> Indices<'_> {
        Indices {
            sampler: self,
            x,
            bound,
            next: 0,
            count,
        }
    }
}

/// Iterator over the pseudorandom indices of one ID.
///
/// Produced by [`IndexSampler::indices`].
#[derive(Debug)]
pub struct Indices<'a> {
    sampler: &'a IndexSampler,
    x: u64,
    bound: u64,
    next: u64,
    count: usize,
}

impl Iterator for Indices<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if (self.next as usize) >= self.count {
            return None;
        }
        let v = self.sampler.index(self.x, self.next, self.bound);
        self.next += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.count - self.next as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Indices<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coin_bias_is_respected() {
        for &p in &[0.01f64, 0.1, 0.5, 0.9] {
            let coin = Coin::new(Seed::new(4), p, 16);
            let n = 60_000u64;
            let heads = (0..n).filter(|&x| coin.flip(x)).count() as f64;
            let expect = p * n as f64;
            let sigma = (n as f64 * p * (1.0 - p)).sqrt();
            assert!(
                (heads - expect).abs() < 5.0 * sigma + 5.0,
                "p={p}: heads {heads}, expected {expect}"
            );
        }
    }

    #[test]
    fn coin_extremes() {
        let never = Coin::new(Seed::new(1), 0.0, 4);
        let always = Coin::new(Seed::new(1), 1.0, 4);
        for x in 0..1000 {
            assert!(!never.flip(x));
            assert!(always.flip(x));
        }
    }

    #[test]
    fn coin_clamps_out_of_range() {
        assert_eq!(Coin::new(Seed::new(1), -0.5, 4).prob(), 0.0);
        assert_eq!(Coin::new(Seed::new(1), 7.0, 4).prob(), 1.0);
    }

    #[test]
    #[should_panic(expected = "probability must not be NaN")]
    fn coin_rejects_nan() {
        let _ = Coin::new(Seed::new(1), f64::NAN, 4);
    }

    #[test]
    fn coin_is_deterministic() {
        let a = Coin::new(Seed::new(10), 0.3, 8);
        let b = Coin::new(Seed::new(10), 0.3, 8);
        for x in 0..500 {
            assert_eq!(a.flip(x), b.flip(x));
        }
    }

    #[test]
    fn indices_deterministic_and_in_bound() {
        let s = IndexSampler::new(Seed::new(3), 8);
        let a: Vec<u64> = s.indices(42, 16, 100).collect();
        let b: Vec<u64> = s.indices(42, 16, 100).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|&i| i < 100));
    }

    #[test]
    fn indices_differ_across_ids_and_positions() {
        let s = IndexSampler::new(Seed::new(3), 16);
        let a: Vec<u64> = s.indices(1, 32, 1_000_000).collect();
        let b: Vec<u64> = s.indices(2, 32, 1_000_000).collect();
        assert_ne!(a, b);
        // Positions within one ID are not all equal.
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn indices_iterator_len() {
        let s = IndexSampler::new(Seed::new(3), 4);
        let it = s.indices(9, 7, 10);
        assert_eq!(it.len(), 7);
        assert_eq!(it.count(), 7);
    }

    #[test]
    fn indices_hit_large_sets_with_high_probability() {
        // Property (HII)-style check: Θ(log n) draws into [0, 2m) hit the
        // lower half [0, m) for almost every ID.
        let s = IndexSampler::new(Seed::new(8), 32);
        let draws = 24usize;
        let ids = 2_000u64;
        let misses = (0..ids)
            .filter(|&x| s.indices(x, draws, 64).all(|i| i >= 32))
            .count();
        assert!(misses <= 2, "{misses} ids missed the half-range");
    }

    #[test]
    fn index_rejects_zero_bound() {
        let s = IndexSampler::new(Seed::new(3), 4);
        let r = std::panic::catch_unwind(|| s.index(1, 0, 0));
        assert!(r.is_err());
    }
}
