//! Arithmetic over the Mersenne prime field GF(2⁶¹ − 1).
//!
//! Degree-(d−1) polynomials with uniform coefficients over a prime field are
//! the textbook d-wise independent hash family (cf. Vadhan, *Pseudorandomness*,
//! Cor. 3.34 — the construction the paper cites as Lemma 5.2). The Mersenne
//! prime p = 2⁶¹ − 1 admits branch-light modular reduction, which keeps the
//! per-probe cost of “is v a center?” decisions negligible.

/// The Mersenne prime p = 2⁶¹ − 1 used as the hash field modulus.
pub const MERSENNE_PRIME_61: u64 = (1u64 << 61) - 1;

const P: u64 = MERSENNE_PRIME_61;

/// Reduces a 122-bit product into `[0, p)` for p = 2⁶¹ − 1.
#[inline]
fn reduce128(x: u128) -> u64 {
    // x = hi * 2^61 + lo, and 2^61 ≡ 1 (mod p).
    let lo = (x as u64) & P;
    let hi = (x >> 61) as u64;
    let mut s = lo + hi; // < 2^62, no overflow
    if s >= P {
        s -= P;
    }
    if s >= P {
        s -= P;
    }
    s
}

/// Adds two field elements. Inputs must be `< p`.
#[inline]
pub fn add_mod(a: u64, b: u64) -> u64 {
    debug_assert!(a < P && b < P);
    let s = a + b; // < 2^62
    if s >= P {
        s - P
    } else {
        s
    }
}

/// Multiplies two field elements. Inputs must be `< p`.
#[inline]
pub fn mul_mod(a: u64, b: u64) -> u64 {
    debug_assert!(a < P && b < P);
    reduce128(a as u128 * b as u128)
}

/// Computes `a^e mod p` by square-and-multiply.
pub fn pow_mod(mut a: u64, mut e: u64) -> u64 {
    debug_assert!(a < P);
    let mut acc = 1u64;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul_mod(acc, a);
        }
        a = mul_mod(a, a);
        e >>= 1;
    }
    acc
}

/// Maps an arbitrary `u64` into the field by reduction mod p.
#[inline]
pub(crate) fn into_field(x: u64) -> u64 {
    // Two conditional subtractions suffice: x < 2^64 < 8p + something small;
    // use the Mersenne identity on the 3 high bits instead.
    let lo = x & P;
    let hi = x >> 61; // < 8
    let mut s = lo + hi;
    if s >= P {
        s -= P;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(MERSENNE_PRIME_61, 2305843009213693951);
        // p is prime: spot-check with Fermat's little theorem for several bases.
        for a in [2u64, 3, 5, 7, 11, 1234567891011] {
            assert_eq!(pow_mod(a % P, P - 1), 1, "fermat failed for {a}");
        }
    }

    #[test]
    fn add_wraps_correctly() {
        assert_eq!(add_mod(P - 1, 1), 0);
        assert_eq!(add_mod(P - 1, 2), 1);
        assert_eq!(add_mod(0, 0), 0);
        assert_eq!(add_mod(5, 7), 12);
    }

    #[test]
    fn mul_matches_u128_reference() {
        let mut s = crate::SplitMix64::new(314);
        for _ in 0..10_000 {
            let a = s.next_u64() % P;
            let b = s.next_u64() % P;
            let want = ((a as u128 * b as u128) % P as u128) as u64;
            assert_eq!(mul_mod(a, b), want);
        }
    }

    #[test]
    fn mul_edge_cases() {
        assert_eq!(mul_mod(P - 1, P - 1), 1); // (-1)^2 = 1
        assert_eq!(mul_mod(0, P - 1), 0);
        assert_eq!(mul_mod(1, P - 1), P - 1);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let a = 123456789u64;
        let mut acc = 1u64;
        for e in 0..32u64 {
            assert_eq!(pow_mod(a, e), acc);
            acc = mul_mod(acc, a);
        }
    }

    #[test]
    fn into_field_is_in_range_and_preserves_small_values() {
        assert_eq!(into_field(12345), 12345);
        assert_eq!(into_field(P), 0);
        assert_eq!(into_field(P + 5), 5);
        assert!(into_field(u64::MAX) < P);
        // Reference: plain remainder.
        let mut s = crate::SplitMix64::new(1);
        for _ in 0..10_000 {
            let x = s.next_u64();
            assert_eq!(into_field(x), x % P);
        }
    }
}
