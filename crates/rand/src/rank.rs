//! Block-concatenated random ranks (paper Section 5.2).
//!
//! The O(k²)-spanner construction orders Voronoi-cell centers by random
//! *ranks*. Full independence would need Ω(n) random bits; instead the paper
//! builds an ℓ ≈ log₂ n bit rank from `T = k` blocks of `N = ⌈ℓ/k⌉` bits,
//! where block `i` is `h_i(ID(v))` for independent Θ(log n)-wise hash
//! functions `h_i`. The stretch induction (Lemma 5.5) reveals one block per
//! step and only needs, per step, that a fresh block of an unrevealed center
//! is all-zero with probability 2^{-N} — which bounded independence delivers.

use crate::kwise::KWiseHash;
use crate::splitmix::Seed;

/// A random rank: the concatenated block bits, with the owner's label as a
/// deterministic tie-break so that ranks are *distinct* (the paper assumes
/// distinct ranks; labels are unique, so ties cannot survive).
///
/// Ranks order lexicographically: block bits first, then label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rank {
    /// Concatenated block bits, most-significant block first.
    pub bits: u64,
    /// Owner label used as the final tie-break.
    pub label: u64,
}

impl std::fmt::Display for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank({:#x}/{})", self.bits, self.label)
    }
}

/// Assigns block-concatenated ranks `r(v) = h₁(ID(v)) ∘ … ∘ h_T(ID(v))`.
///
/// # Example
///
/// ```
/// use lca_rand::{RankAssigner, Seed};
/// // T = 3 blocks of 4 bits each, 16-wise independent per block.
/// let ranks = RankAssigner::new(Seed::new(5), 3, 4, 16);
/// let a = ranks.rank(10);
/// assert_eq!(a, ranks.rank(10));        // deterministic
/// assert_ne!(a, ranks.rank(11));        // distinct labels ⇒ distinct ranks
/// assert!(ranks.block(10, 0) < 16);     // block value fits in 4 bits
/// ```
#[derive(Debug, Clone)]
pub struct RankAssigner {
    hashes: Vec<KWiseHash>,
    block_bits: u32,
}

impl RankAssigner {
    /// Creates an assigner with `blocks` blocks of `block_bits` bits each,
    /// every block drawn from an `independence`-wise independent family.
    ///
    /// # Panics
    ///
    /// Panics if `blocks == 0`, `block_bits == 0`, or the total bit width
    /// `blocks * block_bits` exceeds 62.
    pub fn new(seed: Seed, blocks: usize, block_bits: u32, independence: usize) -> Self {
        assert!(blocks > 0, "need at least one block");
        assert!(block_bits > 0, "blocks must be non-empty");
        assert!(
            blocks as u32 * block_bits <= 62,
            "total rank width {} exceeds 62 bits",
            blocks as u32 * block_bits
        );
        let hashes = (0..blocks)
            .map(|i| KWiseHash::new(seed.derive2(0x52414e4b, i as u64), independence))
            .collect();
        Self { hashes, block_bits }
    }

    /// Convenience constructor with the paper's defaults: `T = k` blocks of
    /// `N = ⌈log₂(n)/k⌉` bits (clamped so the total width fits), Θ(log n)
    /// independence.
    pub fn for_spanner(seed: Seed, n: usize, k: usize) -> Self {
        let k = k.max(1);
        let ell = usize::BITS - n.max(2).leading_zeros(); // ≈ ⌈log2 n⌉
        let block_bits = ell.div_ceil(k as u32).clamp(1, 62 / k as u32);
        let independence = (2 * ell as usize).max(8);
        Self::new(seed, k, block_bits, independence)
    }

    /// Number of blocks `T`.
    pub fn blocks(&self) -> usize {
        self.hashes.len()
    }

    /// Bits per block `N`.
    pub fn block_bits(&self) -> u32 {
        self.block_bits
    }

    /// The value of block `i` (0-based) of the rank of `label`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.blocks()`.
    pub fn block(&self, label: u64, i: usize) -> u64 {
        self.hashes[i].hash_bits(label, self.block_bits)
    }

    /// The full rank of `label`.
    pub fn rank(&self, label: u64) -> Rank {
        let mut bits = 0u64;
        for h in &self.hashes {
            bits = (bits << self.block_bits) | h.hash_bits(label, self.block_bits);
        }
        Rank { bits, label }
    }

    /// Whether the first `prefix` blocks of `label`'s rank are all zero —
    /// the event driving each step of the Lemma 5.5 induction.
    pub fn prefix_is_zero(&self, label: u64, prefix: usize) -> bool {
        self.hashes
            .iter()
            .take(prefix)
            .all(|h| h.hash_bits(label, self.block_bits) == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_is_deterministic_and_distinct() {
        let r = RankAssigner::new(Seed::new(1), 4, 8, 16);
        let mut seen = std::collections::HashSet::new();
        for v in 0..5_000u64 {
            let rank = r.rank(v);
            assert_eq!(rank, r.rank(v));
            assert!(seen.insert(rank), "duplicate rank for {v}");
        }
    }

    #[test]
    fn rank_orders_by_bits_then_label() {
        let a = Rank { bits: 1, label: 9 };
        let b = Rank { bits: 2, label: 0 };
        let c = Rank { bits: 2, label: 1 };
        assert!(a < b && b < c);
    }

    #[test]
    fn block_concatenation_matches_rank_bits() {
        let r = RankAssigner::new(Seed::new(2), 3, 5, 8);
        for v in 0..200u64 {
            let mut bits = 0u64;
            for i in 0..3 {
                bits = (bits << 5) | r.block(v, i);
            }
            assert_eq!(bits, r.rank(v).bits);
        }
    }

    #[test]
    fn block_values_fit_width() {
        let r = RankAssigner::new(Seed::new(3), 4, 6, 8);
        for v in 0..500u64 {
            for i in 0..4 {
                assert!(r.block(v, i) < 64);
            }
        }
    }

    #[test]
    fn zero_block_probability_is_about_two_to_minus_n() {
        let r = RankAssigner::new(Seed::new(4), 1, 4, 32);
        let n = 40_000u64;
        let zeros = (0..n).filter(|&v| r.block(v, 0) == 0).count() as f64;
        let expect = n as f64 / 16.0;
        assert!(
            (zeros - expect).abs() < 5.0 * expect.sqrt(),
            "zeros {zeros}, expected {expect}"
        );
    }

    #[test]
    fn prefix_is_zero_consistent_with_blocks() {
        let r = RankAssigner::new(Seed::new(5), 4, 3, 8);
        for v in 0..2_000u64 {
            for p in 0..=4usize {
                let want = (0..p).all(|i| r.block(v, i) == 0);
                assert_eq!(r.prefix_is_zero(v, p), want);
            }
        }
    }

    #[test]
    fn for_spanner_parameters_are_sane() {
        for (n, k) in [(100usize, 2usize), (10_000, 3), (1_000_000, 8), (10, 1)] {
            let r = RankAssigner::for_spanner(Seed::new(6), n, k);
            assert_eq!(r.blocks(), k.max(1));
            assert!(r.block_bits() >= 1);
            assert!(r.blocks() as u32 * r.block_bits() <= 62);
        }
    }

    #[test]
    #[should_panic(expected = "total rank width")]
    fn oversized_rank_panics() {
        let _ = RankAssigner::new(Seed::new(0), 8, 8, 4);
    }

    #[test]
    fn different_blocks_are_different_functions() {
        let r = RankAssigner::new(Seed::new(7), 2, 16, 8);
        let agree = (0..1_000u64)
            .filter(|&v| r.block(v, 0) == r.block(v, 1))
            .count();
        // Two independent 16-bit hashes agree with probability 2^-16.
        assert!(agree <= 2, "blocks agree on {agree}/1000 labels");
    }

    #[test]
    fn display_rank() {
        let r = RankAssigner::new(Seed::new(8), 2, 4, 4);
        let s = format!("{}", r.rank(3));
        assert!(s.starts_with("rank("));
    }
}
