//! Property-based tests for the randomness substrate.

use lca_rand::{Coin, IndexSampler, KWiseHash, RankAssigner, Seed};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hash values are always field elements and deterministic.
    #[test]
    fn hash_is_deterministic_field_element(seed in any::<u64>(), d in 1usize..40, x in any::<u64>()) {
        let h = KWiseHash::new(Seed::new(seed), d);
        let v = h.hash(x);
        prop_assert!(v < lca_rand::MERSENNE_PRIME_61);
        prop_assert_eq!(v, KWiseHash::new(Seed::new(seed), d).hash(x));
        prop_assert_eq!(h.independence(), d);
    }

    /// `hash_below` respects its bound for arbitrary bounds.
    #[test]
    fn hash_below_in_range(seed in any::<u64>(), x in any::<u64>(), bound in 1u64..u64::MAX / 4) {
        let h = KWiseHash::new(Seed::new(seed), 4);
        prop_assert!(h.hash_below(x, bound) < bound);
    }

    /// Coins are monotone in probability for a fixed hash draw: if a flip
    /// is heads at probability p, it stays heads at any p' ≥ p.
    #[test]
    fn coin_monotone_in_probability(seed in any::<u64>(), x in any::<u64>(), p in 0.0f64..1.0, q in 0.0f64..1.0) {
        let (lo, hi) = if p <= q { (p, q) } else { (q, p) };
        let c_lo = Coin::new(Seed::new(seed), lo, 8);
        let c_hi = Coin::new(Seed::new(seed), hi, 8);
        if c_lo.flip(x) {
            prop_assert!(c_hi.flip(x), "heads at p={lo} but tails at p={hi}");
        }
    }

    /// Seed derivation separates contexts: distinct tags give distinct
    /// derived seeds (collision would be a 2^-64 fluke).
    #[test]
    fn derive_separates_tags(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(Seed::new(seed).derive(a), Seed::new(seed).derive(b));
    }

    /// Ranks are total: distinct labels never compare equal.
    #[test]
    fn ranks_are_distinct(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let r = RankAssigner::new(Seed::new(seed), 3, 8, 8);
        prop_assert_ne!(r.rank(a), r.rank(b));
    }

    /// Index samplers stay within their bound.
    #[test]
    fn sampler_in_bounds(seed in any::<u64>(), x in any::<u64>(), bound in 1u64..1_000_000) {
        let s = IndexSampler::new(Seed::new(seed), 8);
        for (j, v) in s.indices(x, 8, bound).enumerate() {
            prop_assert!(v < bound, "draw {j} out of bounds");
        }
    }

    /// Field multiplication is commutative/associative on random triples
    /// (sanity net over the 128-bit reduction).
    #[test]
    fn field_algebra(a in 0u64..lca_rand::MERSENNE_PRIME_61,
                     b in 0u64..lca_rand::MERSENNE_PRIME_61,
                     c in 0u64..lca_rand::MERSENNE_PRIME_61) {
        use lca_rand::{add_mod, mul_mod};
        prop_assert_eq!(mul_mod(a, b), mul_mod(b, a));
        prop_assert_eq!(mul_mod(mul_mod(a, b), c), mul_mod(a, mul_mod(b, c)));
        prop_assert_eq!(mul_mod(a, add_mod(b, c)),
                        add_mod(mul_mod(a, b), mul_mod(a, c)));
    }
}
