//! Property-style tests for the randomness substrate, driven by a
//! deterministic `SplitMix64` case stream (no registry access for proptest
//! in this container).

use lca_rand::{Coin, IndexSampler, KWiseHash, RankAssigner, Seed, SplitMix64};

const CASES: u64 = 64;

fn cases(tag: u64) -> impl Iterator<Item = SplitMix64> {
    let mut rng = SplitMix64::new(0x4A2D_5EED ^ tag);
    (0..CASES).map(move |_| SplitMix64::new(rng.next_u64()))
}

/// Hash values are always field elements and deterministic.
#[test]
fn hash_is_deterministic_field_element() {
    for mut rng in cases(1) {
        let seed = rng.next_u64();
        let d = 1 + rng.next_below(39) as usize;
        let x = rng.next_u64();
        let h = KWiseHash::new(Seed::new(seed), d);
        let v = h.hash(x);
        assert!(v < lca_rand::MERSENNE_PRIME_61);
        assert_eq!(v, KWiseHash::new(Seed::new(seed), d).hash(x));
        assert_eq!(h.independence(), d);
    }
}

/// `hash_below` respects its bound for arbitrary bounds.
#[test]
fn hash_below_in_range() {
    for mut rng in cases(2) {
        let seed = rng.next_u64();
        let x = rng.next_u64();
        let bound = 1 + rng.next_below(u64::MAX / 4);
        let h = KWiseHash::new(Seed::new(seed), 4);
        assert!(
            h.hash_below(x, bound) < bound,
            "seed={seed}, x={x}, bound={bound}"
        );
    }
}

/// Coins are monotone in probability for a fixed hash draw: if a flip
/// is heads at probability p, it stays heads at any p' ≥ p.
#[test]
fn coin_monotone_in_probability() {
    for mut rng in cases(3) {
        let seed = rng.next_u64();
        let x = rng.next_u64();
        let p = rng.next_f64();
        let q = rng.next_f64();
        let (lo, hi) = if p <= q { (p, q) } else { (q, p) };
        let c_lo = Coin::new(Seed::new(seed), lo, 8);
        let c_hi = Coin::new(Seed::new(seed), hi, 8);
        if c_lo.flip(x) {
            assert!(
                c_hi.flip(x),
                "heads at p={lo} but tails at p={hi} (seed={seed}, x={x})"
            );
        }
    }
}

/// Seed derivation separates contexts: distinct tags give distinct
/// derived seeds (collision would be a 2^-64 fluke).
#[test]
fn derive_separates_tags() {
    for mut rng in cases(4) {
        let seed = rng.next_u64();
        let a = rng.next_u64();
        let b = rng.next_u64();
        if a == b {
            continue;
        }
        assert_ne!(Seed::new(seed).derive(a), Seed::new(seed).derive(b));
    }
}

/// Ranks are total: distinct labels never compare equal.
#[test]
fn ranks_are_distinct() {
    for mut rng in cases(5) {
        let seed = rng.next_u64();
        let a = rng.next_u64();
        let b = rng.next_u64();
        if a == b {
            continue;
        }
        let r = RankAssigner::new(Seed::new(seed), 3, 8, 8);
        assert_ne!(r.rank(a), r.rank(b), "seed={seed}, a={a}, b={b}");
    }
}

/// Index samplers stay within their bound.
#[test]
fn sampler_in_bounds() {
    for mut rng in cases(6) {
        let seed = rng.next_u64();
        let x = rng.next_u64();
        let bound = 1 + rng.next_below(1_000_000);
        let s = IndexSampler::new(Seed::new(seed), 8);
        for (j, v) in s.indices(x, 8, bound).enumerate() {
            assert!(
                v < bound,
                "draw {j} out of bounds (seed={seed}, x={x}, bound={bound})"
            );
        }
    }
}

/// Field multiplication is commutative/associative on random triples
/// (sanity net over the 128-bit reduction).
#[test]
fn field_algebra() {
    use lca_rand::{add_mod, mul_mod, MERSENNE_PRIME_61};
    for mut rng in cases(7) {
        let a = rng.next_below(MERSENNE_PRIME_61);
        let b = rng.next_below(MERSENNE_PRIME_61);
        let c = rng.next_below(MERSENNE_PRIME_61);
        assert_eq!(mul_mod(a, b), mul_mod(b, a));
        assert_eq!(mul_mod(mul_mod(a, b), c), mul_mod(a, mul_mod(b, c)));
        assert_eq!(
            mul_mod(a, add_mod(b, c)),
            add_mod(mul_mod(a, b), mul_mod(a, c))
        );
    }
}
