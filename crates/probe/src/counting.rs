//! Probe counting.

use std::sync::atomic::{AtomicU64, Ordering};

use lca_graph::VertexId;

use crate::{Oracle, ProbeKind};

/// Per-kind probe totals.
///
/// # Example
///
/// ```
/// use lca_probe::ProbeCounts;
/// let c = ProbeCounts { neighbor: 3, degree: 1, adjacency: 2 };
/// assert_eq!(c.total(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct ProbeCounts {
    /// Number of `Neighbor` probes.
    pub neighbor: u64,
    /// Number of `Degree` probes.
    pub degree: u64,
    /// Number of `Adjacency` probes.
    pub adjacency: u64,
}

impl ProbeCounts {
    /// Total probes of all kinds.
    pub fn total(&self) -> u64 {
        self.neighbor + self.degree + self.adjacency
    }

    /// Count of one probe kind.
    pub fn of(&self, kind: ProbeKind) -> u64 {
        match kind {
            ProbeKind::Neighbor => self.neighbor,
            ProbeKind::Degree => self.degree,
            ProbeKind::Adjacency => self.adjacency,
        }
    }

    /// Component-wise difference (`self - earlier`); saturates at zero.
    pub fn since(&self, earlier: ProbeCounts) -> ProbeCounts {
        ProbeCounts {
            neighbor: self.neighbor.saturating_sub(earlier.neighbor),
            degree: self.degree.saturating_sub(earlier.degree),
            adjacency: self.adjacency.saturating_sub(earlier.adjacency),
        }
    }
}

impl std::ops::Add for ProbeCounts {
    type Output = ProbeCounts;

    fn add(self, rhs: ProbeCounts) -> ProbeCounts {
        ProbeCounts {
            neighbor: self.neighbor + rhs.neighbor,
            degree: self.degree + rhs.degree,
            adjacency: self.adjacency + rhs.adjacency,
        }
    }
}

impl std::fmt::Display for ProbeCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "probes[nbr={} deg={} adj={} total={}]",
            self.neighbor,
            self.degree,
            self.adjacency,
            self.total()
        )
    }
}

/// An [`Oracle`] wrapper that counts every probe.
///
/// Thread-safe (atomic counters), so parallel bench harnesses can share one.
/// Use [`CountingOracle::scoped`] to measure a single query:
///
/// ```
/// use lca_graph::{gen::structured, VertexId};
/// use lca_probe::{CountingOracle, Oracle};
///
/// let g = structured::cycle(6);
/// let o = CountingOracle::new(&g);
/// let scope = o.scoped();
/// o.degree(VertexId::new(0));
/// o.neighbor(VertexId::new(0), 1);
/// assert_eq!(scope.cost().total(), 2);
/// ```
#[derive(Debug)]
pub struct CountingOracle<O> {
    inner: O,
    neighbor: AtomicU64,
    degree: AtomicU64,
    adjacency: AtomicU64,
}

impl<O: Oracle> CountingOracle<O> {
    /// Wraps an oracle with fresh counters.
    pub fn new(inner: O) -> Self {
        Self {
            inner,
            neighbor: AtomicU64::new(0),
            degree: AtomicU64::new(0),
            adjacency: AtomicU64::new(0),
        }
    }

    /// Current cumulative counts.
    pub fn counts(&self) -> ProbeCounts {
        ProbeCounts {
            neighbor: self.neighbor.load(Ordering::Relaxed),
            degree: self.degree.load(Ordering::Relaxed),
            adjacency: self.adjacency.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.neighbor.store(0, Ordering::Relaxed);
        self.degree.store(0, Ordering::Relaxed);
        self.adjacency.store(0, Ordering::Relaxed);
    }

    /// Starts a measurement scope (snapshot of the current counts).
    pub fn scoped(&self) -> QueryScope<'_, O> {
        QueryScope {
            oracle: self,
            start: self.counts(),
        }
    }

    /// Access the wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: Oracle> Oracle for CountingOracle<O> {
    fn vertex_count(&self) -> usize {
        self.inner.vertex_count()
    }

    fn degree(&self, v: VertexId) -> usize {
        self.degree.fetch_add(1, Ordering::Relaxed);
        self.inner.degree(v)
    }

    fn neighbor(&self, v: VertexId, i: usize) -> Option<VertexId> {
        self.neighbor.fetch_add(1, Ordering::Relaxed);
        self.inner.neighbor(v, i)
    }

    fn adjacency(&self, u: VertexId, v: VertexId) -> Option<usize> {
        self.adjacency.fetch_add(1, Ordering::Relaxed);
        self.inner.adjacency(u, v)
    }

    fn neighbors_into(&self, v: VertexId, out: &mut Vec<VertexId>) -> usize {
        // A buffered scan is `degree(v)` plus one `neighbor` probe per
        // returned entry — charge exactly what the decomposed loop would,
        // while still forwarding the bulk call to the inner oracle.
        self.degree.fetch_add(1, Ordering::Relaxed);
        let d = self.inner.neighbors_into(v, out);
        self.neighbor.fetch_add(out.len() as u64, Ordering::Relaxed);
        d
    }

    fn label(&self, v: VertexId) -> u64 {
        self.inner.label(v)
    }
    fn probe_cost_hint(&self) -> lca_graph::ProbeCost {
        self.inner.probe_cost_hint()
    }
}

/// A per-query measurement scope produced by [`CountingOracle::scoped`].
#[derive(Debug)]
pub struct QueryScope<'a, O> {
    oracle: &'a CountingOracle<O>,
    start: ProbeCounts,
}

impl<O: Oracle> QueryScope<'_, O> {
    /// Probes spent since the scope was opened.
    pub fn cost(&self) -> ProbeCounts {
        self.oracle.counts().since(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lca_graph::gen::structured;

    #[test]
    fn counts_every_probe_kind() {
        let g = structured::star(5);
        let o = CountingOracle::new(&g);
        o.degree(VertexId::new(0));
        o.degree(VertexId::new(1));
        o.neighbor(VertexId::new(0), 0);
        o.adjacency(VertexId::new(0), VertexId::new(1));
        o.adjacency(VertexId::new(1), VertexId::new(2));
        o.adjacency(VertexId::new(2), VertexId::new(3));
        let c = o.counts();
        assert_eq!(c.degree, 2);
        assert_eq!(c.neighbor, 1);
        assert_eq!(c.adjacency, 3);
        assert_eq!(c.total(), 6);
        assert_eq!(c.of(crate::ProbeKind::Adjacency), 3);
    }

    #[test]
    fn labels_and_vertex_count_are_free() {
        let g = structured::path(4);
        let o = CountingOracle::new(&g);
        o.label(VertexId::new(2));
        o.vertex_count();
        assert_eq!(o.counts().total(), 0);
    }

    #[test]
    fn reset_zeroes() {
        let g = structured::path(4);
        let o = CountingOracle::new(&g);
        o.degree(VertexId::new(0));
        o.reset();
        assert_eq!(o.counts(), ProbeCounts::default());
    }

    #[test]
    fn scoped_measures_deltas() {
        let g = structured::path(4);
        let o = CountingOracle::new(&g);
        o.degree(VertexId::new(0));
        let scope = o.scoped();
        o.neighbor(VertexId::new(1), 0);
        o.neighbor(VertexId::new(1), 1);
        assert_eq!(scope.cost().total(), 2);
        assert_eq!(scope.cost().neighbor, 2);
        assert_eq!(o.counts().total(), 3);
    }

    #[test]
    fn forwarding_preserves_answers() {
        let g = structured::cycle(7);
        let o = CountingOracle::new(&g);
        for v in g.vertices() {
            assert_eq!(o.degree(v), g.degree(v));
            for i in 0..g.degree(v) + 1 {
                assert_eq!(o.neighbor(v, i), g.neighbor(v, i));
            }
        }
    }

    #[test]
    fn add_and_since() {
        let a = ProbeCounts {
            neighbor: 1,
            degree: 2,
            adjacency: 3,
        };
        let b = ProbeCounts {
            neighbor: 10,
            degree: 20,
            adjacency: 30,
        };
        assert_eq!((a + b).total(), 66);
        assert_eq!(b.since(a).neighbor, 9);
        assert_eq!(a.since(b), ProbeCounts::default());
    }

    #[test]
    fn display_is_informative() {
        let c = ProbeCounts {
            neighbor: 1,
            degree: 0,
            adjacency: 2,
        };
        assert!(format!("{c}").contains("total=3"));
    }
}
