//! Probe tracing: full probe-answer histories.

use std::sync::Mutex;

use lca_graph::VertexId;

use crate::{Oracle, ProbeKind};

/// One recorded probe with its answer.
///
/// This is exactly the paper's "probe-answer history" element (Section 6):
/// the lower-bound argument reasons about the distribution of these records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeRecord {
    /// Which probe type was issued.
    pub kind: ProbeKind,
    /// First argument (the probed vertex).
    pub u: VertexId,
    /// Second argument: neighbor index for `Neighbor`, target vertex index
    /// for `Adjacency`, unused (0) for `Degree`.
    pub arg: u64,
    /// The oracle's answer encoded as `i64`: the returned vertex index /
    /// position / degree, or `-1` for ⊥.
    pub answer: i64,
}

/// An [`Oracle`] wrapper that records every probe and its answer.
///
/// # Example
///
/// ```
/// use lca_graph::{gen::structured, VertexId};
/// use lca_probe::{Oracle, TracingOracle};
///
/// let g = structured::path(3);
/// let o = TracingOracle::new(&g);
/// o.neighbor(VertexId::new(1), 0);
/// o.adjacency(VertexId::new(0), VertexId::new(2));
/// let trace = o.take_trace();
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace[1].answer, -1); // 0-2 is not an edge
/// ```
#[derive(Debug)]
pub struct TracingOracle<O> {
    inner: O,
    trace: Mutex<Vec<ProbeRecord>>,
}

impl<O: Oracle> TracingOracle<O> {
    /// Wraps an oracle with an empty trace.
    pub fn new(inner: O) -> Self {
        Self {
            inner,
            trace: Mutex::new(Vec::new()),
        }
    }

    /// Returns and clears the recorded trace.
    pub fn take_trace(&self) -> Vec<ProbeRecord> {
        std::mem::take(&mut self.trace.lock().expect("trace poisoned"))
    }

    /// Number of probes recorded so far.
    pub fn len(&self) -> usize {
        self.trace.lock().expect("trace poisoned").len()
    }

    /// Whether no probe has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn record(&self, r: ProbeRecord) {
        self.trace.lock().expect("trace poisoned").push(r);
    }
}

impl<O: Oracle> Oracle for TracingOracle<O> {
    fn vertex_count(&self) -> usize {
        self.inner.vertex_count()
    }

    fn degree(&self, v: VertexId) -> usize {
        let d = self.inner.degree(v);
        self.record(ProbeRecord {
            kind: ProbeKind::Degree,
            u: v,
            arg: 0,
            answer: d as i64,
        });
        d
    }

    fn neighbor(&self, v: VertexId, i: usize) -> Option<VertexId> {
        let w = self.inner.neighbor(v, i);
        self.record(ProbeRecord {
            kind: ProbeKind::Neighbor,
            u: v,
            arg: i as u64,
            answer: w.map_or(-1, |x| x.index() as i64),
        });
        w
    }

    fn adjacency(&self, u: VertexId, v: VertexId) -> Option<usize> {
        let p = self.inner.adjacency(u, v);
        self.record(ProbeRecord {
            kind: ProbeKind::Adjacency,
            u,
            arg: v.index() as u64,
            answer: p.map_or(-1, |x| x as i64),
        });
        p
    }

    fn neighbors_into(&self, v: VertexId, out: &mut Vec<VertexId>) -> usize {
        // Forward the bulk call, then synthesize exactly the records the
        // decomposed `degree` + `neighbor(0..d)` loop would have produced —
        // transcripts are identical whichever entry point the caller used.
        let d = self.inner.neighbors_into(v, out);
        let mut trace = self.trace.lock().expect("trace poisoned");
        trace.push(ProbeRecord {
            kind: ProbeKind::Degree,
            u: v,
            arg: 0,
            answer: d as i64,
        });
        for (i, w) in out.iter().enumerate() {
            trace.push(ProbeRecord {
                kind: ProbeKind::Neighbor,
                u: v,
                arg: i as u64,
                answer: w.index() as i64,
            });
        }
        d
    }

    fn label(&self, v: VertexId) -> u64 {
        self.inner.label(v)
    }
    fn probe_cost_hint(&self) -> lca_graph::ProbeCost {
        self.inner.probe_cost_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lca_graph::gen::structured;

    #[test]
    fn records_in_order_with_answers() {
        let g = structured::star(4);
        let o = TracingOracle::new(&g);
        o.degree(VertexId::new(0));
        o.neighbor(VertexId::new(0), 1);
        o.neighbor(VertexId::new(0), 99);
        let t = o.take_trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].kind, ProbeKind::Degree);
        assert_eq!(t[0].answer, 3);
        assert_eq!(t[1].kind, ProbeKind::Neighbor);
        assert!(t[1].answer >= 0);
        assert_eq!(t[2].answer, -1);
    }

    #[test]
    fn take_trace_clears() {
        let g = structured::path(3);
        let o = TracingOracle::new(&g);
        assert!(o.is_empty());
        o.degree(VertexId::new(0));
        assert_eq!(o.len(), 1);
        let _ = o.take_trace();
        assert!(o.is_empty());
    }

    #[test]
    fn answers_are_faithful() {
        let g = structured::cycle(5);
        let o = TracingOracle::new(&g);
        for v in g.vertices() {
            assert_eq!(o.degree(v), g.degree(v));
        }
    }
}
