//! The adjacency-list oracle model (paper Section 1.4).
//!
//! An LCA never reads the graph directly: it accesses the oracle `O_G`
//! through three probe types, and its *probe complexity* — the maximum number
//! of probes per query — is the headline cost measure of every theorem in the
//! paper.
//!
//! * `Neighbor⟨v, i⟩` — the i-th neighbor of `v`, or ⊥ if `i ≥ deg(v)`.
//! * `Degree⟨v⟩` — `deg(v)`.
//! * `Adjacency⟨u, v⟩` — the index of `v` inside `Γ(u)`, or ⊥. (Returning the
//!   *index* is what makes the single-probe cluster-membership test of
//!   Idea (I) possible.)
//!
//! [`Oracle`] is the probe interface; [`lca_graph::Graph`] implements it directly.
//! Wrappers layer accounting on top without changing semantics:
//!
//! * [`CountingOracle`] — per-kind totals ([`ProbeCounts`]) and a
//!   [`CountingOracle::scoped`] helper for per-query costs.
//! * [`TracingOracle`] — records the full probe sequence for debugging and
//!   for the lower-bound experiment's probe-answer histories.
//! * [`MemoOracle`] — counts only *distinct* probes, modelling an LCA that
//!   caches oracle answers in its local memory during one query.
//!
//! # Example
//!
//! ```
//! use lca_graph::{gen::structured, VertexId};
//! use lca_probe::{CountingOracle, Oracle};
//!
//! let g = structured::star(8);
//! let o = CountingOracle::new(&g);
//! assert_eq!(o.degree(VertexId::new(0)), 7);
//! let w = o.neighbor(VertexId::new(0), 3).unwrap();
//! assert_eq!(o.adjacency(VertexId::new(0), w), Some(3));
//! assert_eq!(o.counts().total(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counting;
mod memo;
mod oracle;
mod tracing;

pub use counting::{CountingOracle, ProbeCounts, QueryScope};
pub use memo::{measure_distinct, MemoOracle};
pub use oracle::Oracle;
pub use tracing::{ProbeRecord, TracingOracle};

/// The three probe types of the LCA model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeKind {
    /// `Neighbor⟨v, i⟩`.
    Neighbor,
    /// `Degree⟨v⟩`.
    Degree,
    /// `Adjacency⟨u, v⟩`.
    Adjacency,
}

impl std::fmt::Display for ProbeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ProbeKind::Neighbor => "neighbor",
            ProbeKind::Degree => "degree",
            ProbeKind::Adjacency => "adjacency",
        };
        f.write_str(s)
    }
}
