//! The adjacency-list oracle model (paper Section 1.4).
//!
//! An LCA never reads the graph directly: it accesses the oracle `O_G`
//! through three probe types, and its *probe complexity* — the maximum number
//! of probes per query — is the headline cost measure of every theorem in the
//! paper.
//!
//! * `Neighbor⟨v, i⟩` — the i-th neighbor of `v`, or ⊥ if `i ≥ deg(v)`.
//! * `Degree⟨v⟩` — `deg(v)`.
//! * `Adjacency⟨u, v⟩` — the index of `v` inside `Γ(u)`, or ⊥. (Returning the
//!   *index* is what makes the single-probe cluster-membership test of
//!   Idea (I) possible.)
//!
//! [`Oracle`] is the probe interface (defined in `lca-graph`, which owns
//! both backing stores: the materialized [`lca_graph::Graph`] and the
//! [`lca_graph::implicit`] generator-backed oracles for graphs too large to
//! materialize). This crate layers accounting and caching on top without
//! changing semantics:
//!
//! * [`CountingOracle`] — per-kind totals ([`ProbeCounts`]) and a
//!   [`CountingOracle::scoped`] helper for per-query costs.
//! * [`TracingOracle`] — records the full probe sequence for debugging and
//!   for the lower-bound experiment's probe-answer histories.
//! * [`MemoOracle`] — counts only *distinct* probes, modelling an LCA that
//!   caches oracle answers in its local memory during one query.
//! * [`CachedOracle`] — a sharded **serving-layer** cache that persists
//!   across queries.
//!
//! # Two caches, two meanings
//!
//! [`MemoOracle`] and [`CachedOracle`] look alike and must not be confused:
//!
//! * **[`MemoOracle`] is part of the model.** Definition 1.4 gives the LCA
//!   read-write memory *for the duration of one query*; memoizing within a
//!   query is what turns the raw probe count into the distinct-probe
//!   measure, which is why only `MemoOracle` participates in probe
//!   accounting (`measure_queries_distinct` in `lca-core` installs one
//!   per query). It must be [`MemoOracle::clear`]ed between queries —
//!   persisting it would quietly turn the LCA into a global algorithm with
//!   precomputed state.
//! * **[`CachedOracle`] is part of the serving stack.** When the input
//!   oracle is expensive — an implicit generator recomputing adjacency per
//!   probe, a remote store — the *server* may cache input answers across
//!   queries, because probes are pure reads and caching cannot change any
//!   answer. It deliberately never appears in a probe-cost report: it
//!   reduces the cost of answering probes, not the number of probes the
//!   algorithm needs.
//!
//! # Example
//!
//! ```
//! use lca_graph::{gen::structured, VertexId};
//! use lca_probe::{CountingOracle, Oracle};
//!
//! let g = structured::star(8);
//! let o = CountingOracle::new(&g);
//! assert_eq!(o.degree(VertexId::new(0)), 7);
//! let w = o.neighbor(VertexId::new(0), 3).unwrap();
//! assert_eq!(o.adjacency(VertexId::new(0), w), Some(3));
//! assert_eq!(o.counts().total(), 3);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cached;
mod counting;
mod memo;
mod tracing;

pub use cached::{CacheStats, CachedOracle};
pub use counting::{CountingOracle, ProbeCounts, QueryScope};
pub use memo::{measure_distinct, MemoOracle};
pub use tracing::{ProbeRecord, TracingOracle};

pub use lca_graph::{Oracle, ProbeCost};

/// Routes a 64-bit key to one of `len` shards (Fibonacci hashing: the
/// golden-ratio multiply spreads consecutive keys across shards while
/// staying a pure function of the key). This is **the** workspace shard
/// router — [`MemoOracle`], [`CachedOracle`], and the serve layer's session
/// registry all route through it, so a key lands on the same shard index
/// no matter which layer asks.
pub fn shard_for_key(key: u64, len: usize) -> usize {
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h >> 32) as usize % len.max(1)
}

/// Routes a string key (e.g. a serving-session name) to one of `len`
/// shards: an FNV-1a fold of the bytes, then the same Fibonacci multiply as
/// [`shard_for_key`].
pub fn shard_for_str(key: &str, len: usize) -> usize {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in key.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    shard_for_key(h, len)
}

/// Routes a vertex to one of `len` shards — the [`shard_for_key`]
/// specialization the sharded caches use.
pub(crate) fn shard_index(v: u32, len: usize) -> usize {
    shard_for_key(v as u64, len)
}

/// The three probe types of the LCA model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeKind {
    /// `Neighbor⟨v, i⟩`.
    Neighbor,
    /// `Degree⟨v⟩`.
    Degree,
    /// `Adjacency⟨u, v⟩`.
    Adjacency,
}

impl std::fmt::Display for ProbeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ProbeKind::Neighbor => "neighbor",
            ProbeKind::Degree => "degree",
            ProbeKind::Adjacency => "adjacency",
        };
        f.write_str(s)
    }
}
