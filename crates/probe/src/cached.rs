//! The serving-layer input cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use lca_graph::VertexId;

use crate::Oracle;

/// Default number of cache shards.
const DEFAULT_SHARDS: usize = 16;

/// An [`Oracle`] wrapper that caches answers **across queries**, sharded by
/// vertex so concurrent `query_batch` workers rarely contend on one lock.
///
/// This is serving-layer infrastructure, *not* part of the LCA model — and
/// the distinction matters:
///
/// * [`crate::MemoOracle`] models the algorithm's **per-query local
///   memory** (Definition 1.4): it must be [`clear`](crate::MemoOracle::clear)ed
///   between queries, and it is what defines the distinct-probe measure the
///   bench harness reports.
/// * `CachedOracle` models the **input side**: when the oracle itself is
///   expensive (an implicit generator recomputing adjacency per probe, a
///   remote store, a parsed file), the serving stack may cache its answers
///   across queries without changing any answer — probes are pure reads.
///   It never participates in probe accounting; put the
///   [`crate::CountingOracle`] *inside* the cache to count only misses, or
///   *outside* to count every logical probe.
///
/// Each shard is optionally capacity-bounded; a shard at capacity is flushed
/// wholesale before inserting (crude but O(1) amortized and allocation-free
/// — the cache is a pure accelerator, so dropping entries is always safe).
///
/// # Example
///
/// ```
/// use lca_graph::implicit::ImplicitGnp;
/// use lca_graph::VertexId;
/// use lca_probe::{CachedOracle, Oracle};
/// use lca_rand::Seed;
///
/// let gen = ImplicitGnp::new(1_000_000, 4.0, Seed::new(1));
/// let cached = CachedOracle::new(&gen);
/// let v = VertexId::new(123);
/// assert_eq!(cached.degree(v), cached.degree(v)); // second hit is cached
/// assert_eq!(cached.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct CachedOracle<O> {
    inner: O,
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug, Default)]
struct Shard {
    degree: HashMap<u32, usize>,
    neighbor: HashMap<(u32, u32), Option<VertexId>>,
    adjacency: HashMap<(u32, u32), Option<usize>>,
}

impl Shard {
    fn len(&self) -> usize {
        self.degree.len() + self.neighbor.len() + self.adjacency.len()
    }
}

/// Hit/miss/size counters of a [`CachedOracle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes forwarded to the inner oracle.
    pub misses: u64,
    /// Entries currently resident across all shards.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of probes served from cache (`NaN` before any probe).
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / (self.hits + self.misses) as f64
    }

    /// Total probes that went through the cache (hits + misses).
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }
}

impl std::ops::Add for CacheStats {
    type Output = CacheStats;

    /// Component-wise aggregation, so a serving layer can roll per-session
    /// cache stats up into a fleet-wide view.
    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            entries: self.entries + rhs.entries,
        }
    }
}

impl<O: Oracle> CachedOracle<O> {
    /// Wraps an oracle with an unbounded cache over 16 shards.
    pub fn new(inner: O) -> Self {
        Self::with_shards(inner, DEFAULT_SHARDS, None)
    }

    /// Wraps with explicit shard count and optional per-shard entry cap.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_shards(inner: O, shards: usize, per_shard_capacity: Option<usize>) -> Self {
        assert!(shards > 0, "at least one shard is required");
        Self {
            inner,
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Current hit/miss/occupancy counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("cache poisoned").len())
                .sum(),
        }
    }

    /// Drops every cached entry (counters are kept).
    pub fn flush(&self) {
        for shard in &self.shards {
            *shard.lock().expect("cache poisoned") = Shard::default();
        }
    }

    /// A reference to the wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    fn shard(&self, v: u32) -> &Mutex<Shard> {
        &self.shards[crate::shard_index(v, self.shards.len())]
    }

    /// Evicts (by flushing the shard) when at capacity, then inserts via
    /// `put`. The shard lock is already held by the caller.
    fn admit(&self, shard: &mut Shard, put: impl FnOnce(&mut Shard)) {
        if let Some(cap) = self.per_shard_capacity {
            if shard.len() >= cap {
                *shard = Shard::default();
            }
        }
        put(shard);
    }
}

impl<O: Oracle> Oracle for CachedOracle<O> {
    fn vertex_count(&self) -> usize {
        self.inner.vertex_count()
    }

    fn degree(&self, v: VertexId) -> usize {
        let mut s = self.shard(v.raw()).lock().expect("cache poisoned");
        if let Some(&d) = s.degree.get(&v.raw()) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return d;
        }
        let d = self.inner.degree(v);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.admit(&mut s, |s| {
            s.degree.insert(v.raw(), d);
        });
        d
    }

    fn neighbor(&self, v: VertexId, i: usize) -> Option<VertexId> {
        let Ok(idx) = u32::try_from(i) else {
            return self.inner.neighbor(v, i); // beyond u32: certainly ⊥, skip cache
        };
        let key = (v.raw(), idx);
        let mut s = self.shard(v.raw()).lock().expect("cache poisoned");
        if let Some(&w) = s.neighbor.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return w;
        }
        let w = self.inner.neighbor(v, i);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.admit(&mut s, |s| {
            s.neighbor.insert(key, w);
        });
        w
    }

    fn adjacency(&self, u: VertexId, v: VertexId) -> Option<usize> {
        let key = (u.raw(), v.raw());
        let mut s = self.shard(u.raw()).lock().expect("cache poisoned");
        if let Some(&p) = s.adjacency.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return p;
        }
        let p = self.inner.adjacency(u, v);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.admit(&mut s, |s| {
            s.adjacency.insert(key, p);
        });
        p
    }

    fn label(&self, v: VertexId) -> u64 {
        self.inner.label(v)
    }

    fn probe_cost_hint(&self) -> lca_graph::ProbeCost {
        self.inner.probe_cost_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CountingOracle;
    use lca_graph::gen::structured;

    #[test]
    fn answers_match_and_repeats_hit() {
        let g = structured::cycle(8);
        let counted = CountingOracle::new(&g);
        let cached = CachedOracle::new(&counted);
        for _ in 0..3 {
            for v in g.vertices() {
                assert_eq!(cached.degree(v), g.degree(v));
                assert_eq!(cached.neighbor(v, 0), g.neighbor(v, 0));
                assert_eq!(cached.neighbor(v, 99), g.neighbor(v, 99));
            }
        }
        // Inner oracle saw each distinct probe exactly once.
        assert_eq!(counted.counts().total(), 8 * 3);
        let stats = cached.stats();
        assert_eq!(stats.misses, 8 * 3);
        assert_eq!(stats.hits, 8 * 3 * 2);
        assert!(stats.hit_rate() > 0.6);
    }

    #[test]
    fn cache_survives_across_queries_unlike_memo() {
        let g = structured::star(10);
        let counted = CountingOracle::new(&g);
        let cached = CachedOracle::new(&counted);
        // Two "queries" probing the same vertex: the second costs nothing.
        cached.degree(VertexId::new(0));
        cached.degree(VertexId::new(0));
        assert_eq!(counted.counts().degree, 1);
    }

    #[test]
    fn capacity_flush_keeps_answers_correct() {
        let g = structured::complete(12);
        let cached = CachedOracle::with_shards(&g, 2, Some(4));
        for round in 0..3 {
            for v in g.vertices() {
                assert_eq!(cached.degree(v), 11, "round {round}");
                for i in 0..11 {
                    assert_eq!(cached.neighbor(v, i), g.neighbor(v, i));
                }
            }
        }
        let stats = cached.stats();
        assert!(
            stats.entries <= 2 * 4,
            "capacity exceeded: {}",
            stats.entries
        );
    }

    #[test]
    fn stats_aggregate_componentwise() {
        let a = CacheStats {
            hits: 3,
            misses: 1,
            entries: 2,
        };
        let b = CacheStats {
            hits: 7,
            misses: 9,
            entries: 4,
        };
        let sum = a + b;
        assert_eq!(sum.hits, 10);
        assert_eq!(sum.misses, 10);
        assert_eq!(sum.entries, 6);
        assert_eq!(sum.requests(), 20);
        assert_eq!(sum.hit_rate(), 0.5);
    }

    #[test]
    fn flush_empties_the_cache() {
        let g = structured::path(5);
        let cached = CachedOracle::new(&g);
        cached.degree(VertexId::new(1));
        assert_eq!(cached.stats().entries, 1);
        cached.flush();
        assert_eq!(cached.stats().entries, 0);
    }
}
