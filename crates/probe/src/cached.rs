//! The serving-layer input cache.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use lca_graph::VertexId;

use crate::Oracle;

/// Default number of cache shards.
const DEFAULT_SHARDS: usize = 16;

/// Default byte budget of one shard's decoded-adjacency slab (lists admitted
/// via [`Oracle::neighbors_into`]); 16 shards × 256 KiB = 4 MiB per cache.
const DEFAULT_SLAB_BYTES: usize = 256 * 1024;

/// Accounted footprint of one slab entry: the `Vec` header + hash-map slot
/// overhead, charged on top of the neighbor payload itself.
const LIST_OVERHEAD_BYTES: usize = 48;

/// An [`Oracle`] wrapper that caches answers **across queries**, sharded by
/// vertex so concurrent `query_batch` workers rarely contend on one lock.
///
/// This is serving-layer infrastructure, *not* part of the LCA model — and
/// the distinction matters:
///
/// * [`crate::MemoOracle`] models the algorithm's **per-query local
///   memory** (Definition 1.4): it must be [`clear`](crate::MemoOracle::clear)ed
///   between queries, and it is what defines the distinct-probe measure the
///   bench harness reports.
/// * `CachedOracle` models the **input side**: when the oracle itself is
///   expensive (an implicit generator recomputing adjacency per probe, a
///   remote store, a parsed file), the serving stack may cache its answers
///   across queries without changing any answer — probes are pure reads.
///   It never participates in probe accounting; put the
///   [`crate::CountingOracle`] *inside* the cache to count only misses, or
///   *outside* to count every logical probe.
///
/// Two stores live behind each shard lock:
///
/// * **Point entries** — one cached probe each (`degree`, `neighbor`,
///   `adjacency`), bounded by the per-shard entry cap. Eviction is *second
///   chance*, not wholesale flush: each entry carries a referenced bit set
///   on hit, and an insert at capacity sweeps a FIFO queue, re-queueing
///   referenced entries (bit cleared) and evicting the first cold one. The
///   hit rate therefore degrades smoothly at the capacity boundary instead
///   of cliffing to zero (the old behavior dropped the whole shard).
/// * **The decoded-adjacency slab** — whole neighbor lists admitted by
///   [`Oracle::neighbors_into`] misses, byte-bounded per shard
///   ([`CachedOracle::with_slab_bytes`]) with the same second-chance sweep.
///   A resident list answers *all* probe kinds for its vertex (`degree` is
///   its length, `neighbor` an index, `adjacency` a scan), so one bulk miss
///   against an implicit generator converts every later point probe of that
///   vertex into a memory read.
///
/// # Example
///
/// ```
/// use lca_graph::implicit::ImplicitGnp;
/// use lca_graph::VertexId;
/// use lca_probe::{CachedOracle, Oracle};
/// use lca_rand::Seed;
///
/// let gen = ImplicitGnp::new(1_000_000, 4.0, Seed::new(1));
/// let cached = CachedOracle::new(&gen);
/// let v = VertexId::new(123);
/// assert_eq!(cached.degree(v), cached.degree(v)); // second hit is cached
/// assert_eq!(cached.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct CachedOracle<O> {
    inner: O,
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: Option<usize>,
    slab_bytes_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A point-cache entry: the cached answer plus its second-chance bit.
#[derive(Debug)]
struct Entry<T> {
    value: T,
    referenced: bool,
}

/// A decoded-adjacency slab entry: the full `Γ(v)` plus its referenced bit.
#[derive(Debug)]
struct ListEntry {
    nbrs: Box<[VertexId]>,
    referenced: bool,
}

impl ListEntry {
    fn bytes(&self) -> usize {
        self.nbrs.len() * std::mem::size_of::<VertexId>() + LIST_OVERHEAD_BYTES
    }
}

/// Keys of the point-entry eviction queue, tagged by probe kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PointKey {
    Degree(u32),
    Neighbor(u32, u32),
    Adjacency(u32, u32),
}

#[derive(Debug, Default)]
struct Shard {
    degree: HashMap<u32, Entry<usize>>,
    neighbor: HashMap<(u32, u32), Entry<Option<VertexId>>>,
    adjacency: HashMap<(u32, u32), Entry<Option<usize>>>,
    /// FIFO of point keys in admission order (second-chance clock).
    queue: VecDeque<PointKey>,
    /// The decoded-adjacency slab and its FIFO, accounted in bytes.
    lists: HashMap<u32, ListEntry>,
    list_queue: VecDeque<u32>,
    list_bytes: usize,
}

impl Shard {
    fn len(&self) -> usize {
        self.degree.len() + self.neighbor.len() + self.adjacency.len() + self.lists.len()
    }

    /// Evicts one cold point entry via the second-chance sweep. Each pass
    /// either evicts or clears one referenced bit and re-queues, so the
    /// sweep terminates within `2 × queue.len()` iterations.
    fn evict_one_point(&mut self) {
        let mut budget = 2 * self.queue.len();
        while let Some(key) = self.queue.pop_front() {
            let referenced = match key {
                PointKey::Degree(k) => self.degree.get_mut(&k).map(|e| {
                    let r = e.referenced;
                    e.referenced = false;
                    r
                }),
                PointKey::Neighbor(v, i) => self.neighbor.get_mut(&(v, i)).map(|e| {
                    let r = e.referenced;
                    e.referenced = false;
                    r
                }),
                PointKey::Adjacency(u, v) => self.adjacency.get_mut(&(u, v)).map(|e| {
                    let r = e.referenced;
                    e.referenced = false;
                    r
                }),
            };
            match referenced {
                // Stale queue slot (entry already gone): keep sweeping.
                None => {}
                Some(true) => {
                    self.queue.push_back(key);
                    budget = budget.saturating_sub(1);
                    if budget == 0 {
                        break;
                    }
                    continue;
                }
                Some(false) => {
                    match key {
                        PointKey::Degree(k) => {
                            self.degree.remove(&k);
                        }
                        PointKey::Neighbor(v, i) => {
                            self.neighbor.remove(&(v, i));
                        }
                        PointKey::Adjacency(u, v) => {
                            self.adjacency.remove(&(u, v));
                        }
                    }
                    return;
                }
            }
            budget = budget.saturating_sub(1);
            if budget == 0 {
                break;
            }
        }
    }

    /// Shrinks the slab below `budget` bytes (second-chance order).
    fn evict_lists_to(&mut self, budget: usize) {
        let mut sweeps = 2 * self.list_queue.len();
        while self.list_bytes > budget {
            let Some(v) = self.list_queue.pop_front() else {
                break;
            };
            match self.lists.get_mut(&v) {
                None => {}
                Some(e) if e.referenced => {
                    e.referenced = false;
                    self.list_queue.push_back(v);
                }
                Some(_) => {
                    if let Some(e) = self.lists.remove(&v) {
                        self.list_bytes = self.list_bytes.saturating_sub(e.bytes());
                    }
                }
            }
            sweeps = sweeps.saturating_sub(1);
            if sweeps == 0 {
                break;
            }
        }
    }
}

/// Hit/miss/size counters of a [`CachedOracle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes forwarded to the inner oracle.
    pub misses: u64,
    /// Entries currently resident across all shards (point entries plus
    /// decoded adjacency lists).
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of probes served from cache (`NaN` before any probe).
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / (self.hits + self.misses) as f64
    }

    /// Total probes that went through the cache (hits + misses).
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }
}

impl std::ops::Add for CacheStats {
    type Output = CacheStats;

    /// Component-wise aggregation, so a serving layer can roll per-session
    /// cache stats up into a fleet-wide view.
    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            entries: self.entries + rhs.entries,
        }
    }
}

impl<O: Oracle> CachedOracle<O> {
    /// Wraps an oracle with an unbounded point cache over 16 shards and the
    /// default slab budget.
    pub fn new(inner: O) -> Self {
        Self::with_shards(inner, DEFAULT_SHARDS, None)
    }

    /// Wraps with explicit shard count and optional per-shard point-entry
    /// cap.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_shards(inner: O, shards: usize, per_shard_capacity: Option<usize>) -> Self {
        assert!(shards > 0, "at least one shard is required");
        Self {
            inner,
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
            slab_bytes_per_shard: DEFAULT_SLAB_BYTES,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Sets the per-shard byte budget of the decoded-adjacency slab
    /// (`0` disables bulk caching entirely).
    pub fn with_slab_bytes(mut self, bytes_per_shard: usize) -> Self {
        self.slab_bytes_per_shard = bytes_per_shard;
        self
    }

    /// Current hit/miss/occupancy counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| lock_shard(s).len()).sum(),
        }
    }

    /// Drops every cached entry (counters are kept).
    pub fn flush(&self) {
        for shard in &self.shards {
            *lock_shard(shard) = Shard::default();
        }
    }

    /// A reference to the wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    fn shard(&self, v: u32) -> MutexGuard<'_, Shard> {
        let i = crate::shard_index(v, self.shards.len());
        match self.shards.get(i).or_else(|| self.shards.first()) {
            Some(s) => lock_shard(s),
            // `shards` is never empty (asserted at construction); satisfy
            // the panic-free contract without indexing.
            None => unreachable_shard(),
        }
    }

    /// Makes room for one point entry, then inserts via `put`.
    fn admit(&self, shard: &mut Shard, key: PointKey, put: impl FnOnce(&mut Shard)) {
        if let Some(cap) = self.per_shard_capacity {
            let point_len = shard.degree.len() + shard.neighbor.len() + shard.adjacency.len();
            if point_len >= cap.max(1) {
                shard.evict_one_point();
            }
        }
        shard.queue.push_back(key);
        put(shard);
    }

    /// Serves a probe from the decoded list if resident. Returns the answer
    /// produced by `read`, or `None` when the vertex has no resident list.
    fn read_resident<T>(
        &self,
        shard: &mut Shard,
        v: u32,
        read: impl FnOnce(&[VertexId]) -> T,
    ) -> Option<T> {
        let e = shard.lists.get_mut(&v)?;
        e.referenced = true;
        Some(read(&e.nbrs))
    }
}

/// Locks a shard, recovering the guard if a holder panicked: every cached
/// value is a pure probe answer, so a poisoned shard is still valid data.
fn lock_shard(m: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Cold stub for the impossible empty-shard-vector case.
#[cold]
fn unreachable_shard() -> ! {
    // lint:allow(panic) — construction asserts shards > 0; this path is dead.
    unreachable!("CachedOracle has at least one shard")
}

impl<O: Oracle> Oracle for CachedOracle<O> {
    fn vertex_count(&self) -> usize {
        self.inner.vertex_count()
    }

    fn degree(&self, v: VertexId) -> usize {
        let mut s = self.shard(v.raw());
        if let Some(d) = self.read_resident(&mut s, v.raw(), <[VertexId]>::len) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return d;
        }
        if let Some(e) = s.degree.get_mut(&v.raw()) {
            e.referenced = true;
            let d = e.value;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return d;
        }
        let d = self.inner.degree(v);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.admit(&mut s, PointKey::Degree(v.raw()), |s| {
            s.degree.insert(
                v.raw(),
                Entry {
                    value: d,
                    referenced: false,
                },
            );
        });
        d
    }

    fn neighbor(&self, v: VertexId, i: usize) -> Option<VertexId> {
        let Ok(idx) = u32::try_from(i) else {
            return self.inner.neighbor(v, i); // beyond u32: certainly ⊥, skip cache
        };
        let mut s = self.shard(v.raw());
        if let Some(w) = self.read_resident(&mut s, v.raw(), |l| l.get(i).copied()) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return w;
        }
        let key = (v.raw(), idx);
        if let Some(e) = s.neighbor.get_mut(&key) {
            e.referenced = true;
            let w = e.value;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return w;
        }
        let w = self.inner.neighbor(v, i);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.admit(&mut s, PointKey::Neighbor(v.raw(), idx), |s| {
            s.neighbor.insert(
                key,
                Entry {
                    value: w,
                    referenced: false,
                },
            );
        });
        w
    }

    fn adjacency(&self, u: VertexId, v: VertexId) -> Option<usize> {
        let mut s = self.shard(u.raw());
        if let Some(p) = self.read_resident(&mut s, u.raw(), |l| l.iter().position(|&w| w == v)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return p;
        }
        let key = (u.raw(), v.raw());
        if let Some(e) = s.adjacency.get_mut(&key) {
            e.referenced = true;
            let p = e.value;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return p;
        }
        let p = self.inner.adjacency(u, v);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.admit(&mut s, PointKey::Adjacency(u.raw(), v.raw()), |s| {
            s.adjacency.insert(
                key,
                Entry {
                    value: p,
                    referenced: false,
                },
            );
        });
        p
    }

    fn neighbors_into(&self, v: VertexId, out: &mut Vec<VertexId>) -> usize {
        let mut s = self.shard(v.raw());
        if let Some(d) = self.read_resident(&mut s, v.raw(), |l| {
            out.clear();
            out.extend_from_slice(l);
            l.len()
        }) {
            // One buffered scan is deg + 1 logical probes, all served here.
            self.hits.fetch_add(d as u64 + 1, Ordering::Relaxed);
            return d;
        }
        let d = self.inner.neighbors_into(v, out);
        self.misses
            .fetch_add(out.len() as u64 + 1, Ordering::Relaxed);
        // Admit only complete lists: a truncated scan (budget-refused
        // prefix) must not masquerade as `Γ(v)` for future probes.
        if out.len() == d {
            let entry = ListEntry {
                nbrs: out.as_slice().into(),
                referenced: false,
            };
            let bytes = entry.bytes();
            if bytes <= self.slab_bytes_per_shard {
                let budget = self.slab_bytes_per_shard - bytes;
                s.evict_lists_to(budget);
                if s.list_bytes <= budget {
                    if let Some(old) = s.lists.insert(v.raw(), entry) {
                        s.list_bytes = s.list_bytes.saturating_sub(old.bytes());
                    } else {
                        s.list_queue.push_back(v.raw());
                    }
                    s.list_bytes += bytes;
                }
            }
        }
        d
    }

    fn label(&self, v: VertexId) -> u64 {
        self.inner.label(v)
    }

    fn probe_cost_hint(&self) -> lca_graph::ProbeCost {
        self.inner.probe_cost_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CountingOracle;
    use lca_graph::gen::structured;

    #[test]
    fn answers_match_and_repeats_hit() {
        let g = structured::cycle(8);
        let counted = CountingOracle::new(&g);
        let cached = CachedOracle::new(&counted);
        for _ in 0..3 {
            for v in g.vertices() {
                assert_eq!(cached.degree(v), g.degree(v));
                assert_eq!(cached.neighbor(v, 0), g.neighbor(v, 0));
                assert_eq!(cached.neighbor(v, 99), g.neighbor(v, 99));
            }
        }
        // Inner oracle saw each distinct probe exactly once.
        assert_eq!(counted.counts().total(), 8 * 3);
        let stats = cached.stats();
        assert_eq!(stats.misses, 8 * 3);
        assert_eq!(stats.hits, 8 * 3 * 2);
        assert!(stats.hit_rate() > 0.6);
    }

    #[test]
    fn cache_survives_across_queries_unlike_memo() {
        let g = structured::star(10);
        let counted = CountingOracle::new(&g);
        let cached = CachedOracle::new(&counted);
        // Two "queries" probing the same vertex: the second costs nothing.
        cached.degree(VertexId::new(0));
        cached.degree(VertexId::new(0));
        assert_eq!(counted.counts().degree, 1);
    }

    #[test]
    fn capacity_flush_keeps_answers_correct() {
        let g = structured::complete(12);
        let cached = CachedOracle::with_shards(&g, 2, Some(4));
        for round in 0..3 {
            for v in g.vertices() {
                assert_eq!(cached.degree(v), 11, "round {round}");
                for i in 0..11 {
                    assert_eq!(cached.neighbor(v, i), g.neighbor(v, i));
                }
            }
        }
        let stats = cached.stats();
        assert!(
            stats.entries <= 2 * 4,
            "capacity exceeded: {}",
            stats.entries
        );
    }

    #[test]
    fn eviction_is_incremental_not_wholesale() {
        // A hot set (12 vertices, re-probed every round) under constant cold
        // pressure (4 fresh vertices per round from a 16-vertex pool, so the
        // cache sits pinned at its 16-entry capacity). The old wholesale
        // flush emptied the shard — hot set included — every time an insert
        // hit capacity, cratering whole rounds to a 0% hit rate; the
        // second-chance sweep must instead keep re-referenced hot entries
        // resident and evict only cold ones, so every round after warmup
        // serves all 12 hot probes from cache.
        let g = structured::complete(28);
        let cached = CachedOracle::with_shards(&g, 1, Some(16)).with_slab_bytes(0);
        let hot: Vec<VertexId> = (0..12).map(VertexId::new).collect();
        for &v in &hot {
            cached.degree(v); // warmup: hot set resident
        }
        let mut worst_round_rate = f64::INFINITY;
        for round in 0..12 {
            let before = cached.stats();
            for &v in &hot {
                cached.degree(v);
            }
            for i in 0..4u32 {
                let cold = 12 + (4 * round + i) % 16;
                cached.degree(VertexId::from(cold));
            }
            let after = cached.stats();
            let hits = (after.hits - before.hits) as f64;
            let reqs = (after.requests() - before.requests()) as f64;
            worst_round_rate = worst_round_rate.min(hits / reqs);
            assert!(after.entries <= 16, "capacity exceeded: {}", after.entries);
        }
        assert!(
            worst_round_rate > 0.0,
            "hit rate cratered to 0 under capacity pressure"
        );
        // Second chance retains the full hot set: 12 of 16 probes per round.
        assert!(
            worst_round_rate >= 12.0 / 16.0,
            "hot set evicted under cold pressure: worst round {worst_round_rate}"
        );
    }

    #[test]
    fn decoded_list_serves_all_probe_kinds() {
        let g = structured::cycle(9);
        let counted = CountingOracle::new(&g);
        let cached = CachedOracle::new(&counted);
        let v = VertexId::new(4);
        let mut buf = Vec::new();
        assert_eq!(cached.neighbors_into(v, &mut buf), 2);
        let after_fill = counted.counts().total();
        // Every later probe of v is served by the resident list.
        assert_eq!(cached.degree(v), 2);
        assert_eq!(cached.neighbor(v, 0), Some(buf[0]));
        assert_eq!(cached.neighbor(v, 1), Some(buf[1]));
        assert_eq!(cached.adjacency(v, buf[1]), Some(1));
        assert_eq!(cached.adjacency(v, v), None);
        let mut buf2 = Vec::new();
        assert_eq!(cached.neighbors_into(v, &mut buf2), 2);
        assert_eq!(buf, buf2);
        assert_eq!(counted.counts().total(), after_fill, "all hits after fill");
    }

    #[test]
    fn slab_respects_byte_budget() {
        let g = structured::complete(64);
        // Budget fits only a couple of 63-neighbor lists per shard.
        let cached = CachedOracle::with_shards(&g, 1, None).with_slab_bytes(700);
        let mut buf = Vec::new();
        for v in g.vertices() {
            cached.neighbors_into(v, &mut buf);
        }
        let resident = cached.stats().entries;
        assert!(resident >= 1, "budget admits at least one list");
        assert!(resident <= 3, "byte budget exceeded: {resident} lists");
        // Answers stay correct regardless of residency.
        for v in g.vertices() {
            assert_eq!(cached.degree(v), 63);
        }
    }

    #[test]
    fn zero_slab_budget_disables_bulk_caching() {
        let g = structured::star(6);
        let cached = CachedOracle::new(&g).with_slab_bytes(0);
        let mut buf = Vec::new();
        cached.neighbors_into(VertexId::new(0), &mut buf);
        assert_eq!(buf.len(), 5);
        assert_eq!(cached.stats().entries, 0);
    }

    #[test]
    fn stats_aggregate_componentwise() {
        let a = CacheStats {
            hits: 3,
            misses: 1,
            entries: 2,
        };
        let b = CacheStats {
            hits: 7,
            misses: 9,
            entries: 4,
        };
        let sum = a + b;
        assert_eq!(sum.hits, 10);
        assert_eq!(sum.misses, 10);
        assert_eq!(sum.entries, 6);
        assert_eq!(sum.requests(), 20);
        assert_eq!(sum.hit_rate(), 0.5);
    }

    #[test]
    fn flush_empties_the_cache() {
        let g = structured::path(5);
        let cached = CachedOracle::new(&g);
        cached.degree(VertexId::new(1));
        assert_eq!(cached.stats().entries, 1);
        cached.flush();
        assert_eq!(cached.stats().entries, 0);
    }
}
