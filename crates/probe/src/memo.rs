//! Distinct-probe accounting.

use std::collections::HashSet;
use std::sync::Mutex;

use lca_graph::VertexId;

use crate::{CountingOracle, Oracle, ProbeCounts};

/// Number of memo shards. Power of two; small enough that `clear`/
/// `distinct_probes` stay cheap, large enough that `query_batch` workers
/// hammering one shared memo rarely collide on a lock.
const SHARDS: usize = 8;

/// An [`Oracle`] wrapper that answers repeated probes from a local cache, so
/// the wrapped counter only sees *distinct* probes.
///
/// The paper counts every oracle access, but an LCA has read-write local
/// memory (Definition 1.4) and would never pay twice for the same probe
/// within one query. Wrapping a [`CountingOracle`] in a `MemoOracle` yields
/// the distinct-probe measure; the bench harness reports both.
///
/// Call [`MemoOracle::clear`] between queries: the cache models *per-query*
/// memory, not a persistent data structure (an LCA must not keep state
/// across queries — for a cache that deliberately does persist across
/// queries, at the serving layer rather than inside the model, see
/// [`crate::CachedOracle`]).
///
/// The state is sharded by probed vertex: each shard guards its slice of the
/// key space with its own mutex, and a probe locks exactly one shard for the
/// full check-miss-forward-insert sequence. Holding the shard lock across
/// the inner call keeps the exactly-once guarantee under concurrency (two
/// racing threads can not both forward the same miss), while distinct
/// probes land in disjoint shards and proceed in parallel.
///
/// # Example
///
/// ```
/// use lca_graph::{gen::structured, VertexId};
/// use lca_probe::{CountingOracle, MemoOracle, Oracle};
///
/// let g = structured::star(5);
/// let counted = CountingOracle::new(&g);
/// let memo = MemoOracle::new(&counted);
/// memo.degree(VertexId::new(0));
/// memo.degree(VertexId::new(0)); // served from cache
/// assert_eq!(counted.counts().degree, 1);
/// ```
#[derive(Debug)]
pub struct MemoOracle<O> {
    inner: O,
    shards: Vec<Mutex<MemoState>>,
}

#[derive(Debug, Default)]
struct MemoState {
    degree: std::collections::HashMap<u32, usize>,
    neighbor: std::collections::HashMap<(u32, u64), Option<VertexId>>,
    adjacency: std::collections::HashMap<(u32, u32), Option<usize>>,
    distinct: HashSet<(u8, u64)>,
}

impl<O: Oracle> MemoOracle<O> {
    /// Wraps an oracle with an empty cache.
    pub fn new(inner: O) -> Self {
        Self {
            inner,
            shards: (0..SHARDS)
                .map(|_| Mutex::new(MemoState::default()))
                .collect(),
        }
    }

    /// Clears the cache (call between queries).
    pub fn clear(&self) {
        for shard in &self.shards {
            *shard.lock().expect("memo poisoned") = MemoState::default();
        }
    }

    /// Number of distinct probes issued since the last [`clear`].
    ///
    /// Exact: a probe key is always routed to the same shard, so the shard
    /// `distinct` sets are disjoint and their sizes add up.
    ///
    /// [`clear`]: MemoOracle::clear
    pub fn distinct_probes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("memo poisoned").distinct.len())
            .sum()
    }

    /// The shard owning every probe whose first argument is `v`.
    fn shard(&self, v: u32) -> &Mutex<MemoState> {
        &self.shards[crate::shard_index(v, self.shards.len())]
    }
}

impl<O: Oracle> Oracle for MemoOracle<O> {
    fn vertex_count(&self) -> usize {
        self.inner.vertex_count()
    }

    fn degree(&self, v: VertexId) -> usize {
        let mut s = self.shard(v.raw()).lock().expect("memo poisoned");
        if let Some(&d) = s.degree.get(&v.raw()) {
            return d;
        }
        let d = self.inner.degree(v);
        s.degree.insert(v.raw(), d);
        s.distinct.insert((0, v.raw() as u64));
        d
    }

    fn neighbor(&self, v: VertexId, i: usize) -> Option<VertexId> {
        let key = (v.raw(), i as u64);
        let mut s = self.shard(v.raw()).lock().expect("memo poisoned");
        if let Some(&w) = s.neighbor.get(&key) {
            return w;
        }
        let w = self.inner.neighbor(v, i);
        s.neighbor.insert(key, w);
        s.distinct.insert((1, ((v.raw() as u64) << 32) | i as u64));
        w
    }

    fn adjacency(&self, u: VertexId, v: VertexId) -> Option<usize> {
        let key = (u.raw(), v.raw());
        let mut s = self.shard(u.raw()).lock().expect("memo poisoned");
        if let Some(&p) = s.adjacency.get(&key) {
            return p;
        }
        let p = self.inner.adjacency(u, v);
        s.adjacency.insert(key, p);
        s.distinct
            .insert((2, ((u.raw() as u64) << 32) | v.raw() as u64));
        p
    }

    fn neighbors_into(&self, v: VertexId, out: &mut Vec<VertexId>) -> usize {
        // One shard lock for the whole scan: each constituent probe
        // (`degree(v)`, `neighbor(v, 0..d)`) is served from the memo when
        // present and forwarded to the inner oracle exactly once when not,
        // so the distinct-probe measure is identical to the decomposed loop.
        let mut s = self.shard(v.raw()).lock().expect("memo poisoned");
        let d = match s.degree.get(&v.raw()) {
            Some(&d) => d,
            None => {
                let d = self.inner.degree(v);
                s.degree.insert(v.raw(), d);
                s.distinct.insert((0, v.raw() as u64));
                d
            }
        };
        out.clear();
        out.reserve(d);
        for i in 0..d {
            let key = (v.raw(), i as u64);
            let w = match s.neighbor.get(&key) {
                Some(&w) => w,
                None => {
                    let w = self.inner.neighbor(v, i);
                    s.neighbor.insert(key, w);
                    s.distinct.insert((1, ((v.raw() as u64) << 32) | i as u64));
                    w
                }
            };
            match w {
                Some(w) => out.push(w),
                None => break,
            }
        }
        d
    }

    fn label(&self, v: VertexId) -> u64 {
        self.inner.label(v)
    }
    fn probe_cost_hint(&self) -> lca_graph::ProbeCost {
        self.inner.probe_cost_hint()
    }
}

/// Convenience: measure the distinct-probe cost of one closure against a
/// graph-backed oracle. Returns `(closure result, raw counts, distinct)`.
pub fn measure_distinct<O: Oracle, T>(
    oracle: O,
    f: impl FnOnce(&MemoOracle<&CountingOracle<O>>) -> T,
) -> (T, ProbeCounts, usize) {
    let counted = CountingOracle::new(oracle);
    let memo = MemoOracle::new(&counted);
    let out = f(&memo);
    let distinct = memo.distinct_probes();
    (out, counted.counts(), distinct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lca_graph::gen::structured;

    #[test]
    fn caches_each_probe_kind() {
        let g = structured::cycle(6);
        let counted = CountingOracle::new(&g);
        let memo = MemoOracle::new(&counted);
        for _ in 0..5 {
            memo.degree(VertexId::new(0));
            memo.neighbor(VertexId::new(0), 1);
            memo.adjacency(VertexId::new(0), VertexId::new(1));
        }
        assert_eq!(counted.counts().total(), 3);
        assert_eq!(memo.distinct_probes(), 3);
    }

    #[test]
    fn cached_answers_match_oracle() {
        let g = structured::star(6);
        let memo = MemoOracle::new(&g);
        for v in g.vertices() {
            assert_eq!(memo.degree(v), g.degree(v));
            assert_eq!(memo.degree(v), g.degree(v));
            for i in 0..g.degree(v) {
                assert_eq!(memo.neighbor(v, i), g.neighbor(v, i));
            }
        }
    }

    #[test]
    fn clear_resets_cache_and_count() {
        let g = structured::path(4);
        let counted = CountingOracle::new(&g);
        let memo = MemoOracle::new(&counted);
        memo.degree(VertexId::new(1));
        memo.clear();
        assert_eq!(memo.distinct_probes(), 0);
        memo.degree(VertexId::new(1));
        assert_eq!(counted.counts().degree, 2);
    }

    #[test]
    fn distinct_count_spans_all_shards() {
        // Probes over many vertices land in different shards; the distinct
        // total must still count each exactly once.
        let g = structured::complete(64);
        let memo = MemoOracle::new(&g);
        for v in g.vertices() {
            memo.degree(v);
            memo.degree(v);
        }
        assert_eq!(memo.distinct_probes(), 64);
    }

    #[test]
    fn measure_distinct_helper() {
        let g = structured::star(8);
        let (_out, counts, distinct) = measure_distinct(&g, |o| {
            o.degree(VertexId::new(0));
            o.degree(VertexId::new(0));
            o.neighbor(VertexId::new(0), 2)
        });
        assert_eq!(counts.total(), 2);
        assert_eq!(distinct, 2);
    }
}
