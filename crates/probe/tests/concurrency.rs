//! Concurrency contracts of the sharded caches: hammer one shared
//! `MemoOracle` (and `CachedOracle`) from many threads and assert the
//! exactly-once forwarding guarantee plus answer correctness survive the
//! races the sharding is supposed to make cheap.

use lca_graph::gen::GnpBuilder;
use lca_graph::{Oracle, VertexId};
use lca_probe::{CachedOracle, CountingOracle, MemoOracle};
use lca_rand::Seed;

const THREADS: usize = 8;
const PROBES_PER_THREAD: usize = 20_000;

/// Issues a deterministic-but-scrambled mix of all three probe kinds,
/// heavily overlapping across threads, and checks every answer against the
/// bare graph.
fn hammer<O: Oracle + Sync>(oracle: &O, graph: &lca_graph::Graph, thread_seed: u64) {
    let n = graph.vertex_count() as u64;
    let mut rng = Seed::new(thread_seed).stream();
    for _ in 0..PROBES_PER_THREAD {
        let v = VertexId::new(rng.next_below(n) as usize);
        match rng.next_below(3) {
            0 => assert_eq!(oracle.degree(v), graph.degree(v)),
            1 => {
                let i = rng.next_below(8) as usize;
                assert_eq!(oracle.neighbor(v, i), graph.neighbor(v, i));
            }
            _ => {
                let w = VertexId::new(rng.next_below(n) as usize);
                assert_eq!(oracle.adjacency(v, w), graph.adjacency_index(v, w));
            }
        }
    }
}

#[test]
fn memo_oracle_is_exactly_once_under_contention() {
    let g = GnpBuilder::new(64, 0.2).seed(Seed::new(1)).build();
    let counted = CountingOracle::new(&g);
    let memo = MemoOracle::new(&counted);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let memo = &memo;
            let g = &g;
            s.spawn(move || hammer(memo, g, 0xC0 + t as u64));
        }
    });

    // The exactly-once guarantee: the inner oracle saw each *distinct*
    // probe exactly once, no matter how many threads raced on it. With a
    // small key space and 160k probes, any double-forward would show as
    // counts > distinct.
    assert_eq!(
        counted.counts().total(),
        memo.distinct_probes() as u64,
        "a raced miss was forwarded twice"
    );

    // And clearing under no contention resets both sides of the ledger.
    memo.clear();
    assert_eq!(memo.distinct_probes(), 0);
    memo.degree(VertexId::new(0));
    assert_eq!(memo.distinct_probes(), 1);
}

#[test]
fn memo_answers_after_contention_match_a_fresh_run() {
    let g = GnpBuilder::new(64, 0.3).seed(Seed::new(2)).build();
    let memo = MemoOracle::new(&g);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let memo = &memo;
            let g = &g;
            s.spawn(move || hammer(memo, g, 0xD0 + t as u64));
        }
    });
    // Every cached entry still agrees with the ground truth.
    for v in g.vertices() {
        assert_eq!(memo.degree(v), g.degree(v));
        for i in 0..g.degree(v) {
            assert_eq!(memo.neighbor(v, i), g.neighbor(v, i));
        }
    }
}

#[test]
fn cached_oracle_is_exactly_once_under_contention() {
    let g = GnpBuilder::new(64, 0.2).seed(Seed::new(3)).build();
    let counted = CountingOracle::new(&g);
    let cached = CachedOracle::new(&counted);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cached = &cached;
            let g = &g;
            s.spawn(move || hammer(cached, g, 0xE0 + t as u64));
        }
    });

    let stats = cached.stats();
    assert_eq!(
        counted.counts().total(),
        stats.misses,
        "a raced miss was forwarded twice"
    );
    assert_eq!(
        stats.hits + stats.misses,
        (THREADS * PROBES_PER_THREAD) as u64
    );
}
