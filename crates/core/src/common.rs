//! Shared helpers for the spanner LCAs.

use lca_graph::VertexId;
use lca_probe::Oracle;
use lca_rand::Coin;

/// Normalized edge identifier: `(min label, max label)`, compared
/// lexicographically.
///
/// The paper's “edge of minimum ID” rules write IDs as `(ID(u), ID(v))`;
/// normalizing by label order makes the comparison orientation-independent
/// (DESIGN.md deviation #1).
pub(crate) fn edge_key(label_a: u64, label_b: u64) -> (u64, u64) {
    if label_a <= label_b {
        (label_a, label_b)
    } else {
        (label_b, label_a)
    }
}

/// Computes `ceil(n^{num/den})`, the integer degree thresholds (√n, n^{3/4},
/// n^{1/3}, n^{5/6}, …) used by the constructions. Exact for the ranges used
/// here (adjusts the floating-point estimate by ±1).
pub(crate) fn ceil_pow(n: usize, num: u32, den: u32) -> usize {
    if n <= 1 {
        return n;
    }
    let est = (n as f64).powf(num as f64 / den as f64);
    let mut c = est.ceil() as usize;
    // Fix potential off-by-one from floating point: want smallest c with
    // c^den >= n^num.
    let pow_ge = |c: usize| -> bool {
        // Compare c^den >= n^num in u128 when possible, else via logs.
        let (mut lhs, mut ok_l) = (1u128, true);
        for _ in 0..den {
            lhs = match lhs.checked_mul(c as u128) {
                Some(x) => x,
                None => {
                    ok_l = false;
                    break;
                }
            };
        }
        let (mut rhs, mut ok_r) = (1u128, true);
        for _ in 0..num {
            rhs = match rhs.checked_mul(n as u128) {
                Some(x) => x,
                None => {
                    ok_r = false;
                    break;
                }
            };
        }
        if ok_l && ok_r {
            lhs >= rhs
        } else {
            (c as f64).ln() * den as f64 >= (n as f64).ln() * num as f64
        }
    };
    while c > 1 && pow_ge(c - 1) {
        c -= 1;
    }
    while !pow_ge(c) {
        c += 1;
    }
    c
}

/// `ln(n)` clamped below by 1 — the log factor in sampling probabilities.
pub(crate) fn ln_n(n: usize) -> f64 {
    (n.max(2) as f64).ln().max(1.0)
}

/// Scans the first `min(block, deg(w))` neighbors of `w` and returns those
/// passing `coin` (and, if set, a maximum-degree cap) — the multiple-center
/// set `S(w)` of Ideas (I)/(III).
///
/// Probe cost: `min(block, deg(w))` Neighbor probes, plus one Degree probe
/// per sampled candidate when `max_degree` is set.
pub(crate) fn prefix_centers<O: Oracle>(
    oracle: &O,
    coin: &Coin,
    w: VertexId,
    block: usize,
    max_degree: Option<usize>,
) -> Vec<VertexId> {
    let mut out = Vec::new();
    for i in 0..block {
        let Some(x) = oracle.neighbor(w, i) else {
            break; // ⊥: past the end of Γ(w)
        };
        if coin.flip(oracle.label(x)) {
            if let Some(cap) = max_degree {
                if oracle.degree(x) > cap {
                    continue;
                }
            }
            out.push(x);
        }
    }
    out
}

/// Single-probe cluster-membership test (Idea (I)): is `s` in the
/// multiple-center set of `w`, i.e. is `s` sampled and located within the
/// first `block` positions of `Γ(w)`?
///
/// The caller must have already checked (probe-free) that `s` is sampled;
/// this function performs only the positional half of the test.
pub(crate) fn in_prefix<O: Oracle>(oracle: &O, w: VertexId, s: VertexId, block: usize) -> bool {
    matches!(oracle.adjacency(w, s), Some(idx) if idx < block)
}

/// The “does this edge introduce a new center?” scan shared by the E_high,
/// E_super and bucket machineries: walk positions `start..end` of `Γ(w)` and
/// test whether any center in `centers` remains un-introduced, where
/// membership of `s` in the set of neighbor `x` means `s` lies within the
/// first `membership_block` positions of `Γ(x)` (one Adjacency probe each).
///
/// Returns true iff some center of `centers` was *not* covered by the scanned
/// prefix — i.e. the candidate edge at position `end` introduces a new
/// center and must be kept.
pub(crate) fn scan_new_center<O: Oracle>(
    oracle: &O,
    w: VertexId,
    start: usize,
    end: usize,
    centers: &[VertexId],
    membership_block: usize,
) -> bool {
    if centers.is_empty() {
        return false;
    }
    let mut covered = vec![false; centers.len()];
    let mut remaining = centers.len();
    for i in start..end {
        let Some(x) = oracle.neighbor(w, i) else {
            break;
        };
        for (ci, &s) in centers.iter().enumerate() {
            if !covered[ci] && in_prefix(oracle, x, s, membership_block) {
                covered[ci] = true;
                remaining -= 1;
            }
        }
        if remaining == 0 {
            return false;
        }
    }
    remaining > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use lca_graph::gen::structured;
    use lca_rand::Seed;

    #[test]
    fn edge_key_is_orientation_free() {
        assert_eq!(edge_key(5, 9), (5, 9));
        assert_eq!(edge_key(9, 5), (5, 9));
        assert_eq!(edge_key(7, 7), (7, 7));
    }

    #[test]
    fn ceil_pow_matches_reference() {
        for n in [1usize, 2, 3, 4, 10, 100, 1000, 65536, 1_000_000] {
            for (num, den) in [(1u32, 2u32), (3, 4), (1, 3), (5, 6), (2, 3), (1, 1)] {
                let got = ceil_pow(n, num, den);
                if n <= 1 {
                    assert_eq!(got, n);
                    continue;
                }
                // Reference: smallest c with c^den >= n^num.
                let target = (n as u128).pow(num);
                let mut c = 1usize;
                while (c as u128).pow(den) < target {
                    c += 1;
                }
                assert_eq!(got, c, "n={n} {num}/{den}");
            }
        }
    }

    #[test]
    fn ceil_pow_perfect_squares() {
        assert_eq!(ceil_pow(16, 1, 2), 4);
        assert_eq!(ceil_pow(81, 3, 4), 27);
        assert_eq!(ceil_pow(64, 5, 6), 32);
    }

    #[test]
    fn prefix_centers_respects_block_and_cap() {
        let g = structured::star(20);
        let hub = VertexId::new(0);
        let always = Coin::new(Seed::new(1), 1.0, 4);
        // Block of 5: exactly the first 5 neighbors.
        let s = prefix_centers(&g, &always, hub, 5, None);
        assert_eq!(s.len(), 5);
        assert_eq!(s, g.neighbors(hub)[..5].to_vec());
        // Degree cap of 0 excludes everyone (leaves have degree 1).
        let s = prefix_centers(&g, &always, hub, 5, Some(0));
        assert!(s.is_empty());
        // Beyond the degree, scanning stops at ⊥.
        let leaf = VertexId::new(3);
        let s = prefix_centers(&g, &always, leaf, 10, None);
        assert_eq!(s, vec![hub]);
    }

    #[test]
    fn prefix_centers_respects_coin() {
        let g = structured::star(20);
        let never = Coin::new(Seed::new(1), 0.0, 4);
        assert!(prefix_centers(&g, &never, VertexId::new(0), 10, None).is_empty());
    }

    #[test]
    fn in_prefix_checks_position() {
        let g = structured::star(10);
        let hub = VertexId::new(0);
        let third = g.neighbors(hub)[2];
        assert!(in_prefix(&g, hub, third, 3));
        assert!(!in_prefix(&g, hub, third, 2));
        // Non-edge: always false.
        assert!(!in_prefix(&g, VertexId::new(1), VertexId::new(2), 10));
    }

    #[test]
    fn ln_n_is_clamped() {
        assert_eq!(ln_n(0), 1.0);
        assert_eq!(ln_n(2), 1.0);
        assert!(ln_n(1000) > 6.0);
    }
}
