//! Serial measurement harness: materialize an LCA's subgraph and account
//! probes. The thread-parallel counterpart lives in [`crate::QueryEngine`].

use lca_graph::{Graph, Subgraph};
use lca_probe::{CountingOracle, MemoOracle, Oracle, ProbeCounts};

use crate::{EdgeSubgraphLca, LcaError};

/// The outcome of replaying every edge query of a graph through an LCA.
///
/// `per_query_max` is the paper's *probe complexity* (maximum probes over
/// queries); `per_query_mean` the average; `kept` the materialized spanner.
#[derive(Debug)]
pub struct SpannerRun {
    /// [`crate::Lca::name`] of the measured algorithm.
    pub algorithm: &'static str,
    /// The subgraph described by the LCA's YES answers.
    pub kept: Subgraph,
    /// Maximum probes spent on a single edge query.
    pub per_query_max: u64,
    /// Mean probes per edge query.
    pub per_query_mean: f64,
    /// Total probes across all queries, by kind.
    pub total: ProbeCounts,
    /// Number of edge queries issued (= m).
    pub queries: usize,
}

impl SpannerRun {
    /// Fraction of host edges kept.
    ///
    /// **Convention:** on an empty graph the ratio is `0/0`, which this
    /// method reports as [`f64::NAN`] — "no edges were kept" (`0.0`) would
    /// wrongly read as aggressive sparsification, and "everything was kept"
    /// (`1.0`) as no sparsification, when in fact there was nothing to
    /// decide. Callers that format reports should render `NaN` as `-`.
    pub fn keep_ratio(&self, graph: &Graph) -> f64 {
        ratio_kept(self.kept.edge_count(), graph)
    }
}

/// The shared keep-ratio convention: `kept / m`, [`f64::NAN`] when `m = 0`
/// (see [`SpannerRun::keep_ratio`]).
pub(crate) fn ratio_kept(kept: usize, graph: &Graph) -> f64 {
    if graph.edge_count() == 0 {
        f64::NAN
    } else {
        kept as f64 / graph.edge_count() as f64
    }
}

/// Queries the LCA on every edge of `graph` (whose probes must flow through
/// `counter`) and returns the materialized subgraph plus probe statistics.
///
/// # Errors
///
/// Propagates the first [`LcaError`] (which, on a well-formed run over
/// `graph.edges()`, indicates an LCA bug).
pub fn measure_queries<O: Oracle, L: EdgeSubgraphLca>(
    graph: &Graph,
    counter: &CountingOracle<O>,
    lca: &L,
) -> Result<SpannerRun, LcaError> {
    let mut kept = Vec::new();
    let mut max = 0u64;
    let mut sum = 0u64;
    let mut queries = 0usize;
    let start = counter.counts();
    for (u, v) in graph.edges() {
        let scope = counter.scoped();
        if lca.contains(u, v)? {
            kept.push((u, v));
        }
        let cost = scope.cost().total();
        max = max.max(cost);
        sum += cost;
        queries += 1;
    }
    Ok(SpannerRun {
        algorithm: lca.name(),
        kept: Subgraph::from_edges(graph, kept),
        per_query_max: max,
        per_query_mean: if queries == 0 {
            0.0
        } else {
            sum as f64 / queries as f64
        },
        total: counter.counts().since(start),
        queries,
    })
}

/// A [`SpannerRun`] extended with the *distinct*-probe measure: repeated
/// probes within one query are free, modelling the per-query read-write
/// local memory of Definition 1.4 (see [`MemoOracle`]).
#[derive(Debug)]
pub struct DistinctRun {
    /// The raw-probe measurement (every probe counted).
    pub run: SpannerRun,
    /// Maximum *distinct* probes over the queries.
    pub distinct_max: usize,
    /// Mean distinct probes per query.
    pub distinct_mean: f64,
    /// Total distinct probes across all queries.
    pub distinct_total: u64,
}

/// Like [`measure_queries`], but additionally reports distinct-probe
/// statistics: each query runs against a freshly cleared memo, so the
/// cache models per-query memory rather than a persistent data structure.
///
/// The oracle wiring is `graph → memo → counter → lca`, and the signature
/// enforces it: the counter must wrap a [`MemoOracle`], from which the
/// harness reaches the memo itself. Every probe the LCA issues is counted
/// *raw* by `counter`, then deduplicated by the memo underneath, whose
/// [`MemoOracle::distinct_probes`] yields the per-query distinct measure.
/// (Caching below the counter cannot change any answer, so both measures
/// describe the same run.)
///
/// ```
/// use lca_core::{measure_queries_distinct, ThreeSpanner};
/// use lca_graph::gen::GnpBuilder;
/// use lca_probe::{CountingOracle, MemoOracle};
/// use lca_rand::Seed;
///
/// let g = GnpBuilder::new(80, 0.3).seed(Seed::new(1)).build();
/// let memo = MemoOracle::new(&g);
/// let counter = CountingOracle::new(&memo);
/// let lca = ThreeSpanner::with_defaults(&counter, Seed::new(2));
/// let d = measure_queries_distinct(&g, &counter, &lca)?;
/// assert!(d.distinct_total <= d.run.total.total());
/// # Ok::<(), lca_core::LcaError>(())
/// ```
///
/// # Errors
///
/// Propagates the first [`LcaError`].
pub fn measure_queries_distinct<O, L>(
    graph: &Graph,
    counter: &CountingOracle<&MemoOracle<O>>,
    lca: &L,
) -> Result<DistinctRun, LcaError>
where
    O: Oracle,
    L: EdgeSubgraphLca,
{
    let memo: &MemoOracle<O> = counter.inner();
    let mut kept = Vec::new();
    let mut max = 0u64;
    let mut sum = 0u64;
    let mut distinct_max = 0usize;
    let mut distinct_total = 0u64;
    let mut queries = 0usize;
    let start = counter.counts();
    for (u, v) in graph.edges() {
        memo.clear();
        let scope = counter.scoped();
        if lca.contains(u, v)? {
            kept.push((u, v));
        }
        let cost = scope.cost().total();
        max = max.max(cost);
        sum += cost;
        let distinct = memo.distinct_probes();
        distinct_max = distinct_max.max(distinct);
        distinct_total += distinct as u64;
        queries += 1;
    }
    Ok(DistinctRun {
        run: SpannerRun {
            algorithm: lca.name(),
            kept: Subgraph::from_edges(graph, kept),
            per_query_max: max,
            per_query_mean: if queries == 0 {
                0.0
            } else {
                sum as f64 / queries as f64
            },
            total: counter.counts().since(start),
            queries,
        },
        distinct_max,
        distinct_mean: if queries == 0 {
            0.0
        } else {
            distinct_total as f64 / queries as f64
        },
        distinct_total,
    })
}

/// Materializes the subgraph only (no probe accounting). For a
/// thread-parallel version see [`crate::QueryEngine::materialize`].
///
/// # Errors
///
/// Propagates the first [`LcaError`].
pub fn materialize<L: EdgeSubgraphLca>(graph: &Graph, lca: &L) -> Result<Subgraph, LcaError> {
    let mut kept = Vec::new();
    for (u, v) in graph.edges() {
        if lca.contains(u, v)? {
            kept.push((u, v));
        }
    }
    Ok(Subgraph::from_edges(graph, kept))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ThreeSpanner, ThreeSpannerParams};
    use lca_graph::gen::GnpBuilder;
    use lca_rand::Seed;

    #[test]
    fn measure_counts_probes_and_keeps_edges() {
        let g = GnpBuilder::new(60, 0.3).seed(Seed::new(1)).build();
        let counter = CountingOracle::new(&g);
        let lca = ThreeSpanner::new(&counter, ThreeSpannerParams::for_n(60), Seed::new(2));
        let run = measure_queries(&g, &counter, &lca).unwrap();
        assert_eq!(run.algorithm, "three-spanner");
        assert_eq!(run.queries, g.edge_count());
        assert!(run.per_query_max >= 1);
        assert!(run.per_query_mean > 0.0);
        assert!(run.total.total() > 0);
        assert!(run.kept.edge_count() > 0);
        assert!(run.keep_ratio(&g) <= 1.0);
    }

    #[test]
    fn materialize_matches_measure() {
        let g = GnpBuilder::new(40, 0.4).seed(Seed::new(3)).build();
        let counter = CountingOracle::new(&g);
        let lca = ThreeSpanner::new(&counter, ThreeSpannerParams::for_n(40), Seed::new(4));
        let run = measure_queries(&g, &counter, &lca).unwrap();
        let sub = materialize(&g, &lca).unwrap();
        assert_eq!(run.kept.edge_count(), sub.edge_count());
        for (u, v) in sub.edges() {
            assert!(run.kept.has_edge(u, v));
        }
    }

    #[test]
    fn empty_graph_yields_empty_run_and_nan_ratio() {
        let g = lca_graph::GraphBuilder::new(5).build().unwrap();
        let counter = CountingOracle::new(&g);
        let lca = ThreeSpanner::new(&counter, ThreeSpannerParams::for_n(5), Seed::new(0));
        let run = measure_queries(&g, &counter, &lca).unwrap();
        assert_eq!(run.queries, 0);
        assert_eq!(run.per_query_max, 0);
        assert_eq!(run.kept.edge_count(), 0);
        // The documented convention: 0/0 edges kept is undefined, not 0.0.
        assert!(run.keep_ratio(&g).is_nan());
    }

    #[test]
    fn distinct_mode_reports_both_measures_consistently() {
        let n = 60;
        let g = GnpBuilder::new(n, 0.3).seed(Seed::new(7)).build();
        let seed = Seed::new(8);
        let params = ThreeSpannerParams::for_n(n);

        let memo = MemoOracle::new(&g);
        let counter = CountingOracle::new(&memo);
        let lca = ThreeSpanner::new(&counter, params.clone(), seed);
        let d = measure_queries_distinct(&g, &counter, &lca).unwrap();

        // Distinct probes can never exceed raw probes.
        assert!(d.distinct_total <= d.run.total.total());
        assert!((d.distinct_max as u64) <= d.run.per_query_max);
        assert!(d.distinct_mean <= d.run.per_query_mean);
        assert!(d.distinct_total > 0);

        // Memoization must not change any answer: same spanner as a plain
        // run over an uncached oracle.
        let counter2 = CountingOracle::new(&g);
        let plain = ThreeSpanner::new(&counter2, params, seed);
        let run = measure_queries(&g, &counter2, &plain).unwrap();
        assert_eq!(run.kept.edge_count(), d.run.kept.edge_count());
        for (u, v) in run.kept.edges() {
            assert!(d.run.kept.has_edge(u, v));
        }
    }
}
