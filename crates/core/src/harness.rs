//! Measurement harness: materialize an LCA's subgraph and account probes.

use lca_graph::{Graph, Subgraph};
use lca_probe::{CountingOracle, Oracle, ProbeCounts};

use crate::{EdgeSubgraphLca, LcaError};

/// The outcome of replaying every edge query of a graph through an LCA.
///
/// `per_query_max` is the paper's *probe complexity* (maximum probes over
/// queries); `per_query_mean` the average; `kept` the materialized spanner.
#[derive(Debug)]
pub struct SpannerRun {
    /// The subgraph described by the LCA's YES answers.
    pub kept: Subgraph,
    /// Maximum probes spent on a single edge query.
    pub per_query_max: u64,
    /// Mean probes per edge query.
    pub per_query_mean: f64,
    /// Total probes across all queries, by kind.
    pub total: ProbeCounts,
    /// Number of edge queries issued (= m).
    pub queries: usize,
}

impl SpannerRun {
    /// Fraction of host edges kept.
    pub fn keep_ratio(&self, graph: &Graph) -> f64 {
        if graph.edge_count() == 0 {
            0.0
        } else {
            self.kept.edge_count() as f64 / graph.edge_count() as f64
        }
    }
}

/// Queries the LCA on every edge of `graph` (whose probes must flow through
/// `counter`) and returns the materialized subgraph plus probe statistics.
///
/// # Errors
///
/// Propagates the first [`LcaError`] (which, on a well-formed run over
/// `graph.edges()`, indicates an LCA bug).
pub fn measure_queries<O: Oracle, L: EdgeSubgraphLca>(
    graph: &Graph,
    counter: &CountingOracle<O>,
    lca: &L,
) -> Result<SpannerRun, LcaError> {
    let mut kept = Vec::new();
    let mut max = 0u64;
    let mut sum = 0u64;
    let mut queries = 0usize;
    let start = counter.counts();
    for (u, v) in graph.edges() {
        let scope = counter.scoped();
        if lca.contains(u, v)? {
            kept.push((u, v));
        }
        let cost = scope.cost().total();
        max = max.max(cost);
        sum += cost;
        queries += 1;
    }
    Ok(SpannerRun {
        kept: Subgraph::from_edges(graph, kept),
        per_query_max: max,
        per_query_mean: if queries == 0 {
            0.0
        } else {
            sum as f64 / queries as f64
        },
        total: counter.counts().since(start),
        queries,
    })
}

/// Materializes the subgraph only (no probe accounting).
///
/// # Errors
///
/// Propagates the first [`LcaError`].
pub fn materialize<L: EdgeSubgraphLca>(graph: &Graph, lca: &L) -> Result<Subgraph, LcaError> {
    let mut kept = Vec::new();
    for (u, v) in graph.edges() {
        if lca.contains(u, v)? {
            kept.push((u, v));
        }
    }
    Ok(Subgraph::from_edges(graph, kept))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ThreeSpanner, ThreeSpannerParams};
    use lca_graph::gen::GnpBuilder;
    use lca_rand::Seed;

    #[test]
    fn measure_counts_probes_and_keeps_edges() {
        let g = GnpBuilder::new(60, 0.3).seed(Seed::new(1)).build();
        let counter = CountingOracle::new(&g);
        let lca = ThreeSpanner::new(&counter, ThreeSpannerParams::for_n(60), Seed::new(2));
        let run = measure_queries(&g, &counter, &lca).unwrap();
        assert_eq!(run.queries, g.edge_count());
        assert!(run.per_query_max >= 1);
        assert!(run.per_query_mean > 0.0);
        assert!(run.total.total() > 0);
        assert!(run.kept.edge_count() > 0);
        assert!(run.keep_ratio(&g) <= 1.0);
    }

    #[test]
    fn materialize_matches_measure() {
        let g = GnpBuilder::new(40, 0.4).seed(Seed::new(3)).build();
        let counter = CountingOracle::new(&g);
        let lca = ThreeSpanner::new(&counter, ThreeSpannerParams::for_n(40), Seed::new(4));
        let run = measure_queries(&g, &counter, &lca).unwrap();
        let sub = materialize(&g, &lca).unwrap();
        assert_eq!(run.kept.edge_count(), sub.edge_count());
        for (u, v) in sub.edges() {
            assert!(run.kept.has_edge(u, v));
        }
    }

    #[test]
    fn empty_graph_yields_empty_run() {
        let g = lca_graph::GraphBuilder::new(5).build().unwrap();
        let counter = CountingOracle::new(&g);
        let lca = ThreeSpanner::new(&counter, ThreeSpannerParams::for_n(5), Seed::new(0));
        let run = measure_queries(&g, &counter, &lca).unwrap();
        assert_eq!(run.queries, 0);
        assert_eq!(run.per_query_max, 0);
        assert_eq!(run.kept.edge_count(), 0);
    }
}
