//! The unified LCA query interface.
//!
//! Definition 1.4 of the paper is one abstraction — query access to a fixed
//! legal solution — instantiated by different query/answer shapes: spanners
//! answer *edge* queries ("is `{u, v}` in the subgraph?"), the classic
//! algorithms answer *vertex* queries ("is `v` in the set?"). The trait
//! family here mirrors that structure:
//!
//! * [`Lca`] — the core trait, generic over `Query` and `Answer`. Everything
//!   downstream (the [`QueryEngine`](crate::QueryEngine), the registry in the
//!   facade crate, the measurement harnesses) speaks this trait.
//! * [`EdgeSubgraphLca`] — the edge-subgraph instantiation
//!   (`Query = (VertexId, VertexId)`, `Answer = bool`) plus the spanner
//!   contract ([`EdgeSubgraphLca::stretch_bound`]).
//! * [`VertexSubsetLca`] — the vertex-subset instantiation
//!   (`Query = VertexId`, `Answer = bool`).
//! * [`DynQuery`] / [`DynEdgeLca`] / [`DynVertexLca`] — a type-erased layer
//!   so heterogeneous algorithms can sit behind one `dyn` object, answer
//!   mixed batches, and report [`LcaError::UnsupportedQuery`] on a query
//!   shape they do not serve.

use lca_graph::VertexId;

use crate::{LcaError, QueryCtx};

/// A local computation algorithm: query access to one fixed legal solution.
///
/// Implementations must satisfy the LCA contract of Definition 1.4:
///
/// * **Consistency** — for a fixed input graph and seed, the answers to all
///   possible queries describe one global solution; the answer to a query
///   never depends on which queries were asked before it. This is also the
///   license for every parallel path in this workspace: two instances built
///   from the same `(graph, seed)`, or one shared instance queried from many
///   threads, return identical answers.
/// * **Locality** — each query costs a bounded number of oracle probes (the
///   implementation's documented probe complexity, surfaced as prose via
///   [`Lca::probe_bound`]).
///
/// The trait is object-safe: harnesses hold `Box<dyn Lca<Query = …, Answer
/// = …>>` and treat heterogeneous algorithms uniformly.
pub trait Lca {
    /// What a single query looks like (an edge, a vertex, …).
    type Query;
    /// What a single answer looks like (membership bit, color, …).
    type Answer;

    /// Answers one query under an explicit per-query execution context —
    /// the required method of the trait. The context carries the probe
    /// budget, wall-clock deadline, cancellation flag, and the unified
    /// probe meter ([`QueryCtx::spent`]); implementations charge every
    /// oracle probe against it (via [`QueryCtx::budgeted`]) and surface
    /// interruptions as typed budget errors instead of hanging.
    ///
    /// An unlimited context ([`QueryCtx::unlimited`]) must reproduce the
    /// same answers and probe transcripts as a plain [`Lca::query`].
    ///
    /// # Errors
    ///
    /// [`LcaError`] if the query is malformed for this algorithm/instance
    /// (out-of-range vertex, non-edge, unsupported query shape), or a
    /// budget-family error ([`LcaError::is_budget`]) when the context
    /// tripped: [`LcaError::BudgetExhausted`],
    /// [`LcaError::DeadlineExceeded`], [`LcaError::Cancelled`].
    fn query_ctx(&self, q: Self::Query, ctx: &QueryCtx) -> Result<Self::Answer, LcaError>;

    /// Answers one query with no budget, consistently with the fixed
    /// global solution (shorthand for [`Lca::query_ctx`] with
    /// [`QueryCtx::unlimited`]; wrappers like
    /// [`WithBudget`](crate::WithBudget) override this to install a
    /// default budget).
    ///
    /// # Errors
    ///
    /// [`LcaError`] if the query is malformed for this algorithm/instance
    /// (out-of-range vertex, non-edge, unsupported query shape).
    fn query(&self, q: Self::Query) -> Result<Self::Answer, LcaError> {
        self.query_ctx(q, &QueryCtx::unlimited())
    }

    /// A short human-readable algorithm name for reports
    /// (e.g. `"three-spanner"`, `"mis"`).
    fn name(&self) -> &'static str;

    /// The documented per-query probe bound, as prose for reports
    /// (e.g. `"Õ(n^{3/4})"`).
    fn probe_bound(&self) -> &'static str {
        "unspecified"
    }
}

impl<L: Lca + ?Sized> Lca for &L {
    type Query = L::Query;
    type Answer = L::Answer;

    fn query_ctx(&self, q: Self::Query, ctx: &QueryCtx) -> Result<Self::Answer, LcaError> {
        (**self).query_ctx(q, ctx)
    }

    fn query(&self, q: Self::Query) -> Result<Self::Answer, LcaError> {
        (**self).query(q)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn probe_bound(&self) -> &'static str {
        (**self).probe_bound()
    }
}

impl<L: Lca + ?Sized> Lca for Box<L> {
    type Query = L::Query;
    type Answer = L::Answer;

    fn query_ctx(&self, q: Self::Query, ctx: &QueryCtx) -> Result<Self::Answer, LcaError> {
        (**self).query_ctx(q, ctx)
    }

    fn query(&self, q: Self::Query) -> Result<Self::Answer, LcaError> {
        (**self).query(q)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn probe_bound(&self) -> &'static str {
        (**self).probe_bound()
    }
}

/// A local computation algorithm that defines a subgraph `H ⊆ G` by
/// answering per-edge membership queries — the spanner instantiation of
/// [`Lca`].
///
/// On top of the core contract, implementations promise symmetry
/// (`contains(u, v) == contains(v, u)`) and a stretch guarantee for the
/// subgraph their YES answers describe.
pub trait EdgeSubgraphLca: Lca<Query = (VertexId, VertexId), Answer = bool> {
    /// Returns whether `{u, v}` belongs to the subgraph.
    ///
    /// # Errors
    ///
    /// [`LcaError::NotAnEdge`] if `{u, v}` is not an edge of the input graph.
    fn contains(&self, u: VertexId, v: VertexId) -> Result<bool, LcaError> {
        self.query((u, v))
    }

    /// Budgeted form of [`EdgeSubgraphLca::contains`].
    ///
    /// # Errors
    ///
    /// As [`Lca::query_ctx`].
    fn contains_ctx(&self, u: VertexId, v: VertexId, ctx: &QueryCtx) -> Result<bool, LcaError> {
        self.query_ctx((u, v), ctx)
    }

    /// An upper bound on the stretch of the subgraph this LCA defines
    /// (used by the verification harness as its search radius).
    fn stretch_bound(&self) -> usize;
}

impl<L: EdgeSubgraphLca + ?Sized> EdgeSubgraphLca for &L {
    fn stretch_bound(&self) -> usize {
        (**self).stretch_bound()
    }
}

impl<L: EdgeSubgraphLca + ?Sized> EdgeSubgraphLca for Box<L> {
    fn stretch_bound(&self) -> usize {
        (**self).stretch_bound()
    }
}

/// A local computation algorithm that defines a vertex subset `S ⊆ V` by
/// answering per-vertex membership queries — the classic-LCA instantiation
/// of [`Lca`] (MIS, vertex cover, matched vertices, a designated color
/// class, …).
pub trait VertexSubsetLca: Lca<Query = VertexId, Answer = bool> {
    /// Returns whether `v` belongs to the subset.
    ///
    /// # Errors
    ///
    /// [`LcaError::InvalidVertex`] if `v` is out of range for the input
    /// graph.
    fn contains_vertex(&self, v: VertexId) -> Result<bool, LcaError> {
        self.query(v)
    }

    /// Budgeted form of [`VertexSubsetLca::contains_vertex`].
    ///
    /// # Errors
    ///
    /// As [`Lca::query_ctx`].
    fn contains_vertex_ctx(&self, v: VertexId, ctx: &QueryCtx) -> Result<bool, LcaError> {
        self.query_ctx(v, ctx)
    }
}

impl<L: VertexSubsetLca + ?Sized> VertexSubsetLca for &L {}

impl<L: VertexSubsetLca + ?Sized> VertexSubsetLca for Box<L> {}

/// The query shapes an LCA may serve, for the type-erased layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Per-edge membership queries ([`EdgeSubgraphLca`]).
    Edge,
    /// Per-vertex membership queries ([`VertexSubsetLca`]).
    Vertex,
}

impl std::fmt::Display for QueryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            QueryKind::Edge => "edge",
            QueryKind::Vertex => "vertex",
        })
    }
}

/// A type-erased query: what registry-built `dyn` algorithms answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DynQuery {
    /// "Is `{u, v}` in the subgraph?"
    Edge(VertexId, VertexId),
    /// "Is `v` in the subset?"
    Vertex(VertexId),
}

impl DynQuery {
    /// The shape of this query.
    pub fn kind(self) -> QueryKind {
        match self {
            DynQuery::Edge(..) => QueryKind::Edge,
            DynQuery::Vertex(..) => QueryKind::Vertex,
        }
    }
}

/// Adapts an [`EdgeSubgraphLca`] to the type-erased [`DynQuery`] interface.
///
/// Vertex queries are answered with [`LcaError::UnsupportedQuery`].
#[derive(Debug)]
pub struct DynEdgeLca<L>(pub L);

impl<L: EdgeSubgraphLca> Lca for DynEdgeLca<L> {
    type Query = DynQuery;
    type Answer = bool;

    fn query_ctx(&self, q: DynQuery, ctx: &QueryCtx) -> Result<bool, LcaError> {
        match q {
            DynQuery::Edge(u, v) => self.0.query_ctx((u, v), ctx),
            DynQuery::Vertex(_) => Err(LcaError::UnsupportedQuery {
                expected: QueryKind::Edge,
                got: QueryKind::Vertex,
            }),
        }
    }

    fn query(&self, q: DynQuery) -> Result<bool, LcaError> {
        match q {
            DynQuery::Edge(u, v) => self.0.query((u, v)),
            DynQuery::Vertex(_) => Err(LcaError::UnsupportedQuery {
                expected: QueryKind::Edge,
                got: QueryKind::Vertex,
            }),
        }
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn probe_bound(&self) -> &'static str {
        self.0.probe_bound()
    }
}

/// Adapts a [`VertexSubsetLca`] to the type-erased [`DynQuery`] interface.
///
/// Edge queries are answered with [`LcaError::UnsupportedQuery`].
#[derive(Debug)]
pub struct DynVertexLca<L>(pub L);

impl<L: VertexSubsetLca> Lca for DynVertexLca<L> {
    type Query = DynQuery;
    type Answer = bool;

    fn query_ctx(&self, q: DynQuery, ctx: &QueryCtx) -> Result<bool, LcaError> {
        match q {
            DynQuery::Vertex(v) => self.0.query_ctx(v, ctx),
            DynQuery::Edge(..) => Err(LcaError::UnsupportedQuery {
                expected: QueryKind::Vertex,
                got: QueryKind::Edge,
            }),
        }
    }

    fn query(&self, q: DynQuery) -> Result<bool, LcaError> {
        match q {
            DynQuery::Vertex(v) => self.0.query(v),
            DynQuery::Edge(..) => Err(LcaError::UnsupportedQuery {
                expected: QueryKind::Vertex,
                got: QueryKind::Edge,
            }),
        }
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn probe_bound(&self) -> &'static str {
        self.0.probe_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct KeepAll;

    impl Lca for KeepAll {
        type Query = (VertexId, VertexId);
        type Answer = bool;

        fn query_ctx(&self, _q: (VertexId, VertexId), _ctx: &QueryCtx) -> Result<bool, LcaError> {
            Ok(true)
        }

        fn name(&self) -> &'static str {
            "keep-all"
        }
    }

    impl EdgeSubgraphLca for KeepAll {
        fn stretch_bound(&self) -> usize {
            1
        }
    }

    struct OddVertices;

    impl Lca for OddVertices {
        type Query = VertexId;
        type Answer = bool;

        fn query_ctx(&self, v: VertexId, _ctx: &QueryCtx) -> Result<bool, LcaError> {
            Ok(v.index() % 2 == 1)
        }

        fn name(&self) -> &'static str {
            "odd-vertices"
        }
    }

    impl VertexSubsetLca for OddVertices {}

    #[test]
    fn edge_trait_is_object_safe() {
        let lca: Box<dyn EdgeSubgraphLca> = Box::new(KeepAll);
        assert!(lca.contains(VertexId::new(0), VertexId::new(1)).unwrap());
        assert_eq!(lca.stretch_bound(), 1);
        assert_eq!(lca.name(), "keep-all");
        assert_eq!(lca.probe_bound(), "unspecified");
    }

    #[test]
    fn vertex_trait_is_object_safe() {
        let lca: Box<dyn VertexSubsetLca> = Box::new(OddVertices);
        assert!(!lca.contains_vertex(VertexId::new(0)).unwrap());
        assert!(lca.contains_vertex(VertexId::new(3)).unwrap());
    }

    #[test]
    fn core_trait_is_object_safe_and_forwards() {
        let boxed: Box<dyn Lca<Query = (VertexId, VertexId), Answer = bool>> = Box::new(KeepAll);
        assert!(boxed.query((VertexId::new(4), VertexId::new(5))).unwrap());
        // &L and Box<L> forward.
        assert_eq!(boxed.name(), "keep-all");
    }

    #[test]
    fn dyn_adapters_route_and_reject() {
        let edge: Box<dyn Lca<Query = DynQuery, Answer = bool>> = Box::new(DynEdgeLca(KeepAll));
        let vertex: Box<dyn Lca<Query = DynQuery, Answer = bool>> =
            Box::new(DynVertexLca(OddVertices));
        let e = DynQuery::Edge(VertexId::new(0), VertexId::new(1));
        let v = DynQuery::Vertex(VertexId::new(1));
        assert!(edge.query(e).unwrap());
        assert!(vertex.query(v).unwrap());
        assert!(matches!(
            edge.query(v),
            Err(LcaError::UnsupportedQuery {
                expected: QueryKind::Edge,
                got: QueryKind::Vertex,
            })
        ));
        assert!(matches!(
            vertex.query(e),
            Err(LcaError::UnsupportedQuery { .. })
        ));
        assert_eq!(e.kind(), QueryKind::Edge);
        assert_eq!(v.kind().to_string(), "vertex");
    }
}
