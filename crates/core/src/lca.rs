//! The edge-subgraph LCA interface.

use lca_graph::VertexId;

use crate::LcaError;

/// A local computation algorithm that defines a subgraph `H ⊆ G` by
/// answering per-edge membership queries.
///
/// Implementations must satisfy the LCA contract of Definition 1.4:
///
/// * **Consistency** — for a fixed input graph and seed, the answers to all
///   possible edge queries describe one subgraph; in particular the answer to
///   `contains(u, v)` never depends on previous queries, and
///   `contains(u, v) == contains(v, u)`.
/// * **Locality** — each query costs a bounded number of oracle probes
///   (the implementation's documented probe complexity).
///
/// The trait is object-safe, so harnesses can treat heterogeneous spanner
/// LCAs uniformly.
pub trait EdgeSubgraphLca {
    /// Returns whether `{u, v}` belongs to the subgraph.
    ///
    /// # Errors
    ///
    /// [`LcaError::NotAnEdge`] if `{u, v}` is not an edge of the input graph.
    fn contains(&self, u: VertexId, v: VertexId) -> Result<bool, LcaError>;

    /// An upper bound on the stretch of the subgraph this LCA defines
    /// (used by the verification harness as its search radius).
    fn stretch_bound(&self) -> usize;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str {
        "edge-subgraph-lca"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct KeepAll;

    impl EdgeSubgraphLca for KeepAll {
        fn contains(&self, _u: VertexId, _v: VertexId) -> Result<bool, LcaError> {
            Ok(true)
        }

        fn stretch_bound(&self) -> usize {
            1
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let lca: Box<dyn EdgeSubgraphLca> = Box::new(KeepAll);
        assert!(lca.contains(VertexId::new(0), VertexId::new(1)).unwrap());
        assert_eq!(lca.stretch_bound(), 1);
        assert_eq!(lca.name(), "edge-subgraph-lca");
    }
}
