//! The 5-spanner LCA (paper Section 3).
//!
//! Target: a 5-spanner with Õ(n^{4/3}) edges and probe complexity Õ(n^{5/6}).
//! With thresholds ∆_low = ∆_med = n^{1/3} and ∆_super = n^{5/6}, edges fall
//! into four cases (paper Table 2):
//!
//! * `E_low` — an endpoint of degree ≤ ∆_low: kept wholesale.
//! * `E_super` — an endpoint of degree > ∆_super: the Section 2 block
//!   machinery re-instantiated at threshold ∆_super (3-stretch detours).
//! * `E_bckt` — both endpoints *deserted* mid-degree vertices: clusters
//!   around centers of degree ≤ ∆_super, partitioned into buckets of ∆_med,
//!   one minimum-ID edge per bucket pair (Idea III).
//! * `E_rep` — a *crowded* mid-degree endpoint: Θ(log n) random
//!   *representatives* of degree > ∆_super hook the vertex into radius-2
//!   clusters of super-centers (Idea IV).
//!
//! [`FiveSpannerParams::for_min_degree`] exposes the Theorem 3.5 variant
//! (general `r` on graphs of minimum degree ≥ n^{1/2−1/(2r)}).

use lca_graph::VertexId;
use lca_probe::Oracle;
use lca_rand::{Coin, IndexSampler, Seed};

use crate::common::{ceil_pow, edge_key, ln_n, prefix_centers, scan_new_center};
use crate::{EdgeSubgraphLca, Lca, LcaError, QueryCtx};

/// Tuning parameters of the 5-spanner construction.
#[derive(Debug, Clone, PartialEq)]
pub struct FiveSpannerParams {
    /// ∆_low: edges with an endpoint of degree ≤ this are kept.
    pub low_threshold: usize,
    /// ∆_med: mid-degree range starts here (cluster/bucket granularity).
    pub med_threshold: usize,
    /// ∆_super: vertices above this degree are super-high.
    pub super_threshold: usize,
    /// Neighbor-list prefix length for `S(v)`, the deserted test, and the
    /// bucket size (paper: ∆_med).
    pub med_block: usize,
    /// Prefix length for `S'(v)` and block size of the super machinery
    /// (paper: ∆_super).
    pub super_block: usize,
    /// Sampling probability of bucket centers (paper: Θ(log n / ∆_med);
    /// only vertices of degree ≤ ∆_super may be centers).
    pub center_prob: f64,
    /// Sampling probability of super-centers (paper: Θ(log n / ∆_super)).
    pub super_center_prob: f64,
    /// Number of representative draws (paper: Θ(log n)).
    pub reps_count: usize,
    /// Independence of all hash families (paper: Θ(log n)).
    pub independence: usize,
}

impl FiveSpannerParams {
    /// The paper's parameters for general n-vertex graphs (r = 3):
    /// ∆_low = ∆_med = n^{1/3}, ∆_super = n^{5/6}.
    pub fn for_n(n: usize) -> Self {
        Self::with_thresholds(n, ceil_pow(n, 1, 3), ceil_pow(n, 1, 3), ceil_pow(n, 5, 6))
    }

    /// The Theorem 3.5 variant for graphs of minimum degree ≥ n^{1/2−1/(2r)}:
    /// ∆_low = n^{1/r}, ∆_med = n^{(r−1)/(2r)}, ∆_super = n^{(2r−1)/(2r)},
    /// giving a 5-spanner with Õ(n^{1+1/r}) edges.
    ///
    /// # Panics
    ///
    /// Panics if `r == 0`.
    pub fn for_min_degree(n: usize, r: u32) -> Self {
        assert!(r >= 1, "stretch parameter r must be at least 1");
        Self::with_thresholds(
            n,
            ceil_pow(n, 1, r),
            ceil_pow(n, r - 1, 2 * r),
            ceil_pow(n, 2 * r - 1, 2 * r),
        )
    }

    fn with_thresholds(n: usize, low: usize, med: usize, super_t: usize) -> Self {
        let log = ln_n(n);
        Self {
            low_threshold: low,
            med_threshold: med,
            super_threshold: super_t,
            med_block: med.max(1),
            super_block: super_t.max(1),
            center_prob: (1.5 * log / med.max(1) as f64).min(1.0),
            super_center_prob: (1.5 * log / super_t.max(1) as f64).min(1.0),
            reps_count: (2.0 * log).ceil().max(4.0) as usize,
            independence: (2.0 * log).ceil().max(8.0) as usize,
        }
    }
}

/// The paper's Table 2 edge categories, extended by the explicit fallback
/// class for degree gaps outside the Theorem 3.5 assumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeClass {
    /// `min(deg) ≤ ∆_low` — kept wholesale.
    Low,
    /// An endpoint of degree in `(∆_low, ∆_med)` — outside the paper's
    /// regime (empty when ∆_low = ∆_med); kept as a deterministic fallback.
    Gap,
    /// `max(deg) > ∆_super` — the super machinery.
    Super,
    /// Both endpoints mid-degree and deserted — the bucket machinery.
    Bucket,
    /// Both endpoints mid-degree, at least one crowded — representatives.
    Representative,
}

impl std::fmt::Display for EdgeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EdgeClass::Low => "E_low",
            EdgeClass::Gap => "E_gap",
            EdgeClass::Super => "E_super",
            EdgeClass::Bucket => "E_bckt",
            EdgeClass::Representative => "E_rep",
        };
        f.write_str(s)
    }
}

/// LCA for 5-spanners (Theorem 1.1 r = 3 / Theorem 3.4 / Theorem 3.5).
///
/// # Example
///
/// ```
/// use lca_core::{EdgeSubgraphLca, FiveSpanner};
/// use lca_graph::gen::GnpBuilder;
/// use lca_rand::Seed;
///
/// let g = GnpBuilder::new(100, 0.3).seed(Seed::new(1)).build();
/// let lca = FiveSpanner::with_defaults(&g, Seed::new(2));
/// let (u, v) = g.edge_endpoints(0);
/// assert_eq!(lca.contains(u, v)?, lca.contains(v, u)?);
/// # Ok::<(), lca_core::LcaError>(())
/// ```
#[derive(Debug)]
pub struct FiveSpanner<O> {
    oracle: O,
    params: FiveSpannerParams,
    center_coin: Coin,
    super_coin: Coin,
    rep_sampler: IndexSampler,
}

impl<O: Oracle> FiveSpanner<O> {
    /// Creates the LCA with explicit parameters.
    pub fn new(oracle: O, params: FiveSpannerParams, seed: Seed) -> Self {
        let center_coin = Coin::new(seed.derive(0x3551), params.center_prob, params.independence);
        let super_coin = Coin::new(
            seed.derive(0x3552),
            params.super_center_prob,
            params.independence,
        );
        let rep_sampler = IndexSampler::new(seed.derive(0x3553), params.independence);
        Self {
            oracle,
            params,
            center_coin,
            super_coin,
            rep_sampler,
        }
    }

    /// Creates the LCA with the paper's general-graph parameters.
    pub fn with_defaults(oracle: O, seed: Seed) -> Self {
        let params = FiveSpannerParams::for_n(oracle.vertex_count());
        Self::new(oracle, params, seed)
    }

    /// The parameters in effect.
    pub fn params(&self) -> &FiveSpannerParams {
        &self.params
    }

    fn is_mid(&self, deg: usize) -> bool {
        deg >= self.params.med_threshold && deg <= self.params.super_threshold
    }

    /// Whether `x` (with degree `deg_x`) is a sampled bucket center: the
    /// coin came up heads *and* `deg(x) ≤ ∆_super` (paper: only vertices of
    /// degree at most ∆_super may be chosen into S).
    fn is_bucket_center(&self, label: u64, deg: usize) -> bool {
        deg <= self.params.super_threshold && self.center_coin.flip(label)
    }

    /// Whether `label` is a sampled super-center (probe-free).
    pub fn is_super_center(&self, label: u64) -> bool {
        self.super_coin.flip(label)
    }

    /// `S(w)`: bucket centers among the first ∆_med neighbors of `w`,
    /// probed through `o` (the caller's budgeted per-query view).
    fn s_set<P: Oracle>(&self, o: &P, w: VertexId) -> Vec<VertexId> {
        prefix_centers(
            o,
            &self.center_coin,
            w,
            self.params.med_block,
            Some(self.params.super_threshold),
        )
    }

    /// `S'(w)`: super-centers among the first ∆_super neighbors of `w`.
    fn sp_set<P: Oracle>(&self, o: &P, w: VertexId) -> Vec<VertexId> {
        prefix_centers(o, &self.super_coin, w, self.params.super_block, None)
    }

    /// `Reps(w)`: draw `reps_count` pseudorandom positions within the first
    /// `min(∆_med, deg w)` entries of `Γ(w)` and keep the super-high hits
    /// (Section 3, the representative method). Costs O(reps_count) probes.
    pub fn reps(&self, w: VertexId) -> Vec<VertexId> {
        self.reps_in(&self.oracle, w)
    }

    fn reps_in<P: Oracle>(&self, o: &P, w: VertexId) -> Vec<VertexId> {
        let deg = o.degree(w);
        if deg == 0 {
            return Vec::new();
        }
        let bound = deg.min(self.params.med_block) as u64;
        let mut out: Vec<VertexId> = Vec::new();
        for j in 0..self.params.reps_count {
            let idx = self.rep_sampler.index(o.label(w), j as u64, bound);
            if let Some(x) = o.neighbor(w, idx as usize) {
                if o.degree(x) > self.params.super_threshold && !out.contains(&x) {
                    out.push(x);
                }
            }
        }
        out
    }

    /// `RS(w) = ∪_{x ∈ Reps(w)} S'(x)`: the radius-2 center set of `w`.
    fn rs_set<P: Oracle>(&self, o: &P, w: VertexId) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = Vec::new();
        for x in self.reps_in(o, w) {
            for s in self.sp_set(o, x) {
                if !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out
    }

    /// Deserted test (Definition 3.1): at least half of the first
    /// `min(∆_med, deg w)` neighbors have degree ≤ ∆_super.
    pub fn is_deserted(&self, w: VertexId) -> bool {
        self.deserted_in(&self.oracle, w)
    }

    fn deserted_in<P: Oracle>(&self, o: &P, w: VertexId) -> bool {
        let mut scanned = 0usize;
        let mut small = 0usize;
        for i in 0..self.params.med_block {
            let Some(x) = o.neighbor(w, i) else {
                break;
            };
            scanned += 1;
            if o.degree(x) <= self.params.super_threshold {
                small += 1;
            }
        }
        2 * small >= scanned
    }

    /// Enumerates the cluster `C(s) = {s} ∪ {w : s ∈ S(w)}` of a sampled
    /// center `s` into `members`, sorted by label (the consistent
    /// bucket-partition order). `scratch` holds the buffered neighbor scan;
    /// both buffers are caller-owned so the enumeration loop in
    /// [`FiveSpanner::bucket_rule`] allocates nothing in steady state. The
    /// buffered scan issues the same `degree(s)` + `neighbor(s, 0..d)`
    /// probes as the hand-written loop, followed by the same per-member
    /// `adjacency(w, s)` back-probes.
    fn cluster_of_into<P: Oracle>(
        &self,
        o: &P,
        s: VertexId,
        scratch: &mut Vec<VertexId>,
        members: &mut Vec<VertexId>,
    ) {
        members.clear();
        members.push(s);
        o.neighbors_into(s, scratch);
        for &w in scratch.iter() {
            if matches!(o.adjacency(w, s), Some(idx) if idx < self.params.med_block) {
                members.push(w);
            }
        }
        members.sort_by_key(|&w| o.label(w));
        members.dedup();
    }

    /// The bucket of `member` within the (label-sorted) cluster, as an index
    /// range: consecutive chunks of size ∆_med. `None` means `member` is
    /// missing from its own cluster — impossible from genuine probes, so
    /// callers treat it as proof the budget tripped mid-enumeration.
    fn bucket_range_of(
        &self,
        cluster: &[VertexId],
        member: VertexId,
    ) -> Option<std::ops::Range<usize>> {
        let pos = cluster.iter().position(|&w| w == member)?;
        let b = self.params.med_block.max(1);
        let start = (pos / b) * b;
        Some(start..cluster.len().min(start + b))
    }

    /// Bucket rule (B): is `(u, v)` the minimum-ID valid edge between the
    /// buckets of `u` and `v` for some center pair `s ∈ S(u)`, `t ∈ S(v)`,
    /// `s ≠ t`?
    fn bucket_rule<P: Oracle>(
        &self,
        o: &P,
        ctx: &QueryCtx,
        u: VertexId,
        v: VertexId,
        su: &[VertexId],
        sv: &[VertexId],
    ) -> bool {
        if su.is_empty() || sv.is_empty() {
            return false;
        }
        let med = self.params.med_threshold;
        let target = edge_key(o.label(u), o.label(v));
        let mut deg_cache: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        let mut deg_of =
            |w: VertexId| -> usize { *deg_cache.entry(w.raw()).or_insert_with(|| o.degree(w)) };
        // A member missing from its own cluster is impossible from genuine
        // probes: allow it only when the budget tripped (the query is about
        // to fail its checkpoint) — a violation on the unbudgeted path is a
        // real bug and must stay loud.
        let degenerate = |missing: VertexId| -> bool {
            assert!(
                ctx.interrupted(),
                "{missing} must belong to its own cluster"
            );
            false
        };
        // Four buffers reused across every (s, t) center pair: the two
        // cluster enumerations and their neighbor-scan scratch.
        let (mut scratch, mut cs, mut ct) = (Vec::new(), Vec::new(), Vec::new());
        for &s in su {
            self.cluster_of_into(o, s, &mut scratch, &mut cs);
            let Some(bu) = self.bucket_range_of(&cs, u) else {
                return degenerate(u);
            };
            for &t in sv {
                if s == t {
                    continue;
                }
                self.cluster_of_into(o, t, &mut scratch, &mut ct);
                let Some(bv) = self.bucket_range_of(&ct, v) else {
                    return degenerate(v);
                };
                let mut best: Option<(u64, u64)> = None;
                for &a in &cs[bu.clone()] {
                    // Candidates are cluster *members* (s ∈ S(a) must hold so
                    // the detour's center edge exists); the center itself is
                    // excluded.
                    if a == s || deg_of(a) < med {
                        continue;
                    }
                    for &b in &ct[bv.clone()] {
                        if b == t || a == b || deg_of(b) < med {
                            continue;
                        }
                        if o.adjacency(a, b).is_some() {
                            let k = edge_key(o.label(a), o.label(b));
                            if best.is_none_or(|cur| k < cur) {
                                best = Some(k);
                            }
                        }
                    }
                }
                if best == Some(target) {
                    return true;
                }
            }
        }
        false
    }

    /// Representative rule (B) from scanner `w`: does the endpoint at
    /// position `other_idx` introduce a center of `rs_other` through some
    /// earlier mid-degree neighbor's representatives?
    fn rep_scan<P: Oracle>(
        &self,
        o: &P,
        w: VertexId,
        other_idx: usize,
        rs_other: &[VertexId],
    ) -> bool {
        if rs_other.is_empty() {
            return false;
        }
        let mut covered = vec![false; rs_other.len()];
        let mut remaining = rs_other.len();
        for i in 0..other_idx {
            let Some(x) = o.neighbor(w, i) else {
                break;
            };
            if !self.is_mid(o.degree(x)) {
                continue;
            }
            let reps_x = self.reps_in(o, x);
            for (ci, &s) in rs_other.iter().enumerate() {
                if covered[ci] {
                    continue;
                }
                // s ∈ RS(x) ⇔ s ∈ S'(rep) for some representative of x.
                let hit = reps_x.iter().any(|&rep| {
                    matches!(o.adjacency(rep, s), Some(idx) if idx < self.params.super_block)
                });
                if hit {
                    covered[ci] = true;
                    remaining -= 1;
                }
            }
            if remaining == 0 {
                return false;
            }
        }
        remaining > 0
    }

    /// Classifies an edge into the Table 2 categories (probe cost
    /// O(∆_med) for the deserted tests).
    pub fn classify_edge(&self, u: VertexId, v: VertexId) -> EdgeClass {
        let p = &self.params;
        let (du, dv) = (self.oracle.degree(u), self.oracle.degree(v));
        let lo = du.min(dv);
        let hi = du.max(dv);
        if lo <= p.low_threshold {
            EdgeClass::Low
        } else if lo < p.med_threshold {
            EdgeClass::Gap
        } else if hi > p.super_threshold {
            EdgeClass::Super
        } else if self.is_deserted(u) && self.is_deserted(v) {
            EdgeClass::Bucket
        } else {
            EdgeClass::Representative
        }
    }

    fn check_vertex(&self, v: VertexId) -> Result<(), LcaError> {
        let n = self.oracle.vertex_count();
        if v.index() >= n {
            return Err(LcaError::InvalidVertex { v, vertex_count: n });
        }
        Ok(())
    }
}

impl<O: Oracle> FiveSpanner<O> {
    /// The Section 3 decision rules, probing exclusively through `o`. When
    /// `o` is a tripped budgeted view the answer may be garbage — callers
    /// must [`QueryCtx::checkpoint`] before trusting it.
    fn decide<P: Oracle>(
        &self,
        o: &P,
        ctx: &QueryCtx,
        u: VertexId,
        v: VertexId,
    ) -> Result<bool, LcaError> {
        let p = &self.params;
        let Some(idx_vu) = o.adjacency(v, u) else {
            return Err(LcaError::NotAnEdge { u, v });
        };
        let idx_uv = o.adjacency(u, v).ok_or(LcaError::NotAnEdge { u, v })?;
        let (du, dv) = (o.degree(u), o.degree(v));

        // E_low, plus the explicit fallback for the (∆_low, ∆_med) gap.
        if du.min(dv) <= p.low_threshold {
            return Ok(true);
        }
        if (du > p.low_threshold && du < p.med_threshold)
            || (dv > p.low_threshold && dv < p.med_threshold)
        {
            return Ok(true);
        }

        let (lu, lv) = (o.label(u), o.label(v));

        // Bucket-center star edges: u ∈ S(v) or v ∈ S(u)  (rule A).
        if self.is_bucket_center(lu, du) && idx_vu < p.med_block {
            return Ok(true);
        }
        if self.is_bucket_center(lv, dv) && idx_uv < p.med_block {
            return Ok(true);
        }
        // Super-center star edges: u ∈ S'(v) or v ∈ S'(u).
        if self.is_super_center(lu) && idx_vu < p.super_block {
            return Ok(true);
        }
        if self.is_super_center(lv) && idx_uv < p.super_block {
            return Ok(true);
        }

        // Super machinery: fallbacks and block scans (3-stretch detours for
        // any edge whose endpoint is super-high; harmless otherwise).
        let spu = self.sp_set(o, u);
        let spv = self.sp_set(o, v);
        if (du > p.super_threshold && spu.is_empty()) || (dv > p.super_threshold && spv.is_empty())
        {
            return Ok(true);
        }
        {
            let block = p.super_block.max(1);
            let start_v = (idx_vu / block) * block;
            if scan_new_center(o, v, start_v, idx_vu, &spu, p.super_block) {
                return Ok(true);
            }
            let start_u = (idx_uv / block) * block;
            if scan_new_center(o, u, start_u, idx_uv, &spv, p.super_block) {
                return Ok(true);
            }
        }

        // Representative star edges (rule A): mid vertex → its reps.
        if self.is_mid(dv) && self.reps_in(o, v).contains(&u) {
            return Ok(true);
        }
        if self.is_mid(du) && self.reps_in(o, u).contains(&v) {
            return Ok(true);
        }

        if du >= p.med_threshold && dv >= p.med_threshold {
            // Representative machinery applies when both endpoints are mid.
            if self.is_mid(du) && self.is_mid(dv) {
                let rs_u = self.rs_set(o, u);
                let rs_v = self.rs_set(o, v);
                let des_u = self.deserted_in(o, u);
                let des_v = self.deserted_in(o, v);
                // Deterministic fallbacks (DESIGN.md deviation #2): a crowded
                // vertex without a radius-2 center keeps its mid edges; a
                // deserted pair without bucket centers keeps the edge.
                if (!des_u && rs_u.is_empty()) || (!des_v && rs_v.is_empty()) {
                    return Ok(true);
                }
                if des_u && des_v && (self.s_set(o, u).is_empty() || self.s_set(o, v).is_empty()) {
                    return Ok(true);
                }
                if self.rep_scan(o, u, idx_uv, &rs_v) {
                    return Ok(true);
                }
                if self.rep_scan(o, v, idx_vu, &rs_u) {
                    return Ok(true);
                }
            }
            // Bucket rule (B): both endpoints of degree ≥ ∆_med.
            let su = self.s_set(o, u);
            let sv = self.s_set(o, v);
            if self.bucket_rule(o, ctx, u, v, &su, &sv) {
                return Ok(true);
            }
        }

        Ok(false)
    }
}

impl<O: Oracle> Lca for FiveSpanner<O> {
    type Query = (VertexId, VertexId);
    type Answer = bool;

    fn query_ctx(&self, (u, v): (VertexId, VertexId), ctx: &QueryCtx) -> Result<bool, LcaError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let o = ctx.budgeted(&self.oracle);
        let answer = self.decide(&o, ctx, u, v);
        // A tripped budget outranks whatever the drained probes produced.
        ctx.checkpoint()?;
        answer
    }

    fn name(&self) -> &'static str {
        "five-spanner"
    }

    fn probe_bound(&self) -> &'static str {
        "Õ(n^{5/6})"
    }
}

impl<O: Oracle> EdgeSubgraphLca for FiveSpanner<O> {
    fn stretch_bound(&self) -> usize {
        5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lca_graph::gen::{structured, GnpBuilder};
    use lca_graph::Subgraph;

    pub(crate) fn tiny_params() -> FiveSpannerParams {
        FiveSpannerParams {
            low_threshold: 2,
            med_threshold: 2,
            super_threshold: 9,
            med_block: 2,
            super_block: 9,
            center_prob: 0.6,
            super_center_prob: 0.4,
            reps_count: 6,
            independence: 8,
        }
    }

    #[test]
    fn default_params_match_paper_exponents() {
        let p = FiveSpannerParams::for_n(4096);
        assert_eq!(p.low_threshold, 16); // n^{1/3}
        assert_eq!(p.med_threshold, 16);
        assert_eq!(p.super_threshold, 1024); // n^{5/6}
    }

    #[test]
    fn min_degree_variant_thresholds() {
        // r = 2: low = n^{1/2}, med = n^{1/4}, super = n^{3/4}.
        let p = FiveSpannerParams::for_min_degree(65536, 2);
        assert_eq!(p.low_threshold, 256);
        assert_eq!(p.med_threshold, 16);
        assert_eq!(p.super_threshold, 4096);
    }

    #[test]
    fn low_edges_are_kept() {
        let g = structured::cycle(30);
        let lca = FiveSpanner::with_defaults(&g, Seed::new(1));
        for (u, v) in g.edges() {
            assert!(lca.contains(u, v).unwrap());
        }
    }

    #[test]
    fn non_edge_errors() {
        let g = structured::path(6);
        let lca = FiveSpanner::with_defaults(&g, Seed::new(1));
        assert!(matches!(
            lca.contains(VertexId::new(0), VertexId::new(4)),
            Err(LcaError::NotAnEdge { .. })
        ));
    }

    #[test]
    fn symmetric_answers() {
        let g = GnpBuilder::new(70, 0.35).seed(Seed::new(4)).build();
        let lca = FiveSpanner::new(&g, tiny_params(), Seed::new(5));
        for (u, v) in g.edges() {
            assert_eq!(lca.contains(u, v).unwrap(), lca.contains(v, u).unwrap());
        }
    }

    #[test]
    fn stretch_is_at_most_five() {
        for s in 0..5u64 {
            let g = GnpBuilder::new(60, 0.4).seed(Seed::new(20 + s)).build();
            let lca = FiveSpanner::new(&g, tiny_params(), Seed::new(s));
            let h =
                Subgraph::from_edges(&g, g.edges().filter(|&(u, v)| lca.contains(u, v).unwrap()));
            let stretch = h.max_edge_stretch(&g, 6);
            assert!(stretch.is_some(), "seed {s}: disconnected edge");
            assert!(stretch.unwrap() <= 5, "seed {s}: stretch {stretch:?}");
        }
    }

    #[test]
    fn stretch_holds_on_star_of_cliques() {
        // Mixed degrees: hubs + clique tails exercise super and mid classes.
        let g = structured::dumbbell(12, 2);
        let lca = FiveSpanner::new(&g, tiny_params(), Seed::new(9));
        let h = Subgraph::from_edges(&g, g.edges().filter(|&(u, v)| lca.contains(u, v).unwrap()));
        assert!(h.max_edge_stretch(&g, 6).unwrap() <= 5);
    }

    #[test]
    fn reps_only_contain_super_high_neighbors() {
        let g = structured::complete_bipartite(3, 40); // left deg 40, right deg 3
        let p = FiveSpannerParams {
            super_threshold: 10,
            ..tiny_params()
        };
        let lca = FiveSpanner::new(&g, p, Seed::new(3));
        // Right-side vertices have all neighbors of degree 40 > 10.
        let reps = lca.reps(VertexId::new(5));
        assert!(!reps.is_empty());
        assert!(reps.iter().all(|x| g.degree(*x) > 10));
        // Left-side vertices have all neighbors of degree 3 ≤ 10 → no reps.
        assert!(lca.reps(VertexId::new(0)).is_empty());
    }

    #[test]
    fn classify_edge_covers_classes() {
        let g = structured::complete_bipartite(3, 40);
        let p = FiveSpannerParams {
            low_threshold: 1,
            med_threshold: 2,
            super_threshold: 10,
            med_block: 2,
            super_block: 10,
            ..tiny_params()
        };
        let lca = FiveSpanner::new(&g, p, Seed::new(3));
        // Every edge joins deg-40 (super) with deg-3 (mid): E_super.
        let (u, v) = g.edge_endpoints(0);
        assert_eq!(lca.classify_edge(u, v), EdgeClass::Super);
        assert_eq!(format!("{}", EdgeClass::Super), "E_super");
    }

    #[test]
    fn deserted_test_counts_small_neighbors() {
        let g = structured::complete_bipartite(3, 40);
        let p = FiveSpannerParams {
            super_threshold: 10,
            med_block: 3,
            ..tiny_params()
        };
        let lca = FiveSpanner::new(&g, p, Seed::new(3));
        // Right vertices: all neighbors have degree 40 > 10 → crowded.
        assert!(!lca.is_deserted(VertexId::new(10)));
        // Left vertices: all neighbors have degree 3 ≤ 10 → deserted.
        assert!(lca.is_deserted(VertexId::new(0)));
    }
}
