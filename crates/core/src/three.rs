//! The 3-spanner LCA (paper Section 2).
//!
//! Target: a 3-spanner with Õ(n^{3/2}) edges, queryable with Õ(n^{3/4})
//! probes. Edges are split by endpoint degrees into
//!
//! * `E_low` — `min(deg u, deg v) ≤ √n`: kept wholesale (Section 2.1),
//! * `E_high` — minimum degree in `(√n, n^{3/4}]`: handled by multiple-center
//!   sets and a full neighbor-list scan (Section 2.2, Idea I),
//! * `E_super` — handled by partitioning neighbor lists into blocks of
//!   `n^{3/4}` and keeping one edge per newly-seen super-center per block
//!   (Section 2.3, Idea II).
//!
//! The decision rules here are the *query-local* versions; the module
//! [`crate::global`] re-derives the same spanner by global sweeps, and the
//! test suite checks they agree edge-for-edge.

use lca_graph::VertexId;
use lca_probe::Oracle;
use lca_rand::{Coin, Seed};

use crate::common::{ceil_pow, ln_n, prefix_centers, scan_new_center};
use crate::{EdgeSubgraphLca, Lca, LcaError, QueryCtx};

/// Tuning parameters of the 3-spanner construction.
///
/// [`ThreeSpannerParams::for_n`] gives the paper's defaults; tests override
/// fields to exercise every edge class on small graphs.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreeSpannerParams {
    /// `T_low`: all edges with an endpoint of degree ≤ this are kept
    /// (paper: √n).
    pub low_threshold: usize,
    /// `T_super`: vertices above this degree are “super-high”
    /// (paper: n^{3/4}).
    pub super_threshold: usize,
    /// Length of the neighbor-list prefix defining the multiple-center set
    /// `S(v)` (paper: √n).
    pub center_block: usize,
    /// Block length for the super-high machinery, and the prefix defining
    /// `S'(v)` (paper: n^{3/4}).
    pub super_block: usize,
    /// Sampling probability for centers `S` (paper: Θ(log n / √n)).
    pub center_prob: f64,
    /// Sampling probability for super-centers `S'` (paper: Θ(log n / n^{3/4})).
    pub super_center_prob: f64,
    /// Independence of the sampling hash family (paper: Θ(log n)).
    pub independence: usize,
}

impl ThreeSpannerParams {
    /// The paper's parameters for an n-vertex graph.
    pub fn for_n(n: usize) -> Self {
        let sqrt_n = ceil_pow(n, 1, 2);
        let n34 = ceil_pow(n, 3, 4);
        let log = ln_n(n);
        Self {
            low_threshold: sqrt_n,
            super_threshold: n34,
            center_block: sqrt_n,
            super_block: n34,
            center_prob: (1.5 * log / sqrt_n as f64).min(1.0),
            super_center_prob: (1.5 * log / n34 as f64).min(1.0),
            independence: (2.0 * log).ceil().max(8.0) as usize,
        }
    }
}

/// Degree-based edge classes of the 3-spanner construction (Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreeEdgeClass {
    /// `min(deg u, deg v) ≤ T_low`.
    Low,
    /// `T_low < min ≤ T_super`.
    High,
    /// `min > T_super`.
    Super,
}

/// LCA for 3-spanners (Theorem 1.1, r = 2).
///
/// Construct once per `(graph, seed)`; [`ThreeSpanner::contains`] then
/// answers any edge query independently, consistently with one fixed spanner.
///
/// # Example
///
/// ```
/// use lca_core::{EdgeSubgraphLca, ThreeSpanner};
/// use lca_graph::gen::structured;
/// use lca_rand::Seed;
///
/// let g = structured::complete(20);
/// let lca = ThreeSpanner::with_defaults(&g, Seed::new(3));
/// let (u, v) = g.edge_endpoints(0);
/// assert_eq!(lca.contains(u, v)?, lca.contains(v, u)?);
/// # Ok::<(), lca_core::LcaError>(())
/// ```
#[derive(Debug)]
pub struct ThreeSpanner<O> {
    oracle: O,
    params: ThreeSpannerParams,
    center_coin: Coin,
    super_coin: Coin,
}

impl<O: Oracle> ThreeSpanner<O> {
    /// Creates the LCA with explicit parameters.
    pub fn new(oracle: O, params: ThreeSpannerParams, seed: Seed) -> Self {
        let center_coin = Coin::new(seed.derive(0x3531), params.center_prob, params.independence);
        let super_coin = Coin::new(
            seed.derive(0x3532),
            params.super_center_prob,
            params.independence,
        );
        Self {
            oracle,
            params,
            center_coin,
            super_coin,
        }
    }

    /// Creates the LCA with the paper's parameters for the oracle's `n`.
    pub fn with_defaults(oracle: O, seed: Seed) -> Self {
        let params = ThreeSpannerParams::for_n(oracle.vertex_count());
        Self::new(oracle, params, seed)
    }

    /// The parameters in effect.
    pub fn params(&self) -> &ThreeSpannerParams {
        &self.params
    }

    /// Whether vertex label `l` was sampled into the center set `S`
    /// (probe-free, Observation 2.3).
    pub fn is_center(&self, label: u64) -> bool {
        self.center_coin.flip(label)
    }

    /// Whether vertex label `l` was sampled into the super-center set `S'`.
    pub fn is_super_center(&self, label: u64) -> bool {
        self.super_coin.flip(label)
    }

    /// Classifies an edge by its endpoint degrees (2 Degree probes).
    pub fn classify(&self, u: VertexId, v: VertexId) -> ThreeEdgeClass {
        let m = self.oracle.degree(u).min(self.oracle.degree(v));
        if m <= self.params.low_threshold {
            ThreeEdgeClass::Low
        } else if m <= self.params.super_threshold {
            ThreeEdgeClass::High
        } else {
            ThreeEdgeClass::Super
        }
    }

    /// `S(w)`: sampled centers among the first `center_block` neighbors,
    /// probed through `o` (the caller's budgeted per-query view).
    fn s_set<P: Oracle>(&self, o: &P, w: VertexId) -> Vec<VertexId> {
        prefix_centers(o, &self.center_coin, w, self.params.center_block, None)
    }

    /// `S'(w)`: sampled super-centers among the first `super_block` neighbors.
    fn s_prime_set<P: Oracle>(&self, o: &P, w: VertexId) -> Vec<VertexId> {
        prefix_centers(o, &self.super_coin, w, self.params.super_block, None)
    }

    /// The E_high scan from scanner `w` (Section 2.2): does the endpoint at
    /// position `other_idx` of `Γ(w)` introduce a center of `s_other` not
    /// seen earlier in the list?
    fn high_scan<P: Oracle>(
        &self,
        o: &P,
        w: VertexId,
        other_idx: usize,
        s_other: &[VertexId],
    ) -> bool {
        scan_new_center(o, w, 0, other_idx, s_other, self.params.center_block)
    }

    /// The E_super block scan from scanner `w` (Section 2.3): restricted to
    /// the block of `Γ(w)` containing position `other_idx`.
    fn super_scan<P: Oracle>(
        &self,
        o: &P,
        w: VertexId,
        other_idx: usize,
        sp_other: &[VertexId],
    ) -> bool {
        let block = self.params.super_block.max(1);
        let start = (other_idx / block) * block;
        scan_new_center(o, w, start, other_idx, sp_other, self.params.super_block)
    }

    fn check_vertex(&self, v: VertexId) -> Result<(), LcaError> {
        let n = self.oracle.vertex_count();
        if v.index() >= n {
            return Err(LcaError::InvalidVertex { v, vertex_count: n });
        }
        Ok(())
    }

    /// The Section 2 decision rules, probing exclusively through `o`. When
    /// `o` is a tripped budgeted view the answer may be garbage — callers
    /// must [`QueryCtx::checkpoint`] before trusting it.
    fn decide<P: Oracle>(&self, o: &P, u: VertexId, v: VertexId) -> Result<bool, LcaError> {
        let p = &self.params;
        // Position of u in Γ(v) and of v in Γ(u); also the edge check.
        let Some(idx_vu) = o.adjacency(v, u) else {
            return Err(LcaError::NotAnEdge { u, v });
        };
        let idx_uv = o.adjacency(u, v).ok_or(LcaError::NotAnEdge { u, v })?;

        let du = o.degree(u);
        let dv = o.degree(v);

        // E_low: keep every edge touching a low-degree vertex.
        if du.min(dv) <= p.low_threshold {
            return Ok(true);
        }

        // Center edges: u ∈ S(v) ∪ S'(v) or v ∈ S(u) ∪ S'(u).
        let (lu, lv) = (o.label(u), o.label(v));
        if self.is_center(lu) && idx_vu < p.center_block {
            return Ok(true);
        }
        if self.is_center(lv) && idx_uv < p.center_block {
            return Ok(true);
        }
        if self.is_super_center(lu) && idx_vu < p.super_block {
            return Ok(true);
        }
        if self.is_super_center(lv) && idx_uv < p.super_block {
            return Ok(true);
        }

        // Multiple-center sets of both endpoints, plus deterministic
        // fallbacks: a high-degree vertex whose sampled set is empty keeps
        // all of its edges (DESIGN.md deviation #2).
        let su = self.s_set(o, u);
        let sv = self.s_set(o, v);
        if su.is_empty() || sv.is_empty() {
            // du, dv > low_threshold here, so both sets should be non-empty
            // w.h.p.; an empty set triggers the fallback.
            return Ok(true);
        }
        let spu = self.s_prime_set(o, u);
        let spv = self.s_prime_set(o, v);
        if (du > p.super_threshold && spu.is_empty()) || (dv > p.super_threshold && spv.is_empty())
        {
            return Ok(true);
        }

        // E_high scans: any endpoint with degree in (T_low, T_super] scans
        // its full neighbor list for newly-introduced centers.
        if dv <= p.super_threshold && self.high_scan(o, v, idx_vu, &su) {
            return Ok(true);
        }
        if du <= p.super_threshold && self.high_scan(o, u, idx_uv, &sv) {
            return Ok(true);
        }

        // E_super block scans: every vertex keeps one edge per newly-seen
        // super-center within each block of its neighbor list.
        if self.super_scan(o, v, idx_vu, &spu) {
            return Ok(true);
        }
        if self.super_scan(o, u, idx_uv, &spv) {
            return Ok(true);
        }

        Ok(false)
    }
}

impl<O: Oracle> Lca for ThreeSpanner<O> {
    type Query = (VertexId, VertexId);
    type Answer = bool;

    fn query_ctx(&self, (u, v): (VertexId, VertexId), ctx: &QueryCtx) -> Result<bool, LcaError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let o = ctx.budgeted(&self.oracle);
        let answer = self.decide(&o, u, v);
        // A tripped budget outranks whatever the drained probes produced
        // (including a spurious NotAnEdge from a refused adjacency probe).
        ctx.checkpoint()?;
        answer
    }

    fn name(&self) -> &'static str {
        "three-spanner"
    }

    fn probe_bound(&self) -> &'static str {
        "Õ(n^{3/4})"
    }
}

impl<O: Oracle> EdgeSubgraphLca for ThreeSpanner<O> {
    fn stretch_bound(&self) -> usize {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lca_graph::gen::{structured, GnpBuilder};
    use lca_graph::Subgraph;

    fn tiny_params() -> ThreeSpannerParams {
        // Thresholds small enough that a ~30-vertex graph exercises the
        // high and super classes.
        ThreeSpannerParams {
            low_threshold: 3,
            super_threshold: 8,
            center_block: 3,
            super_block: 8,
            center_prob: 0.5,
            super_center_prob: 0.3,
            independence: 8,
        }
    }

    #[test]
    fn default_params_match_paper_exponents() {
        let p = ThreeSpannerParams::for_n(10_000);
        assert_eq!(p.low_threshold, 100); // √n
        assert_eq!(p.super_threshold, 1000); // n^{3/4}
        assert_eq!(p.center_block, 100);
        assert!(p.center_prob > 0.0 && p.center_prob <= 1.0);
    }

    #[test]
    fn low_degree_edges_are_always_kept() {
        let g = structured::path(30);
        let lca = ThreeSpanner::with_defaults(&g, Seed::new(1));
        for (u, v) in g.edges() {
            assert!(lca.contains(u, v).unwrap());
        }
    }

    #[test]
    fn queries_are_symmetric() {
        let g = GnpBuilder::new(80, 0.4).seed(Seed::new(2)).build();
        let lca = ThreeSpanner::new(&g, tiny_params(), Seed::new(7));
        for (u, v) in g.edges() {
            assert_eq!(
                lca.contains(u, v).unwrap(),
                lca.contains(v, u).unwrap(),
                "asymmetric answer on {u}-{v}"
            );
        }
    }

    #[test]
    fn non_edge_queries_error() {
        let g = structured::path(5);
        let lca = ThreeSpanner::with_defaults(&g, Seed::new(1));
        let err = lca
            .contains(VertexId::new(0), VertexId::new(3))
            .unwrap_err();
        assert!(matches!(err, LcaError::NotAnEdge { .. }));
        let err = lca
            .contains(VertexId::new(0), VertexId::new(99))
            .unwrap_err();
        assert!(matches!(err, LcaError::InvalidVertex { .. }));
    }

    #[test]
    fn answers_are_deterministic_and_order_independent() {
        let g = GnpBuilder::new(60, 0.5).seed(Seed::new(3)).build();
        let lca = ThreeSpanner::new(&g, tiny_params(), Seed::new(9));
        let forward: Vec<bool> = g
            .edges()
            .map(|(u, v)| lca.contains(u, v).unwrap())
            .collect();
        let backward: Vec<bool> = {
            let edges: Vec<_> = g.edges().collect();
            let mut tmp: Vec<(usize, bool)> = edges
                .iter()
                .enumerate()
                .rev()
                .map(|(i, &(u, v))| (i, lca.contains(u, v).unwrap()))
                .collect();
            tmp.sort_by_key(|&(i, _)| i);
            tmp.into_iter().map(|(_, b)| b).collect()
        };
        assert_eq!(forward, backward);
    }

    #[test]
    fn stretch_is_at_most_three_on_dense_graphs() {
        for seed in 0..5u64 {
            let g = GnpBuilder::new(70, 0.5).seed(Seed::new(100 + seed)).build();
            let lca = ThreeSpanner::new(&g, tiny_params(), Seed::new(seed));
            let kept = g.edges().filter(|&(u, v)| lca.contains(u, v).unwrap());
            let h = Subgraph::from_edges(&g, kept);
            let stretch = h.max_edge_stretch(&g, 4);
            assert!(
                stretch.is_some(),
                "seed {seed}: spanner disconnected an edge"
            );
            assert!(stretch.unwrap() <= 3, "seed {seed}: stretch {stretch:?}");
        }
    }

    #[test]
    fn stretch_three_with_shuffled_adversarial_orders() {
        let g = GnpBuilder::new(64, 0.6)
            .seed(Seed::new(5))
            .shuffle_labels(true)
            .build();
        let lca = ThreeSpanner::new(&g, tiny_params(), Seed::new(77));
        let kept = g.edges().filter(|&(u, v)| lca.contains(u, v).unwrap());
        let h = Subgraph::from_edges(&g, kept);
        assert!(h.max_edge_stretch(&g, 4).unwrap() <= 3);
    }

    #[test]
    fn complete_graph_is_sparsified() {
        // K_64 with parameters scaled so the Õ(·) overheads are genuinely
        // below n²: big center prefixes (rare fallbacks), few super-centers.
        let g = structured::complete(64);
        let params = ThreeSpannerParams {
            low_threshold: 8,
            super_threshold: 16,
            center_block: 12,
            super_block: 64,
            center_prob: 0.4,
            super_center_prob: 0.08,
            independence: 8,
        };
        let lca = ThreeSpanner::new(&g, params, Seed::new(4));
        let kept = g
            .edges()
            .filter(|&(u, v)| lca.contains(u, v).unwrap())
            .count();
        assert!(kept * 2 < g.edge_count(), "kept {kept}/{}", g.edge_count());
        // And it is still a 3-spanner.
        let h = Subgraph::from_edges(&g, g.edges().filter(|&(u, v)| lca.contains(u, v).unwrap()));
        assert!(h.max_edge_stretch(&g, 4).unwrap() <= 3);
    }

    #[test]
    fn classify_matches_degrees() {
        let g = structured::star(20); // hub degree 19, leaves degree 1
        let p = ThreeSpannerParams {
            low_threshold: 0,
            super_threshold: 10,
            ..tiny_params()
        };
        let lca = ThreeSpanner::new(&g, p, Seed::new(1));
        // Edge hub-leaf: min degree 1 > 0? no, 1 > 0 yes... min = 1 > low=0,
        // and min = 1 <= super=10 → High.
        let (u, v) = g.edge_endpoints(0);
        assert_eq!(lca.classify(u, v), ThreeEdgeClass::High);
    }

    #[test]
    fn center_probability_one_keeps_center_edges() {
        let mut p = tiny_params();
        p.center_prob = 1.0;
        let g = GnpBuilder::new(30, 0.6).seed(Seed::new(8)).build();
        let lca = ThreeSpanner::new(&g, p.clone(), Seed::new(8));
        // Every vertex is a center, so every edge within the first
        // center_block positions of either endpoint's list is kept.
        for (u, v) in g.edges() {
            let idx = g.adjacency_index(v, u).unwrap();
            if idx < p.center_block {
                assert!(lca.contains(u, v).unwrap());
            }
        }
    }
}
