//! Per-query execution context: the probe/time budget and the unified
//! probe meter every query is charged against.
//!
//! The paper's headline guarantee is a *per-query* probe bound, yet a plain
//! `query()` call has no way to enforce one — a single unlucky recursion
//! (a Chung-Lu hub, an adversarial query) can stall a serve worker for an
//! unbounded number of probes. [`QueryCtx`] makes the bound a first-class,
//! enforceable API concept:
//!
//! * a **probe budget** — the query may issue at most `max_probes` oracle
//!   probes; the probe that would exceed the budget is *refused* and the
//!   query fails with [`LcaError::BudgetExhausted`];
//! * a **wall-clock deadline** — polled on the first probe and then every
//!   `poll_stride` probes (default [`POLL_STRIDE`]; adapt it to the
//!   oracle's probe cost with [`QueryCtx::with_poll_stride`] — between
//!   polls the deadline is invisible, see the [`POLL_STRIDE`] docs for the
//!   blind-spot analysis), failing with [`LcaError::DeadlineExceeded`];
//! * a **cancellation flag** — an [`AtomicBool`] a caller may flip from
//!   another thread, failing the query with [`LcaError::Cancelled`];
//! * the **meter** — one shared per-query probe counter. Every probe an
//!   algorithm issues is charged here exactly once, at the top of the
//!   oracle decorator stack (above `CountingOracle`/`CachedOracle`/the
//!   input oracle), so [`QueryCtx::spent`] is the authoritative per-query
//!   probe cost regardless of which accounting or caching wrappers sit
//!   below.
//!
//! # How enforcement works
//!
//! Algorithms access their input through [`BudgetedOracle`], a per-query
//! view created by [`QueryCtx::budgeted`]. Each probe first calls
//! [`QueryCtx::charge`]; once the budget trips, the view stops forwarding
//! and returns the model's ⊥ answers (`degree = 0`, `neighbor = None`,
//! `adjacency = None`), which drains every probe loop in the workspace
//! immediately — a budgeted query can never hang. Any answer computed after
//! the trip is garbage by construction, so `Lca::query_ctx` implementations
//! call [`QueryCtx::checkpoint`] before trusting a result: an interrupted
//! context always reports the typed budget error, never a wrong answer.
//! Algorithms with cross-query memo tables (the classic LCAs) checkpoint
//! *before every memo insert*, so a partially-computed decision is never
//! persisted — budget exhaustion is a clean partial failure.
//!
//! An unbudgeted context ([`QueryCtx::unlimited`]) never refuses a probe,
//! so the unlimited path reproduces pre-budget answers and probe
//! transcripts bit-for-bit.
//!
//! # Example
//!
//! ```
//! use lca_core::{Lca, LcaError, QueryCtx, ThreeSpanner};
//! use lca_graph::gen::GnpBuilder;
//! use lca_rand::Seed;
//!
//! let g = GnpBuilder::new(300, 0.2).seed(Seed::new(1)).build();
//! let lca = ThreeSpanner::with_defaults(&g, Seed::new(2));
//! let q = g.edge_endpoints(0);
//!
//! // Measure the real cost once…
//! let ctx = QueryCtx::unlimited();
//! let answer = lca.query_ctx(q, &ctx)?;
//! let cost = ctx.spent();
//!
//! // …then the exact budget succeeds and one probe less fails typed.
//! let exact = QueryCtx::with_probe_limit(cost);
//! assert_eq!(lca.query_ctx(q, &exact)?, answer);
//! if cost > 1 {
//!     let tight = QueryCtx::with_probe_limit(cost - 1);
//!     assert!(matches!(
//!         lca.query_ctx(q, &tight),
//!         Err(LcaError::BudgetExhausted { .. })
//!     ));
//! }
//! # Ok::<(), lca_core::LcaError>(())
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lca_graph::VertexId;
use lca_probe::Oracle;

use crate::{Lca, LcaError};

const INTERRUPT_NONE: u8 = 0;
const INTERRUPT_BUDGET: u8 = 1;
const INTERRUPT_DEADLINE: u8 = 2;
const INTERRUPT_CANCELLED: u8 = 3;

/// The *default* deadline/cancellation poll stride (in probes): polls
/// happen on the first probe and then every `stride`-th. Polling costs an
/// `Instant::now`, so it is amortized; a query that issues no probes (pure
/// memo hits) is never interrupted mid-flight, which is fine — it is also
/// never slow.
///
/// This constant is the stride for [`lca_graph::ProbeCost::Memory`]-class
/// oracles. Each [`QueryCtx`] carries its own stride
/// ([`QueryCtx::with_poll_stride`]), which callers that know their oracle
/// derive from its probe-cost hint:
/// `ctx.with_poll_stride(oracle.probe_cost_hint().poll_stride())` — 64 for
/// in-memory probes, 16 for generator-recomputed (implicit) probes, 1 for
/// remote stores. The serving daemon does this per session.
///
/// # The sub-stride blind spot
///
/// Between polls the deadline is *invisible*: a query that issues fewer
/// than `stride` probes after its last poll can overshoot its deadline by
/// up to `stride − 1` probes' worth of wall-clock. With the default stride
/// of 64 and nanosecond in-memory probes that overshoot is microseconds —
/// harmless; with millisecond remote probes it would be ~63 ms per miss,
/// which is why expensive oracles must lower the stride (to 1, every probe
/// pays a clock read, and the blind spot vanishes). The probe *budget* has
/// no such blind spot — it is charged on every probe regardless of stride.
pub const POLL_STRIDE: u64 = 64;

/// The per-query execution context: budget limits plus the shared probe
/// meter (see the [module docs](self) for the full model).
///
/// A context meters **one** query. Create a fresh one per query (creation
/// is allocation-free) or [`QueryCtx::reset`] between sequential queries;
/// sharing one context across concurrent queries pools their budgets,
/// which is rarely what you want.
#[derive(Debug)]
pub struct QueryCtx {
    /// Probe budget; `u64::MAX` means unlimited.
    limit: u64,
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
    /// Deadline/cancel poll stride (≥ 1); see [`POLL_STRIDE`].
    poll_stride: u64,
    spent: AtomicU64,
    interrupt: AtomicU8,
}

impl QueryCtx {
    /// A context with no limits — reproduces pre-budget behavior
    /// bit-for-bit while still metering probes ([`QueryCtx::spent`]).
    pub fn unlimited() -> QueryCtx {
        QueryCtx::new(None, None, None)
    }

    /// A context allowing at most `limit` probes.
    pub fn with_probe_limit(limit: u64) -> QueryCtx {
        QueryCtx::new(Some(limit), None, None)
    }

    /// A context with explicit parts: probe budget, absolute deadline, and
    /// cancellation flag (each optional). Batch executors use this to share
    /// one deadline across many per-query contexts.
    pub fn new(
        max_probes: Option<u64>,
        deadline: Option<Instant>,
        cancel: Option<Arc<AtomicBool>>,
    ) -> QueryCtx {
        QueryCtx {
            limit: max_probes.unwrap_or(u64::MAX),
            deadline,
            cancel,
            poll_stride: POLL_STRIDE,
            spent: AtomicU64::new(0),
            interrupt: AtomicU8::new(INTERRUPT_NONE),
        }
    }

    /// Sets the deadline/cancellation poll stride (clamped to ≥ 1) and
    /// returns the context — builder-style, applied before the query runs.
    ///
    /// Derive the stride from the input oracle's probe-cost hint when you
    /// have the oracle in hand:
    /// `ctx.with_poll_stride(oracle.probe_cost_hint().poll_stride())`.
    /// Cheap in-memory probes afford a long stride (the default
    /// [`POLL_STRIDE`]); expensive probes need a short one or deadlines
    /// develop a blind spot of up to `stride − 1` probes (see the
    /// [`POLL_STRIDE`] docs).
    pub fn with_poll_stride(mut self, stride: u64) -> QueryCtx {
        self.poll_stride = stride.max(1);
        self
    }

    /// The deadline/cancellation poll stride in effect.
    pub fn poll_stride(&self) -> u64 {
        self.poll_stride
    }

    /// Wraps an oracle in the per-query budgeted view; every probe through
    /// it charges this context's meter.
    pub fn budgeted<'a, O: Oracle>(&'a self, oracle: &'a O) -> BudgetedOracle<'a, O> {
        BudgetedOracle {
            inner: oracle,
            ctx: Some(self),
        }
    }

    /// Charges one probe against the budget. Returns `false` — and records
    /// the interruption — when the probe must be refused (budget exhausted,
    /// deadline passed, or cancelled). Oracle wrappers call this; algorithm
    /// code should only need [`QueryCtx::checkpoint`].
    #[inline]
    pub fn charge(&self) -> bool {
        if self.interrupt.load(Ordering::Relaxed) != INTERRUPT_NONE {
            return false;
        }
        let spent = self.spent.fetch_add(1, Ordering::Relaxed) + 1;
        if spent > self.limit {
            // The refused probe is not part of the query's cost.
            self.spent.fetch_sub(1, Ordering::Relaxed);
            self.interrupt.store(INTERRUPT_BUDGET, Ordering::Relaxed);
            return false;
        }
        if (spent == 1 || spent.is_multiple_of(self.poll_stride)) && !self.poll() {
            self.spent.fetch_sub(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Polls deadline and cancellation; records the interruption on trip.
    fn poll(&self) -> bool {
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Relaxed) {
                self.interrupt.store(INTERRUPT_CANCELLED, Ordering::Relaxed);
                return false;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.interrupt.store(INTERRUPT_DEADLINE, Ordering::Relaxed);
                return false;
            }
        }
        true
    }

    /// `Ok` while the query may keep going; the typed budget error once it
    /// was interrupted. `Lca` implementations call this before returning an
    /// answer (so garbage computed from refused probes is never surfaced)
    /// and before persisting anything derived from probes (memo inserts).
    ///
    /// Also observes the cancellation flag directly, so probe-free stretches
    /// (memo-hit loops) remain cancellable.
    ///
    /// # Errors
    ///
    /// [`LcaError::BudgetExhausted`], [`LcaError::DeadlineExceeded`] or
    /// [`LcaError::Cancelled`], matching what tripped the context.
    #[inline]
    pub fn checkpoint(&self) -> Result<(), LcaError> {
        match self.interrupt.load(Ordering::Relaxed) {
            INTERRUPT_NONE => {
                if let Some(cancel) = &self.cancel {
                    if cancel.load(Ordering::Relaxed) {
                        self.interrupt.store(INTERRUPT_CANCELLED, Ordering::Relaxed);
                        return Err(LcaError::Cancelled {
                            spent: self.spent(),
                        });
                    }
                }
                Ok(())
            }
            code => Err(self.interrupt_error(code)),
        }
    }

    /// The interruption as a typed error, if the context tripped.
    pub fn interruption(&self) -> Option<LcaError> {
        match self.interrupt.load(Ordering::Relaxed) {
            INTERRUPT_NONE => None,
            code => Some(self.interrupt_error(code)),
        }
    }

    fn interrupt_error(&self, code: u8) -> LcaError {
        let spent = self.spent();
        match code {
            INTERRUPT_BUDGET => LcaError::BudgetExhausted {
                spent,
                limit: self.limit,
            },
            INTERRUPT_DEADLINE => LcaError::DeadlineExceeded { spent },
            _ => LcaError::Cancelled { spent },
        }
    }

    /// Probes charged so far — the unified per-query meter. After a
    /// successful query this is the query's exact probe cost; after a
    /// [`LcaError::BudgetExhausted`] it equals the limit.
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }

    /// The probe budget, `None` when unlimited.
    pub fn probe_limit(&self) -> Option<u64> {
        (self.limit != u64::MAX).then_some(self.limit)
    }

    /// Whether the context has tripped (budget, deadline or cancellation).
    pub fn interrupted(&self) -> bool {
        self.interrupt.load(Ordering::Relaxed) != INTERRUPT_NONE
    }

    /// Re-arms the context for the next sequential query: zeroes the meter
    /// and clears the interruption (deadline and cancel flag stay).
    pub fn reset(&self) {
        self.spent.store(0, Ordering::Relaxed);
        self.interrupt.store(INTERRUPT_NONE, Ordering::Relaxed);
    }
}

/// A reusable budget *specification* — what a builder, batch engine, or
/// wire request carries; [`QueryBudget::ctx`] mints the per-query
/// [`QueryCtx`] (which owns the actual meter).
#[derive(Debug, Clone, Default)]
pub struct QueryBudget {
    /// Maximum oracle probes per query (`None` = unlimited).
    pub max_probes: Option<u64>,
    /// Wall-clock allowance; the deadline is taken from `Instant::now()`
    /// when the context is minted (`None` = no deadline).
    pub timeout: Option<Duration>,
    /// Cooperative cancellation flag, shared with the caller.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl QueryBudget {
    /// The no-limits budget (the default).
    pub fn unlimited() -> QueryBudget {
        QueryBudget::default()
    }

    /// A budget of at most `n` probes per query.
    pub fn max_probes(n: u64) -> QueryBudget {
        QueryBudget {
            max_probes: Some(n),
            ..QueryBudget::default()
        }
    }

    /// Adds a wall-clock allowance per minted context.
    pub fn with_timeout(mut self, timeout: Duration) -> QueryBudget {
        self.timeout = Some(timeout);
        self
    }

    /// Adds a cancellation flag.
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> QueryBudget {
        self.cancel = Some(cancel);
        self
    }

    /// Whether this budget imposes no limit of any sort.
    pub fn is_unlimited(&self) -> bool {
        self.max_probes.is_none() && self.timeout.is_none() && self.cancel.is_none()
    }

    /// Mints a fresh per-query context (deadline = now + timeout).
    pub fn ctx(&self) -> QueryCtx {
        self.ctx_at(self.timeout.map(|t| Instant::now() + t))
    }

    /// Mints a context with an explicit (possibly shared) deadline instead
    /// of deriving one from [`QueryBudget::timeout`] — how a batch applies
    /// one deadline to every query while keeping per-query probe caps.
    pub fn ctx_at(&self, deadline: Option<Instant>) -> QueryCtx {
        QueryCtx::new(self.max_probes, deadline, self.cancel.clone())
    }
}

/// The per-query oracle view charging one [`QueryCtx`] meter.
///
/// Until the context trips, every probe is charged then forwarded — answers
/// and probe order are bit-identical to the bare oracle. Once tripped, no
/// further probe reaches the inner oracle; the view answers with the
/// model's ⊥ (`degree = 0`, `neighbor = None`, `adjacency = None`), which
/// terminates every probe loop promptly. `label` and `vertex_count` are
/// probe-free in the model and always forward.
///
/// Constructed by [`QueryCtx::budgeted`], or [`BudgetedOracle::unmetered`]
/// for code paths that share the plumbing without a budget.
#[derive(Debug, Clone, Copy)]
pub struct BudgetedOracle<'a, O> {
    inner: &'a O,
    ctx: Option<&'a QueryCtx>,
}

impl<'a, O: Oracle> BudgetedOracle<'a, O> {
    /// A view that forwards everything and charges nothing.
    pub fn unmetered(inner: &'a O) -> BudgetedOracle<'a, O> {
        BudgetedOracle { inner, ctx: None }
    }

    /// A view charging `ctx` if present, [`BudgetedOracle::unmetered`]
    /// otherwise.
    pub fn maybe(inner: &'a O, ctx: Option<&'a QueryCtx>) -> BudgetedOracle<'a, O> {
        BudgetedOracle { inner, ctx }
    }

    #[inline]
    fn charge(&self) -> bool {
        match self.ctx {
            Some(ctx) => ctx.charge(),
            None => true,
        }
    }
}

impl<O: Oracle> Oracle for BudgetedOracle<'_, O> {
    fn vertex_count(&self) -> usize {
        self.inner.vertex_count()
    }

    fn degree(&self, v: VertexId) -> usize {
        if self.charge() {
            self.inner.degree(v)
        } else {
            0
        }
    }

    fn neighbor(&self, v: VertexId, i: usize) -> Option<VertexId> {
        if self.charge() {
            self.inner.neighbor(v, i)
        } else {
            None
        }
    }

    fn adjacency(&self, u: VertexId, v: VertexId) -> Option<usize> {
        if self.charge() {
            self.inner.adjacency(u, v)
        } else {
            None
        }
    }

    // `neighbors_into` deliberately stays on the trait default, which
    // decomposes a buffered scan into `degree(v)` + `neighbor(v, 0..d)`
    // through the charged methods above. That makes budget semantics exact
    // by construction: each constituent probe is charged individually
    // (`ctx.spent()` counts d + 1 for a full scan), the probe that trips
    // the budget is refused before reaching the inner oracle, and a
    // refusal mid-scan leaves the already-answered prefix in the buffer —
    // identical behavior, probe for probe, to a hand-written scan loop.
    // Bulk-generation savings still apply below this layer (the implicit
    // oracles memoize the generated list across the constituent probes).

    fn label(&self, v: VertexId) -> u64 {
        self.inner.label(v)
    }

    fn probe_cost_hint(&self) -> lca_graph::ProbeCost {
        self.inner.probe_cost_hint()
    }
}

/// An [`Lca`] wrapper installing a default [`QueryBudget`]: plain
/// [`Lca::query`] calls run under the configured budget, while an explicit
/// [`Lca::query_ctx`] context always wins. This is how
/// `LcaBuilder`/`LcaConfig` defaults reach every outer layer without
/// changing call sites.
#[derive(Debug)]
pub struct WithBudget<L> {
    inner: L,
    budget: QueryBudget,
}

impl<L> WithBudget<L> {
    /// Wraps `inner` so budget-less queries run under `budget`.
    pub fn new(inner: L, budget: QueryBudget) -> WithBudget<L> {
        WithBudget { inner, budget }
    }

    /// The default budget in effect.
    pub fn budget(&self) -> &QueryBudget {
        &self.budget
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &L {
        &self.inner
    }
}

impl<L: Lca> Lca for WithBudget<L> {
    type Query = L::Query;
    type Answer = L::Answer;

    fn query_ctx(&self, q: Self::Query, ctx: &QueryCtx) -> Result<Self::Answer, LcaError> {
        self.inner.query_ctx(q, ctx)
    }

    fn query(&self, q: Self::Query) -> Result<Self::Answer, LcaError> {
        self.inner.query_ctx(q, &self.budget.ctx())
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn probe_bound(&self) -> &'static str {
        self.inner.probe_bound()
    }
}

impl<L: crate::EdgeSubgraphLca> crate::EdgeSubgraphLca for WithBudget<L> {
    fn stretch_bound(&self) -> usize {
        self.inner.stretch_bound()
    }
}

impl<L: crate::VertexSubsetLca> crate::VertexSubsetLca for WithBudget<L> {}

#[cfg(test)]
mod tests {
    use super::*;
    use lca_graph::gen::structured;

    #[test]
    fn unlimited_never_refuses_and_meters() {
        let g = structured::star(10);
        let ctx = QueryCtx::unlimited();
        let o = ctx.budgeted(&g);
        for _ in 0..1000 {
            assert_eq!(o.degree(VertexId::new(0)), 9);
        }
        assert_eq!(ctx.spent(), 1000);
        assert!(!ctx.interrupted());
        assert_eq!(ctx.probe_limit(), None);
        assert!(ctx.checkpoint().is_ok());
        assert!(ctx.interruption().is_none());
    }

    #[test]
    fn budget_refuses_the_probe_over_the_limit() {
        let g = structured::star(10);
        let ctx = QueryCtx::with_probe_limit(3);
        let o = ctx.budgeted(&g);
        assert_eq!(o.degree(VertexId::new(0)), 9);
        assert!(o.neighbor(VertexId::new(0), 0).is_some());
        assert!(o.adjacency(VertexId::new(0), VertexId::new(1)).is_some());
        // Fourth probe: refused, degenerate answer, typed interruption.
        assert_eq!(o.degree(VertexId::new(0)), 0);
        assert!(o.neighbor(VertexId::new(0), 0).is_none());
        assert_eq!(ctx.spent(), 3);
        assert_eq!(
            ctx.checkpoint(),
            Err(LcaError::BudgetExhausted { spent: 3, limit: 3 })
        );
        assert_eq!(ctx.probe_limit(), Some(3));
    }

    #[test]
    fn labels_and_vertex_count_are_free_even_after_exhaustion() {
        let g = structured::path(5);
        let ctx = QueryCtx::with_probe_limit(0);
        let o = ctx.budgeted(&g);
        assert_eq!(o.degree(VertexId::new(1)), 0); // refused
        assert_eq!(o.vertex_count(), 5);
        assert_eq!(o.label(VertexId::new(2)), g.label(VertexId::new(2)));
        assert_eq!(ctx.spent(), 0);
    }

    #[test]
    fn deadline_in_the_past_trips_on_the_first_probe() {
        let g = structured::path(5);
        let ctx = QueryCtx::new(None, Some(Instant::now() - Duration::from_secs(1)), None);
        let o = ctx.budgeted(&g);
        assert_eq!(o.degree(VertexId::new(1)), 0);
        assert!(matches!(
            ctx.checkpoint(),
            Err(LcaError::DeadlineExceeded { spent: 0 })
        ));
    }

    #[test]
    fn cancellation_flag_trips_probes_and_checkpoints() {
        let g = structured::path(5);
        let flag = Arc::new(AtomicBool::new(false));
        let ctx = QueryCtx::new(None, None, Some(flag.clone()));
        let o = ctx.budgeted(&g);
        assert_eq!(o.degree(VertexId::new(1)), 2);
        flag.store(true, Ordering::Relaxed);
        // checkpoint observes the flag even without another probe.
        assert!(matches!(ctx.checkpoint(), Err(LcaError::Cancelled { .. })));
        assert_eq!(o.degree(VertexId::new(1)), 0);
    }

    #[test]
    fn reset_rearms_the_meter() {
        let g = structured::path(5);
        let ctx = QueryCtx::with_probe_limit(1);
        let o = ctx.budgeted(&g);
        o.degree(VertexId::new(1));
        o.degree(VertexId::new(1));
        assert!(ctx.interrupted());
        ctx.reset();
        assert!(!ctx.interrupted());
        assert_eq!(ctx.spent(), 0);
        assert_eq!(o.degree(VertexId::new(1)), 2);
    }

    #[test]
    fn budget_spec_mints_contexts() {
        assert!(QueryBudget::unlimited().is_unlimited());
        let b = QueryBudget::max_probes(7).with_timeout(Duration::from_secs(60));
        assert!(!b.is_unlimited());
        let ctx = b.ctx();
        assert_eq!(ctx.probe_limit(), Some(7));
        let shared = Instant::now() + Duration::from_secs(1);
        let ctx = b.ctx_at(Some(shared));
        assert_eq!(ctx.probe_limit(), Some(7));
        let b = QueryBudget::unlimited().with_cancel(Arc::new(AtomicBool::new(false)));
        assert!(!b.is_unlimited());
    }

    #[test]
    fn poll_stride_adapts_to_probe_cost_hints() {
        use lca_graph::implicit::ImplicitGnp;
        use lca_graph::ProbeCost;
        // The hint classes map to their documented strides…
        assert_eq!(ProbeCost::Memory.poll_stride(), POLL_STRIDE);
        assert_eq!(ProbeCost::Compute.poll_stride(), 16);
        assert_eq!(ProbeCost::Remote.poll_stride(), 1);
        // …materialized graphs are Memory-class, implicit oracles Compute-,
        // and wrappers forward the inner hint.
        let g = structured::path(8);
        assert_eq!(g.probe_cost_hint(), ProbeCost::Memory);
        let implicit = ImplicitGnp::new(1000, 3.0, lca_rand::Seed::new(1));
        assert_eq!(implicit.probe_cost_hint(), ProbeCost::Compute);
        let ctx = QueryCtx::unlimited();
        assert_eq!(
            ctx.budgeted(&implicit).probe_cost_hint(),
            ProbeCost::Compute
        );
        assert_eq!(ctx.poll_stride(), POLL_STRIDE);
        let ctx = ctx.with_poll_stride(implicit.probe_cost_hint().poll_stride());
        assert_eq!(ctx.poll_stride(), 16);
        // Stride 0 clamps to 1 instead of dividing by zero in charge().
        assert_eq!(QueryCtx::unlimited().with_poll_stride(0).poll_stride(), 1);
    }

    #[test]
    fn short_stride_closes_the_deadline_blind_spot() {
        let g = structured::star(64);
        // The first probe polls while the deadline is still comfortably
        // ahead (200 ms — wide enough that scheduler preemption between
        // construction and the probe cannot expire it first); the sleep
        // then expires it, and the stride decides which later probe
        // notices: every one (stride 1) or only the 64th (default).
        let mk = |stride: u64| {
            QueryCtx::new(
                None,
                Some(Instant::now() + Duration::from_millis(200)),
                None,
            )
            .with_poll_stride(stride)
        };
        let ctx = mk(1);
        let o = ctx.budgeted(&g);
        assert_eq!(o.degree(VertexId::new(0)), 63); // first probe: deadline still ahead
        std::thread::sleep(Duration::from_millis(250));
        // Stride 1: the very next probe observes the expired deadline.
        assert_eq!(o.degree(VertexId::new(0)), 0);
        assert!(matches!(
            ctx.checkpoint(),
            Err(LcaError::DeadlineExceeded { .. })
        ));
        // Default stride: probes 2..63 fall in the blind spot and still
        // answer; the 64th polls and trips.
        let ctx = mk(POLL_STRIDE);
        let o = ctx.budgeted(&g);
        assert_eq!(o.degree(VertexId::new(0)), 63);
        std::thread::sleep(Duration::from_millis(250));
        for _ in 1..POLL_STRIDE - 1 {
            assert_eq!(o.degree(VertexId::new(0)), 63, "blind-spot probe answers");
        }
        assert_eq!(o.degree(VertexId::new(0)), 0, "stride boundary polls");
        assert!(matches!(
            ctx.checkpoint(),
            Err(LcaError::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn buffered_scan_charges_exactly_degree_plus_one() {
        let g = structured::star(9);
        let ctx = QueryCtx::unlimited();
        let o = ctx.budgeted(&g);
        let mut buf = Vec::new();
        let d = o.neighbors_into(VertexId::new(0), &mut buf);
        assert_eq!(d, 8);
        assert_eq!(buf.len(), 8);
        // One degree probe plus one neighbor probe per entry — the same
        // meter reading a hand-written scan loop would produce.
        assert_eq!(ctx.spent(), 9);
    }

    #[test]
    fn buffered_scan_truncates_at_the_budget() {
        let g = structured::star(9);
        // Budget covers degree + 3 neighbors; the 4th neighbor probe trips.
        let ctx = QueryCtx::with_probe_limit(4);
        let o = ctx.budgeted(&g);
        let mut buf = Vec::new();
        o.neighbors_into(VertexId::new(0), &mut buf);
        assert_eq!(buf.len(), 3, "answered prefix survives the refusal");
        assert_eq!(ctx.spent(), 4);
        assert!(matches!(
            ctx.checkpoint(),
            Err(LcaError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn unmetered_view_is_transparent() {
        let g = structured::cycle(6);
        let o = BudgetedOracle::unmetered(&g);
        for v in g.vertices() {
            assert_eq!(o.degree(v), g.degree(v));
            assert_eq!(o.neighbor(v, 0), g.neighbor(v, 0));
        }
        let ctx = QueryCtx::unlimited();
        let m = BudgetedOracle::maybe(&g, Some(&ctx));
        m.degree(VertexId::new(0));
        assert_eq!(ctx.spent(), 1);
    }
}
