//! Local computation algorithms for graph spanners — and the unified query
//! API every LCA in this workspace is served through.
//!
//! This crate implements the constructions of *“Local Computation Algorithms
//! for Spanners”* (Parter, Rubinfeld, Vakilian, Yodpinyanee, 2019): given
//! probe access to a huge graph `G`, answer queries of the form *“is the edge
//! `(u, v)` in the spanner `H ⊆ G`?”* consistently with one fixed sparse
//! low-stretch spanner — without ever materializing `H`.
//!
//! | LCA | Stretch | Spanner size | Probes per query | Paper |
//! |-----|---------|--------------|------------------|-------|
//! | [`ThreeSpanner`] | 3 | Õ(n^{3/2}) | Õ(n^{3/4}) | §2, Thm 1.1 (r=2) |
//! | [`FiveSpanner`]  | 5 | Õ(n^{4/3}) | Õ(n^{5/6}) | §3, Thm 1.1 (r=3), Thm 3.5 |
//! | [`K2Spanner`]    | O(k²) | Õ(n^{1+1/k}) | Õ(∆⁴n^{2/3}) | §4, Thm 1.2 |
//!
//! # The query API
//!
//! Everything is served through one trait family (module [`lca`][crate::Lca]):
//! the [`Lca`] core trait is generic over `Query`/`Answer` and carries
//! [`Lca::name`] and [`Lca::probe_bound`] for reports; [`EdgeSubgraphLca`]
//! (edge-membership queries + a stretch bound) is the spanner instantiation,
//! [`VertexSubsetLca`] (vertex-membership queries) the classic-algorithm one
//! implemented in `lca-classic`. The [`DynQuery`] layer erases the
//! difference so the registry in the facade crate can hand out any of the
//! workspace's seven algorithms behind one object type.
//!
//! Queries are answered three ways:
//!
//! * one at a time — [`EdgeSubgraphLca::contains`] /
//!   [`VertexSubsetLca::contains_vertex`];
//! * batched and thread-parallel — [`QueryEngine::query_batch`] shards a
//!   batch across workers over a shared `Send + Sync` oracle (answers are
//!   query-order independent by Definition 1.4, so sharding is sound);
//! * measured — [`measure_queries`] (serial, exact per-query probe costs),
//!   [`measure_queries_distinct`] (additionally the distinct-probe measure
//!   via a per-query [`lca_probe::MemoOracle`]),
//!   [`QueryEngine::measure_queries`] (parallel, per-shard + aggregate
//!   [`lca_probe::ProbeCounts`]), and [`QueryEngine::measure_batch`] (the
//!   oracle-generic variant for inputs with no `Graph` to enumerate —
//!   implicit oracles served through sampled query batches).
//!
//! Every LCA is paired with an independent **global reference construction**
//! (module [`global`]) computing the same spanner by direct whole-graph
//! sweeps; the test suite asserts the two agree edge-for-edge, which is the
//! executable form of the paper's consistency requirement (Definition 1.4).
//!
//! Two engineering deviations from the paper, both documented in `DESIGN.md`:
//! edge IDs are normalized to `(min label, max label)` so queries `(u,v)` and
//! `(v,u)` agree, and every “w.h.p.” hitting-set event is backed by a
//! deterministic fallback (a vertex whose sampled center set came up empty
//! keeps all its incident edges), making the stretch bounds unconditional.
//!
//! # Example
//!
//! ```
//! use lca_core::{EdgeSubgraphLca, QueryEngine, ThreeSpanner};
//! use lca_graph::gen::GnpBuilder;
//! use lca_probe::CountingOracle;
//! use lca_rand::Seed;
//!
//! let graph = GnpBuilder::new(300, 0.2).seed(Seed::new(1)).build();
//! let oracle = CountingOracle::new(&graph);
//! let lca = ThreeSpanner::with_defaults(&oracle, Seed::new(42));
//! // Single query…
//! let (u, v) = graph.edge_endpoints(0);
//! let in_spanner = lca.contains(u, v)?;
//! println!("edge {u}-{v} in spanner: {in_spanner}, probes: {}", oracle.counts());
//! // …or a parallel batch over all edges.
//! let queries: Vec<_> = graph.edges().collect();
//! let answers = QueryEngine::new().query_batch(&lca, &queries);
//! assert_eq!(answers.len(), graph.edge_count());
//! # Ok::<(), lca_core::LcaError>(())
//! ```
//!
//! # Budgeted queries
//!
//! Every query runs under a [`QueryCtx`] — probe budget, wall-clock
//! deadline, cancellation flag, and the unified per-query probe meter
//! ([`QueryCtx::spent`]). [`Lca::query_ctx`] is the required trait method;
//! [`Lca::query`] is the unlimited shorthand. A query that would exceed its
//! budget returns [`LcaError::BudgetExhausted`] — a typed clean partial
//! failure, never a hang or a panic — and the unlimited path reproduces
//! pre-budget answers and probe transcripts bit-for-bit. Budgets surface at
//! every layer: per-batch via [`QueryEngine::query_batch_budgeted`] (with
//! per-shard exhaustion stats), per-instance via the facade builder's
//! default [`QueryBudget`], and per-request via the `lca-serve` wire
//! protocol's `max_probes`/`deadline_ms` fields.
//!
//! # Migration note (pre-0.2 API)
//!
//! `EdgeSubgraphLca` used to be a standalone trait whose implementors
//! defined `contains`/`name` directly. Those methods now live on the
//! [`Lca`] supertrait as [`Lca::query`] (with `contains` as a provided
//! convenience), so existing call sites keep working; implementors provide
//! `Lca` plus a `stretch_bound`. Since the budget redesign the required
//! method is [`Lca::query_ctx`]; a pre-budget `fn query` implementation
//! becomes `fn query_ctx(&self, q, ctx)` that charges its probes via
//! [`QueryCtx::budgeted`]. Constructors are unchanged — or use the
//! `lca::registry` builder in the facade crate to construct any algorithm
//! uniformly from `(graph, kind, seed)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
mod ctx;
mod engine;
mod error;
mod five;
pub mod global;
mod harness;
pub mod k2;
mod lca;
mod three;
pub mod verify;

pub use ctx::{BudgetedOracle, QueryBudget, QueryCtx, WithBudget, POLL_STRIDE};
pub use engine::{BudgetedBatch, EngineRun, MeasuredBatch, QueryEngine, ShardBudget, ShardCounts};
pub use error::LcaError;
pub use five::{EdgeClass, FiveSpanner, FiveSpannerParams};
pub use harness::{
    materialize, measure_queries, measure_queries_distinct, DistinctRun, SpannerRun,
};
pub use k2::{K2Params, K2Spanner};
pub use lca::{
    DynEdgeLca, DynQuery, DynVertexLca, EdgeSubgraphLca, Lca, QueryKind, VertexSubsetLca,
};
pub use three::{ThreeSpanner, ThreeSpannerParams};
