//! Local computation algorithms for graph spanners.
//!
//! This crate implements the constructions of *“Local Computation Algorithms
//! for Spanners”* (Parter, Rubinfeld, Vakilian, Yodpinyanee, 2019): given
//! probe access to a huge graph `G`, answer queries of the form *“is the edge
//! `(u, v)` in the spanner `H ⊆ G`?”* consistently with one fixed sparse
//! low-stretch spanner — without ever materializing `H`.
//!
//! | LCA | Stretch | Spanner size | Probes per query | Paper |
//! |-----|---------|--------------|------------------|-------|
//! | [`ThreeSpanner`] | 3 | Õ(n^{3/2}) | Õ(n^{3/4}) | §2, Thm 1.1 (r=2) |
//! | [`FiveSpanner`]  | 5 | Õ(n^{4/3}) | Õ(n^{5/6}) | §3, Thm 1.1 (r=3), Thm 3.5 |
//! | [`K2Spanner`]    | O(k²) | Õ(n^{1+1/k}) | Õ(∆⁴n^{2/3}) | §4, Thm 1.2 |
//!
//! Every LCA is paired with an independent **global reference construction**
//! (module [`global`]) computing the same spanner by direct whole-graph
//! sweeps; the test suite asserts the two agree edge-for-edge, which is the
//! executable form of the paper's consistency requirement (Definition 1.4).
//!
//! Two engineering deviations from the paper, both documented in `DESIGN.md`:
//! edge IDs are normalized to `(min label, max label)` so queries `(u,v)` and
//! `(v,u)` agree, and every “w.h.p.” hitting-set event is backed by a
//! deterministic fallback (a vertex whose sampled center set came up empty
//! keeps all its incident edges), making the stretch bounds unconditional.
//!
//! # Example
//!
//! ```
//! use lca_core::{EdgeSubgraphLca, ThreeSpanner};
//! use lca_graph::gen::GnpBuilder;
//! use lca_probe::CountingOracle;
//! use lca_rand::Seed;
//!
//! let graph = GnpBuilder::new(300, 0.2).seed(Seed::new(1)).build();
//! let oracle = CountingOracle::new(&graph);
//! let lca = ThreeSpanner::with_defaults(&oracle, Seed::new(42));
//! let (u, v) = graph.edge_endpoints(0);
//! let in_spanner = lca.contains(u, v)?;
//! println!("edge {u}-{v} in spanner: {in_spanner}, probes: {}", oracle.counts());
//! # Ok::<(), lca_core::LcaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
mod error;
mod five;
pub mod global;
mod harness;
pub mod k2;
mod lca;
mod three;
pub mod verify;

pub use error::LcaError;
pub use five::{EdgeClass, FiveSpanner, FiveSpannerParams};
pub use harness::{materialize, measure_queries, SpannerRun};
pub use k2::{K2Params, K2Spanner};
pub use lca::EdgeSubgraphLca;
pub use three::{ThreeSpanner, ThreeSpannerParams};
