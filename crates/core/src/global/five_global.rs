//! Global reference construction of the Section 3 5-spanner.

use std::collections::HashSet;

use lca_graph::{Graph, VertexId};
use lca_rand::{Coin, IndexSampler, Seed};

use super::{key, EdgeSet};
use crate::common::edge_key;
use crate::FiveSpannerParams;

/// Builds the exact 5-spanner that [`crate::FiveSpanner`] with the same
/// `(params, seed)` answers queries about, by direct global sweeps.
///
/// The bucket rule enumerates all center pairs, so this reference costs up to
/// `O(|S|² · ∆_med²)` time — fine for verification-sized graphs, which is its
/// job.
pub fn five_spanner_global(graph: &Graph, params: &FiveSpannerParams, seed: Seed) -> EdgeSet {
    let n = graph.vertex_count();
    let p = params;
    let center_coin = Coin::new(seed.derive(0x3551), p.center_prob, p.independence);
    let super_coin = Coin::new(seed.derive(0x3552), p.super_center_prob, p.independence);
    let rep_sampler = IndexSampler::new(seed.derive(0x3553), p.independence);

    let deg = |w: VertexId| graph.degree(w);
    let lab = |w: VertexId| graph.label(w);
    let is_mid = |d: usize| d >= p.med_threshold && d <= p.super_threshold;

    // Per-vertex sampled structures, mirroring the LCA's definitions.
    let mut s: Vec<Vec<VertexId>> = Vec::with_capacity(n);
    let mut sp: Vec<Vec<VertexId>> = Vec::with_capacity(n);
    let mut reps: Vec<Vec<VertexId>> = Vec::with_capacity(n);
    let mut deserted: Vec<bool> = Vec::with_capacity(n);
    for w in graph.vertices() {
        let nbrs = graph.neighbors(w);
        s.push(
            nbrs.iter()
                .take(p.med_block)
                .copied()
                .filter(|&x| deg(x) <= p.super_threshold && center_coin.flip(lab(x)))
                .collect(),
        );
        sp.push(
            nbrs.iter()
                .take(p.super_block)
                .copied()
                .filter(|&x| super_coin.flip(lab(x)))
                .collect(),
        );
        let d = deg(w);
        let mut r: Vec<VertexId> = Vec::new();
        if d > 0 {
            let bound = d.min(p.med_block) as u64;
            for j in 0..p.reps_count {
                let idx = rep_sampler.index(lab(w), j as u64, bound) as usize;
                if let Some(&x) = nbrs.get(idx) {
                    if deg(x) > p.super_threshold && !r.contains(&x) {
                        r.push(x);
                    }
                }
            }
        }
        reps.push(r);
        let prefix = nbrs.iter().take(p.med_block).collect::<Vec<_>>();
        let small = prefix
            .iter()
            .filter(|&&&x| deg(x) <= p.super_threshold)
            .count();
        deserted.push(2 * small >= prefix.len());
    }
    let rs: Vec<Vec<VertexId>> = (0..n)
        .map(|w| {
            let mut out: Vec<VertexId> = Vec::new();
            for &x in &reps[w] {
                for &c in &sp[x.index()] {
                    if !out.contains(&c) {
                        out.push(c);
                    }
                }
            }
            out
        })
        .collect();

    let mut h = EdgeSet::new();

    // Per-edge rules: E_low, gap fallback, super fallback, mid fallbacks.
    for (u, v) in graph.edges() {
        let (du, dv) = (deg(u), deg(v));
        if du.min(dv) <= p.low_threshold {
            h.insert(key(u, v));
            continue;
        }
        if (du > p.low_threshold && du < p.med_threshold)
            || (dv > p.low_threshold && dv < p.med_threshold)
        {
            h.insert(key(u, v));
            continue;
        }
        if (du > p.super_threshold && sp[u.index()].is_empty())
            || (dv > p.super_threshold && sp[v.index()].is_empty())
        {
            h.insert(key(u, v));
            continue;
        }
        if is_mid(du) && is_mid(dv) {
            let (iu, iv) = (u.index(), v.index());
            if (!deserted[iu] && rs[iu].is_empty()) || (!deserted[iv] && rs[iv].is_empty()) {
                h.insert(key(u, v));
                continue;
            }
            if deserted[iu] && deserted[iv] && (s[iu].is_empty() || s[iv].is_empty()) {
                h.insert(key(u, v));
            }
        }
    }

    // Star edges: bucket centers, super-centers, representatives.
    for w in graph.vertices() {
        for &c in s[w.index()].iter().chain(sp[w.index()].iter()) {
            h.insert(key(w, c));
        }
        if is_mid(deg(w)) {
            for &x in &reps[w.index()] {
                h.insert(key(w, x));
            }
        }
    }

    // Super block sweeps (one edge per newly-seen super-center per block).
    let block = p.super_block.max(1);
    for w in graph.vertices() {
        for chunk in graph.neighbors(w).chunks(block) {
            let mut covered: HashSet<u32> = HashSet::new();
            for &x in chunk {
                if sp[x.index()].iter().any(|c| !covered.contains(&c.raw())) {
                    h.insert(key(w, x));
                }
                covered.extend(sp[x.index()].iter().map(|c| c.raw()));
            }
        }
    }

    // Representative sweeps: mid scanner keeps one edge per newly-introduced
    // radius-2 center among its mid neighbors.
    for w in graph.vertices() {
        if !is_mid(deg(w)) {
            continue;
        }
        let mut covered: HashSet<u32> = HashSet::new();
        for &x in graph.neighbors(w) {
            if !is_mid(deg(x)) {
                continue;
            }
            if rs[x.index()].iter().any(|c| !covered.contains(&c.raw())) {
                h.insert(key(w, x));
            }
            covered.extend(rs[x.index()].iter().map(|c| c.raw()));
        }
    }

    // Bucket rule: one minimum-ID member edge per bucket pair per center
    // pair.
    let centers: Vec<VertexId> = graph
        .vertices()
        .filter(|&w| deg(w) <= p.super_threshold && center_coin.flip(lab(w)))
        .collect();
    let cluster_of = |c: VertexId| -> Vec<VertexId> {
        let mut members = vec![c];
        for &w in graph.neighbors(c) {
            if matches!(graph.adjacency_index(w, c), Some(idx) if idx < p.med_block) {
                members.push(w);
            }
        }
        members.sort_by_key(|&w| lab(w));
        members.dedup();
        members
    };
    let clusters: Vec<Vec<VertexId>> = centers.iter().map(|&c| cluster_of(c)).collect();
    let b = p.med_block.max(1);
    for (si, &sc) in centers.iter().enumerate() {
        for (ti, &tc) in centers.iter().enumerate() {
            if si == ti {
                continue;
            }
            for bucket_u in clusters[si].chunks(b) {
                for bucket_v in clusters[ti].chunks(b) {
                    let mut best: Option<((u64, u64), (VertexId, VertexId))> = None;
                    for &a in bucket_u {
                        if a == sc || deg(a) < p.med_threshold {
                            continue;
                        }
                        for &bb in bucket_v {
                            if bb == tc || a == bb || deg(bb) < p.med_threshold {
                                continue;
                            }
                            if graph.has_edge(a, bb) {
                                let k = edge_key(lab(a), lab(bb));
                                if best.is_none_or(|(cur, _)| k < cur) {
                                    best = Some((k, (a, bb)));
                                }
                            }
                        }
                    }
                    if let Some((_, (a, bb))) = best {
                        h.insert(key(a, bb));
                    }
                }
            }
        }
    }

    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::into_subgraph;
    use crate::{EdgeSubgraphLca, FiveSpanner};
    use lca_graph::gen::{structured, ChungLuBuilder, GnpBuilder};

    fn tiny_params() -> FiveSpannerParams {
        FiveSpannerParams {
            low_threshold: 2,
            med_threshold: 2,
            super_threshold: 9,
            med_block: 2,
            super_block: 9,
            center_prob: 0.6,
            super_center_prob: 0.4,
            reps_count: 6,
            independence: 8,
        }
    }

    fn assert_consistent(graph: &Graph, params: &FiveSpannerParams, seed: Seed) {
        let global = five_spanner_global(graph, params, seed);
        let lca = FiveSpanner::new(graph, params.clone(), seed);
        for (u, v) in graph.edges() {
            let local = lca.contains(u, v).unwrap();
            assert_eq!(
                local,
                global.contains(&key(u, v)),
                "disagreement on {u}-{v} (deg {} {}), class {:?}",
                graph.degree(u),
                graph.degree(v),
                lca.classify_edge(u, v)
            );
        }
    }

    #[test]
    fn lca_matches_global_on_random_graphs() {
        for s in 0..5u64 {
            let g = GnpBuilder::new(50, 0.35).seed(Seed::new(s)).build();
            assert_consistent(&g, &tiny_params(), Seed::new(500 + s));
        }
    }

    #[test]
    fn lca_matches_global_on_dense_graph() {
        let g = structured::complete(24);
        assert_consistent(&g, &tiny_params(), Seed::new(5));
    }

    #[test]
    fn lca_matches_global_on_power_law() {
        let g = ChungLuBuilder::power_law(120, 2.5, 7.0)
            .seed(Seed::new(8))
            .build();
        assert_consistent(&g, &tiny_params(), Seed::new(6));
    }

    #[test]
    fn lca_matches_global_on_bipartite_hubs() {
        // Strong degree asymmetry: exercises super + rep machinery.
        let g = structured::complete_bipartite(4, 36);
        let p = FiveSpannerParams {
            super_threshold: 10,
            ..tiny_params()
        };
        assert_consistent(&g, &p, Seed::new(7));
    }

    #[test]
    fn lca_matches_global_with_default_params() {
        let g = GnpBuilder::new(90, 0.3).seed(Seed::new(9)).build();
        assert_consistent(&g, &FiveSpannerParams::for_n(90), Seed::new(10));
    }

    #[test]
    fn lca_matches_global_min_degree_variant() {
        let g = GnpBuilder::new(80, 0.5).seed(Seed::new(11)).build();
        assert_consistent(&g, &FiveSpannerParams::for_min_degree(80, 2), Seed::new(12));
    }

    #[test]
    fn global_spanner_has_stretch_five() {
        for s in 0..4u64 {
            let g = GnpBuilder::new(60, 0.4).seed(Seed::new(60 + s)).build();
            let h = five_spanner_global(&g, &tiny_params(), Seed::new(s));
            let sub = into_subgraph(&g, &h);
            let stretch = sub.max_edge_stretch(&g, 6);
            assert!(stretch.is_some(), "seed {s}: disconnected");
            assert!(stretch.unwrap() <= 5, "seed {s}: stretch {stretch:?}");
        }
    }

    #[test]
    fn spanner_is_subset_of_graph() {
        let g = GnpBuilder::new(40, 0.5).seed(Seed::new(13)).build();
        let h = five_spanner_global(&g, &tiny_params(), Seed::new(14));
        for &(a, b) in &h {
            assert!(g.has_edge(VertexId::from(a), VertexId::from(b)));
        }
    }

    #[test]
    fn sparsifies_dense_instances() {
        let g = structured::complete(48);
        let h = five_spanner_global(&g, &tiny_params(), Seed::new(15));
        assert!(h.len() < g.edge_count());
    }
}
