//! Global reference constructions.
//!
//! Each spanner LCA in this crate is re-implemented here as a direct
//! whole-graph construction: linear sweeps over adjacency lists instead of
//! per-query probing. For a fixed `(graph, params, seed)` the reference
//! produces *exactly* the spanner that the LCA's answers describe — this is
//! the executable form of Definition 1.4's consistency requirement, and the
//! cross-check that catches locality bugs (a probe the LCA forgot to make
//! shows up as a disagreement with the sweep).
//!
//! The reference builders are also the fast path for materializing a spanner
//! when you *do* want the whole thing (benchmarks, verification).

mod five_global;
mod k2_global;
mod three_global;

pub use five_global::five_spanner_global;
pub use k2_global::{k2_partition, k2_spanner_global, K2Partition};
pub use three_global::three_spanner_global;

use std::collections::HashSet;

use lca_graph::{Graph, Subgraph, VertexId};

/// An edge set over vertex indices, normalized `(min, max)`.
pub type EdgeSet = HashSet<(u32, u32)>;

/// Normalizes an edge into the [`EdgeSet`] key form.
pub fn key(u: VertexId, v: VertexId) -> (u32, u32) {
    if u.raw() < v.raw() {
        (u.raw(), v.raw())
    } else {
        (v.raw(), u.raw())
    }
}

/// Converts an [`EdgeSet`] into a [`Subgraph`] of `graph`.
pub fn into_subgraph(graph: &Graph, edges: &EdgeSet) -> Subgraph {
    Subgraph::from_edges(
        graph,
        edges
            .iter()
            .map(|&(a, b)| (VertexId::from(a), VertexId::from(b))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_normalizes() {
        assert_eq!(
            key(VertexId::new(5), VertexId::new(2)),
            key(VertexId::new(2), VertexId::new(5))
        );
    }
}
