//! Global reference construction of the Section 4 O(k²)-spanner.

use std::collections::{HashMap, HashSet};

use lca_graph::{Graph, VertexId};
use lca_rand::{Coin, RankAssigner, Seed};

use super::{key, EdgeSet};
use crate::common::edge_key;
use crate::k2::baswana_sen::{simulate, BsParams, LocalGraph};
use crate::k2::{center_search, VertexStatus};
use crate::K2Params;

/// Everything the global construction derives about the dense partition —
/// exposed so benches can inspect cells, clusters and marks.
#[derive(Debug)]
pub struct K2Partition {
    /// Per-vertex Voronoi cell center (None = sparse vertex).
    pub cell: Vec<Option<VertexId>>,
    /// Per-vertex Voronoi tree parent.
    pub parent: Vec<Option<VertexId>>,
    /// Per-vertex cluster id (dense vertices only).
    pub cluster: Vec<Option<u32>>,
    /// Members of each cluster.
    pub cluster_members: Vec<Vec<VertexId>>,
    /// Cell center of each cluster.
    pub cluster_cell: Vec<VertexId>,
    /// Whether each cluster's cell is marked.
    pub cluster_marked: Vec<bool>,
}

impl K2Partition {
    /// Number of distinct Voronoi cells.
    pub fn cell_count(&self) -> usize {
        self.cell
            .iter()
            .flatten()
            .map(|c| c.raw())
            .collect::<HashSet<_>>()
            .len()
    }

    /// Number of sparse vertices.
    pub fn sparse_count(&self) -> usize {
        self.cell.iter().filter(|c| c.is_none()).count()
    }
}

/// Computes the sparse/dense partition, Voronoi trees, and cluster
/// refinement globally (same deterministic rules as the LCA).
pub fn k2_partition(graph: &Graph, params: &K2Params, seed: Seed) -> K2Partition {
    let n = graph.vertex_count();
    let center_coin = Coin::new(seed.derive(0x4B31), params.center_prob, params.independence);
    let mark_coin = Coin::new(seed.derive(0x4B32), params.mark_prob, params.independence);

    let statuses: Vec<VertexStatus> = graph
        .vertices()
        .map(|v| center_search(graph, v, params.k, &center_coin))
        .collect();
    let cell: Vec<Option<VertexId>> = statuses.iter().map(|s| s.center()).collect();
    let parent: Vec<Option<VertexId>> = statuses.iter().map(|s| s.parent()).collect();

    // Children in adjacency order; exact subtree sizes by iterative DFS.
    let mut children: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for v in graph.vertices() {
        if cell[v.index()].is_none() {
            continue;
        }
        for &w in graph.neighbors(v) {
            if parent[w.index()] == Some(v) && cell[w.index()] == cell[v.index()] {
                children[v.index()].push(w);
            }
        }
    }
    let mut size: Vec<usize> = vec![0; n];
    for v in graph.vertices() {
        if cell[v.index()] != Some(v) {
            continue; // roots only
        }
        // Post-order accumulate.
        let mut order = Vec::new();
        let mut stack = vec![v];
        while let Some(x) = stack.pop() {
            order.push(x);
            stack.extend(children[x.index()].iter().copied());
        }
        for &x in order.iter().rev() {
            size[x.index()] = 1 + children[x.index()]
                .iter()
                .map(|c| size[c.index()])
                .sum::<usize>();
        }
    }
    let heavy = |x: VertexId| size[x.index()] > params.l;

    // Cluster refinement.
    let mut cluster: Vec<Option<u32>> = vec![None; n];
    let mut cluster_members: Vec<Vec<VertexId>> = Vec::new();
    let mut cluster_cell: Vec<VertexId> = Vec::new();
    let mut push_cluster =
        |members: Vec<VertexId>, cell_center: VertexId, cluster: &mut Vec<Option<u32>>| {
            let id = cluster_members.len() as u32;
            for &m in &members {
                cluster[m.index()] = Some(id);
            }
            let mut members = members;
            members.sort_by_key(|m| m.raw());
            cluster_members.push(members);
            cluster_cell.push(cell_center);
        };
    let collect_subtree = |root: VertexId| -> Vec<VertexId> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(x) = stack.pop() {
            out.push(x);
            stack.extend(children[x.index()].iter().copied());
        }
        out
    };
    for s in graph.vertices() {
        if cell[s.index()] != Some(s) {
            continue; // not a cell root
        }
        if !heavy(s) {
            // (a) Light cell: one cluster.
            push_cluster(collect_subtree(s), s, &mut cluster);
            continue;
        }
        // Heavy vertices of this cell: singletons; group light children.
        let mut stack = vec![s];
        while let Some(x) = stack.pop() {
            if !heavy(x) {
                continue;
            }
            push_cluster(vec![x], s, &mut cluster);
            let mut cur: Vec<VertexId> = Vec::new();
            let mut cur_size = 0usize;
            let mut groups: Vec<Vec<VertexId>> = Vec::new();
            for &w in &children[x.index()] {
                if heavy(w) {
                    stack.push(w);
                    continue;
                }
                cur.push(w);
                cur_size += size[w.index()];
                if cur_size >= params.l {
                    groups.push(std::mem::take(&mut cur));
                    cur_size = 0;
                }
            }
            if !cur.is_empty() {
                groups.push(cur);
            }
            for g in groups {
                let members: Vec<VertexId> = g.into_iter().flat_map(&collect_subtree).collect();
                push_cluster(members, s, &mut cluster);
            }
        }
    }
    let cluster_marked: Vec<bool> = cluster_cell
        .iter()
        .map(|&c| mark_coin.flip(graph.label(c)))
        .collect();

    K2Partition {
        cell,
        parent,
        cluster,
        cluster_members,
        cluster_cell,
        cluster_marked,
    }
}

/// Builds the exact O(k²)-spanner that [`crate::K2Spanner`] with the same
/// `(params, seed)` answers queries about.
pub fn k2_spanner_global(graph: &Graph, params: &K2Params, seed: Seed) -> EdgeSet {
    let part = k2_partition(graph, params, seed);
    let ranks =
        RankAssigner::for_spanner(seed.derive(0x4B33), graph.vertex_count().max(2), params.k);
    let mark_coin = Coin::new(seed.derive(0x4B32), params.mark_prob, params.independence);
    let mut h = EdgeSet::new();

    // --- H_sparse: Baswana–Sen on G_sparse. -------------------------------
    let mut lg = LocalGraph::new();
    for v in graph.vertices() {
        lg.add_vertex(v, graph.label(v));
    }
    for v in graph.vertices() {
        for &w in graph.neighbors(v) {
            if part.cell[v.index()].is_none() || part.cell[w.index()].is_none() {
                lg.push_neighbor(v, w);
            }
        }
    }
    h.extend(simulate(
        &lg,
        BsParams {
            k: params.k,
            sample_prob: params.bs_sample_prob,
            independence: params.independence,
        },
        seed.derive(0x4B34),
    ));

    // --- H^(I): Voronoi tree edges. ---------------------------------------
    for v in graph.vertices() {
        if let Some(p) = part.parent[v.index()] {
            h.insert(key(v, p));
        }
    }

    // --- H^(B): inter-cell rules. ------------------------------------------
    let cell_of = |v: VertexId| part.cell[v.index()];
    let cid_of = |v: VertexId| part.cluster[v.index()];
    let n_clusters = part.cluster_members.len();

    // Minimum edges per (cluster pair) and per (cluster, foreign cell):
    // key pair -> (normalized label key, endpoints).
    type MinEdgeMap = HashMap<(u32, u32), ((u64, u64), (VertexId, VertexId))>;
    let mut min_cc: MinEdgeMap = HashMap::new();
    let mut min_ccell: MinEdgeMap = HashMap::new();
    for (a, b) in graph.edges() {
        let (Some(ca), Some(cb)) = (cell_of(a), cell_of(b)) else {
            continue;
        };
        if ca == cb {
            continue;
        }
        let (ia, ib) = (cid_of(a).unwrap(), cid_of(b).unwrap());
        let k_ab = edge_key(graph.label(a), graph.label(b));
        let cc_key = if ia < ib { (ia, ib) } else { (ib, ia) };
        match min_cc.get(&cc_key) {
            Some(&(cur, _)) if cur <= k_ab => {}
            _ => {
                min_cc.insert(cc_key, (k_ab, (a, b)));
            }
        }
        for (from_cluster, to_cell, e) in [(ia, cb.raw(), (a, b)), (ib, ca.raw(), (b, a))] {
            match min_ccell.get(&(from_cluster, to_cell)) {
                Some(&(cur, _)) if cur <= k_ab => {}
                _ => {
                    min_ccell.insert((from_cluster, to_cell), (k_ab, e));
                }
            }
        }
    }

    // Boundary cells of each cluster and their marked subset.
    let mut boundary: Vec<HashSet<u32>> = vec![HashSet::new(); n_clusters];
    for (cid, members) in part.cluster_members.iter().enumerate() {
        for &m in members {
            for &w in graph.neighbors(m) {
                if let Some(c) = cell_of(w) {
                    if c != part.cluster_cell[cid] {
                        boundary[cid].insert(c.raw());
                    }
                }
            }
        }
    }
    let marked_cell = |c: u32| mark_coin.flip(graph.label(VertexId::from(c)));
    let has_adjacent_marked = |cid: usize| -> bool {
        part.cluster_marked[cid] || boundary[cid].iter().any(|&c| marked_cell(c))
    };

    // Rule (1): marked cluster → every adjacent cluster.
    for (&(ia, ib), &(_, e)) in &min_cc {
        if part.cluster_marked[ia as usize] || part.cluster_marked[ib as usize] {
            h.insert(key(e.0, e.1));
        }
    }

    // Rule (2): no adjacent marked cell → every adjacent cell.
    for (cid, bnd) in boundary.iter().enumerate() {
        if has_adjacent_marked(cid) {
            continue;
        }
        for &c in bnd {
            if let Some(&(_, e)) = min_ccell.get(&(cid as u32, c)) {
                h.insert(key(e.0, e.1));
            }
        }
    }

    // Rule (3): cluster A → cell V' when the rank of V' is among the q
    // lowest in c(∂A) ∩ c(∂C), for C the marked-cell participation cluster
    // of the target cluster B*.
    for cid in 0..n_clusters {
        for &vc in &boundary[cid] {
            let Some(&(_, e_star)) = min_ccell.get(&(cid as u32, vc)) else {
                continue;
            };
            let w_star = e_star.1;
            let b_star = cid_of(w_star).unwrap() as usize;
            let mut keep = false;
            for &m in &boundary[b_star] {
                if !marked_cell(m) {
                    continue;
                }
                let Some(&(_, e_m)) = min_ccell.get(&(b_star as u32, m)) else {
                    continue;
                };
                let c_cluster = cid_of(e_m.1).unwrap() as usize;
                if !boundary[cid].contains(&vc) || !boundary[c_cluster].contains(&vc) {
                    continue;
                }
                let rank_v = ranks.rank(graph.label(VertexId::from(vc)));
                let lower = boundary[cid]
                    .intersection(&boundary[c_cluster])
                    .filter(|&&c| ranks.rank(graph.label(VertexId::from(c))) < rank_v)
                    .count();
                if lower < params.q {
                    keep = true;
                    break;
                }
            }
            if keep {
                h.insert(key(e_star.0, e_star.1));
            }
        }
    }

    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::into_subgraph;
    use crate::{EdgeSubgraphLca, K2Spanner};
    use lca_graph::gen::{structured, GnpBuilder, RegularBuilder};

    fn assert_consistent(graph: &Graph, params: &K2Params, seed: Seed) {
        let global = k2_spanner_global(graph, params, seed);
        let lca = K2Spanner::new(graph, params.clone(), seed);
        for (u, v) in graph.edges() {
            let local = lca.contains(u, v).unwrap();
            assert_eq!(
                local,
                global.contains(&key(u, v)),
                "disagreement on {u}-{v} (statuses {:?} / {:?}) params {params:?}",
                lca.vertex_status(u).center(),
                lca.vertex_status(v).center(),
            );
        }
    }

    #[test]
    fn lca_matches_global_on_regular_graphs() {
        for s in 0..3u64 {
            let g = RegularBuilder::new(60, 4)
                .seed(Seed::new(s))
                .build()
                .unwrap();
            assert_consistent(&g, &K2Params::for_n(60, 2), Seed::new(200 + s));
        }
    }

    #[test]
    fn lca_matches_global_for_k3() {
        let g = RegularBuilder::new(60, 3)
            .seed(Seed::new(7))
            .build()
            .unwrap();
        assert_consistent(&g, &K2Params::for_n(60, 3), Seed::new(8));
    }

    #[test]
    fn lca_matches_global_on_grid_and_cycle() {
        assert_consistent(
            &structured::grid(7, 7),
            &K2Params::for_n(49, 2),
            Seed::new(3),
        );
        assert_consistent(
            &structured::cycle(40),
            &K2Params::for_n(40, 2),
            Seed::new(4),
        );
    }

    #[test]
    fn lca_matches_global_with_forced_density() {
        // High center probability → everything dense, exercising H^(B).
        let mut p = K2Params::for_n(50, 2);
        p.center_prob = 0.4;
        p.mark_prob = 0.3;
        let g = GnpBuilder::new(50, 0.15).seed(Seed::new(5)).build();
        assert_consistent(&g, &p, Seed::new(6));
    }

    #[test]
    fn lca_matches_global_with_tiny_q() {
        // q = 1 (the Lenzen–Levi rule) stresses the rank logic.
        let mut p = K2Params::for_n(48, 2);
        p.center_prob = 0.5;
        p.mark_prob = 0.4;
        p.q = 1;
        let g = RegularBuilder::new(48, 4)
            .seed(Seed::new(9))
            .build()
            .unwrap();
        assert_consistent(&g, &p, Seed::new(10));
    }

    #[test]
    fn lca_matches_global_with_deep_voronoi_trees() {
        // Small center probability ⇒ cells of radius up to k with real
        // parent/child structure, heavy/light splits and grouped clusters —
        // the code paths the saturated default (prob = 1) never reaches.
        for (s, k) in [(0u64, 2usize), (1, 3)] {
            let g = RegularBuilder::new(240, 4)
                .seed(Seed::new(30 + s))
                .build()
                .unwrap();
            let mut p = K2Params::with_center_constant(240, k, 3.0);
            p.l = 8; // small L forces heavy vertices and cluster grouping
            let part = k2_partition(&g, &p, Seed::new(40 + s));
            assert!(
                part.cell_count() < 240 && part.cell_count() > 1,
                "want nontrivial cells, got {}",
                part.cell_count()
            );
            assert!(
                part.parent.iter().flatten().count() > 0,
                "want real tree edges"
            );
            assert_consistent(&g, &p, Seed::new(40 + s));
        }
    }

    #[test]
    fn lca_matches_global_all_sparse() {
        let mut p = K2Params::for_n(50, 3);
        p.center_prob = 0.0;
        let g = GnpBuilder::new(50, 0.1).seed(Seed::new(11)).build();
        assert_consistent(&g, &p, Seed::new(12));
    }

    #[test]
    fn global_spanner_preserves_connectivity_with_bounded_stretch() {
        for s in 0..3u64 {
            let g = RegularBuilder::new(80, 4)
                .seed(Seed::new(20 + s))
                .build()
                .unwrap();
            let p = K2Params::for_n(80, 2);
            let h = k2_spanner_global(&g, &p, Seed::new(s));
            let sub = into_subgraph(&g, &h);
            let bound = (2 * p.k + 1) * (2 * p.k + 2);
            let stretch = sub.max_edge_stretch(&g, bound as u32);
            assert!(stretch.is_some(), "seed {s}: disconnected edge");
        }
    }

    #[test]
    fn partition_covers_all_vertices() {
        let g = RegularBuilder::new(60, 4)
            .seed(Seed::new(1))
            .build()
            .unwrap();
        let p = K2Params::for_n(60, 2);
        let part = k2_partition(&g, &p, Seed::new(2));
        for v in g.vertices() {
            match part.cell[v.index()] {
                Some(_) => {
                    assert!(part.cluster[v.index()].is_some(), "{v} dense w/o cluster");
                }
                None => assert!(part.cluster[v.index()].is_none()),
            }
        }
        assert_eq!(part.cell_count(), {
            let cells: HashSet<u32> = part.cluster_cell.iter().map(|c| c.raw()).collect();
            cells.len()
        });
        // Cluster members agree with the per-vertex assignment.
        for (cid, members) in part.cluster_members.iter().enumerate() {
            for &m in members {
                assert_eq!(part.cluster[m.index()], Some(cid as u32));
            }
        }
    }

    #[test]
    fn clusters_have_bounded_size() {
        let g = structured::grid(9, 9);
        let mut p = K2Params::for_n(81, 2);
        p.center_prob = 0.08;
        p.l = 5;
        let part = k2_partition(&g, &p, Seed::new(4));
        for members in &part.cluster_members {
            assert!(
                members.len() <= 2 * p.l + 1,
                "cluster size {}",
                members.len()
            );
        }
    }
}
