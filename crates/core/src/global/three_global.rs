//! Global reference construction of the Section 2 3-spanner.

use lca_graph::{Graph, VertexId};
use lca_rand::{Coin, Seed};

use super::{key, EdgeSet};
use crate::ThreeSpannerParams;

/// Builds the exact 3-spanner that [`crate::ThreeSpanner`] with the same
/// `(params, seed)` answers queries about, by direct global sweeps.
///
/// # Example
///
/// ```
/// use lca_core::global::three_spanner_global;
/// use lca_core::ThreeSpannerParams;
/// use lca_graph::gen::structured;
/// use lca_rand::Seed;
///
/// let g = structured::complete(12);
/// let h = three_spanner_global(&g, &ThreeSpannerParams::for_n(12), Seed::new(1));
/// assert!(!h.is_empty());
/// ```
pub fn three_spanner_global(graph: &Graph, params: &ThreeSpannerParams, seed: Seed) -> EdgeSet {
    let n = graph.vertex_count();
    let center_coin = Coin::new(seed.derive(0x3531), params.center_prob, params.independence);
    let super_coin = Coin::new(
        seed.derive(0x3532),
        params.super_center_prob,
        params.independence,
    );

    // Per-vertex center sets S(w) and S'(w) (prefix scans).
    let s_of = |w: VertexId, coin: &Coin, block: usize| -> Vec<VertexId> {
        graph
            .neighbors(w)
            .iter()
            .take(block)
            .copied()
            .filter(|&x| coin.flip(graph.label(x)))
            .collect()
    };
    let mut s: Vec<Vec<VertexId>> = Vec::with_capacity(n);
    let mut sp: Vec<Vec<VertexId>> = Vec::with_capacity(n);
    for w in graph.vertices() {
        s.push(s_of(w, &center_coin, params.center_block));
        sp.push(s_of(w, &super_coin, params.super_block));
    }

    let mut h = EdgeSet::new();

    // E_low plus fallbacks for vertices whose sampled sets are empty.
    for (u, v) in graph.edges() {
        let (du, dv) = (graph.degree(u), graph.degree(v));
        if du.min(dv) <= params.low_threshold {
            h.insert(key(u, v));
            continue;
        }
        // Both endpoints are above T_low here; the LCA keeps the edge if
        // either endpoint's S-set is empty, or a super endpoint's S'-set is.
        if s[u.index()].is_empty() || s[v.index()].is_empty() {
            h.insert(key(u, v));
            continue;
        }
        if (du > params.super_threshold && sp[u.index()].is_empty())
            || (dv > params.super_threshold && sp[v.index()].is_empty())
        {
            h.insert(key(u, v));
        }
    }

    // Center edges (w, s) for s ∈ S(w) ∪ S'(w).
    for w in graph.vertices() {
        for &c in s[w.index()].iter().chain(sp[w.index()].iter()) {
            h.insert(key(w, c));
        }
    }

    // E_high sweeps: scanners with degree in (T_low, T_super] keep one edge
    // per newly-introduced center.
    for w in graph.vertices() {
        let dw = graph.degree(w);
        if dw <= params.low_threshold || dw > params.super_threshold {
            continue;
        }
        let mut covered: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for &x in graph.neighbors(w) {
            let sx = &s[x.index()];
            if sx.iter().any(|c| !covered.contains(&c.raw())) {
                h.insert(key(w, x));
            }
            covered.extend(sx.iter().map(|c| c.raw()));
        }
    }

    // E_super block sweeps: every vertex, per block of its neighbor list,
    // keeps one edge per newly-seen super-center.
    let block = params.super_block.max(1);
    for w in graph.vertices() {
        for chunk in graph.neighbors(w).chunks(block) {
            let mut covered: std::collections::HashSet<u32> = std::collections::HashSet::new();
            for &x in chunk {
                let sx = &sp[x.index()];
                if sx.iter().any(|c| !covered.contains(&c.raw())) {
                    h.insert(key(w, x));
                }
                covered.extend(sx.iter().map(|c| c.raw()));
            }
        }
    }

    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::into_subgraph;
    use crate::{EdgeSubgraphLca, ThreeSpanner};
    use lca_graph::gen::{structured, ChungLuBuilder, GnpBuilder};

    fn tiny_params() -> ThreeSpannerParams {
        ThreeSpannerParams {
            low_threshold: 3,
            super_threshold: 8,
            center_block: 3,
            super_block: 8,
            center_prob: 0.5,
            super_center_prob: 0.3,
            independence: 8,
        }
    }

    /// The core consistency check: LCA answers == global construction.
    fn assert_consistent(graph: &Graph, params: &ThreeSpannerParams, seed: Seed) {
        let global = three_spanner_global(graph, params, seed);
        let lca = ThreeSpanner::new(graph, params.clone(), seed);
        for (u, v) in graph.edges() {
            let local = lca.contains(u, v).unwrap();
            assert_eq!(
                local,
                global.contains(&key(u, v)),
                "disagreement on {u}-{v} (deg {} {}), seed {seed}",
                graph.degree(u),
                graph.degree(v)
            );
        }
    }

    #[test]
    fn lca_matches_global_on_random_graphs() {
        for s in 0..6u64 {
            let g = GnpBuilder::new(70, 0.35).seed(Seed::new(s)).build();
            assert_consistent(&g, &tiny_params(), Seed::new(1000 + s));
        }
    }

    #[test]
    fn lca_matches_global_on_dense_graph() {
        let g = structured::complete(30);
        assert_consistent(&g, &tiny_params(), Seed::new(5));
    }

    #[test]
    fn lca_matches_global_on_power_law() {
        let g = ChungLuBuilder::power_law(150, 2.5, 8.0)
            .seed(Seed::new(3))
            .build();
        assert_consistent(&g, &tiny_params(), Seed::new(6));
    }

    #[test]
    fn lca_matches_global_with_default_params() {
        let g = GnpBuilder::new(120, 0.3).seed(Seed::new(9)).build();
        assert_consistent(&g, &ThreeSpannerParams::for_n(120), Seed::new(10));
    }

    #[test]
    fn lca_matches_global_with_shuffled_labels() {
        let g = GnpBuilder::new(60, 0.5)
            .seed(Seed::new(2))
            .shuffle_labels(true)
            .build();
        assert_consistent(&g, &tiny_params(), Seed::new(11));
    }

    #[test]
    fn global_spanner_has_stretch_three() {
        for s in 0..4u64 {
            let g = GnpBuilder::new(80, 0.5).seed(Seed::new(40 + s)).build();
            let h = three_spanner_global(&g, &tiny_params(), Seed::new(s));
            let sub = into_subgraph(&g, &h);
            assert!(sub.max_edge_stretch(&g, 4).unwrap() <= 3, "seed {s}");
        }
    }

    #[test]
    fn spanner_is_subset_of_graph() {
        let g = GnpBuilder::new(50, 0.4).seed(Seed::new(1)).build();
        let h = three_spanner_global(&g, &tiny_params(), Seed::new(2));
        for &(a, b) in &h {
            assert!(g.has_edge(VertexId::from(a), VertexId::from(b)));
        }
    }

    #[test]
    fn sparser_than_input_on_dense_instances() {
        let g = structured::complete(64);
        let h = three_spanner_global(&g, &tiny_params(), Seed::new(3));
        assert!(
            h.len() < g.edge_count(),
            "spanner kept everything: {} of {}",
            h.len(),
            g.edge_count()
        );
    }
}
