//! The O(k²)-spanner LCA (paper Section 4, Theorem 1.2).
//!
//! For a stretch parameter `k`, the construction fixes `L = Θ(n^{1/3})`
//! and samples Θ(n/L · log n) centers. A vertex is *dense* if some center
//! lies within distance `k` (found by the lex-first BFS variant of
//! [`center_search`]), else *sparse*. The spanner is `H_sparse ∪ H_dense`:
//!
//! * `H_sparse` — a local simulation of k-round Baswana–Sen on the subgraph
//!   of edges with a sparse endpoint ([`baswana_sen`], Lemma 4.5);
//! * `H_dense = H^(I) ∪ H^(B)` — depth-k Voronoi trees inside each cell
//!   (Lemma 4.6) plus inter-cell connections chosen by the marked-cell rules
//!   (1)–(3) with q-lowest random ranks (Section 4.3.3–4.3.4, Idea V).
//!
//! Probe complexity: Õ(∆⁴L³·p) = Õ(∆⁴n^{2/3}) per query; spanner size
//! Õ(n^{1+1/k}); stretch O(k²) (O(k) cell hops × 2k cell diameter).

pub mod baswana_sen;
mod bfs;
mod dense;
mod sparse;
pub mod supergraph;

pub use baswana_sen::{simulate, BsParams, LocalGraph};
pub use bfs::{center_search, VertexStatus};
pub use supergraph::Supergraph;

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use lca_graph::VertexId;
use lca_probe::Oracle;
use lca_rand::{Coin, RankAssigner, Seed};

use crate::common::{ceil_pow, ln_n};
use crate::{BudgetedOracle, EdgeSubgraphLca, Lca, LcaError, QueryCtx};

/// Tuning parameters of the O(k²)-spanner construction.
#[derive(Debug, Clone, PartialEq)]
pub struct K2Params {
    /// The stretch parameter `k` (cell radius; BS runs k−1 rounds).
    pub k: usize,
    /// `L`: the sparse/dense ball size and cluster size target
    /// (paper: Θ(n^{1/3})).
    pub l: usize,
    /// Center sampling probability (paper: Θ(log n / L)).
    pub center_prob: f64,
    /// Voronoi cell marking probability (paper: 1/L).
    pub mark_prob: f64,
    /// `q`: how many lowest-ranked cells each (cluster, marked cluster)
    /// pair may connect to (paper: Θ(n^{1/k} log n), Idea V).
    pub q: usize,
    /// Baswana–Sen per-round sampling probability (paper: n^{−1/k}).
    pub bs_sample_prob: f64,
    /// Independence of all hash families (paper: Θ(log n)).
    pub independence: usize,
}

impl K2Params {
    /// The paper's parameters for an n-vertex graph and stretch parameter k.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn for_n(n: usize, k: usize) -> Self {
        Self::with_center_constant(n, k, 1.5 * ln_n(n))
    }

    /// Parameters with an explicit hitting constant: centers are sampled
    /// with probability `c_center / L` instead of the paper's
    /// `Θ(log n) / L`.
    ///
    /// Below n ≈ 10⁵ the paper's `log n / n^{1/3}` saturates to 1 (every
    /// vertex becomes its own Voronoi cell), which is technically within
    /// the analysis but hides all of the dense-regime structure. A small
    /// constant (e.g. `c_center = 3`) hits a size-L ball with probability
    /// ≈ 1 − e^{-c} while leaving genuine multi-vertex cells; vertices the
    /// sample misses simply classify as sparse and flow through the
    /// Baswana–Sen path, so correctness is unaffected.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn with_center_constant(n: usize, k: usize, c_center: f64) -> Self {
        assert!(k >= 1, "stretch parameter k must be at least 1");
        let l = ceil_pow(n, 1, 3).max(2);
        let log = ln_n(n);
        let n1k = ceil_pow(n, 1, k as u32).max(2);
        Self {
            k,
            l,
            center_prob: (c_center / l as f64).clamp(0.0, 1.0),
            mark_prob: (1.0 / l as f64).min(1.0),
            q: ((n1k as f64) * log).ceil().max(1.0) as usize,
            bs_sample_prob: (1.0 / n1k as f64).clamp(0.0, 1.0),
            independence: (2.0 * log).ceil().max(8.0) as usize,
        }
    }
}

/// Shared per-query scratch: memoized center searches, subtree sizes,
/// children lists and clusters — plus the query's budget, so every probe
/// of the walk charges one [`QueryCtx`] meter. The memos are purely a
/// probe-saving device — every cached value is a deterministic function of
/// `(graph, seed)`, so caching cannot change any answer — and the scratch
/// is discarded with the query, so a budget-interrupted walk never leaks
/// partial state into later queries.
#[derive(Default)]
pub(crate) struct Ctx<'q> {
    /// The query's execution context; `None` on legacy/diagnostic paths.
    pub(crate) budget: Option<&'q QueryCtx>,
    pub(crate) status: RefCell<HashMap<u32, Rc<VertexStatus>>>,
    /// `Some(size)` for light vertices, `None` for heavy ones.
    pub(crate) subtree: RefCell<HashMap<u32, Option<usize>>>,
    pub(crate) children: RefCell<HashMap<u32, Rc<Vec<VertexId>>>>,
    pub(crate) clusters: RefCell<HashMap<u32, Rc<dense::ClusterInfo>>>,
    /// `c(∂A)` per cluster id.
    pub(crate) boundaries: RefCell<HashMap<u32, Rc<HashSet<u32>>>>,
    /// Reusable neighbor-scan buffer for the walk's probe loops
    /// ([`Ctx::with_nbrs`]): one allocation per query instead of one per
    /// expanded vertex.
    nbrs: Cell<Option<Vec<VertexId>>>,
}

impl<'q> Ctx<'q> {
    /// A scratch charging every probe to `budget`.
    pub(crate) fn budgeted(budget: &'q QueryCtx) -> Ctx<'q> {
        Ctx {
            budget: Some(budget),
            ..Ctx::default()
        }
    }

    /// Whether the query's budget has tripped — the only condition under
    /// which the dense machinery's invariants may degenerate.
    pub(crate) fn interrupted(&self) -> bool {
        self.budget.is_some_and(QueryCtx::interrupted)
    }

    /// Runs `f` with the query's scratch neighbor buffer. Take/put rather
    /// than `RefCell`: a nested call simply works on a fresh `Vec` (no
    /// current call path nests, but a borrow panic is not an acceptable
    /// failure mode for a scan loop). Steady state: zero allocations.
    pub(crate) fn with_nbrs<R>(&self, f: impl FnOnce(&mut Vec<VertexId>) -> R) -> R {
        let mut buf = self.nbrs.take().unwrap_or_default();
        let r = f(&mut buf);
        self.nbrs.set(Some(buf));
        r
    }
}

/// LCA for O(k²)-spanners with Õ(n^{1+1/k}) edges (Theorem 1.2).
///
/// # Example
///
/// ```
/// use lca_core::{EdgeSubgraphLca, K2Params, K2Spanner};
/// use lca_graph::gen::RegularBuilder;
/// use lca_rand::Seed;
///
/// let g = RegularBuilder::new(100, 4).seed(Seed::new(1)).build().unwrap();
/// let lca = K2Spanner::new(&g, K2Params::for_n(100, 2), Seed::new(2));
/// let (u, v) = g.edge_endpoints(0);
/// assert_eq!(lca.contains(u, v)?, lca.contains(v, u)?);
/// # Ok::<(), lca_core::LcaError>(())
/// ```
#[derive(Debug)]
pub struct K2Spanner<O> {
    oracle: O,
    params: K2Params,
    center_coin: Coin,
    mark_coin: Coin,
    ranks: RankAssigner,
    bs_seed: Seed,
}

impl<O: Oracle> K2Spanner<O> {
    /// Creates the LCA with explicit parameters.
    pub fn new(oracle: O, params: K2Params, seed: Seed) -> Self {
        let n = oracle.vertex_count();
        let center_coin = Coin::new(seed.derive(0x4B31), params.center_prob, params.independence);
        let mark_coin = Coin::new(seed.derive(0x4B32), params.mark_prob, params.independence);
        let ranks = RankAssigner::for_spanner(seed.derive(0x4B33), n.max(2), params.k);
        let bs_seed = seed.derive(0x4B34);
        Self {
            oracle,
            params,
            center_coin,
            mark_coin,
            ranks,
            bs_seed,
        }
    }

    /// Creates the LCA with the paper's parameters.
    pub fn with_defaults(oracle: O, k: usize, seed: Seed) -> Self {
        let params = K2Params::for_n(oracle.vertex_count(), k);
        Self::new(oracle, params, seed)
    }

    /// The parameters in effect.
    pub fn params(&self) -> &K2Params {
        &self.params
    }

    pub(crate) fn oracle(&self) -> &O {
        &self.oracle
    }

    /// The probe view for this scratch: budget-charging when the scratch
    /// carries a query context, transparent otherwise.
    pub(crate) fn o<'a>(&'a self, ctx: &Ctx<'a>) -> BudgetedOracle<'a, O> {
        BudgetedOracle::maybe(&self.oracle, ctx.budget)
    }

    pub(crate) fn mark_coin(&self) -> &Coin {
        &self.mark_coin
    }

    pub(crate) fn ranks(&self) -> &RankAssigner {
        &self.ranks
    }

    pub(crate) fn bs_seed(&self) -> Seed {
        self.bs_seed
    }

    /// Whether `label` was sampled as a Voronoi center (probe-free).
    pub fn is_center_label(&self, label: u64) -> bool {
        self.center_coin.flip(label)
    }

    /// The sparse/dense status of a vertex (memoized per context).
    pub(crate) fn status(&self, ctx: &Ctx<'_>, v: VertexId) -> Rc<VertexStatus> {
        if let Some(st) = ctx.status.borrow().get(&v.raw()) {
            return Rc::clone(st);
        }
        let st = Rc::new(center_search(
            &self.o(ctx),
            v,
            self.params.k,
            &self.center_coin,
        ));
        ctx.status.borrow_mut().insert(v.raw(), Rc::clone(&st));
        st
    }

    /// Public probe: the sparse/dense status of `v` (fresh context).
    pub fn vertex_status(&self, v: VertexId) -> VertexStatus {
        (*self.status(&Ctx::default(), v)).clone()
    }

    /// The Voronoi-tree parent of `v` (None if sparse or a cell center).
    /// Fresh context; costs one center search (Table 5 row 1).
    pub fn tree_parent(&self, v: VertexId) -> Option<VertexId> {
        self.status(&Ctx::default(), v).parent()
    }

    /// Whether `(u, v)` is a Voronoi tree edge (`H^(I)`, Table 5 row 2).
    pub fn is_tree_edge(&self, u: VertexId, v: VertexId) -> bool {
        let ctx = Ctx::default();
        self.status(&ctx, u).parent() == Some(v) || self.status(&ctx, v).parent() == Some(u)
    }

    /// The members of `v`'s cluster, or `None` if `v` is sparse
    /// (Table 5 row 5: the O(∆³L²) subroutine).
    pub fn cluster_members_of(&self, v: VertexId) -> Option<Vec<VertexId>> {
        let ctx = Ctx::default();
        if self.status(&ctx, v).is_sparse() {
            return None;
        }
        Some(self.cluster(&ctx, v).members.clone())
    }

    /// The boundary cell centers `c(∂A)` of `v`'s cluster, or `None` if
    /// sparse (Table 5 row 6).
    pub fn boundary_centers_of(&self, v: VertexId) -> Option<Vec<VertexId>> {
        let ctx = Ctx::default();
        if self.status(&ctx, v).is_sparse() {
            return None;
        }
        let cluster = self.cluster(&ctx, v);
        let mut out: Vec<VertexId> = self
            .boundary(&ctx, &cluster)
            .iter()
            .map(|&c| VertexId::from(c))
            .collect();
        out.sort_by_key(|c| c.raw());
        Some(out)
    }

    fn check_vertex(&self, v: VertexId) -> Result<(), LcaError> {
        let n = self.oracle.vertex_count();
        if v.index() >= n {
            return Err(LcaError::InvalidVertex { v, vertex_count: n });
        }
        Ok(())
    }
}

impl<O: Oracle> Lca for K2Spanner<O> {
    type Query = (VertexId, VertexId);
    type Answer = bool;

    fn query_ctx(&self, (u, v): (VertexId, VertexId), qctx: &QueryCtx) -> Result<bool, LcaError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let ctx = Ctx::budgeted(qctx);
        let o = self.o(&ctx);
        if o.adjacency(u, v).is_none() || o.adjacency(v, u).is_none() {
            // A refused adjacency probe must not masquerade as NotAnEdge.
            qctx.checkpoint()?;
            return Err(LcaError::NotAnEdge { u, v });
        }
        let su = self.status(&ctx, u);
        let sv = self.status(&ctx, v);
        let answer = if su.is_sparse() || sv.is_sparse() {
            sparse::sparse_contains(self, &ctx, u, v)
        } else {
            let (cu, cv) = (su.center().expect("dense"), sv.center().expect("dense"));
            if cu == cv {
                // Same cell: only Voronoi tree edges (H^(I)) survive.
                su.parent() == Some(v) || sv.parent() == Some(u)
            } else {
                dense::dense_contains(self, &ctx, u, v, &su, &sv)
            }
        };
        // A tripped budget outranks whatever the drained walk produced.
        qctx.checkpoint()?;
        Ok(answer)
    }

    fn name(&self) -> &'static str {
        "k2-spanner"
    }

    fn probe_bound(&self) -> &'static str {
        "Õ(Δ⁴n^{2/3})"
    }
}

impl<O: Oracle> EdgeSubgraphLca for K2Spanner<O> {
    fn stretch_bound(&self) -> usize {
        // O(k) cell hops w.h.p., each expanded through a ≤2k-diameter cell;
        // generous deterministic verification radius.
        let k = self.params.k;
        (2 * k + 1) * (2 * k + 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lca_graph::gen::{structured, RegularBuilder};
    use lca_graph::Subgraph;

    #[test]
    fn params_defaults_are_sane() {
        let p = K2Params::for_n(1000, 3);
        assert_eq!(p.l, 10); // n^{1/3}
        assert!(p.center_prob > 0.0 && p.center_prob <= 1.0);
        assert!(p.mark_prob > 0.0 && p.mark_prob <= 1.0);
        assert!(p.q >= 1);
        assert!(p.bs_sample_prob > 0.0 && p.bs_sample_prob <= 1.0);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let _ = K2Params::for_n(100, 0);
    }

    #[test]
    fn k1_on_small_graph_keeps_connectivity() {
        let g = structured::cycle(12);
        let lca = K2Spanner::with_defaults(&g, 1, Seed::new(3));
        let kept: Vec<_> = g
            .edges()
            .filter(|&(u, v)| lca.contains(u, v).unwrap())
            .collect();
        let h = Subgraph::from_edges(&g, kept);
        assert!(h.max_edge_stretch(&g, lca.stretch_bound() as u32).is_some());
    }

    #[test]
    fn non_edge_errors() {
        let g = structured::path(5);
        let lca = K2Spanner::with_defaults(&g, 2, Seed::new(1));
        assert!(matches!(
            lca.contains(VertexId::new(0), VertexId::new(3)),
            Err(LcaError::NotAnEdge { .. })
        ));
        assert!(matches!(
            lca.contains(VertexId::new(0), VertexId::new(50)),
            Err(LcaError::InvalidVertex { .. })
        ));
    }

    #[test]
    fn symmetric_answers_on_regular_graph() {
        let g = RegularBuilder::new(80, 4)
            .seed(Seed::new(4))
            .build()
            .unwrap();
        let lca = K2Spanner::with_defaults(&g, 2, Seed::new(5));
        for (u, v) in g.edges() {
            assert_eq!(lca.contains(u, v).unwrap(), lca.contains(v, u).unwrap());
        }
    }

    #[test]
    fn spanner_preserves_connectivity_and_stretch() {
        for (k, seed) in [(2usize, 7u64), (3, 8)] {
            let g = RegularBuilder::new(90, 4)
                .seed(Seed::new(seed))
                .build()
                .unwrap();
            let lca = K2Spanner::with_defaults(&g, k, Seed::new(seed + 10));
            let h =
                Subgraph::from_edges(&g, g.edges().filter(|&(u, v)| lca.contains(u, v).unwrap()));
            let bound = lca.stretch_bound() as u32;
            let stretch = h.max_edge_stretch(&g, bound);
            assert!(stretch.is_some(), "k={k}: some edge lost connectivity");
            assert!(
                stretch.unwrap() <= bound,
                "k={k}: stretch {stretch:?} > {bound}"
            );
        }
    }

    #[test]
    fn vertex_status_is_deterministic() {
        let g = structured::grid(6, 6);
        let lca = K2Spanner::with_defaults(&g, 2, Seed::new(9));
        for v in g.vertices() {
            assert_eq!(lca.vertex_status(v), lca.vertex_status(v));
        }
    }
}
