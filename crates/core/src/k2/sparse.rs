//! H_sparse: local simulation of Baswana–Sen on the sparse-region subgraph
//! (paper Section 4.2).
//!
//! `E_sparse` consists of edges with at least one sparse endpoint. Whether
//! `(u, v) ∈ H_sparse` is decided entirely by the decisions of `u` and `v`
//! in the k-round simulation, and each endpoint's decisions depend only on
//! its radius-k ball in `G_sparse` — so the LCA gathers the union of the two
//! balls (Õ(∆²L²) probes, Lemma 4.5) and replays the simulation on it.

use std::collections::VecDeque;

use lca_graph::VertexId;
use lca_probe::Oracle;

use super::baswana_sen::{simulate, BsParams, LocalGraph};
use super::{Ctx, K2Spanner};

/// Whether the sparse-side edge `(u, v)` is kept by H_sparse.
pub(crate) fn sparse_contains<O: Oracle>(
    lca: &K2Spanner<O>,
    ctx: &Ctx<'_>,
    u: VertexId,
    v: VertexId,
) -> bool {
    let ball = gather_balls(lca, ctx, &[u, v]);
    let kept = simulate(
        &ball,
        BsParams {
            k: lca.params().k,
            sample_prob: lca.params().bs_sample_prob,
            independence: lca.params().independence,
        },
        lca.bs_seed(),
    );
    let key = if u.raw() < v.raw() {
        (u.raw(), v.raw())
    } else {
        (v.raw(), u.raw())
    };
    kept.contains(&key)
}

/// Whether the edge `(x, w)` belongs to `G_sparse` (≥ 1 sparse endpoint).
fn edge_in_sparse<O: Oracle>(lca: &K2Spanner<O>, ctx: &Ctx<'_>, x: VertexId, w: VertexId) -> bool {
    lca.status(ctx, x).is_sparse() || lca.status(ctx, w).is_sparse()
}

/// Gathers the union of radius-k balls around the sources in `G_sparse`,
/// building a [`LocalGraph`] whose per-vertex adjacency preserves the
/// original list order (filtered to sparse edges within the ball).
fn gather_balls<O: Oracle>(lca: &K2Spanner<O>, ctx: &Ctx<'_>, sources: &[VertexId]) -> LocalGraph {
    let o = lca.o(ctx);
    let k = lca.params().k;
    // BFS in G_sparse, multi-source with per-source distance budget k:
    // run one BFS per source into a shared discovered map keeping the
    // minimum distance (the union ball is what matters, not distances).
    let mut dist: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    for &s in sources {
        dist.insert(s.raw(), 0);
        queue.push_back(s);
    }
    let mut members: Vec<VertexId> = sources.to_vec();
    while let Some(x) = queue.pop_front() {
        let dx = dist[&x.raw()];
        if dx >= k {
            continue;
        }
        ctx.with_nbrs(|nbrs| {
            o.neighbors_into(x, nbrs);
            for &w in nbrs.iter() {
                if !edge_in_sparse(lca, ctx, x, w) {
                    continue;
                }
                match dist.get(&w.raw()) {
                    Some(_) => {}
                    None => {
                        dist.insert(w.raw(), dx + 1);
                        members.push(w);
                        queue.push_back(w);
                    }
                }
            }
        });
    }
    // Deterministic vertex numbering: sort by raw index.
    members.sort_by_key(|v| v.raw());
    members.dedup();
    let mut lg = LocalGraph::new();
    for &m in &members {
        lg.add_vertex(m, o.label(m));
    }
    for &m in &members {
        ctx.with_nbrs(|nbrs| {
            o.neighbors_into(m, nbrs);
            for &w in nbrs.iter() {
                if lg.contains(w) && edge_in_sparse(lca, ctx, m, w) {
                    lg.push_neighbor(m, w);
                }
            }
        });
    }
    lg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeSubgraphLca, K2Params, K2Spanner};
    use lca_graph::gen::structured;
    use lca_graph::Subgraph;
    use lca_rand::Seed;

    /// With center probability 0 every vertex is sparse and the whole graph
    /// is handled by the BS simulation.
    fn all_sparse_params(n: usize, k: usize) -> K2Params {
        let mut p = K2Params::for_n(n, k);
        p.center_prob = 0.0;
        p
    }

    #[test]
    fn all_sparse_mode_yields_a_2k_minus_1_spanner() {
        for k in [2usize, 3] {
            let g = lca_graph::gen::GnpBuilder::new(50, 0.25)
                .seed(Seed::new(1))
                .build();
            let lca = K2Spanner::new(&g, all_sparse_params(50, k), Seed::new(2));
            let h =
                Subgraph::from_edges(&g, g.edges().filter(|&(u, v)| lca.contains(u, v).unwrap()));
            let stretch = h.max_edge_stretch(&g, (2 * k) as u32);
            assert!(
                matches!(stretch, Some(s) if (s as usize) < 2 * k),
                "k={k}: stretch {stretch:?}"
            );
        }
    }

    #[test]
    fn local_ball_matches_global_simulation() {
        // The crux of Lemma 4.5: simulating on the union of radius-k balls
        // gives the same per-edge answers as simulating on all of G_sparse.
        let g = lca_graph::gen::GnpBuilder::new(60, 0.08)
            .seed(Seed::new(4))
            .build();
        let k = 3;
        let params = all_sparse_params(60, k);
        let lca = K2Spanner::new(&g, params.clone(), Seed::new(5));
        // Global: simulate on the whole graph.
        let mut lg = LocalGraph::new();
        for v in g.vertices() {
            lg.add_vertex(v, g.label(v));
        }
        for v in g.vertices() {
            for &w in g.neighbors(v) {
                lg.push_neighbor(v, w);
            }
        }
        let global = simulate(
            &lg,
            BsParams {
                k,
                sample_prob: params.bs_sample_prob,
                independence: params.independence,
            },
            lca.bs_seed(),
        );
        for (u, v) in g.edges() {
            let local = lca.contains(u, v).unwrap();
            let key = if u.raw() < v.raw() {
                (u.raw(), v.raw())
            } else {
                (v.raw(), u.raw())
            };
            assert_eq!(
                local,
                global.contains(&key),
                "ball simulation disagrees with global on {u}-{v}"
            );
        }
    }

    #[test]
    fn ball_gathering_respects_sparse_filter() {
        // Mixed graph: a dense core (center planted by high center prob on a
        // clique) and a sparse tail.
        let g = structured::dumbbell(6, 8);
        let mut p = K2Params::for_n(g.vertex_count(), 2);
        p.center_prob = 0.35;
        let lca = K2Spanner::new(&g, p, Seed::new(8));
        let ctx = Ctx::default();
        // All queried edges must resolve without panicking and stay
        // symmetric.
        for (u, v) in g.edges() {
            if lca.status(&ctx, u).is_sparse() || lca.status(&ctx, v).is_sparse() {
                assert_eq!(
                    sparse_contains(&lca, &ctx, u, v),
                    sparse_contains(&lca, &ctx, v, u)
                );
            }
        }
    }
}
