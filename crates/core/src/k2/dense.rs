//! H_dense: Voronoi trees, cluster refinement, and the inter-cell
//! connection rules (paper Sections 4.3.1–4.3.4).

use std::collections::HashSet;
use std::rc::Rc;

use lca_graph::VertexId;
use lca_probe::Oracle;

use super::bfs::VertexStatus;
use super::{Ctx, K2Spanner};
use crate::common::edge_key;

/// A cluster of the Voronoi-cell refinement (Section 4.3.2): `O(L)` member
/// vertices of one cell, produced by rule (a) (whole light cell), (b)
/// (heavy singleton) or (c) (grouped light subtrees under a heavy parent).
#[derive(Debug)]
pub(crate) struct ClusterInfo {
    /// Members, sorted by vertex index (deterministic identity).
    pub members: Vec<VertexId>,
    /// Members as a raw-index set.
    pub member_set: HashSet<u32>,
    /// The center of the Voronoi cell containing this cluster.
    pub cell_center: VertexId,
}

impl ClusterInfo {
    /// Stable identity: the smallest member index.
    pub fn id(&self) -> u32 {
        self.members.first().map_or(u32::MAX, |m| m.raw())
    }
}

impl<O: Oracle> K2Spanner<O> {
    /// Children of `x` in its Voronoi tree, in adjacency-list order
    /// (Table 5: O(∆²L) probes).
    pub(crate) fn tree_children(&self, ctx: &Ctx<'_>, x: VertexId) -> Rc<Vec<VertexId>> {
        if let Some(c) = ctx.children.borrow().get(&x.raw()) {
            return Rc::clone(c);
        }
        let o = self.o(ctx);
        let st = self.status(ctx, x);
        let Some(cx) = st.center() else {
            // Children are only requested for dense vertices; a tripped
            // budget can degenerate a status to sparse mid-walk, and the
            // query is about to fail its checkpoint — report no children.
            // On the unbudgeted path this is a real bug and must stay loud.
            assert!(
                ctx.interrupted(),
                "children only defined for dense vertices"
            );
            let rc = Rc::new(Vec::new());
            ctx.children.borrow_mut().insert(x.raw(), Rc::clone(&rc));
            return rc;
        };
        let kids = ctx.with_nbrs(|nbrs| {
            o.neighbors_into(x, nbrs);
            let mut kids = Vec::new();
            for &w in nbrs.iter() {
                let stw = self.status(ctx, w);
                if stw.center() == Some(cx) && stw.parent() == Some(x) {
                    kids.push(w);
                }
            }
            kids
        });
        let rc = Rc::new(kids);
        ctx.children.borrow_mut().insert(x.raw(), Rc::clone(&rc));
        rc
    }

    /// Subtree size of `x` capped at `L`: `Some(size)` for light vertices,
    /// `None` for heavy ones (Definition 4.7; Table 5: O(∆²L²) probes).
    pub(crate) fn subtree_size(&self, ctx: &Ctx<'_>, x: VertexId) -> Option<usize> {
        if let Some(&s) = ctx.subtree.borrow().get(&x.raw()) {
            return s;
        }
        let cap = self.params().l;
        let mut count = 0usize;
        let mut stack = vec![x];
        let mut result = Some(0usize);
        while let Some(y) = stack.pop() {
            count += 1;
            if count > cap {
                result = None;
                break;
            }
            stack.extend(self.tree_children(ctx, y).iter().copied());
        }
        if result.is_some() {
            result = Some(count);
        }
        ctx.subtree.borrow_mut().insert(x.raw(), result);
        result
    }

    /// All vertices of the (light) subtree rooted at `x`.
    fn collect_subtree(&self, ctx: &Ctx<'_>, x: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        let mut stack = vec![x];
        while let Some(y) = stack.pop() {
            out.push(y);
            stack.extend(self.tree_children(ctx, y).iter().copied());
        }
        out
    }

    /// The cluster containing dense vertex `x` (Section 4.3.2 rules (a)–(c);
    /// Table 5: O(∆³L²) probes).
    pub(crate) fn cluster(&self, ctx: &Ctx<'_>, x: VertexId) -> Rc<ClusterInfo> {
        if let Some(c) = ctx.clusters.borrow().get(&x.raw()) {
            return Rc::clone(c);
        }
        let st = self.status(ctx, x);
        let s = st
            .center()
            .expect("clusters only defined for dense vertices");
        let members: Vec<VertexId> = if self.subtree_size(ctx, s).is_some() {
            // (a) Light cell: the whole cell is one cluster.
            self.collect_subtree(ctx, s)
        } else if self.subtree_size(ctx, x).is_none() {
            // (b) Heavy vertex: singleton.
            vec![x]
        } else {
            // (c) Light vertex under a heavy cell: group the light child
            // subtrees of the first heavy ancestor.
            let path = match &*st {
                VertexStatus::Dense { path, .. } => path.clone(),
                VertexStatus::Sparse { .. } => unreachable!("dense checked above"),
            };
            let mut heavy_idx = None;
            for (i, &p) in path.iter().enumerate().skip(1) {
                if self.subtree_size(ctx, p).is_none() {
                    heavy_idx = Some(i);
                    break;
                }
            }
            let hi = heavy_idx.expect("cell center is heavy, so a heavy ancestor exists");
            let heavy_parent = path[hi];
            let below = path[hi - 1];
            let mut groups: Vec<Vec<VertexId>> = Vec::new();
            let mut cur: Vec<VertexId> = Vec::new();
            let mut cur_size = 0usize;
            for &w in self.tree_children(ctx, heavy_parent).iter() {
                let Some(sz) = self.subtree_size(ctx, w) else {
                    continue; // heavy children form their own singletons
                };
                cur.push(w);
                cur_size += sz;
                if cur_size >= self.params().l {
                    groups.push(std::mem::take(&mut cur));
                    cur_size = 0;
                }
            }
            if !cur.is_empty() {
                groups.push(cur);
            }
            // Within budget the group containing `below` always exists; a
            // tripped budget can degenerate the children enumeration, in
            // which case the query fails its checkpoint anyway — fall back
            // to a singleton. On the unbudgeted path a missing group is a
            // real bug and must stay loud.
            let group = groups
                .into_iter()
                .find(|g| g.contains(&below))
                .unwrap_or_else(|| {
                    assert!(
                        ctx.interrupted(),
                        "the subtree containing x must be in some group"
                    );
                    vec![x]
                });
            group
                .into_iter()
                .flat_map(|w| self.collect_subtree(ctx, w))
                .collect()
        };
        let mut members = members;
        members.sort_by_key(|m| m.raw());
        members.dedup();
        let info = Rc::new(ClusterInfo {
            member_set: members.iter().map(|m| m.raw()).collect(),
            members,
            cell_center: s,
        });
        let mut cache = ctx.clusters.borrow_mut();
        for &m in &info.members {
            cache.insert(m.raw(), Rc::clone(&info));
        }
        Rc::clone(&info)
    }

    /// `c(∂A)`: centers of the (dense) neighbors of cluster `A`, excluding
    /// `A`'s own cell (Table 5: O(∆²L²) probes). Memoized by cluster id.
    pub(crate) fn boundary(&self, ctx: &Ctx<'_>, a: &ClusterInfo) -> Rc<HashSet<u32>> {
        if let Some(b) = ctx.boundaries.borrow().get(&a.id()) {
            return Rc::clone(b);
        }
        let o = self.o(ctx);
        let mut out: HashSet<u32> = HashSet::new();
        for &m in &a.members {
            ctx.with_nbrs(|nbrs| {
                o.neighbors_into(m, nbrs);
                for &w in nbrs.iter() {
                    if let Some(c) = self.status(ctx, w).center() {
                        if c != a.cell_center {
                            out.insert(c.raw());
                        }
                    }
                }
            });
        }
        let rc = Rc::new(out);
        ctx.boundaries.borrow_mut().insert(a.id(), Rc::clone(&rc));
        rc
    }

    /// Minimum-label-ID edge in `E(A, B)` (endpoints returned A-side first).
    fn min_edge_between(
        &self,
        ctx: &Ctx<'_>,
        a: &ClusterInfo,
        b_set: &HashSet<u32>,
    ) -> Option<(VertexId, VertexId)> {
        let o = self.o(ctx);
        let mut best: Option<((u64, u64), (VertexId, VertexId))> = None;
        for &m in &a.members {
            ctx.with_nbrs(|nbrs| {
                o.neighbors_into(m, nbrs);
                for &w in nbrs.iter() {
                    if b_set.contains(&w.raw()) {
                        let k = edge_key(o.label(m), o.label(w));
                        if best.is_none_or(|(cur, _)| k < cur) {
                            best = Some((k, (m, w)));
                        }
                    }
                }
            });
        }
        best.map(|(_, e)| e)
    }

    /// Minimum-label-ID edge in `E(A, Vor(cell))` for a foreign cell.
    fn min_edge_to_cell(
        &self,
        ctx: &Ctx<'_>,
        a: &ClusterInfo,
        cell: VertexId,
    ) -> Option<(VertexId, VertexId)> {
        let o = self.o(ctx);
        let mut best: Option<((u64, u64), (VertexId, VertexId))> = None;
        for &m in &a.members {
            ctx.with_nbrs(|nbrs| {
                o.neighbors_into(m, nbrs);
                for &w in nbrs.iter() {
                    if self.status(ctx, w).center() == Some(cell) {
                        let k = edge_key(o.label(m), o.label(w));
                        if best.is_none_or(|(cur, _)| k < cur) {
                            best = Some((k, (m, w)));
                        }
                    }
                }
            });
        }
        best.map(|(_, e)| e)
    }

    /// Marked cells adjacent to cluster `a` (from its boundary), plus its
    /// own cell when marked — the rule (2) emptiness test set.
    fn marked_adjacent(&self, ctx: &Ctx<'_>, a: &ClusterInfo) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .boundary(ctx, a)
            .iter()
            .copied()
            .filter(|&c| {
                self.mark_coin()
                    .flip(self.oracle().label(VertexId::from(c)))
            })
            .collect();
        out.sort_unstable();
        if self.mark_coin().flip(self.oracle().label(a.cell_center)) {
            out.push(a.cell_center.raw());
        }
        out
    }

    /// Rule (3) from the `from` side: is `edge = (x, y)` (with `x ∈ from`,
    /// `y ∈ to`, different cells) the connection `from → Vor(c(to))`
    /// justified by some marked cluster that `to` participates in?
    fn rule3(
        &self,
        ctx: &Ctx<'_>,
        from: &ClusterInfo,
        to: &ClusterInfo,
        edge: (VertexId, VertexId),
    ) -> bool {
        // The queried edge must be the minimum edge from `from` into the
        // whole cell of `to`.
        match self.min_edge_to_cell(ctx, from, to.cell_center) {
            Some(e) if same_edge(e, edge) => {}
            _ => return false,
        }
        let boundary_from = self.boundary(ctx, from);
        let to_center_raw = to.cell_center.raw();
        // Enumerate marked cells adjacent to `to` (excluding its own cell).
        for m in self.marked_adjacent(ctx, to) {
            if m == to_center_raw {
                continue;
            }
            let Some((_, w_m)) = self.min_edge_to_cell(ctx, to, VertexId::from(m)) else {
                continue;
            };
            // `to` participates in the cluster-of-clusters of C = cluster of
            // the minimum-edge endpoint inside the marked cell.
            let c_cluster = self.cluster(ctx, w_m);
            let boundary_c = self.boundary(ctx, &c_cluster);
            // X = c(∂from) ∩ c(∂C); c(to) must be among the q lowest ranks.
            if !boundary_from.contains(&to_center_raw) || !boundary_c.contains(&to_center_raw) {
                continue;
            }
            let rank_to = self.ranks().rank(self.oracle().label(to.cell_center));
            let lower = boundary_from
                .intersection(&boundary_c)
                .filter(|&&c| self.ranks().rank(self.oracle().label(VertexId::from(c))) < rank_to)
                .count();
            if lower < self.params().q {
                return true;
            }
        }
        false
    }
}

fn same_edge(a: (VertexId, VertexId), b: (VertexId, VertexId)) -> bool {
    (a.0 == b.0 && a.1 == b.1) || (a.0 == b.1 && a.1 == b.0)
}

/// Whether the dense–dense, different-cell edge `(u, v)` is kept by
/// `H^(B)_dense` (rules (1)–(3) of Figure 10).
pub(crate) fn dense_contains<O: Oracle>(
    lca: &K2Spanner<O>,
    ctx: &Ctx<'_>,
    u: VertexId,
    v: VertexId,
    _su: &VertexStatus,
    _sv: &VertexStatus,
) -> bool {
    let a = lca.cluster(ctx, u);
    let b = lca.cluster(ctx, v);
    let a_marked = lca.mark_coin().flip(lca.oracle().label(a.cell_center));
    let b_marked = lca.mark_coin().flip(lca.oracle().label(b.cell_center));

    // Rule (1): a marked cluster connects to each adjacent cluster via the
    // minimum-ID edge.
    if a_marked || b_marked {
        if let Some(e) = lca.min_edge_between(ctx, &a, &b.member_set) {
            if same_edge(e, (u, v)) {
                return true;
            }
        }
    }

    // Rule (2): a cluster with no adjacent marked cell connects to each
    // adjacent Voronoi cell.
    if lca.marked_adjacent(ctx, &b).is_empty() {
        if let Some(e) = lca.min_edge_to_cell(ctx, &b, a.cell_center) {
            if same_edge(e, (v, u)) {
                return true;
            }
        }
    }
    if lca.marked_adjacent(ctx, &a).is_empty() {
        if let Some(e) = lca.min_edge_to_cell(ctx, &a, b.cell_center) {
            if same_edge(e, (u, v)) {
                return true;
            }
        }
    }

    // Rule (3), both orientations.
    if lca.rule3(ctx, &a, &b, (u, v)) {
        return true;
    }
    if lca.rule3(ctx, &b, &a, (v, u)) {
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{K2Params, K2Spanner};
    use lca_graph::gen::structured;
    use lca_rand::Seed;

    /// Parameters forcing every vertex dense (center prob 1): each vertex is
    /// its own cell center.
    fn all_centers(n: usize, k: usize) -> K2Params {
        let mut p = K2Params::for_n(n, k);
        p.center_prob = 1.0;
        p
    }

    #[test]
    fn singleton_cells_when_everyone_is_a_center() {
        let g = structured::cycle(10);
        let lca = K2Spanner::new(&g, all_centers(10, 2), Seed::new(1));
        let ctx = Ctx::default();
        for v in g.vertices() {
            let st = lca.status(&ctx, v);
            assert_eq!(st.center(), Some(v));
            assert_eq!(st.parent(), None);
            assert_eq!(lca.tree_children(&ctx, v).len(), 0);
            assert_eq!(lca.subtree_size(&ctx, v), Some(1));
            let cl = lca.cluster(&ctx, v);
            assert_eq!(cl.members, vec![v]);
            assert_eq!(cl.cell_center, v);
        }
    }

    #[test]
    fn boundary_of_singleton_cell_is_its_neighborhood() {
        let g = structured::cycle(8);
        let lca = K2Spanner::new(&g, all_centers(8, 2), Seed::new(1));
        let ctx = Ctx::default();
        let v = lca_graph::VertexId::new(3);
        let cl = lca.cluster(&ctx, v);
        let b = lca.boundary(&ctx, &cl);
        let expect: HashSet<u32> = g.neighbors(v).iter().map(|w| w.raw()).collect();
        assert_eq!(*b, expect);
    }

    #[test]
    fn children_and_subtrees_partition_a_star_cell() {
        // Star with the hub as the only center: the whole star is one cell
        // with the hub as root and leaves as children.
        let g = structured::star(12);
        let mut p = K2Params::for_n(12, 2);
        p.center_prob = 0.0;
        let lca = K2Spanner::new(&g, p, Seed::new(2));
        // Force "hub is center": rebuild with probability 1 only achievable
        // via a coin; instead verify with center_prob 1 that each leaf's
        // cell is itself. The structured tree test lives in k2_global tests;
        // here check the degenerate sparse case instead.
        let ctx = Ctx::default();
        assert!(lca.status(&ctx, lca_graph::VertexId::new(0)).is_sparse());
    }

    #[test]
    fn cluster_is_memoized_for_all_members() {
        let g = structured::grid(5, 5);
        let mut p = K2Params::for_n(25, 2);
        p.center_prob = 0.3;
        let lca = K2Spanner::new(&g, p, Seed::new(7));
        let ctx = Ctx::default();
        for v in g.vertices() {
            if lca.status(&ctx, v).is_sparse() {
                continue;
            }
            let cl = lca.cluster(&ctx, v);
            for &m in &cl.members {
                let cm = lca.cluster(&ctx, m);
                assert_eq!(cm.id(), cl.id(), "member {m} resolved a different cluster");
                assert_eq!(cm.cell_center, cl.cell_center);
            }
            assert!(cl.member_set.contains(&v.raw()));
        }
    }

    #[test]
    fn clusters_are_bounded_by_2l() {
        let g = structured::grid(8, 8);
        let mut p = K2Params::for_n(64, 3);
        p.center_prob = 0.1;
        p.l = 4;
        let lca = K2Spanner::new(&g, p.clone(), Seed::new(9));
        let ctx = Ctx::default();
        for v in g.vertices() {
            if lca.status(&ctx, v).is_sparse() {
                continue;
            }
            let cl = lca.cluster(&ctx, v);
            assert!(
                cl.members.len() <= 2 * p.l,
                "cluster of {v} has {} members > 2L = {}",
                cl.members.len(),
                2 * p.l
            );
        }
    }
}
