//! The Voronoi supergraph G_Vor / H_Vor (paper Section 4.3.5).
//!
//! Contracting every Voronoi cell to a supervertex turns the dense subgraph
//! into `G_Vor`; applying the same contraction to the spanner's inter-cell
//! edges yields `H_Vor`. Lemma 4.12 asserts that `H_Vor` preserves the
//! connectivity of `G_Vor`, and Lemma 4.13 that its stretch is O(k) w.h.p. —
//! the two facts that compose into the O(k²) bound once each cell's
//! diameter-2k Voronoi tree is expanded back.
//!
//! This module materializes both supergraphs from a [`K2Partition`] so tests
//! and benches can check those lemmas directly.

use std::collections::{HashMap, HashSet, VecDeque};

use lca_graph::{Graph, VertexId};

use crate::global::{EdgeSet, K2Partition};

/// The contracted cell-level view of the dense subgraph and its spanner.
#[derive(Debug)]
pub struct Supergraph {
    /// Cell centers, one per supervertex, sorted by raw index.
    pub cells: Vec<VertexId>,
    /// Adjacency between cells in `G_Vor` (indices into `cells`).
    pub g_adj: Vec<HashSet<usize>>,
    /// Adjacency between cells in `H_Vor`.
    pub h_adj: Vec<HashSet<usize>>,
}

impl Supergraph {
    /// Builds the supergraphs from a partition and a spanner edge set.
    pub fn build(graph: &Graph, partition: &K2Partition, spanner: &EdgeSet) -> Self {
        let mut cells: Vec<VertexId> = partition
            .cell
            .iter()
            .flatten()
            .copied()
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        cells.sort_by_key(|c| c.raw());
        let index: HashMap<u32, usize> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| (c.raw(), i))
            .collect();
        let mut g_adj = vec![HashSet::new(); cells.len()];
        let mut h_adj = vec![HashSet::new(); cells.len()];
        for (u, v) in graph.edges() {
            let (Some(cu), Some(cv)) = (partition.cell[u.index()], partition.cell[v.index()])
            else {
                continue;
            };
            if cu == cv {
                continue;
            }
            let (iu, iv) = (index[&cu.raw()], index[&cv.raw()]);
            g_adj[iu].insert(iv);
            g_adj[iv].insert(iu);
            let key = if u.raw() < v.raw() {
                (u.raw(), v.raw())
            } else {
                (v.raw(), u.raw())
            };
            if spanner.contains(&key) {
                h_adj[iu].insert(iv);
                h_adj[iv].insert(iu);
            }
        }
        Self {
            cells,
            g_adj,
            h_adj,
        }
    }

    /// Number of supervertices (cells).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Checks Lemma 4.12: every pair of cells connected in `G_Vor` is
    /// connected in `H_Vor`. Returns the number of connected components of
    /// each graph; the lemma holds iff they are equal.
    pub fn connectivity_preserved(&self) -> (usize, usize) {
        (components(&self.g_adj), components(&self.h_adj))
    }

    /// The maximum, over adjacent cell pairs in `G_Vor`, of their distance
    /// in `H_Vor` — the supergraph stretch of Lemma 4.13 (`None` if some
    /// adjacent pair is disconnected in `H_Vor`).
    pub fn max_cell_stretch(&self, cap: usize) -> Option<usize> {
        let mut worst = 0usize;
        for a in 0..self.cell_count() {
            // One BFS per cell covers all its adjacent pairs.
            let dist = bfs(&self.h_adj, a, cap);
            for &b in &self.g_adj[a] {
                match dist.get(&b) {
                    Some(&d) => worst = worst.max(d),
                    None => return None,
                }
            }
        }
        Some(worst)
    }
}

fn components(adj: &[HashSet<usize>]) -> usize {
    let n = adj.len();
    let mut seen = vec![false; n];
    let mut count = 0;
    for s in 0..n {
        if seen[s] {
            continue;
        }
        count += 1;
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(x) = stack.pop() {
            for &w in &adj[x] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
    }
    count
}

fn bfs(adj: &[HashSet<usize>], src: usize, cap: usize) -> HashMap<usize, usize> {
    let mut dist = HashMap::new();
    dist.insert(src, 0);
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(x) = queue.pop_front() {
        let dx = dist[&x];
        if dx >= cap {
            continue;
        }
        for &w in &adj[x] {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                e.insert(dx + 1);
                queue.push_back(w);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::{k2_partition, k2_spanner_global};
    use crate::K2Params;
    use lca_graph::gen::RegularBuilder;
    use lca_rand::Seed;

    fn setup(n: usize, k: usize, c: f64, seed: u64) -> (Graph, Supergraph) {
        let g = RegularBuilder::new(n, 4)
            .seed(Seed::new(seed))
            .build()
            .unwrap();
        let params = K2Params::with_center_constant(n, k, c);
        let part = k2_partition(&g, &params, Seed::new(seed + 1));
        let h = k2_spanner_global(&g, &params, Seed::new(seed + 1));
        let sg = Supergraph::build(&g, &part, &h);
        (g, sg)
    }

    #[test]
    fn lemma_4_12_connectivity_is_preserved() {
        for seed in [1u64, 2, 3] {
            let (_, sg) = setup(400, 2, 3.0, seed);
            assert!(sg.cell_count() > 1, "want a nontrivial supergraph");
            let (gc, hc) = sg.connectivity_preserved();
            assert_eq!(gc, hc, "seed {seed}: H_Vor split a G_Vor component");
        }
    }

    #[test]
    fn lemma_4_13_cell_stretch_is_small() {
        let (_, sg) = setup(600, 2, 3.0, 7);
        let stretch = sg.max_cell_stretch(64);
        // w.h.p. O(k); allow generous slack but insist it is far below the
        // trivial bound (#cells).
        assert!(
            matches!(stretch, Some(s) if s <= 16),
            "cell stretch {stretch:?} on {} cells",
            sg.cell_count()
        );
    }

    #[test]
    fn supergraph_of_all_centers_mirrors_the_graph() {
        // center prob 1 ⇒ every vertex its own cell ⇒ G_Vor ≅ G_dense = G.
        let g = lca_graph::gen::structured::cycle(12);
        let mut params = K2Params::for_n(12, 2);
        params.center_prob = 1.0;
        let part = k2_partition(&g, &params, Seed::new(1));
        let h = k2_spanner_global(&g, &params, Seed::new(1));
        let sg = Supergraph::build(&g, &part, &h);
        assert_eq!(sg.cell_count(), 12);
        let degree_sum: usize = sg.g_adj.iter().map(|a| a.len()).sum();
        assert_eq!(degree_sum, 2 * g.edge_count());
    }
}
