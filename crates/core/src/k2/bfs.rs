//! The center-finding BFS variant (paper Section 4.2, Figure 6).
//!
//! Starting from `v`, vertices are discovered in increasing distance, ties
//! broken by the *lexicographically-first shortest path* from `v`: the queue
//! is FIFO and each dequeued vertex enqueues its undiscovered neighbors in
//! increasing label order. The search stops at the first discovered center
//! (giving `c(v)` and the Voronoi-tree path `π(v, c(v))`), or declares `v`
//! *sparse* after exhausting radius `k` without meeting a center.
//!
//! The paper's `D^k_L` device stops after `L` discoveries to bound probes
//! w.h.p.; correctness of the partition must not depend on it, so this
//! implementation keeps searching to radius `k` (the event that more than
//! `L` discoveries are needed is exactly the hitting-set failure the paper
//! bounds) while reporting the discovery count for instrumentation.

use std::collections::{HashMap, VecDeque};

use lca_graph::VertexId;
use lca_probe::Oracle;
use lca_rand::Coin;

/// Outcome of the center search from one vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VertexStatus {
    /// No center within distance `k`: the vertex is sparse (Definition 4.1).
    Sparse {
        /// Number of vertices discovered before giving up (≤ `L` w.h.p.).
        discovered: usize,
    },
    /// A center was found: the vertex is dense.
    Dense {
        /// The first-discovered center `c(v)`.
        center: VertexId,
        /// The lexicographically-first shortest path `π(v, c(v))`,
        /// starting at `v` and ending at the center.
        path: Vec<VertexId>,
        /// Number of vertices discovered before the center appeared.
        discovered: usize,
    },
}

impl VertexStatus {
    /// Whether the vertex is sparse.
    pub fn is_sparse(&self) -> bool {
        matches!(self, VertexStatus::Sparse { .. })
    }

    /// The Voronoi cell center, if dense.
    pub fn center(&self) -> Option<VertexId> {
        match self {
            VertexStatus::Dense { center, .. } => Some(*center),
            VertexStatus::Sparse { .. } => None,
        }
    }

    /// The parent in the Voronoi tree (next vertex on `π(v, c(v))`), if
    /// dense and not itself the center.
    pub fn parent(&self) -> Option<VertexId> {
        match self {
            VertexStatus::Dense { path, .. } => path.get(1).copied(),
            VertexStatus::Sparse { .. } => None,
        }
    }
}

/// Runs the BFS variant from `v` with radius `k` against `is_center`.
///
/// Probe cost: one Degree plus `deg(x)` Neighbor probes per expanded vertex
/// `x`; the paper's analysis bounds the number of expansions by `O(L)` w.h.p.
pub fn center_search<O: Oracle>(
    oracle: &O,
    v: VertexId,
    k: usize,
    is_center: &Coin,
) -> VertexStatus {
    if is_center.flip(oracle.label(v)) {
        return VertexStatus::Dense {
            center: v,
            path: vec![v],
            discovered: 1,
        };
    }
    // parent map doubles as the discovered set.
    let mut parent: HashMap<u32, u32> = HashMap::new();
    let mut dist: HashMap<u32, usize> = HashMap::new();
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    parent.insert(v.raw(), v.raw());
    dist.insert(v.raw(), 0);
    queue.push_back(v);
    let mut discovered = 1usize;
    // One scratch buffer for every expansion: the buffered scan issues the
    // same `degree` + `neighbor(0..d)` probes the hand-written loop did,
    // without a per-vertex allocation.
    let mut nbrs: Vec<VertexId> = Vec::new();
    while let Some(x) = queue.pop_front() {
        let dx = dist[&x.raw()];
        if dx >= k {
            continue;
        }
        oracle.neighbors_into(x, &mut nbrs);
        // Enqueue undiscovered neighbors in increasing label order — this is
        // what makes discovery order lexicographic in π(v, ·).
        nbrs.sort_by_key(|&w| oracle.label(w));
        for &w in &nbrs {
            if parent.contains_key(&w.raw()) {
                continue;
            }
            parent.insert(w.raw(), x.raw());
            dist.insert(w.raw(), dx + 1);
            discovered += 1;
            if is_center.flip(oracle.label(w)) {
                // Reconstruct π(v, w) from the BFS-tree parents.
                let mut path = vec![w];
                let mut cur = w.raw();
                while cur != v.raw() {
                    cur = parent[&cur];
                    path.push(VertexId::from(cur));
                }
                path.reverse();
                return VertexStatus::Dense {
                    center: w,
                    path,
                    discovered,
                };
            }
            queue.push_back(w);
        }
    }
    VertexStatus::Sparse { discovered }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lca_graph::gen::structured;
    use lca_graph::GraphBuilder;
    use lca_rand::Seed;

    fn center_at(labels: &[u64]) -> Coin {
        // A coin that flips heads exactly on the given labels: emulate by
        // probability 0 and a wrapper is impossible, so instead pick a seed
        // where... simpler: use probability thresholds — tests below use
        // explicit label-coins via this helper graph instead.
        let _ = labels;
        unreachable!("helper not used directly")
    }

    /// Builds a coin that is heads on a chosen set by brute-force seed
    /// search (tiny domains make this fast and deterministic).
    fn coin_heads_on(heads: &[u64], domain: u64) -> Coin {
        'seed: for s in 0..20_000u64 {
            let c = Coin::new(Seed::new(s), 0.3, 8);
            for x in 0..domain {
                let want = heads.contains(&x);
                if c.flip(x) != want {
                    continue 'seed;
                }
            }
            return c;
        }
        panic!("no seed realizes the requested head set {heads:?}");
    }

    #[test]
    fn self_center_is_distance_zero() {
        let g = structured::path(4);
        let coin = coin_heads_on(&[1], 4);
        let st = center_search(&g, VertexId::new(1), 3, &coin);
        assert_eq!(
            st,
            VertexStatus::Dense {
                center: VertexId::new(1),
                path: vec![VertexId::new(1)],
                discovered: 1
            }
        );
        assert_eq!(st.parent(), None);
    }

    #[test]
    fn sparse_when_no_center_in_radius() {
        let g = structured::path(10);
        let coin = coin_heads_on(&[9], 10);
        // From vertex 0 with k = 3, vertex 9 is out of reach.
        let st = center_search(&g, VertexId::new(0), 3, &coin);
        assert!(st.is_sparse());
        // With k = 9 it becomes dense.
        let st = center_search(&g, VertexId::new(0), 9, &coin);
        assert_eq!(st.center(), Some(VertexId::new(9)));
    }

    #[test]
    fn path_is_shortest_and_lexicographic() {
        // Diamond: 0-1, 0-2, 1-3, 2-3. Center at 3. Two shortest paths from
        // 0: via 1 and via 2; lexicographically-first goes via 1.
        let g = GraphBuilder::new(4)
            .edges([(0, 2), (0, 1), (1, 3), (2, 3)])
            .build()
            .unwrap();
        let coin = coin_heads_on(&[3], 4);
        let st = center_search(&g, VertexId::new(0), 3, &coin);
        match st {
            VertexStatus::Dense { center, path, .. } => {
                assert_eq!(center, VertexId::new(3));
                assert_eq!(
                    path,
                    vec![VertexId::new(0), VertexId::new(1), VertexId::new(3)]
                );
            }
            other => panic!("expected dense, got {other:?}"),
        }
    }

    #[test]
    fn first_discovered_center_wins_over_lower_id() {
        // Star plus tail: centers at 2 and 5; from vertex 1, both at
        // distance 2 via hub 0. Discovery order after hub expansion is by
        // label: 2 before 5, so 2 wins even though both are equidistant.
        let g = GraphBuilder::new(6)
            .edges([(1, 0), (0, 5), (0, 2), (0, 3), (0, 4)])
            .build()
            .unwrap();
        let coin = coin_heads_on(&[2, 5], 6);
        let st = center_search(&g, VertexId::new(1), 3, &coin);
        assert_eq!(st.center(), Some(VertexId::new(2)));
    }

    #[test]
    fn closest_center_beats_farther_one() {
        let g = structured::path(7);
        let coin = coin_heads_on(&[1, 6], 7);
        let st = center_search(&g, VertexId::new(3), 4, &coin);
        // Distance 2 to center 1, distance 3 to center 6.
        assert_eq!(st.center(), Some(VertexId::new(1)));
        assert_eq!(st.parent(), Some(VertexId::new(2)));
    }

    #[test]
    fn consecutive_path_vertices_share_center_prefix() {
        // Voronoi-cell connectedness (Section 4.3.1): every vertex on
        // π(v, c(v)) chooses the same center.
        let g = structured::grid(4, 5);
        let coin = Coin::new(Seed::new(11), 0.15, 8);
        for v in g.vertices() {
            if let VertexStatus::Dense { center, path, .. } = center_search(&g, v, 4, &coin) {
                for &w in &path {
                    let stw = center_search(&g, w, 4, &coin);
                    assert_eq!(
                        stw.center(),
                        Some(center),
                        "vertex {w} on π({v},{center}) chose a different center"
                    );
                }
            }
        }
    }

    #[test]
    fn parents_form_trees_toward_centers() {
        let g = structured::grid(5, 5);
        let coin = Coin::new(Seed::new(3), 0.2, 8);
        for v in g.vertices() {
            if let VertexStatus::Dense { center, path, .. } = center_search(&g, v, 5, &coin) {
                // Path is a real path in the graph ending at the center.
                assert_eq!(*path.first().unwrap(), v);
                assert_eq!(*path.last().unwrap(), center);
                for pair in path.windows(2) {
                    assert!(g.has_edge(pair[0], pair[1]));
                }
                // Parent relation matches the path.
                let st = center_search(&g, v, 5, &coin);
                assert_eq!(st.parent(), path.get(1).copied());
            }
        }
    }

    #[test]
    #[should_panic(expected = "helper not used directly")]
    fn unused_helper_guard() {
        let _ = center_at(&[]);
    }
}
