//! A k-round Baswana–Sen simulation on an explicit (sub)graph.
//!
//! The O(k²)-spanner handles sparse-region edges by locally simulating a
//! k-round distributed (2k−1)-spanner algorithm (Theorem 4.4, Baswana–Sen
//! with O(log n)-wise independence per Censor-Hillel–Parter–Schwartzman).
//! This module implements the simulation over a [`LocalGraph`] — either the
//! whole of `G_sparse` (global reference) or the radius-k probe ball around
//! a query (LCA path); determinism of every tie-break makes the two agree.
//!
//! Unweighted Baswana–Sen, with adjacency positions as the weight proxy:
//!
//! * `k−1` rounds of cluster refinement. Clusters are identified by their
//!   original center; cluster `c` survives round `i` iff an Θ(log n)-wise
//!   independent coin on `(i, label(c))` is heads (probability `n^{−1/k}`).
//! * A vertex in an unsampled cluster scans its active incident edges in
//!   list order, grouping neighbor clusters by first occurrence. With no
//!   sampled neighbor cluster it keeps one edge per neighboring cluster and
//!   retires; otherwise it joins the first sampled cluster, keeps the join
//!   edge plus one edge to every cluster first-seen *earlier*, and discards
//!   the edges it just resolved.
//! * Phase 2 keeps one edge from every surviving vertex to each adjacent
//!   cluster.
//!
//! The resulting subgraph is a (2k−1)-spanner of the simulated graph, and
//! every kept edge is kept *by one of its endpoints* — the property that
//! makes two-ball local simulation sufficient (Lemma 4.5).

use std::collections::{HashMap, HashSet};

use lca_graph::VertexId;
use lca_rand::{Coin, Seed};

/// An explicit graph fragment with stable vertex identities, labels and
/// *original* adjacency order — the simulation substrate.
#[derive(Debug, Clone)]
pub struct LocalGraph {
    ids: Vec<VertexId>,
    labels: Vec<u64>,
    index: HashMap<u32, usize>,
    adj: Vec<Vec<usize>>,
}

impl LocalGraph {
    /// Creates an empty fragment.
    pub fn new() -> Self {
        Self {
            ids: Vec::new(),
            labels: Vec::new(),
            index: HashMap::new(),
            adj: Vec::new(),
        }
    }

    /// Adds a vertex (idempotent); returns its local index.
    pub fn add_vertex(&mut self, v: VertexId, label: u64) -> usize {
        if let Some(&i) = self.index.get(&v.raw()) {
            return i;
        }
        let i = self.ids.len();
        self.ids.push(v);
        self.labels.push(label);
        self.index.insert(v.raw(), i);
        self.adj.push(Vec::new());
        i
    }

    /// Appends `w` to `v`'s local adjacency list. Both must already be
    /// vertices; callers must append in the original adjacency order of `v`.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is unknown.
    pub fn push_neighbor(&mut self, v: VertexId, w: VertexId) {
        let iv = self.index[&v.raw()];
        let iw = self.index[&w.raw()];
        self.adj[iv].push(iw);
    }

    /// Whether `v` is present.
    pub fn contains(&self, v: VertexId) -> bool {
        self.index.contains_key(&v.raw())
    }

    /// Number of vertices in the fragment.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the fragment is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

impl Default for LocalGraph {
    fn default() -> Self {
        Self::new()
    }
}

/// Parameters of the Baswana–Sen simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BsParams {
    /// The stretch parameter `k` (the algorithm runs `k−1` rounds plus
    /// phase 2, producing a (2k−1)-spanner).
    pub k: usize,
    /// Per-round cluster survival probability (paper: `n^{−1/k}` with the
    /// *global* n).
    pub sample_prob: f64,
    /// Independence of the per-round sampling hashes.
    pub independence: usize,
}

/// Runs the simulation and returns the kept edges, normalized on global
/// vertex ids.
pub fn simulate(graph: &LocalGraph, params: BsParams, seed: Seed) -> HashSet<(u32, u32)> {
    let n = graph.len();
    let mut added: HashSet<(u32, u32)> = HashSet::new();
    if n == 0 {
        return added;
    }
    let key = |a: usize, b: usize| {
        let (x, y) = (graph.ids[a].raw(), graph.ids[b].raw());
        if x < y {
            (x, y)
        } else {
            (y, x)
        }
    };
    // cluster[v] = Some(local index of the cluster center), None = retired.
    let mut cluster: Vec<Option<usize>> = (0..n).map(Some).collect();
    // Active edges (normalized local pairs).
    let mut active: HashSet<(usize, usize)> = HashSet::new();
    let norm = |a: usize, b: usize| if a < b { (a, b) } else { (b, a) };
    for (v, nbrs) in graph.adj.iter().enumerate() {
        for &w in nbrs {
            if v != w {
                active.insert(norm(v, w));
            }
        }
    }

    let rounds = params.k.saturating_sub(1);
    for round in 1..=rounds {
        let coin = Coin::new(
            seed.derive2(0xB5_0000, round as u64),
            params.sample_prob,
            params.independence,
        );
        let sampled = |c: usize| coin.flip(graph.labels[c]);
        let mut next: Vec<Option<usize>> = vec![None; n];
        let mut removals: Vec<(usize, usize)> = Vec::new();
        for v in 0..n {
            let Some(cv) = cluster[v] else {
                continue;
            };
            if sampled(cv) {
                next[v] = Some(cv);
                continue;
            }
            // First occurrence of each distinct active neighbor cluster, in
            // adjacency order.
            let mut seen: HashSet<usize> = HashSet::new();
            let mut firsts: Vec<(usize, usize)> = Vec::new(); // (center, nbr)
            for &w in &graph.adj[v] {
                if !active.contains(&norm(v, w)) {
                    continue;
                }
                let Some(cw) = cluster[w] else {
                    continue;
                };
                if cw == cv {
                    continue;
                }
                if seen.insert(cw) {
                    firsts.push((cw, w));
                }
            }
            let join = firsts.iter().position(|&(c, _)| sampled(c));
            match join {
                None => {
                    // Retire: keep one edge per neighboring cluster, drop all
                    // incident edges.
                    for &(_, w) in &firsts {
                        added.insert(key(v, w));
                    }
                    for &w in &graph.adj[v] {
                        removals.push(norm(v, w));
                    }
                    next[v] = None;
                }
                Some(pos) => {
                    let (cstar, wstar) = firsts[pos];
                    added.insert(key(v, wstar));
                    next[v] = Some(cstar);
                    // One edge per cluster first-seen before the joined one;
                    // those edges (and edges into the joined cluster) are
                    // resolved now.
                    let resolved: HashSet<usize> = firsts[..pos]
                        .iter()
                        .map(|&(c, _)| c)
                        .chain(std::iter::once(cstar))
                        .collect();
                    for &(_, w) in &firsts[..pos] {
                        added.insert(key(v, w));
                    }
                    for &w in &graph.adj[v] {
                        if let Some(cw) = cluster[w] {
                            if resolved.contains(&cw) {
                                removals.push(norm(v, w));
                            }
                        }
                    }
                }
            }
        }
        for e in removals {
            active.remove(&e);
        }
        cluster = next;
        // Drop retired endpoints and (new) intra-cluster edges.
        active.retain(|&(a, b)| match (cluster[a], cluster[b]) {
            (Some(ca), Some(cb)) => ca != cb,
            _ => false,
        });
    }

    // Phase 2: one edge per adjacent cluster.
    for v in 0..n {
        let Some(cv) = cluster[v] else {
            continue;
        };
        let mut seen: HashSet<usize> = HashSet::new();
        for &w in &graph.adj[v] {
            if !active.contains(&norm(v, w)) {
                continue;
            }
            let Some(cw) = cluster[w] else {
                continue;
            };
            if cw != cv && seen.insert(cw) {
                added.insert(key(v, w));
            }
        }
    }

    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use lca_graph::Graph;

    /// Wraps a whole [`Graph`] as a [`LocalGraph`].
    pub(crate) fn from_graph(g: &Graph) -> LocalGraph {
        let mut lg = LocalGraph::new();
        for v in g.vertices() {
            lg.add_vertex(v, g.label(v));
        }
        for v in g.vertices() {
            for &w in g.neighbors(v) {
                lg.push_neighbor(v, w);
            }
        }
        lg
    }

    fn stretch_ok(g: &Graph, kept: &HashSet<(u32, u32)>, bound: u32) -> bool {
        let sub = lca_graph::Subgraph::from_edges(
            g,
            kept.iter()
                .map(|&(a, b)| (VertexId::from(a), VertexId::from(b))),
        );
        matches!(sub.max_edge_stretch(g, bound + 1), Some(s) if s <= bound)
    }

    #[test]
    fn k1_keeps_every_edge() {
        let g = lca_graph::gen::structured::complete(8);
        let kept = simulate(
            &from_graph(&g),
            BsParams {
                k: 1,
                sample_prob: 0.5,
                independence: 8,
            },
            Seed::new(1),
        );
        assert_eq!(kept.len(), g.edge_count());
    }

    #[test]
    fn produces_2k_minus_1_spanner() {
        for k in [2usize, 3, 4] {
            for s in 0..4u64 {
                let g = lca_graph::gen::GnpBuilder::new(60, 0.25)
                    .seed(lca_rand::Seed::new(s))
                    .build();
                let p = BsParams {
                    k,
                    sample_prob: (60f64).powf(-1.0 / k as f64),
                    independence: 12,
                };
                let kept = simulate(&from_graph(&g), p, Seed::new(100 + s));
                assert!(
                    stretch_ok(&g, &kept, (2 * k - 1) as u32),
                    "k={k} seed={s}: stretch exceeded {}",
                    2 * k - 1
                );
            }
        }
    }

    #[test]
    fn spanner_is_sparser_than_dense_input() {
        let g = lca_graph::gen::structured::complete(40);
        let p = BsParams {
            k: 2,
            sample_prob: (40f64).powf(-0.5),
            independence: 12,
        };
        let kept = simulate(&from_graph(&g), p, Seed::new(7));
        assert!(kept.len() < g.edge_count());
        assert!(stretch_ok(&g, &kept, 3));
    }

    #[test]
    fn deterministic_in_seed() {
        let g = lca_graph::gen::GnpBuilder::new(50, 0.3)
            .seed(lca_rand::Seed::new(9))
            .build();
        let p = BsParams {
            k: 3,
            sample_prob: 0.3,
            independence: 8,
        };
        let a = simulate(&from_graph(&g), p, Seed::new(5));
        let b = simulate(&from_graph(&g), p, Seed::new(5));
        assert_eq!(a, b);
        let c = simulate(&from_graph(&g), p, Seed::new(6));
        // Different seeds give different spanners on dense-enough inputs
        // (not guaranteed, but overwhelmingly likely here).
        assert_ne!(a, c);
    }

    #[test]
    fn empty_and_single_vertex() {
        let lg = LocalGraph::new();
        let p = BsParams {
            k: 2,
            sample_prob: 0.5,
            independence: 4,
        };
        assert!(simulate(&lg, p, Seed::new(0)).is_empty());
        let mut lg = LocalGraph::new();
        lg.add_vertex(VertexId::new(0), 0);
        assert!(simulate(&lg, p, Seed::new(0)).is_empty());
        assert!(!lg.is_empty());
        assert_eq!(lg.len(), 1);
    }

    #[test]
    fn kept_edges_are_graph_edges() {
        let g = lca_graph::gen::GnpBuilder::new(40, 0.3)
            .seed(lca_rand::Seed::new(2))
            .build();
        let p = BsParams {
            k: 3,
            sample_prob: 0.3,
            independence: 8,
        };
        for (a, b) in simulate(&from_graph(&g), p, Seed::new(3)) {
            assert!(g.has_edge(VertexId::from(a), VertexId::from(b)));
        }
    }

    #[test]
    fn add_vertex_is_idempotent() {
        let mut lg = LocalGraph::new();
        let a = lg.add_vertex(VertexId::new(7), 70);
        let b = lg.add_vertex(VertexId::new(7), 70);
        assert_eq!(a, b);
        assert_eq!(lg.len(), 1);
        assert!(lg.contains(VertexId::new(7)));
        assert!(!lg.contains(VertexId::new(8)));
    }
}
