//! Spanner verification: stretch, consistency, subset checks.

use lca_graph::{Graph, Subgraph, VertexId};

use crate::{EdgeSubgraphLca, LcaError};

/// The verdict of [`verify_spanner`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpannerVerdict {
    /// Maximum detour length over omitted host edges (`None` ⇒ some omitted
    /// edge's endpoints are disconnected in the subgraph, i.e. infinite
    /// stretch).
    pub max_stretch: Option<u32>,
    /// Edges kept.
    pub kept_edges: usize,
    /// Edges in the host graph.
    pub host_edges: usize,
    /// The claimed stretch bound that was checked.
    pub bound: usize,
}

impl SpannerVerdict {
    /// Whether the subgraph is a spanner within the claimed bound.
    pub fn holds(&self) -> bool {
        matches!(self.max_stretch, Some(s) if s as usize <= self.bound)
    }
}

/// Checks that `subgraph` is a `bound`-spanner of `graph`.
///
/// For unweighted spanners it suffices to check host edges: if every omitted
/// edge has a detour of length ≤ `bound`, every pairwise distance is
/// stretched by at most `bound` as well.
pub fn verify_spanner(graph: &Graph, subgraph: &Subgraph, bound: usize) -> SpannerVerdict {
    let max_stretch = subgraph.max_edge_stretch(graph, bound as u32 + 1);
    SpannerVerdict {
        max_stretch,
        kept_edges: subgraph.edge_count(),
        host_edges: graph.edge_count(),
        bound,
    }
}

/// Replays every edge query in both orientations and in two different global
/// orders, asserting the LCA's answers are identical — the executable
/// consistency requirement of Definition 1.4.
///
/// Returns the number of YES answers.
///
/// # Errors
///
/// Propagates [`LcaError`] from the LCA.
///
/// # Panics
///
/// Panics (with a descriptive message) on any inconsistency.
pub fn assert_query_consistency<L: EdgeSubgraphLca>(
    graph: &Graph,
    lca: &L,
) -> Result<usize, LcaError> {
    let edges: Vec<(VertexId, VertexId)> = graph.edges().collect();
    let forward: Vec<bool> = edges
        .iter()
        .map(|&(u, v)| lca.contains(u, v))
        .collect::<Result<_, _>>()?;
    // Reverse orientation.
    for (i, &(u, v)) in edges.iter().enumerate() {
        let back = lca.contains(v, u)?;
        assert_eq!(forward[i], back, "orientation-dependent answer on {u}-{v}");
    }
    // Reverse order re-query.
    for (i, &(u, v)) in edges.iter().enumerate().rev() {
        let again = lca.contains(u, v)?;
        assert_eq!(forward[i], again, "history-dependent answer on {u}-{v}");
    }
    Ok(forward.iter().filter(|&&b| b).count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ThreeSpanner, ThreeSpannerParams};
    use lca_graph::gen::{structured, GnpBuilder};
    use lca_rand::Seed;

    #[test]
    fn verdict_on_exact_spanner() {
        let g = structured::cycle(8);
        let all = Subgraph::from_edges(&g, g.edges());
        let v = verify_spanner(&g, &all, 1);
        assert!(v.holds());
        assert_eq!(v.max_stretch, Some(1));
        assert_eq!(v.kept_edges, 8);
    }

    #[test]
    fn verdict_detects_violation() {
        let g = structured::cycle(8);
        let tree = Subgraph::from_edges(&g, g.edges().take(7));
        let v = verify_spanner(&g, &tree, 3);
        assert!(!v.holds());
        // Detour exists but exceeds 3: reported as None (search capped).
        assert_eq!(v.max_stretch, None);
        let v = verify_spanner(&g, &tree, 7);
        assert!(v.holds());
        assert_eq!(v.max_stretch, Some(7));
    }

    #[test]
    fn verdict_detects_disconnection() {
        let g = structured::path(4);
        let partial = Subgraph::from_edges(&g, g.edges().take(1));
        let v = verify_spanner(&g, &partial, 10);
        assert!(!v.holds());
        assert_eq!(v.max_stretch, None);
    }

    #[test]
    fn consistency_harness_passes_for_three_spanner() {
        let g = GnpBuilder::new(50, 0.4).seed(Seed::new(7)).build();
        let lca = ThreeSpanner::new(&g, ThreeSpannerParams::for_n(50), Seed::new(8));
        let yes = assert_query_consistency(&g, &lca).unwrap();
        assert!(yes > 0);
    }
}
