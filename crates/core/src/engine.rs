//! Batched, thread-parallel query serving.
//!
//! LCA queries are independent by construction (Definition 1.4: every answer
//! is a function of `(graph, seed, query)` alone), which makes them
//! embarrassingly parallel — the observation Rubinfeld–Tamir–Vardi–Xie make
//! when motivating the model for huge inputs. [`QueryEngine`] exploits it:
//!
//! * [`QueryEngine::query_batch`] shards a slice of queries over OS threads
//!   against one shared `Send + Sync` oracle/LCA and returns the answers in
//!   input order.
//! * [`QueryEngine::materialize`] runs every edge query of a graph through
//!   an [`EdgeSubgraphLca`] in parallel and assembles the spanner.
//! * [`QueryEngine::measure_queries`] is the parallel counterpart of
//!   [`crate::measure_queries`]: each shard gets its *own*
//!   [`CountingOracle`] and its own LCA instance built by a caller-supplied
//!   factory from the same seed — consistency guarantees all instances
//!   answer identically, and per-shard counters keep per-query probe costs
//!   exact (a shared counter would attribute concurrent probes to the wrong
//!   query). The result reports per-shard *and* aggregate [`ProbeCounts`].

use lca_graph::{Graph, Subgraph, VertexId};
use lca_probe::{CountingOracle, Oracle, ProbeCounts};

use crate::{EdgeSubgraphLca, Lca, LcaError, QueryBudget};

/// A thread pool policy for answering LCA query batches.
///
/// The engine holds no threads itself — it spawns scoped workers per batch,
/// so it is `Copy`-cheap to create and safe to share.
///
/// # Example
///
/// ```
/// use lca_core::{QueryEngine, ThreeSpanner};
/// use lca_graph::gen::GnpBuilder;
/// use lca_rand::Seed;
///
/// let g = GnpBuilder::new(200, 0.2).seed(Seed::new(1)).build();
/// let lca = ThreeSpanner::with_defaults(&g, Seed::new(2));
/// let queries: Vec<_> = g.edges().collect();
/// let answers = QueryEngine::new().query_batch(&lca, &queries);
/// assert_eq!(answers.len(), queries.len());
/// assert!(answers.into_iter().all(|a| a.is_ok()));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct QueryEngine {
    threads: usize,
}

impl Default for QueryEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryEngine {
    /// An engine using all available hardware parallelism.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self { threads }
    }

    /// An engine with an explicit worker count (`0` is clamped to `1`).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A single-threaded engine (useful as a baseline and in tests).
    pub fn serial() -> Self {
        Self::with_threads(1)
    }

    /// The number of worker threads the engine shards batches across.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Answers a batch of queries against one shared LCA, in input order.
    ///
    /// Queries are split into contiguous shards, one per worker. Failures
    /// are per-query: a malformed query yields its own `Err` entry without
    /// disturbing the rest of the batch.
    pub fn query_batch<L>(&self, lca: &L, queries: &[L::Query]) -> Vec<Result<L::Answer, LcaError>>
    where
        L: Lca + Sync + ?Sized,
        L::Query: Clone + Sync,
        L::Answer: Send,
    {
        if self.threads == 1 || queries.len() <= 1 {
            return queries.iter().map(|q| lca.query(q.clone())).collect();
        }
        let shard = queries.len().div_ceil(self.threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = queries
                .chunks(shard)
                .map(|chunk| {
                    s.spawn(move || -> Vec<Result<L::Answer, LcaError>> {
                        chunk.iter().map(|q| lca.query(q.clone())).collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("query engine worker panicked"))
                .collect()
        })
    }

    /// Answers a batch under a [`QueryBudget`]: every query gets a fresh
    /// [`QueryCtx`](crate::QueryCtx) with the budget's per-query probe cap
    /// and cancellation flag, and — unlike per-query minting — one
    /// *batch-wide* deadline derived from [`QueryBudget::timeout`] at entry,
    /// so the whole batch must land inside one wall-clock envelope.
    ///
    /// Failures stay per-query: a query that trips its context yields its
    /// own [`LcaError::BudgetExhausted`] (or deadline/cancel sibling) entry
    /// without disturbing the rest, and the report carries per-shard
    /// exhaustion statistics so a serving layer can see *where* the budget
    /// pressure landed.
    pub fn query_batch_budgeted<L>(
        &self,
        lca: &L,
        queries: &[L::Query],
        budget: &QueryBudget,
    ) -> BudgetedBatch<L::Answer>
    where
        L: Lca + Sync + ?Sized,
        L::Query: Clone + Sync,
        L::Answer: Send,
    {
        type Shard<A> = (Vec<Result<A, LcaError>>, ShardBudget);
        let deadline = budget.timeout.map(|t| std::time::Instant::now() + t);
        let shard_len = queries.len().div_ceil(self.threads).max(1);
        let shards: Vec<Shard<L::Answer>> = std::thread::scope(|s| {
            let handles: Vec<_> = queries
                .chunks(shard_len)
                .enumerate()
                .map(|(index, chunk)| {
                    s.spawn(move || {
                        let mut answers = Vec::with_capacity(chunk.len());
                        let mut exhausted = 0usize;
                        let mut probes = 0u64;
                        let mut per_query_max = 0u64;
                        for q in chunk {
                            let ctx = budget.ctx_at(deadline);
                            let answer = lca.query_ctx(q.clone(), &ctx);
                            if matches!(&answer, Err(e) if e.is_budget()) {
                                exhausted += 1;
                            }
                            let spent = ctx.spent();
                            probes += spent;
                            per_query_max = per_query_max.max(spent);
                            answers.push(answer);
                        }
                        (
                            answers,
                            ShardBudget {
                                shard: index,
                                queries: chunk.len(),
                                exhausted,
                                probes,
                                per_query_max,
                            },
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("query engine worker panicked"))
                .collect()
        });

        let mut answers = Vec::with_capacity(queries.len());
        let mut per_shard = Vec::new();
        let mut exhausted = 0usize;
        let mut probes = 0u64;
        for (shard_answers, stats) in shards {
            exhausted += stats.exhausted;
            probes += stats.probes;
            answers.extend(shard_answers);
            per_shard.push(stats);
        }
        BudgetedBatch {
            answers,
            exhausted,
            probes,
            per_shard,
        }
    }

    /// Materializes the subgraph an [`EdgeSubgraphLca`] describes by
    /// answering every edge query of `graph` in parallel.
    ///
    /// # Errors
    ///
    /// Propagates the first [`LcaError`] (which, on a well-formed run over
    /// `graph.edges()`, indicates an LCA bug).
    pub fn materialize<L>(&self, graph: &Graph, lca: &L) -> Result<Subgraph, LcaError>
    where
        L: EdgeSubgraphLca + Sync + ?Sized,
    {
        let edges: Vec<(VertexId, VertexId)> = graph.edges().collect();
        let answers = self.query_batch(lca, &edges);
        let mut kept = Vec::new();
        for (&(u, v), answer) in edges.iter().zip(answers) {
            if answer? {
                kept.push((u, v));
            }
        }
        Ok(Subgraph::from_edges(graph, kept))
    }

    /// Replays every edge query of `graph` with full probe accounting,
    /// sharded across the engine's workers.
    ///
    /// `make` builds one LCA instance per shard over that shard's private
    /// [`CountingOracle`] (wrap the same `(params, seed)`; Definition 1.4
    /// consistency makes all instances answer identically, and
    /// [`crate::verify::assert_query_consistency`]-style tests plus the
    /// engine-equivalence suite enforce it). Keeping the counter private to
    /// a shard is what makes `per_query_max` exact under parallelism.
    ///
    /// # Errors
    ///
    /// Propagates the first [`LcaError`] from any shard.
    pub fn measure_queries<'g, O, F>(
        &self,
        graph: &'g Graph,
        base: &'g O,
        make: F,
    ) -> Result<EngineRun, LcaError>
    where
        O: Oracle + Sync,
        F: for<'c> Fn(&'c CountingOracle<&'g O>) -> Box<dyn EdgeSubgraphLca + 'c> + Sync,
    {
        let edges: Vec<(VertexId, VertexId)> = graph.edges().collect();
        // Resolve the name from a throwaway instance so it is right even
        // when the graph has no edges (constructors are probe-free).
        let algorithm = make(&CountingOracle::new(base)).name();
        let shard_len = edges.len().div_ceil(self.threads).max(1);
        let shards: Vec<Result<ShardRun, LcaError>> = std::thread::scope(|s| {
            let handles: Vec<_> = edges
                .chunks(shard_len)
                .enumerate()
                .map(|(index, chunk)| {
                    let make = &make;
                    s.spawn(move || run_shard(index, chunk, base, make))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("query engine worker panicked"))
                .collect()
        });

        let mut kept = Vec::new();
        let mut per_shard = Vec::new();
        let mut max = 0u64;
        let mut sum = 0u64;
        let mut total = ProbeCounts::default();
        for shard in shards {
            let shard = shard?;
            max = max.max(shard.counts.per_query_max);
            sum += shard.probe_sum;
            total = total + shard.counts.counts;
            kept.extend(shard.kept);
            per_shard.push(shard.counts);
        }
        Ok(EngineRun {
            algorithm,
            kept: Subgraph::from_edges(graph, kept),
            per_query_max: max,
            per_query_mean: if edges.is_empty() {
                0.0
            } else {
                sum as f64 / edges.len() as f64
            },
            total,
            queries: edges.len(),
            per_shard,
        })
    }
}

impl QueryEngine {
    /// Answers an arbitrary query batch with full probe accounting — the
    /// oracle-generic counterpart of [`QueryEngine::measure_queries`], built
    /// for inputs that have no [`Graph`] to enumerate (implicit oracles).
    ///
    /// `make` builds one LCA instance per shard over that shard's private
    /// [`CountingOracle`] wrapping `base`; Definition 1.4 consistency makes
    /// all instances answer identically, and the private counters keep
    /// `per_query_max` exact under parallelism. Unlike `measure_queries`,
    /// failures are per-query: each answer carries its own `Result`.
    pub fn measure_batch<'g, O, Q, F>(&self, queries: &[Q], base: &'g O, make: F) -> MeasuredBatch
    where
        O: Oracle + Sync,
        Q: Clone + Sync,
        F: for<'c> Fn(&'c CountingOracle<&'g O>) -> Box<dyn Lca<Query = Q, Answer = bool> + 'c>
            + Sync,
    {
        // Resolve the name from a throwaway instance so it is right even
        // for an empty batch (constructors are probe-free).
        let algorithm = make(&CountingOracle::new(base)).name();
        let shard_len = queries.len().div_ceil(self.threads).max(1);
        let shards: Vec<BatchShard> = std::thread::scope(|s| {
            let handles: Vec<_> = queries
                .chunks(shard_len)
                .enumerate()
                .map(|(index, chunk)| {
                    let make = &make;
                    s.spawn(move || {
                        let counter = CountingOracle::new(base);
                        let lca = make(&counter);
                        let mut answers = Vec::with_capacity(chunk.len());
                        let mut max = 0u64;
                        let mut sum = 0u64;
                        for q in chunk {
                            let scope = counter.scoped();
                            answers.push(lca.query(q.clone()));
                            let cost = scope.cost().total();
                            max = max.max(cost);
                            sum += cost;
                        }
                        BatchShard {
                            answers,
                            probe_sum: sum,
                            counts: ShardCounts {
                                shard: index,
                                queries: chunk.len(),
                                per_query_max: max,
                                counts: counter.counts(),
                            },
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("query engine worker panicked"))
                .collect()
        });

        let mut answers = Vec::with_capacity(queries.len());
        let mut per_shard = Vec::new();
        let mut max = 0u64;
        let mut sum = 0u64;
        let mut total = ProbeCounts::default();
        for shard in shards {
            max = max.max(shard.counts.per_query_max);
            sum += shard.probe_sum;
            total = total + shard.counts.counts;
            answers.extend(shard.answers);
            per_shard.push(shard.counts);
        }
        MeasuredBatch {
            algorithm,
            answers,
            per_query_max: max,
            per_query_mean: if queries.is_empty() {
                0.0
            } else {
                sum as f64 / queries.len() as f64
            },
            total,
            per_shard,
        }
    }
}

/// The outcome of a [`QueryEngine::query_batch_budgeted`] run: per-query
/// results in input order plus exhaustion accounting.
#[derive(Debug)]
pub struct BudgetedBatch<A> {
    /// Per-query results, in input order; budget trips are per-query
    /// [`LcaError::is_budget`] errors.
    pub answers: Vec<Result<A, LcaError>>,
    /// Queries that tripped their budget (probe cap, deadline, or cancel).
    pub exhausted: usize,
    /// Total probes charged across the batch (context meters, exact).
    pub probes: u64,
    /// Per-shard accounting, in shard order.
    pub per_shard: Vec<ShardBudget>,
}

impl<A> BudgetedBatch<A> {
    /// Fraction of queries that tripped their budget (`0.0` for an empty
    /// batch).
    pub fn exhaustion_rate(&self) -> f64 {
        if self.answers.is_empty() {
            0.0
        } else {
            self.exhausted as f64 / self.answers.len() as f64
        }
    }
}

/// Budget accounting for one shard of a
/// [`QueryEngine::query_batch_budgeted`] run.
#[derive(Debug, Clone, Copy)]
pub struct ShardBudget {
    /// Shard index (shards partition the batch contiguously).
    pub shard: usize,
    /// Queries this shard answered.
    pub queries: usize,
    /// Queries that tripped their budget within the shard.
    pub exhausted: usize,
    /// Probes charged by the shard's query contexts.
    pub probes: u64,
    /// Maximum probes charged to a single query within the shard.
    pub per_query_max: u64,
}

/// Per-shard outcome inside [`QueryEngine::measure_batch`].
struct BatchShard {
    answers: Vec<Result<bool, LcaError>>,
    probe_sum: u64,
    counts: ShardCounts,
}

/// The outcome of a [`QueryEngine::measure_batch`] run: per-query answers
/// in input order plus per-shard and aggregate probe statistics.
#[derive(Debug)]
pub struct MeasuredBatch {
    /// [`Lca::name`] of the measured algorithm.
    pub algorithm: &'static str,
    /// Per-query answers, in input order.
    pub answers: Vec<Result<bool, LcaError>>,
    /// Maximum probes spent on a single query, across all shards.
    pub per_query_max: u64,
    /// Mean probes per query.
    pub per_query_mean: f64,
    /// Aggregate probes across all shards, by kind.
    pub total: ProbeCounts,
    /// Per-shard accounting, in shard order.
    pub per_shard: Vec<ShardCounts>,
}

impl MeasuredBatch {
    /// Number of YES answers in the batch.
    pub fn yes_count(&self) -> usize {
        self.answers.iter().filter(|a| **a == Ok(true)).count()
    }
}

/// Per-shard outcome inside [`QueryEngine::measure_queries`].
struct ShardRun {
    kept: Vec<(VertexId, VertexId)>,
    counts: ShardCounts,
    probe_sum: u64,
}

fn run_shard<'g, O, F>(
    index: usize,
    chunk: &[(VertexId, VertexId)],
    base: &'g O,
    make: &F,
) -> Result<ShardRun, LcaError>
where
    O: Oracle + Sync,
    F: for<'c> Fn(&'c CountingOracle<&'g O>) -> Box<dyn EdgeSubgraphLca + 'c> + Sync,
{
    let counter = CountingOracle::new(base);
    let lca = make(&counter);
    let mut kept = Vec::new();
    let mut max = 0u64;
    let mut sum = 0u64;
    for &(u, v) in chunk {
        let scope = counter.scoped();
        if lca.contains(u, v)? {
            kept.push((u, v));
        }
        let cost = scope.cost().total();
        max = max.max(cost);
        sum += cost;
    }
    Ok(ShardRun {
        kept,
        counts: ShardCounts {
            shard: index,
            queries: chunk.len(),
            per_query_max: max,
            counts: counter.counts(),
        },
        probe_sum: sum,
    })
}

/// Probe accounting for one shard of a parallel measurement run.
#[derive(Debug, Clone, Copy)]
pub struct ShardCounts {
    /// Shard index (shards partition `graph.edges()` contiguously).
    pub shard: usize,
    /// Number of edge queries this shard answered.
    pub queries: usize,
    /// Maximum probes spent on a single query within the shard.
    pub per_query_max: u64,
    /// Total probes of the shard, by kind.
    pub counts: ProbeCounts,
}

/// The outcome of a parallel [`QueryEngine::measure_queries`] run: the
/// union of all shards' YES answers plus per-shard and aggregate probe
/// statistics.
#[derive(Debug)]
pub struct EngineRun {
    /// [`Lca::name`] of the measured algorithm.
    pub algorithm: &'static str,
    /// The subgraph described by the LCA's YES answers.
    pub kept: Subgraph,
    /// Maximum probes spent on a single edge query, across all shards.
    pub per_query_max: u64,
    /// Mean probes per edge query.
    pub per_query_mean: f64,
    /// Aggregate probes across all shards, by kind.
    pub total: ProbeCounts,
    /// Number of edge queries issued (= m).
    pub queries: usize,
    /// Per-shard accounting, in shard order.
    pub per_shard: Vec<ShardCounts>,
}

impl EngineRun {
    /// Fraction of host edges kept; `NaN` for an empty graph (see
    /// [`crate::SpannerRun::keep_ratio`] for the convention).
    pub fn keep_ratio(&self, graph: &Graph) -> f64 {
        crate::harness::ratio_kept(self.kept.edge_count(), graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{measure_queries, ThreeSpanner, ThreeSpannerParams};
    use lca_graph::gen::GnpBuilder;
    use lca_rand::Seed;

    #[test]
    fn batch_answers_match_serial_answers() {
        let g = GnpBuilder::new(120, 0.2).seed(Seed::new(1)).build();
        let lca = ThreeSpanner::new(&g, ThreeSpannerParams::for_n(120), Seed::new(2));
        let queries: Vec<_> = g.edges().collect();
        let serial: Vec<_> = queries.iter().map(|&(u, v)| lca.contains(u, v)).collect();
        for threads in [1, 2, 4, 7] {
            let batched = QueryEngine::with_threads(threads).query_batch(&lca, &queries);
            assert_eq!(batched, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_materialize_matches_serial_materialize() {
        let g = GnpBuilder::new(100, 0.3).seed(Seed::new(3)).build();
        let lca = ThreeSpanner::new(&g, ThreeSpannerParams::for_n(100), Seed::new(4));
        let serial = crate::materialize(&g, &lca).unwrap();
        let parallel = QueryEngine::with_threads(4).materialize(&g, &lca).unwrap();
        assert_eq!(serial.edge_count(), parallel.edge_count());
        for (u, v) in serial.edges() {
            assert!(parallel.has_edge(u, v));
        }
    }

    #[test]
    fn parallel_measure_agrees_with_serial_measure() {
        let n = 80;
        let g = GnpBuilder::new(n, 0.3).seed(Seed::new(5)).build();
        let params = ThreeSpannerParams::for_n(n);
        let seed = Seed::new(6);

        let counter = CountingOracle::new(&g);
        let lca = ThreeSpanner::new(&counter, params.clone(), seed);
        let serial = measure_queries(&g, &counter, &lca).unwrap();

        let engine = QueryEngine::with_threads(4);
        let run = engine
            .measure_queries(&g, &g, |c| {
                Box::new(ThreeSpanner::new(c, params.clone(), seed))
            })
            .unwrap();

        assert_eq!(run.algorithm, "three-spanner");
        assert_eq!(run.queries, serial.queries);
        assert_eq!(run.kept.edge_count(), serial.kept.edge_count());
        for (u, v) in serial.kept.edges() {
            assert!(run.kept.has_edge(u, v));
        }
        // Probe totals agree exactly: shard counters partition the work.
        assert_eq!(run.total, serial.total);
        assert_eq!(run.per_query_max, serial.per_query_max);
        let shard_total: u64 = run.per_shard.iter().map(|s| s.counts.total()).sum();
        assert_eq!(shard_total, run.total.total());
        let shard_queries: usize = run.per_shard.iter().map(|s| s.queries).sum();
        assert_eq!(shard_queries, run.queries);
    }

    #[test]
    fn empty_graph_yields_empty_engine_run() {
        let g = lca_graph::GraphBuilder::new(4).build().unwrap();
        let run = QueryEngine::new()
            .measure_queries(&g, &g, |c| {
                Box::new(ThreeSpanner::new(
                    c,
                    ThreeSpannerParams::for_n(4),
                    Seed::new(0),
                ))
            })
            .unwrap();
        assert_eq!(run.queries, 0);
        // The name must be real even when no shard ever ran.
        assert_eq!(run.algorithm, "three-spanner");
        assert!(run.keep_ratio(&g).is_nan());
    }

    #[test]
    fn measure_batch_matches_serial_on_an_implicit_oracle() {
        use lca_graph::implicit::{ImplicitGnp, ImplicitOracle};
        let oracle = ImplicitGnp::new(1_000, 4.0, Seed::new(1));
        let g = oracle.materialize();
        let params = ThreeSpannerParams::for_n(1_000);
        let seed = Seed::new(2);
        let queries: Vec<_> = g.edges().take(200).collect();

        let serial = ThreeSpanner::new(&oracle, params.clone(), seed);
        let expect: Vec<_> = queries
            .iter()
            .map(|&(u, v)| serial.contains(u, v))
            .collect();

        for threads in [1usize, 4] {
            let run = QueryEngine::with_threads(threads).measure_batch(&queries, &oracle, |c| {
                Box::new(ThreeSpanner::new(c, params.clone(), seed))
            });
            assert_eq!(run.algorithm, "three-spanner");
            assert_eq!(run.answers, expect, "threads={threads}");
            assert!(run.per_query_max >= 1);
            let shard_total: u64 = run.per_shard.iter().map(|s| s.counts.total()).sum();
            assert_eq!(shard_total, run.total.total());
            assert_eq!(
                run.yes_count(),
                expect.iter().filter(|a| **a == Ok(true)).count()
            );
        }
    }

    #[test]
    fn measure_batch_empty_is_well_formed() {
        let g = GnpBuilder::new(20, 0.3).seed(Seed::new(1)).build();
        let run = QueryEngine::new().measure_batch(&[], &g, |c| {
            Box::new(ThreeSpanner::new(
                c,
                ThreeSpannerParams::for_n(20),
                Seed::new(0),
            ))
        });
        assert_eq!(run.algorithm, "three-spanner");
        assert!(run.answers.is_empty());
        assert_eq!(run.per_query_mean, 0.0);
    }

    #[test]
    fn budgeted_batch_reports_per_shard_exhaustion() {
        let g = GnpBuilder::new(120, 0.3).seed(Seed::new(9)).build();
        let lca = ThreeSpanner::new(&g, ThreeSpannerParams::for_n(120), Seed::new(10));
        let queries: Vec<_> = g.edges().collect();

        // Unlimited budget: identical to query_batch, zero exhaustion.
        let plain = QueryEngine::with_threads(3).query_batch(&lca, &queries);
        let run = QueryEngine::with_threads(3).query_batch_budgeted(
            &lca,
            &queries,
            &crate::QueryBudget::unlimited(),
        );
        assert_eq!(run.answers, plain);
        assert_eq!(run.exhausted, 0);
        assert_eq!(run.exhaustion_rate(), 0.0);
        assert!(run.probes > 0);
        let shard_probes: u64 = run.per_shard.iter().map(|s| s.probes).sum();
        assert_eq!(shard_probes, run.probes);
        let shard_queries: usize = run.per_shard.iter().map(|s| s.queries).sum();
        assert_eq!(shard_queries, queries.len());

        // A 1-probe budget trips every query (edge checks alone cost more).
        let starved = QueryEngine::with_threads(3).query_batch_budgeted(
            &lca,
            &queries,
            &crate::QueryBudget::max_probes(1),
        );
        assert_eq!(starved.exhausted, queries.len());
        assert_eq!(starved.exhaustion_rate(), 1.0);
        assert!(starved
            .answers
            .iter()
            .all(|a| matches!(a, Err(LcaError::BudgetExhausted { spent: 1, limit: 1 }))));
        let shard_exhausted: usize = starved.per_shard.iter().map(|s| s.exhausted).sum();
        assert_eq!(shard_exhausted, queries.len());

        // A mid-range budget splits the batch deterministically.
        let max = run.per_shard.iter().map(|s| s.per_query_max).max().unwrap();
        let mid = QueryEngine::with_threads(3).query_batch_budgeted(
            &lca,
            &queries,
            &crate::QueryBudget::max_probes(max / 2),
        );
        for (budgeted, unlimited) in mid.answers.iter().zip(&plain) {
            match budgeted {
                Ok(a) => assert_eq!(Ok(*a), *unlimited),
                Err(e) => assert!(e.is_budget()),
            }
        }
    }

    #[test]
    fn thread_count_is_clamped() {
        assert_eq!(QueryEngine::with_threads(0).threads(), 1);
        assert!(QueryEngine::new().threads() >= 1);
        assert_eq!(QueryEngine::serial().threads(), 1);
    }
}
