//! Error type for LCA queries.

use lca_graph::VertexId;

use crate::lca::QueryKind;

/// Errors returned by LCA queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LcaError {
    /// The queried pair is not an edge of the input graph. The LCA model
    /// only defines answers for edge queries (Definition 1.4).
    NotAnEdge {
        /// First queried endpoint.
        u: VertexId,
        /// Second queried endpoint.
        v: VertexId,
    },
    /// A vertex handle was out of range for the oracle's graph.
    InvalidVertex {
        /// The offending handle.
        v: VertexId,
        /// Number of vertices in the graph.
        vertex_count: usize,
    },
    /// A type-erased algorithm received a query shape it does not serve
    /// (e.g. a vertex query sent to a spanner).
    UnsupportedQuery {
        /// The query shape the algorithm answers.
        expected: QueryKind,
        /// The query shape it received.
        got: QueryKind,
    },
}

impl std::fmt::Display for LcaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LcaError::NotAnEdge { u, v } => {
                write!(f, "queried pair {u}-{v} is not an edge of the input graph")
            }
            LcaError::InvalidVertex { v, vertex_count } => {
                write!(f, "vertex {v} out of range for n={vertex_count}")
            }
            LcaError::UnsupportedQuery { expected, got } => {
                write!(f, "algorithm answers {expected} queries, got a {got} query")
            }
        }
    }
}

impl std::error::Error for LcaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_error_impl() {
        let e = LcaError::NotAnEdge {
            u: VertexId::new(1),
            v: VertexId::new(2),
        };
        assert!(format!("{e}").contains("not an edge"));
        fn assert_err<E: std::error::Error + Send + Sync>(_: &E) {}
        assert_err(&e);
    }
}
