//! Error type for LCA queries.

use lca_graph::VertexId;

use crate::lca::QueryKind;

/// Errors returned by LCA queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LcaError {
    /// The queried pair is not an edge of the input graph. The LCA model
    /// only defines answers for edge queries (Definition 1.4).
    NotAnEdge {
        /// First queried endpoint.
        u: VertexId,
        /// Second queried endpoint.
        v: VertexId,
    },
    /// A vertex handle was out of range for the oracle's graph.
    InvalidVertex {
        /// The offending handle.
        v: VertexId,
        /// Number of vertices in the graph.
        vertex_count: usize,
    },
    /// A type-erased algorithm received a query shape it does not serve
    /// (e.g. a vertex query sent to a spanner).
    UnsupportedQuery {
        /// The query shape the algorithm answers.
        expected: QueryKind,
        /// The query shape it received.
        got: QueryKind,
    },
    /// The query hit its [`QueryCtx`](crate::QueryCtx) probe budget: the
    /// probe that would have exceeded `limit` was refused and the query was
    /// abandoned cleanly (no partial state was persisted). A clean partial
    /// failure, not a bug — retry with a larger budget or accept the miss.
    BudgetExhausted {
        /// Probes actually spent (equals `limit` by construction).
        spent: u64,
        /// The probe budget that was in effect.
        limit: u64,
    },
    /// The query ran past its [`QueryCtx`](crate::QueryCtx) wall-clock
    /// deadline.
    DeadlineExceeded {
        /// Probes spent before the deadline was observed.
        spent: u64,
    },
    /// The query's [`QueryCtx`](crate::QueryCtx) cancellation flag was set.
    Cancelled {
        /// Probes spent before cancellation was observed.
        spent: u64,
    },
}

impl LcaError {
    /// Whether this error is a budget-family interruption
    /// ([`LcaError::BudgetExhausted`], [`LcaError::DeadlineExceeded`] or
    /// [`LcaError::Cancelled`]) — a property of the query's resource
    /// envelope rather than of the query itself, so retrying with a looser
    /// [`QueryCtx`](crate::QueryCtx) can succeed.
    pub fn is_budget(&self) -> bool {
        matches!(
            self,
            LcaError::BudgetExhausted { .. }
                | LcaError::DeadlineExceeded { .. }
                | LcaError::Cancelled { .. }
        )
    }
}

impl std::fmt::Display for LcaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LcaError::NotAnEdge { u, v } => {
                write!(f, "queried pair {u}-{v} is not an edge of the input graph")
            }
            LcaError::InvalidVertex { v, vertex_count } => {
                write!(f, "vertex {v} out of range for n={vertex_count}")
            }
            LcaError::UnsupportedQuery { expected, got } => {
                write!(f, "algorithm answers {expected} queries, got a {got} query")
            }
            LcaError::BudgetExhausted { spent, limit } => {
                write!(f, "probe budget exhausted: spent {spent} of {limit}")
            }
            LcaError::DeadlineExceeded { spent } => {
                write!(f, "query deadline exceeded after {spent} probes")
            }
            LcaError::Cancelled { spent } => {
                write!(f, "query cancelled after {spent} probes")
            }
        }
    }
}

impl std::error::Error for LcaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_error_impl() {
        let e = LcaError::NotAnEdge {
            u: VertexId::new(1),
            v: VertexId::new(2),
        };
        assert!(format!("{e}").contains("not an edge"));
        fn assert_err<E: std::error::Error + Send + Sync>(_: &E) {}
        assert_err(&e);
    }

    #[test]
    fn budget_family_errors_are_typed_and_classified() {
        let b = LcaError::BudgetExhausted {
            spent: 10,
            limit: 10,
        };
        let d = LcaError::DeadlineExceeded { spent: 3 };
        let c = LcaError::Cancelled { spent: 0 };
        for e in [b, d, c] {
            assert!(e.is_budget(), "{e}");
        }
        assert!(!LcaError::NotAnEdge {
            u: VertexId::new(0),
            v: VertexId::new(1),
        }
        .is_budget());
        assert!(format!("{b}").contains("spent 10 of 10"));
        assert!(format!("{d}").contains("deadline"));
        assert!(format!("{c}").contains("cancelled"));
    }
}
