//! Global baseline algorithms for spanner comparisons.
//!
//! The paper's Table 1 positions its LCAs against classical *global*
//! constructions; this crate provides those comparators, each reading the
//! whole graph:
//!
//! * [`baswana_sen`] — the randomized (2k−1)-spanner of Baswana & Sen
//!   (full independence; the LCA-internal simulation in `lca-core` uses
//!   bounded independence, so this doubles as an ablation partner).
//! * [`greedy_spanner`] — the greedy (Althöfer et al.) t-spanner: optimal
//!   size-stretch trade-off, O(m · n) time.
//! * [`bfs_forest`] — a BFS spanning forest: the connectivity-only baseline
//!   (stretch unbounded), matching the “sparse spanning graph” line of work
//!   the paper extends.
//!
//! # Example
//!
//! ```
//! use lca_baseline::greedy_spanner;
//! use lca_graph::gen::structured;
//!
//! let g = structured::complete(12);
//! let h = greedy_spanner(&g, 3);
//! assert!(h.edge_count() < g.edge_count());
//! assert!(h.max_edge_stretch(&g, 4).unwrap() <= 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;

use lca_graph::{Graph, Subgraph, VertexId};
use lca_rand::{Seed, SplitMix64};

/// The greedy t-spanner (Althöfer–Das–Dobkin–Joseph–Soares): scan edges in
/// increasing ID order, keep an edge iff the spanner built so far offers no
/// detour of length ≤ t. Guarantees girth > t + 1, hence O(n^{1+2/(t+1)})
/// edges — the existentially-optimal trade-off the LCAs are measured against.
///
/// # Panics
///
/// Panics if `t == 0`.
pub fn greedy_spanner(graph: &Graph, t: usize) -> Subgraph {
    assert!(t >= 1, "stretch must be at least 1");
    let mut order: Vec<(u64, u64, VertexId, VertexId)> = graph
        .edges()
        .map(|(u, v)| {
            let (a, b) = (graph.label(u), graph.label(v));
            let (a, b) = if a < b { (a, b) } else { (b, a) };
            (a, b, u, v)
        })
        .collect();
    order.sort_unstable_by_key(|&(a, b, _, _)| (a, b));
    // Incremental adjacency for distance queries.
    let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); graph.vertex_count()];
    let mut kept: Vec<(VertexId, VertexId)> = Vec::new();
    for (_, _, u, v) in order {
        if bounded_dist(&adj, u, v, t).is_none() {
            adj[u.index()].push(v);
            adj[v.index()].push(u);
            kept.push((u, v));
        }
    }
    Subgraph::from_edges(graph, kept)
}

fn bounded_dist(adj: &[Vec<VertexId>], u: VertexId, v: VertexId, bound: usize) -> Option<usize> {
    if u == v {
        return Some(0);
    }
    let mut dist: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    let mut queue = std::collections::VecDeque::new();
    dist.insert(u.raw(), 0);
    queue.push_back(u);
    while let Some(x) = queue.pop_front() {
        let dx = dist[&x.raw()];
        if dx >= bound {
            continue;
        }
        for &w in &adj[x.index()] {
            if w == v {
                return Some(dx + 1);
            }
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w.raw()) {
                e.insert(dx + 1);
                queue.push_back(w);
            }
        }
    }
    None
}

/// The global Baswana–Sen (2k−1)-spanner with fully independent randomness.
///
/// Runs `k − 1` cluster-sampling rounds plus the inter-cluster phase; the
/// expected size is O(k · n^{1+1/k}).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn baswana_sen(graph: &Graph, k: usize, seed: Seed) -> Subgraph {
    assert!(k >= 1, "k must be at least 1");
    let n = graph.vertex_count();
    let p = if n > 1 {
        (n as f64).powf(-1.0 / k as f64)
    } else {
        1.0
    };
    let mut rng = SplitMix64::new(seed.value());
    // cluster[v] = Some(center index); active edge set.
    let mut cluster: Vec<Option<u32>> = (0..n as u32).map(Some).collect();
    let mut active: HashSet<(u32, u32)> =
        graph.edges().map(|(u, v)| norm(u.raw(), v.raw())).collect();
    let mut kept: Vec<(VertexId, VertexId)> = Vec::new();

    for _round in 1..k {
        // Sample surviving clusters with full independence.
        let sampled: HashSet<u32> = (0..n as u32).filter(|_| rng.next_f64() < p).collect();
        let mut next: Vec<Option<u32>> = vec![None; n];
        let mut removals: Vec<(u32, u32)> = Vec::new();
        for v in graph.vertices() {
            let Some(cv) = cluster[v.index()] else {
                continue;
            };
            if sampled.contains(&cv) {
                next[v.index()] = Some(cv);
                continue;
            }
            let mut seen: HashSet<u32> = HashSet::new();
            let mut firsts: Vec<(u32, VertexId)> = Vec::new();
            for &w in graph.neighbors(v) {
                if !active.contains(&norm(v.raw(), w.raw())) {
                    continue;
                }
                let Some(cw) = cluster[w.index()] else {
                    continue;
                };
                if cw != cv && seen.insert(cw) {
                    firsts.push((cw, w));
                }
            }
            match firsts.iter().position(|&(c, _)| sampled.contains(&c)) {
                None => {
                    for &(_, w) in &firsts {
                        kept.push((v, w));
                    }
                    for &w in graph.neighbors(v) {
                        removals.push(norm(v.raw(), w.raw()));
                    }
                }
                Some(pos) => {
                    let (cstar, wstar) = firsts[pos];
                    kept.push((v, wstar));
                    next[v.index()] = Some(cstar);
                    let resolved: HashSet<u32> = firsts[..pos]
                        .iter()
                        .map(|&(c, _)| c)
                        .chain(std::iter::once(cstar))
                        .collect();
                    for &(_, w) in &firsts[..pos] {
                        kept.push((v, w));
                    }
                    for &w in graph.neighbors(v) {
                        if let Some(cw) = cluster[w.index()] {
                            if resolved.contains(&cw) {
                                removals.push(norm(v.raw(), w.raw()));
                            }
                        }
                    }
                }
            }
        }
        for e in removals {
            active.remove(&e);
        }
        cluster = next;
        active.retain(|&(a, b)| match (cluster[a as usize], cluster[b as usize]) {
            (Some(ca), Some(cb)) => ca != cb,
            _ => false,
        });
    }

    // Phase 2: one edge per adjacent cluster.
    for v in graph.vertices() {
        let Some(cv) = cluster[v.index()] else {
            continue;
        };
        let mut seen: HashSet<u32> = HashSet::new();
        for &w in graph.neighbors(v) {
            if !active.contains(&norm(v.raw(), w.raw())) {
                continue;
            }
            let Some(cw) = cluster[w.index()] else {
                continue;
            };
            if cw != cv && seen.insert(cw) {
                kept.push((v, w));
            }
        }
    }

    Subgraph::from_edges(graph, kept)
}

fn norm(a: u32, b: u32) -> (u32, u32) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// A BFS spanning forest: keeps `n − #components` tree edges. Connectivity
/// baseline with unbounded stretch.
pub fn bfs_forest(graph: &Graph) -> Subgraph {
    let n = graph.vertex_count();
    let mut visited = vec![false; n];
    let mut kept = Vec::new();
    for s in graph.vertices() {
        if visited[s.index()] {
            continue;
        }
        visited[s.index()] = true;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        while let Some(x) = queue.pop_front() {
            for &w in graph.neighbors(x) {
                if !visited[w.index()] {
                    visited[w.index()] = true;
                    kept.push((x, w));
                    queue.push_back(w);
                }
            }
        }
    }
    Subgraph::from_edges(graph, kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lca_graph::analysis;
    use lca_graph::gen::{structured, GnpBuilder};

    #[test]
    fn greedy_meets_stretch_and_girth_size() {
        for t in [3usize, 5] {
            let g = structured::complete(20);
            let h = greedy_spanner(&g, t);
            assert!(h.max_edge_stretch(&g, t as u32 + 1).unwrap() <= t as u32);
            assert!(h.edge_count() < g.edge_count());
        }
    }

    #[test]
    fn greedy_t1_keeps_everything() {
        let g = structured::complete(8);
        let h = greedy_spanner(&g, 1);
        assert_eq!(h.edge_count(), g.edge_count());
    }

    #[test]
    fn greedy_on_tree_keeps_the_tree() {
        let g = structured::path(15);
        let h = greedy_spanner(&g, 3);
        assert_eq!(h.edge_count(), 14);
    }

    #[test]
    fn baswana_sen_stretch_bound_holds() {
        for k in [2usize, 3] {
            for s in 0..4u64 {
                let g = GnpBuilder::new(70, 0.25).seed(Seed::new(s)).build();
                let h = baswana_sen(&g, k, Seed::new(40 + s));
                let bound = (2 * k - 1) as u32;
                let st = h.max_edge_stretch(&g, bound + 1);
                assert!(
                    matches!(st, Some(x) if x <= bound),
                    "k={k} seed={s}: {st:?}"
                );
            }
        }
    }

    #[test]
    fn baswana_sen_sparsifies() {
        let g = structured::complete(60);
        let h = baswana_sen(&g, 2, Seed::new(3));
        assert!(h.edge_count() < g.edge_count());
    }

    #[test]
    fn baswana_sen_k1_is_identity() {
        let g = structured::complete(8);
        let h = baswana_sen(&g, 1, Seed::new(0));
        assert_eq!(h.edge_count(), g.edge_count());
    }

    #[test]
    fn bfs_forest_is_spanning() {
        let g = GnpBuilder::new(60, 0.1).seed(Seed::new(2)).build();
        let (_, comps) = analysis::connected_components(&g);
        let f = bfs_forest(&g);
        assert_eq!(f.edge_count(), g.vertex_count() - comps);
    }

    #[test]
    fn bfs_forest_of_disconnected_graph() {
        let g = lca_graph::GraphBuilder::new(6)
            .edges([(0, 1), (1, 2), (3, 4)])
            .build()
            .unwrap();
        let f = bfs_forest(&g);
        assert_eq!(f.edge_count(), 3);
    }
}
