//! Offline stand-in for `criterion`, vendored into the workspace.
//!
//! Implements the micro-benchmark API surface the `benches/` files use —
//! groups, `bench_function`/`bench_with_input`, `Bencher::iter`, the
//! `criterion_group!`/`criterion_main!` macros — with a plain wall-clock
//! measurement loop instead of criterion's statistical machinery. Each
//! benchmark is warmed up, then timed over an adaptively chosen iteration
//! count, and a single `median-of-runs ns/iter` line is printed.
//!
//! No plotting, no statistics, no CLI filtering: just numbers, so the bench
//! targets keep compiling and produce usable output in an offline container.

#![forbid(unsafe_code)]
// Printing the measured ns/iter lines IS this shim's output channel, so
// the workspace-wide print ban does not apply here.
#![allow(clippy::print_stdout)]

use std::time::Instant;

/// Target wall-clock spent measuring one benchmark (after warm-up).
const TARGET_MEASURE_NANOS: u128 = 200_000_000;
/// Measurement runs per benchmark; the median is reported.
const RUNS: usize = 5;

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            _c: self,
            name: name.to_owned(),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by wall-clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Benchmarks `f` with an input value, labeled by a [`BenchmarkId`].
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.label), |b| f(b, input));
        self
    }

    /// Ends the group (no-op; output is printed as benchmarks run).
    pub fn finish(self) {}
}

/// A benchmark label, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label of the form `name/parameter`.
    pub fn new<S: Into<String>, P: std::fmt::Display>(name: S, parameter: P) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A label that is just the parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            label: format!("{parameter}"),
        }
    }
}

/// Drives the timed iteration loop of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters_hint: u64,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive via `black_box`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up + calibration: how long does one call take?
        let start = Instant::now();
        let mut calls = 0u64;
        while calls < 10 || (start.elapsed().as_nanos() < 10_000_000 && calls < 1_000_000) {
            std::hint::black_box(routine());
            calls += 1;
        }
        let per_call = (start.elapsed().as_nanos() / u128::from(calls)).max(1);
        let iters =
            (TARGET_MEASURE_NANOS / u128::from(RUNS as u64) / per_call).clamp(1, 10_000_000) as u64;
        self.iters_hint = iters;
        for _ in 0..RUNS {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
}

/// Runs one benchmark and prints its median timing line.
fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher {
        iters_hint: 0,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no measurement)");
        return;
    }
    b.samples.sort_by(|a, b| a.total_cmp(b));
    let median = b.samples[b.samples.len() / 2];
    println!(
        "{label:<40} {:>12.1} ns/iter  ({} iters x {} runs)",
        median, b.iters_hint, RUNS
    );
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim-self-test");
        let mut x = 0u64;
        g.bench_function("wrapping_add", |b| {
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        g.finish();
    }
}
