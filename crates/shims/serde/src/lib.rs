//! Offline stand-in for `serde`, vendored into the workspace.
//!
//! The container building this repo has no access to crates.io, so the real
//! `serde` cannot be resolved. The bench binaries only need one capability:
//! turning a flat row struct into a JSON object for `.jsonl` result files.
//! This crate provides exactly that — a [`Serialize`] trait producing a
//! [`Json`] value tree, plus a `#[derive(Serialize)]` macro (re-exported from
//! `serde-derive-shim`) for plain structs with named fields.
//!
//! It is *not* serde: no typed deserialization (the `serde_json` shim parses
//! into the [`Json`] tree and call sites pick fields out with the accessor
//! helpers), no non-self-describing formats, no enums/generics in derives.
//! If the environment ever gains registry access,
//! delete `crates/shims/` and point the manifests at the real crates; the
//! call sites are source-compatible for the subset used here.

#![forbid(unsafe_code)]

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; rendered via the shortest round-trip float formatting.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup: the value under `key`, or `None` for missing
    /// keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a [`Json::Num`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral
    /// [`Json::Num`] (the shim stores all numbers as `f64`, so integers are
    /// exact up to 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 9.0e15 => Some(*x as u64),
            _ => None,
        }
    }

    /// The string slice, if this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element slice, if this is a [`Json::Arr`].
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    if x.fract() == 0.0 && x.abs() < 9.0e15 {
                        out.push_str(&format!("{}", *x as i64));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    // JSON has no NaN/inf; mirror serde_json's `null`.
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render(out);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }
}

/// Conversion into a [`Json`] value — the whole of "serde" this repo needs.
pub trait Serialize {
    /// The JSON form of `self`.
    fn to_json(&self) -> Json;
}

pub use serde_derive_shim::Serialize;

macro_rules! num_impl {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )+};
}

num_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_containers() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Num(3.0)),
            ("b".into(), Json::Str("x\"y".into())),
            ("c".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        let mut s = String::new();
        v.render(&mut s);
        assert_eq!(s, r#"{"a":3,"b":"x\"y","c":[true,null]}"#);
    }

    #[test]
    fn accessors_select_by_shape() {
        let v = Json::Obj(vec![
            ("n".into(), Json::Num(7.0)),
            ("name".into(), Json::Str("mis".into())),
            ("flag".into(), Json::Bool(true)),
            ("q".into(), Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
        ]);
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(7.0));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("mis"));
        assert_eq!(v.get("flag").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("q").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("n"), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut s = String::new();
        f64::NAN.to_json().render(&mut s);
        assert_eq!(s, "null");
    }

    // The derive macro expands to `serde::`-prefixed paths, so it can only
    // be exercised from a downstream crate: see the serde_json shim's tests.
}
