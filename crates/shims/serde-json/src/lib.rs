//! Offline stand-in for `serde_json`: `to_string` over the vendored serde
//! shim, plus a small recursive-descent parser producing [`serde::Json`]
//! value trees (the `lca-serve` wire protocol reads requests through it).
//! See `crates/shims/serde` for scope and caveats.

#![forbid(unsafe_code)]

/// The error type of this crate: unreachable for [`to_string`] (rendering a
/// [`serde::Json`] tree cannot fail), and a position + message for
/// [`from_str`] parse failures.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
    /// Byte offset of the failure, when the error comes from the parser.
    pos: Option<usize>,
}

impl Error {
    fn parse(msg: &'static str, pos: usize) -> Self {
        Self {
            msg,
            pos: Some(pos),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pos {
            Some(p) => write!(f, "JSON parse error at byte {p}: {}", self.msg),
            None => f.write_str(self.msg),
        }
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_json().render(&mut out);
    Ok(out)
}

/// Parses one JSON value out of `input` (surrounding whitespace allowed,
/// trailing garbage rejected).
///
/// Unlike the real `serde_json::from_str` this is untyped: it returns the
/// [`serde::Json`] tree and callers select fields with the shim's accessor
/// helpers ([`serde::Json::get`], [`serde::Json::as_u64`], …). Numbers are
/// stored as `f64` — integers are exact up to 2^53, which covers every field
/// of the serving protocol.
///
/// # Errors
///
/// Returns an [`Error`] carrying the byte offset of the first malformed
/// construct.
pub fn from_str(input: &str) -> Result<serde::Json, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse("trailing characters after value", p.pos));
    }
    Ok(v)
}

/// Nesting ceiling for the recursive-descent parser; protocol messages are
/// flat, so anything deeper is garbage, not load.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(msg, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str, msg: &'static str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::parse(msg, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<serde::Json, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::parse("nesting too deep", self.pos));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(serde::Json::Str(self.string()?)),
            Some(b't') => {
                self.eat_literal("true", "expected `true`")?;
                Ok(serde::Json::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false", "expected `false`")?;
                Ok(serde::Json::Bool(false))
            }
            Some(b'n') => {
                self.eat_literal("null", "expected `null`")?;
                Ok(serde::Json::Null)
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::parse("expected a JSON value", self.pos)),
        }
    }

    fn object(&mut self, depth: usize) -> Result<serde::Json, Error> {
        self.eat(b'{', "expected `{`")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(serde::Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(serde::Json::Obj(fields));
                }
                _ => return Err(Error::parse("expected `,` or `}` in object", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<serde::Json, Error> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(serde::Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(serde::Json::Arr(items));
                }
                _ => return Err(Error::parse("expected `,` or `]` in array", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the longest plain run in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::parse("invalid UTF-8 in string", start))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or(Error::parse("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or(Error::parse("malformed \\u escape", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for the
                            // protocol; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(Error::parse("unknown escape", self.pos - 1)),
                    }
                }
                _ => return Err(Error::parse("unterminated string", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<serde::Json, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits are valid UTF-8");
        let x: f64 = text
            .parse()
            .map_err(|_| Error::parse("malformed number", start))?;
        Ok(serde::Json::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use serde::Json;

    #[test]
    fn to_string_matches_render() {
        assert_eq!(super::to_string(&42u64).unwrap(), "42");
        assert_eq!(super::to_string("hi").unwrap(), "\"hi\"");
    }

    #[test]
    fn derive_works_on_plain_structs() {
        #[derive(serde::Serialize)]
        struct Row {
            n: usize,
            label: String,
            ratio: f64,
        }
        let r = Row {
            n: 7,
            label: "x".into(),
            ratio: 0.5,
        };
        assert_eq!(
            super::to_string(&r).unwrap(),
            r#"{"n":7,"label":"x","ratio":0.5}"#
        );
    }

    #[test]
    fn parses_protocol_shaped_requests() {
        let v = super::from_str(
            r#" {"session": "s1", "kind": "mis", "n": 1000000, "seed": 7, "query": 42} "#,
        )
        .unwrap();
        assert_eq!(v.get("session").and_then(Json::as_str), Some("s1"));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("mis"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(1_000_000));
        assert_eq!(v.get("query").and_then(Json::as_u64), Some(42));
    }

    #[test]
    fn round_trips_through_render() {
        for text in [
            r#"{"a":1,"b":[true,false,null],"c":{"d":"x\ny"},"e":-2.5}"#,
            "[]",
            "{}",
            r#""A\t""#,
            "3.25",
            "-17",
            "true",
            "null",
        ] {
            let v = super::from_str(text).unwrap();
            let mut rendered = String::new();
            v.render(&mut rendered);
            // Render → parse is a fixpoint even when the input had escapes.
            assert_eq!(super::from_str(&rendered).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            r#"{"a":}"#,
            "tru",
            "1 2",
            "\"unterminated",
            r#""bad \x escape""#,
            "nul",
            "--3",
        ] {
            assert!(super::from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_errors_carry_positions() {
        let err = super::from_str("[1, ?]").unwrap_err();
        assert!(err.to_string().contains("byte 4"), "{err}");
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let s = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(super::from_str(&s).is_err());
    }
}
