//! Offline stand-in for `serde_json`: the `to_string` entry point over the
//! vendored serde shim. See `crates/shims/serde` for scope and caveats.

/// The error type of [`to_string`]. Rendering a [`serde::Json`] tree cannot
/// actually fail; the `Result` mirrors the real `serde_json` signature so
/// call sites stay source-compatible.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json shim error (unreachable)")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_json().render(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn to_string_matches_render() {
        assert_eq!(super::to_string(&42u64).unwrap(), "42");
        assert_eq!(super::to_string("hi").unwrap(), "\"hi\"");
    }

    #[test]
    fn derive_works_on_plain_structs() {
        #[derive(serde::Serialize)]
        struct Row {
            n: usize,
            label: String,
            ratio: f64,
        }
        let r = Row {
            n: 7,
            label: "x".into(),
            ratio: 0.5,
        };
        assert_eq!(
            super::to_string(&r).unwrap(),
            r#"{"n":7,"label":"x","ratio":0.5}"#
        );
    }
}
