//! Dependency-free `#[derive(Serialize)]` for the vendored serde shim.
//!
//! Supports exactly the shape the bench row structs use: a non-generic
//! struct with named fields. Anything else is a compile error by design —
//! widen it if a new call site needs more.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes and visibility, find `struct Name { ... }`.
    let mut name = None;
    let mut body = None;
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next(); // the bracketed attribute payload
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => panic!("derive(Serialize) shim: expected struct name"),
                }
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        body = Some(g.stream());
                    }
                    _ => panic!(
                        "derive(Serialize) shim: only plain non-generic structs \
                         with named fields are supported"
                    ),
                }
                break;
            }
            _ => {}
        }
    }
    let name = name.expect("derive(Serialize) shim: no struct found");
    let body = body.expect("derive(Serialize) shim: no field block found");

    // Collect field names: `[attrs] [pub] ident : Type ,`
    let mut fields = Vec::new();
    let mut inner = body.into_iter().peekable();
    loop {
        // Skip attributes on the field.
        while matches!(inner.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            inner.next();
            inner.next();
        }
        let Some(tt) = inner.next() else { break };
        let TokenTree::Ident(id) = tt else {
            panic!("derive(Serialize) shim: expected field identifier");
        };
        let id = id.to_string();
        if id == "pub" {
            continue;
        }
        fields.push(id);
        // Skip `: Type` up to the next top-level comma.
        for tt in inner.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }

    let field_entries: String = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_owned(), serde::Serialize::to_json(&self.{f})),"))
        .collect();
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_json(&self) -> serde::Json {{\n\
                 serde::Json::Obj(vec![{field_entries}])\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("derive(Serialize) shim: generated impl failed to parse")
}
