//! (∆+1)-coloring via random-order greedy simulation.

use std::collections::HashMap;
use std::sync::Mutex;

use lca_core::{Lca, LcaError, QueryCtx, VertexSubsetLca};
use lca_graph::VertexId;
use lca_probe::Oracle;
use lca_rand::{KWiseHash, Seed};

/// LCA for a greedy (∆+1)-coloring.
///
/// Over the same hash-rank order as [`crate::MisLca`], the greedy coloring
/// assigns each vertex the smallest color not used by its lower-rank
/// neighbors; since at most `deg(v)` colors are blocked, colors stay in
/// `0..=∆`. The LCA evaluates the fixed point by recursing into lower-rank
/// neighbors (colors, unlike MIS bits, require *all* lower-rank neighbors to
/// resolve, so this is the costliest of the classic simulations).
///
/// # Example
///
/// ```
/// use lca_classic::ColoringLca;
/// use lca_graph::gen::structured;
/// use lca_rand::Seed;
///
/// let g = structured::cycle(9);
/// let coloring = ColoringLca::new(&g, Seed::new(1));
/// for (u, v) in g.edges() {
///     assert_ne!(coloring.color_of(u), coloring.color_of(v));
/// }
/// ```
#[derive(Debug)]
pub struct ColoringLca<O> {
    oracle: O,
    rank: KWiseHash,
    memo: Mutex<HashMap<u32, u32>>,
}

impl<O: Oracle> ColoringLca<O> {
    /// Creates the LCA; `seed` fixes the greedy order.
    pub fn new(oracle: O, seed: Seed) -> Self {
        let n = oracle.vertex_count();
        let independence = (2 * (usize::BITS - n.max(2).leading_zeros()) as usize).max(8);
        Self {
            oracle,
            rank: KWiseHash::new(seed.derive(0x434F4C), independence),
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// The random rank of a vertex (rank, label) — a total order.
    pub fn rank_of(&self, v: VertexId) -> (u64, u64) {
        let l = self.oracle.label(v);
        (self.rank.hash(l), l)
    }

    /// The color of `v`, in `0..=deg(v)` (hence `0..=∆`).
    pub fn color_of(&self, v: VertexId) -> u32 {
        self.color_ctx(&QueryCtx::unlimited(), v)
            .expect("unlimited queries cannot be interrupted")
    }

    /// Budgeted color evaluation: probes through the context's budgeted
    /// oracle; memo entries are only written after a checkpoint, so an
    /// interrupted query never persists a color derived from refused
    /// (degenerate) probes.
    pub(crate) fn color_ctx(&self, ctx: &QueryCtx, v: VertexId) -> Result<u32, LcaError> {
        if let Some(&c) = self.memo.lock().expect("memo poisoned").get(&v.raw()) {
            return Ok(c);
        }
        let o = ctx.budgeted(&self.oracle);
        // Iterative DFS over the decreasing-rank dependency DAG; a vertex
        // resolves once every lower-rank neighbor has a color. The probe
        // loop below intentionally stays a point-probe scan with an early
        // break at the first unresolved dependency — a full buffered scan
        // would issue neighbor probes this walk never needs. `blocked` is
        // hoisted so re-visits of `x` reuse one allocation.
        let mut stack = vec![v];
        let mut blocked: Vec<u32> = Vec::new();
        while let Some(&x) = stack.last() {
            if self
                .memo
                .lock()
                .expect("memo poisoned")
                .contains_key(&x.raw())
            {
                stack.pop();
                continue;
            }
            let rx = self.rank_of(x);
            let deg = o.degree(x);
            blocked.clear();
            let mut need: Option<VertexId> = None;
            for i in 0..deg {
                let Some(w) = o.neighbor(x, i) else {
                    break;
                };
                if self.rank_of(w) >= rx {
                    continue;
                }
                match self.memo.lock().expect("memo poisoned").get(&w.raw()) {
                    Some(&c) => blocked.push(c),
                    None => {
                        need = Some(w);
                        break;
                    }
                }
            }
            // Never memoize past an interruption.
            ctx.checkpoint()?;
            match need {
                Some(w) => stack.push(w),
                None => {
                    blocked.sort_unstable();
                    blocked.dedup();
                    // Smallest color not in `blocked`.
                    let mut color = 0u32;
                    for &b in &blocked {
                        if b == color {
                            color += 1;
                        } else if b > color {
                            break;
                        }
                    }
                    self.memo
                        .lock()
                        .expect("memo poisoned")
                        .insert(x.raw(), color);
                    stack.pop();
                }
            }
        }
        Ok(self.memo.lock().expect("memo poisoned")[&v.raw()])
    }
}

impl<O: Oracle> Lca for ColoringLca<O> {
    type Query = VertexId;
    type Answer = bool;

    /// Membership in color class 0 — the designated vertex subset of the
    /// coloring. Over a fixed rank order, "`v` gets color 0" is exactly the
    /// greedy-MIS fixed point ("no lower-rank neighbor has color 0"), so
    /// class 0 is itself a maximal independent set; the full color is still
    /// available via [`ColoringLca::color_of`].
    fn query_ctx(&self, v: VertexId, ctx: &QueryCtx) -> Result<bool, LcaError> {
        let n = self.oracle.vertex_count();
        if v.index() >= n {
            return Err(LcaError::InvalidVertex { v, vertex_count: n });
        }
        Ok(self.color_ctx(ctx, v)? == 0)
    }

    fn name(&self) -> &'static str {
        "greedy-coloring"
    }

    fn probe_bound(&self) -> &'static str {
        "2^{O(Δ)} worst case, O(poly Δ) on average"
    }
}

impl<O: Oracle> VertexSubsetLca for ColoringLca<O> {}

#[cfg(test)]
mod tests {
    use super::*;
    use lca_graph::gen::{structured, GnpBuilder, RegularBuilder};
    use lca_graph::Graph;

    fn assert_proper(g: &Graph, lca: &ColoringLca<&Graph>) {
        for (u, v) in g.edges() {
            assert_ne!(
                lca.color_of(u),
                lca.color_of(v),
                "edge {u}-{v} monochromatic"
            );
        }
        for v in g.vertices() {
            assert!(
                lca.color_of(v) as usize <= g.degree(v),
                "{v} colored beyond deg+1"
            );
        }
    }

    #[test]
    fn proper_on_classic_families() {
        for g in [
            structured::cycle(15),
            structured::path(10),
            structured::star(12),
            structured::grid(5, 5),
            structured::complete(9),
        ] {
            for s in 0..3u64 {
                let lca = ColoringLca::new(&g, Seed::new(s));
                assert_proper(&g, &lca);
            }
        }
    }

    #[test]
    fn proper_on_random_graphs() {
        for s in 0..3u64 {
            let g = GnpBuilder::new(70, 0.08).seed(Seed::new(s)).build();
            let lca = ColoringLca::new(&g, Seed::new(60 + s));
            assert_proper(&g, &lca);
        }
        let g = RegularBuilder::new(90, 5)
            .seed(Seed::new(4))
            .build()
            .unwrap();
        let lca = ColoringLca::new(&g, Seed::new(5));
        assert_proper(&g, &lca);
    }

    #[test]
    fn complete_graph_uses_all_colors() {
        let g = structured::complete(7);
        let lca = ColoringLca::new(&g, Seed::new(9));
        let mut colors: Vec<u32> = g.vertices().map(|v| lca.color_of(v)).collect();
        colors.sort_unstable();
        assert_eq!(colors, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn lowest_rank_vertex_gets_color_zero() {
        let g = structured::cycle(11);
        let lca = ColoringLca::new(&g, Seed::new(3));
        let lowest = g.vertices().min_by_key(|&v| lca.rank_of(v)).unwrap();
        assert_eq!(lca.color_of(lowest), 0);
    }

    #[test]
    fn deterministic_across_query_orders() {
        let g = GnpBuilder::new(40, 0.15).seed(Seed::new(6)).build();
        let a = ColoringLca::new(&g, Seed::new(7));
        let b = ColoringLca::new(&g, Seed::new(7));
        let ca: Vec<u32> = g.vertices().map(|v| a.color_of(v)).collect();
        let mut order: Vec<VertexId> = g.vertices().collect();
        order.reverse();
        for v in order {
            assert_eq!(b.color_of(v), ca[v.index()]);
        }
    }

    #[test]
    fn isolated_vertices_get_color_zero() {
        let g = lca_graph::GraphBuilder::new(3).edge(0, 1).build().unwrap();
        let lca = ColoringLca::new(&g, Seed::new(1));
        assert_eq!(lca.color_of(VertexId::new(2)), 0);
    }
}
