//! 2-approximate vertex cover from the maximal matching.

use lca_core::{Lca, LcaError, QueryCtx, VertexSubsetLca};
use lca_graph::VertexId;
use lca_probe::Oracle;
use lca_rand::Seed;

use crate::MatchingLca;

/// LCA for a 2-approximate vertex cover: `v` is in the cover iff some
/// incident edge is in the underlying maximal matching.
///
/// The endpoints of any maximal matching form a vertex cover of size at most
/// twice the optimum — the classic LCA reduction (Parnas–Ron).
///
/// # Example
///
/// ```
/// use lca_classic::VertexCoverLca;
/// use lca_graph::{gen::structured, VertexId};
/// use lca_rand::Seed;
///
/// let g = structured::star(6);
/// let vc = VertexCoverLca::new(&g, Seed::new(1));
/// // Every edge must be covered.
/// for (u, v) in g.edges() {
///     assert!(vc.contains(u) || vc.contains(v));
/// }
/// ```
#[derive(Debug)]
pub struct VertexCoverLca<O> {
    matching: MatchingLca<O>,
}

impl<O: Oracle + Clone> VertexCoverLca<O> {
    /// Creates the LCA over the maximal matching fixed by `seed`.
    pub fn new(oracle: O, seed: Seed) -> Self {
        Self {
            matching: MatchingLca::new(oracle.clone(), seed),
        }
    }
}

impl<O: Oracle> VertexCoverLca<O> {
    /// Access the underlying matching LCA.
    pub fn matching(&self) -> &MatchingLca<O> {
        &self.matching
    }

    /// Whether `v` belongs to the vertex cover (deg(v) matching queries).
    pub fn contains(&self, v: VertexId) -> bool {
        self.matching.is_matched(v)
    }
}

impl<O: Oracle> Lca for VertexCoverLca<O> {
    type Query = VertexId;
    type Answer = bool;

    fn query_ctx(&self, v: VertexId, ctx: &QueryCtx) -> Result<bool, LcaError> {
        let n = self.matching.oracle().vertex_count();
        if v.index() >= n {
            return Err(LcaError::InvalidVertex { v, vertex_count: n });
        }
        self.matching.matched_ctx(ctx, v)
    }

    fn name(&self) -> &'static str {
        "vertex-cover"
    }

    fn probe_bound(&self) -> &'static str {
        "2^{O(Δ)} worst case, O(poly Δ) on average"
    }
}

impl<O: Oracle> VertexSubsetLca for VertexCoverLca<O> {}

#[cfg(test)]
mod tests {
    use super::*;
    use lca_graph::gen::{structured, GnpBuilder};
    use lca_graph::Graph;

    fn assert_valid_cover(g: &Graph, vc: &VertexCoverLca<&Graph>) {
        for (u, v) in g.edges() {
            assert!(vc.contains(u) || vc.contains(v), "edge {u}-{v} uncovered");
        }
        // 2-approximation: the cover is exactly the matched vertices, so its
        // size is 2·|M|, and |M| lower-bounds any cover.
        let cover: Vec<VertexId> = g.vertices().filter(|&v| vc.contains(v)).collect();
        let matched_edges = g
            .edges()
            .filter(|&(u, v)| vc.matching().contains(u, v))
            .count();
        assert_eq!(cover.len(), 2 * matched_edges);
    }

    #[test]
    fn valid_on_families() {
        for g in [
            structured::cycle(12),
            structured::star(9),
            structured::grid(4, 4),
            structured::complete(7),
        ] {
            let vc = VertexCoverLca::new(&g, Seed::new(3));
            assert_valid_cover(&g, &vc);
        }
    }

    #[test]
    fn valid_on_random_graph() {
        let g = GnpBuilder::new(50, 0.1).seed(Seed::new(5)).build();
        let vc = VertexCoverLca::new(&g, Seed::new(6));
        assert_valid_cover(&g, &vc);
    }

    #[test]
    fn isolated_vertices_are_never_covered() {
        let g = lca_graph::GraphBuilder::new(5).edge(0, 1).build().unwrap();
        let vc = VertexCoverLca::new(&g, Seed::new(2));
        assert!(!vc.contains(VertexId::new(4)));
    }
}
