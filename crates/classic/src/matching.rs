//! Maximal matching via random-order greedy simulation on edges.

use std::collections::HashMap;
use std::sync::Mutex;

use lca_core::{Lca, LcaError, QueryCtx, VertexSubsetLca};
use lca_graph::VertexId;
use lca_probe::Oracle;
use lca_rand::{KWiseHash, Seed};

/// LCA for a maximal matching.
///
/// Edges are ranked by a hash of their normalized label pair; the greedy
/// matching over that order satisfies *e ∈ M ⇔ no adjacent edge of lower
/// rank is in M*, evaluated by recursion into lower-rank adjacent edges
/// (Nguyen–Onak style simulation).
///
/// # Example
///
/// ```
/// use lca_classic::MatchingLca;
/// use lca_graph::{gen::structured, VertexId};
/// use lca_rand::Seed;
///
/// let g = structured::path(4);
/// let mm = MatchingLca::new(&g, Seed::new(1));
/// let matched = g
///     .edges()
///     .filter(|&(u, v)| mm.contains(u, v))
///     .count();
/// assert!(matched >= 1); // a maximal matching of P4 has 1 or 2 edges
/// ```
#[derive(Debug)]
pub struct MatchingLca<O> {
    oracle: O,
    rank: KWiseHash,
    memo: Mutex<HashMap<(u32, u32), bool>>,
}

impl<O: Oracle> MatchingLca<O> {
    /// Creates the LCA; `seed` fixes the greedy edge order.
    pub fn new(oracle: O, seed: Seed) -> Self {
        let n = oracle.vertex_count();
        let independence = (2 * (usize::BITS - n.max(2).leading_zeros()) as usize).max(8);
        Self {
            oracle,
            rank: KWiseHash::new(seed.derive(0x4D4D), independence),
            memo: Mutex::new(HashMap::new()),
        }
    }

    pub(crate) fn oracle(&self) -> &O {
        &self.oracle
    }

    fn key(&self, u: VertexId, v: VertexId) -> (u32, u32) {
        if u.raw() < v.raw() {
            (u.raw(), v.raw())
        } else {
            (v.raw(), u.raw())
        }
    }

    /// The rank of edge `{u, v}`: hash of the normalized label pair, with
    /// the pair itself as tie-break (a total order on edges).
    pub fn rank_of(&self, u: VertexId, v: VertexId) -> (u64, u64, u64) {
        let (a, b) = {
            let (la, lb) = (self.oracle.label(u), self.oracle.label(v));
            if la < lb {
                (la, lb)
            } else {
                (lb, la)
            }
        };
        // Mix the pair into one key; the hash provides the randomness, the
        // (a, b) components make ties impossible.
        let mixed = a
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(31)
            .wrapping_add(b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        (self.rank.hash(mixed), a, b)
    }

    /// Whether edge `{u, v}` belongs to the maximal matching.
    ///
    /// # Panics
    ///
    /// Panics if `{u, v}` is not an edge of the oracle's graph.
    pub fn contains(&self, u: VertexId, v: VertexId) -> bool {
        assert!(
            self.oracle.adjacency(u, v).is_some(),
            "{u}-{v} is not an edge"
        );
        self.decide_edge(&self.oracle, &QueryCtx::unlimited(), u, v)
            .expect("unlimited queries cannot be interrupted")
    }

    /// The greedy fixed-point evaluation over edges, probing through `o`
    /// and honoring `ctx`. Memo entries are only written after a
    /// checkpoint, so a budget-interrupted query never persists a decision
    /// derived from refused (degenerate) probes.
    fn decide_edge<P: Oracle>(
        &self,
        o: &P,
        ctx: &QueryCtx,
        u: VertexId,
        v: VertexId,
    ) -> Result<bool, LcaError> {
        let root = self.key(u, v);
        if let Some(&d) = self.memo.lock().expect("memo poisoned").get(&root) {
            return Ok(d);
        }
        let mut stack: Vec<(VertexId, VertexId)> = vec![(u, v)];
        while let Some(&(x, y)) = stack.last() {
            let k = self.key(x, y);
            if self.memo.lock().expect("memo poisoned").contains_key(&k) {
                stack.pop();
                continue;
            }
            let r = self.rank_of(x, y);
            let mut verdict = Some(true);
            let mut need: Option<(VertexId, VertexId)> = None;
            'outer: for &(a, b) in &[(x, y), (y, x)] {
                let deg = o.degree(a);
                for i in 0..deg {
                    let Some(w) = o.neighbor(a, i) else {
                        break;
                    };
                    if w == b {
                        continue;
                    }
                    if self.rank_of(a, w) >= r {
                        continue;
                    }
                    match self
                        .memo
                        .lock()
                        .expect("memo poisoned")
                        .get(&self.key(a, w))
                    {
                        Some(&true) => {
                            verdict = Some(false);
                            break 'outer;
                        }
                        Some(&false) => {}
                        None => {
                            verdict = None;
                            need = Some((a, w));
                            break 'outer;
                        }
                    }
                }
            }
            // Never memoize past an interruption.
            ctx.checkpoint()?;
            match (verdict, need) {
                (Some(d), _) => {
                    self.memo.lock().expect("memo poisoned").insert(k, d);
                    stack.pop();
                }
                (None, Some(e)) => stack.push(e),
                (None, None) => unreachable!("undecided without a dependency"),
            }
        }
        Ok(self.memo.lock().expect("memo poisoned")[&root])
    }

    /// Whether `v` is an endpoint of some matched edge (deg(v) edge
    /// queries) — the vertex-subset view of the matching, identical to the
    /// Parnas–Ron vertex cover built on it.
    pub fn is_matched(&self, v: VertexId) -> bool {
        self.matched_ctx(&QueryCtx::unlimited(), v)
            .expect("unlimited queries cannot be interrupted")
    }

    /// Budgeted vertex-subset view, shared with
    /// [`crate::VertexCoverLca`]: walks `v`'s incident edges through the
    /// context's budgeted oracle.
    pub(crate) fn matched_ctx(&self, ctx: &QueryCtx, v: VertexId) -> Result<bool, LcaError> {
        let o = ctx.budgeted(&self.oracle);
        let deg = o.degree(v);
        for i in 0..deg {
            let Some(w) = o.neighbor(v, i) else {
                break;
            };
            if self.decide_edge(&o, ctx, v, w)? {
                return Ok(true);
            }
        }
        // A drained neighbor scan must not read as "unmatched".
        ctx.checkpoint()?;
        Ok(false)
    }
}

impl<O: Oracle> Lca for MatchingLca<O> {
    type Query = VertexId;
    type Answer = bool;

    fn query_ctx(&self, v: VertexId, ctx: &QueryCtx) -> Result<bool, LcaError> {
        let n = self.oracle.vertex_count();
        if v.index() >= n {
            return Err(LcaError::InvalidVertex { v, vertex_count: n });
        }
        self.matched_ctx(ctx, v)
    }

    fn name(&self) -> &'static str {
        "maximal-matching"
    }

    fn probe_bound(&self) -> &'static str {
        "2^{O(Δ)} worst case, O(poly Δ) on average"
    }
}

impl<O: Oracle> VertexSubsetLca for MatchingLca<O> {}

#[cfg(test)]
mod tests {
    use super::*;
    use lca_graph::gen::{structured, GnpBuilder};
    use lca_graph::Graph;

    fn assert_valid_matching(g: &Graph, mm: &MatchingLca<&Graph>) {
        let matched: Vec<(VertexId, VertexId)> =
            g.edges().filter(|&(u, v)| mm.contains(u, v)).collect();
        // No two matched edges share a vertex.
        let mut used = std::collections::HashSet::new();
        for &(u, v) in &matched {
            assert!(used.insert(u), "vertex {u} matched twice");
            assert!(used.insert(v), "vertex {v} matched twice");
        }
        // Maximality: every unmatched edge touches a matched vertex.
        for (u, v) in g.edges() {
            if !mm.contains(u, v) {
                assert!(
                    used.contains(&u) || used.contains(&v),
                    "edge {u}-{v} could be added"
                );
            }
        }
    }

    #[test]
    fn valid_on_classic_families() {
        for g in [
            structured::cycle(14),
            structured::path(9),
            structured::star(8),
            structured::grid(4, 5),
            structured::complete(9),
        ] {
            for s in 0..3u64 {
                let mm = MatchingLca::new(&g, Seed::new(s));
                assert_valid_matching(&g, &mm);
            }
        }
    }

    #[test]
    fn valid_on_random_graphs() {
        for s in 0..3u64 {
            let g = GnpBuilder::new(60, 0.08).seed(Seed::new(s)).build();
            let mm = MatchingLca::new(&g, Seed::new(50 + s));
            assert_valid_matching(&g, &mm);
        }
    }

    #[test]
    fn star_matches_exactly_one_edge() {
        let g = structured::star(10);
        let mm = MatchingLca::new(&g, Seed::new(4));
        let matched = g.edges().filter(|&(u, v)| mm.contains(u, v)).count();
        assert_eq!(matched, 1);
    }

    #[test]
    fn symmetric_and_deterministic() {
        let g = GnpBuilder::new(40, 0.15).seed(Seed::new(6)).build();
        let mm = MatchingLca::new(&g, Seed::new(7));
        for (u, v) in g.edges() {
            assert_eq!(mm.contains(u, v), mm.contains(v, u));
            assert_eq!(mm.contains(u, v), mm.contains(u, v));
        }
    }

    #[test]
    #[should_panic(expected = "is not an edge")]
    fn non_edge_panics() {
        let g = structured::path(4);
        let mm = MatchingLca::new(&g, Seed::new(1));
        mm.contains(VertexId::new(0), VertexId::new(3));
    }
}
