//! Maximal independent set via random-order greedy simulation.

use std::collections::HashMap;
use std::sync::Mutex;

use lca_core::{Lca, LcaError, QueryCtx, VertexSubsetLca};
use lca_graph::VertexId;
use lca_probe::Oracle;
use lca_rand::{KWiseHash, Seed};

/// LCA for a maximal independent set.
///
/// Fix a random order by ranking vertices with a hash of their label
/// (ties broken by label, so the order is total). The greedy MIS over that
/// order satisfies the local fixed-point rule
/// *v ∈ MIS ⇔ no neighbor `w` with `rank(w) < rank(v)` is in the MIS*,
/// which the LCA evaluates by recursing into lower-rank neighbors. Expected
/// probe complexity is `2^{O(∆)}` in the worst case (the classic bound this
/// paper's spanner LCAs escape), but `O(poly ∆)` on average over queries.
///
/// Decisions are memoized across queries; the cache is a pure accelerator —
/// every answer is a deterministic function of `(graph, seed)`.
///
/// # Example
///
/// ```
/// use lca_classic::MisLca;
/// use lca_graph::gen::structured;
/// use lca_rand::Seed;
///
/// let g = structured::star(6);
/// let mis = MisLca::new(&g, Seed::new(7));
/// // In a star, either the hub is in the MIS, or all leaves are.
/// let hub = mis.contains(lca_graph::VertexId::new(0));
/// for leaf in 1..6 {
///     assert_eq!(mis.contains(lca_graph::VertexId::new(leaf)), !hub);
/// }
/// ```
#[derive(Debug)]
pub struct MisLca<O> {
    oracle: O,
    rank: KWiseHash,
    memo: Mutex<HashMap<u32, bool>>,
}

impl<O: Oracle> MisLca<O> {
    /// Creates the LCA; `seed` fixes the greedy order.
    pub fn new(oracle: O, seed: Seed) -> Self {
        let n = oracle.vertex_count();
        let independence = (2 * (usize::BITS - n.max(2).leading_zeros()) as usize).max(8);
        Self {
            oracle,
            rank: KWiseHash::new(seed.derive(0x004D_4953), independence),
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// The random rank of a vertex (rank, label) — a total order.
    pub fn rank_of(&self, v: VertexId) -> (u64, u64) {
        let l = self.oracle.label(v);
        (self.rank.hash(l), l)
    }

    /// Whether `v` belongs to the maximal independent set.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the oracle's graph.
    pub fn contains(&self, v: VertexId) -> bool {
        self.decide(&self.oracle, &QueryCtx::unlimited(), v)
            .expect("unlimited queries cannot be interrupted")
    }

    /// The greedy fixed-point evaluation, probing through `o` and honoring
    /// `ctx`. Memo entries are only written after a checkpoint, so a
    /// budget-interrupted query never persists a decision derived from
    /// refused (degenerate) probes — entries written earlier in the walk
    /// were computed fully within budget and stay valid across queries.
    fn decide<P: Oracle>(&self, o: &P, ctx: &QueryCtx, v: VertexId) -> Result<bool, LcaError> {
        if let Some(&d) = self.memo.lock().expect("memo poisoned").get(&v.raw()) {
            return Ok(d);
        }
        // Iterative DFS over the strictly-decreasing-rank dependency DAG.
        let mut stack: Vec<VertexId> = vec![v];
        while let Some(&x) = stack.last() {
            if self
                .memo
                .lock()
                .expect("memo poisoned")
                .contains_key(&x.raw())
            {
                stack.pop();
                continue;
            }
            let rx = self.rank_of(x);
            let deg = o.degree(x);
            let mut verdict = Some(true);
            let mut need: Option<VertexId> = None;
            for i in 0..deg {
                let Some(w) = o.neighbor(x, i) else {
                    break;
                };
                if self.rank_of(w) >= rx {
                    continue;
                }
                match self.memo.lock().expect("memo poisoned").get(&w.raw()) {
                    Some(&true) => {
                        verdict = Some(false);
                        break;
                    }
                    Some(&false) => {}
                    None => {
                        verdict = None;
                        need = Some(w);
                        break;
                    }
                }
            }
            // All probes behind this verdict were real iff the context has
            // not tripped; never memoize past an interruption.
            ctx.checkpoint()?;
            match (verdict, need) {
                (Some(d), _) => {
                    self.memo.lock().expect("memo poisoned").insert(x.raw(), d);
                    stack.pop();
                }
                (None, Some(w)) => stack.push(w),
                (None, None) => unreachable!("undecided without a dependency"),
            }
        }
        Ok(self.memo.lock().expect("memo poisoned")[&v.raw()])
    }
}

impl<O: Oracle> Lca for MisLca<O> {
    type Query = VertexId;
    type Answer = bool;

    fn query_ctx(&self, v: VertexId, ctx: &QueryCtx) -> Result<bool, LcaError> {
        let n = self.oracle.vertex_count();
        if v.index() >= n {
            return Err(LcaError::InvalidVertex { v, vertex_count: n });
        }
        let o = ctx.budgeted(&self.oracle);
        self.decide(&o, ctx, v)
    }

    fn name(&self) -> &'static str {
        "mis"
    }

    fn probe_bound(&self) -> &'static str {
        "2^{O(Δ)} worst case, O(poly Δ) on average"
    }
}

impl<O: Oracle> VertexSubsetLca for MisLca<O> {}

#[cfg(test)]
mod tests {
    use super::*;
    use lca_graph::gen::{structured, GnpBuilder, RegularBuilder};
    use lca_graph::Graph;

    fn assert_valid_mis(g: &Graph, mis: &MisLca<&Graph>) {
        let members: Vec<VertexId> = g.vertices().filter(|&v| mis.contains(v)).collect();
        // Independence.
        for &v in &members {
            for &w in g.neighbors(v) {
                assert!(!mis.contains(w), "adjacent MIS members {v} {w}");
            }
        }
        // Maximality.
        for v in g.vertices() {
            if !mis.contains(v) {
                assert!(
                    g.neighbors(v).iter().any(|&w| mis.contains(w)),
                    "{v} could be added"
                );
            }
        }
    }

    #[test]
    fn valid_on_classic_families() {
        for (name, g) in [
            ("cycle", structured::cycle(17)),
            ("path", structured::path(12)),
            ("star", structured::star(9)),
            ("grid", structured::grid(5, 6)),
            ("complete", structured::complete(8)),
        ] {
            for s in 0..3u64 {
                let mis = MisLca::new(&g, Seed::new(s));
                assert_valid_mis(&g, &mis);
                let _ = name;
            }
        }
    }

    #[test]
    fn valid_on_random_graphs() {
        for s in 0..3u64 {
            let g = GnpBuilder::new(80, 0.08).seed(Seed::new(s)).build();
            let mis = MisLca::new(&g, Seed::new(100 + s));
            assert_valid_mis(&g, &mis);
        }
        let g = RegularBuilder::new(100, 4)
            .seed(Seed::new(8))
            .build()
            .unwrap();
        let mis = MisLca::new(&g, Seed::new(9));
        assert_valid_mis(&g, &mis);
    }

    #[test]
    fn complete_graph_has_exactly_one_member() {
        let g = structured::complete(12);
        let mis = MisLca::new(&g, Seed::new(5));
        let count = g.vertices().filter(|&v| mis.contains(v)).count();
        assert_eq!(count, 1);
    }

    #[test]
    fn lowest_rank_vertex_is_always_in() {
        let g = structured::cycle(11);
        let mis = MisLca::new(&g, Seed::new(2));
        let lowest = g.vertices().min_by_key(|&v| mis.rank_of(v)).unwrap();
        assert!(mis.contains(lowest));
    }

    #[test]
    fn deterministic_across_instances_and_query_orders() {
        let g = GnpBuilder::new(50, 0.1).seed(Seed::new(3)).build();
        let a = MisLca::new(&g, Seed::new(4));
        let b = MisLca::new(&g, Seed::new(4));
        // Query b in reverse order; answers must agree with a.
        let va: Vec<bool> = g.vertices().map(|v| a.contains(v)).collect();
        let vb: Vec<bool> = {
            let mut all: Vec<VertexId> = g.vertices().collect();
            all.reverse();
            let mut tmp: Vec<(usize, bool)> = all
                .into_iter()
                .map(|v| (v.index(), b.contains(v)))
                .collect();
            tmp.sort_by_key(|&(i, _)| i);
            tmp.into_iter().map(|(_, d)| d).collect()
        };
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_give_different_sets() {
        let g = structured::cycle(30);
        let a = MisLca::new(&g, Seed::new(1));
        let b = MisLca::new(&g, Seed::new(2));
        let sa: Vec<bool> = g.vertices().map(|v| a.contains(v)).collect();
        let sb: Vec<bool> = g.vertices().map(|v| b.contains(v)).collect();
        assert_ne!(sa, sb);
    }
}
