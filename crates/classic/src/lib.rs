//! Classic local computation algorithms.
//!
//! The founding results of the LCA model (Rubinfeld–Tamir–Vardi–Xie, Alon et
//! al., Nguyen–Onak) answer per-*vertex* (or per-edge) queries about a fixed
//! maximal structure by simulating greedy over a random order: a vertex is in
//! the MIS iff none of its lower-rank neighbors is; an edge is in the maximal
//! matching iff none of its lower-rank adjacent edges is. Ranks come from the
//! same bounded-independence machinery as the spanner LCAs, so one seed fixes
//! one global answer set.
//!
//! These are the algorithms whose probe complexity is exponential in ∆ — the
//! regime the spanner paper contrasts itself against (its Section 1 “broader
//! scope” discussion); the bench harness makes that contrast measurable.
//!
//! * [`MisLca`] — maximal independent set.
//! * [`MatchingLca`] — maximal matching.
//! * [`VertexCoverLca`] — 2-approximate vertex cover (matched endpoints).
//! * [`ColoringLca`] — greedy (∆+1)-coloring.
//!
//! All four implement the unified [`lca_core::Lca`] /
//! [`lca_core::VertexSubsetLca`] trait family — fallible, `Sync` (memo
//! tables are mutex-guarded), and servable through
//! [`lca_core::QueryEngine`] or the `lca::registry` builder alongside the
//! spanner LCAs. The matching's vertex-subset view is "`v` is matched"
//! (also reachable edge-by-edge via [`MatchingLca::contains`]); the
//! coloring's is membership in color class 0, with the full color via
//! [`ColoringLca::color_of`].
//!
//! # Example
//!
//! ```
//! use lca_classic::MisLca;
//! use lca_graph::gen::structured;
//! use lca_rand::Seed;
//!
//! let g = structured::cycle(9);
//! let mis = MisLca::new(&g, Seed::new(1));
//! let members: Vec<_> = g.vertices().filter(|&v| mis.contains(v)).collect();
//! assert!(!members.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coloring;
mod matching;
mod mis;
mod vertex_cover;

pub use coloring::ColoringLca;
pub use matching::MatchingLca;
pub use mis::MisLca;
pub use vertex_cover::VertexCoverLca;
