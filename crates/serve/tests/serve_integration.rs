//! End-to-end daemon tests: spawn the server on an ephemeral port, drive
//! it over real sockets, and check every answer against a direct
//! `LcaBuilder` query for the same `(kind, family, n, seed, query)` — the
//! acceptance criterion of the serving layer.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use lca::core::DynQuery;
use lca::prelude::*;
use lca_serve::loadgen::{self, LoadgenConfig};
use lca_serve::server::{bind, Server, ServerConfig};
use lca_serve::{algo_seed, input_seed};
use serde::Json;

/// Spawns a daemon on an ephemeral port; returns its address and the
/// serve-loop handle (joined by sending a shutdown request).
fn spawn_server(config: ServerConfig) -> (String, std::thread::JoinHandle<()>, Arc<Server>) {
    let listener = bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server = Server::new(config);
    let handle = {
        let server = server.clone();
        std::thread::spawn(move || {
            server.serve(listener).expect("serve loop");
        })
    };
    (addr, handle, server)
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
        Client {
            writer: stream.try_clone().expect("clone"),
            reader: BufReader::new(stream),
        }
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read");
        serde_json::from_str(response.trim())
            .unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
    }
}

#[test]
fn hundred_mixed_queries_match_direct_builder_queries() {
    let (addr, handle, _server) = spawn_server(ServerConfig {
        workers: 2,
        queue_capacity: 64,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr);

    let n = 50_000;
    let seed = 21u64;
    let family = ImplicitFamily::Gnp;
    let kinds = [
        AlgorithmKind::Classic(ClassicKind::Mis),
        AlgorithmKind::Classic(ClassicKind::Matching),
        AlgorithmKind::Spanner(SpannerKind::Three),
        AlgorithmKind::Spanner(SpannerKind::Five),
    ];

    // Direct instances: same derived seeds the daemon uses.
    let oracle = family.build(n, input_seed(seed));
    let direct: Vec<_> = kinds
        .iter()
        .map(|&kind| LcaBuilder::new(kind).seed(algo_seed(seed)).build(&oracle))
        .collect();

    let mut compared = 0;
    for i in 0..100 {
        let ki = i % kinds.len();
        let kind = kinds[ki];
        let query = QuerySource::sample(1, Seed::new(1000 + i as u64))
            .queries(kind, &oracle)
            .pop()
            .expect("sampled query");
        let (wire, expect) = match query {
            DynQuery::Vertex(v) => (
                format!("{}", v.raw()),
                direct[ki].query(DynQuery::Vertex(v)).unwrap(),
            ),
            DynQuery::Edge(u, v) => (
                format!("[{},{}]", u.raw(), v.raw()),
                direct[ki].query(DynQuery::Edge(u, v)).unwrap(),
            ),
        };
        let response = client.roundtrip(&format!(
            "{{\"id\":{i},\"session\":\"it-{}\",\"kind\":\"{}\",\"family\":\"gnp\",\
             \"n\":{n},\"seed\":{seed},\"query\":{wire}}}",
            kind.name(),
            kind.name()
        ));
        assert_eq!(
            response.get("id").and_then(Json::as_u64),
            Some(i as u64),
            "{response:?}"
        );
        let answer = response
            .get("answer")
            .and_then(Json::as_bool)
            .unwrap_or_else(|| panic!("no answer in {response:?}"));
        assert_eq!(answer, expect, "request {i} ({})", kind.name());
        assert!(response.get("probes").and_then(Json::as_u64).is_some());
        assert!(response.get("micros").and_then(Json::as_u64).is_some());
        compared += 1;
    }
    assert_eq!(compared, 100);

    // Stats must show traffic and serving-cache hits.
    let stats = client.roundtrip(r#"{"op":"stats"}"#);
    let global = stats.get("stats").expect("global stats");
    assert!(global.get("requests").and_then(Json::as_u64).unwrap() >= 100);
    let sessions = stats.get("sessions").expect("sessions");
    let mut cache_hits = 0;
    for kind in kinds {
        let s = sessions
            .get(&format!("it-{}", kind.name()))
            .unwrap_or_else(|| panic!("session it-{} missing in {stats:?}", kind.name()));
        assert_eq!(s.get("errors").and_then(Json::as_u64), Some(0));
        cache_hits += s.get("cache_hits").and_then(Json::as_u64).unwrap();
    }
    assert!(cache_hits > 0, "expected serving-cache hits: {stats:?}");

    // Graceful drain.
    let bye = client.roundtrip(r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("draining").and_then(Json::as_bool), Some(true));
    handle.join().expect("serve loop exits after drain");
}

#[test]
fn protocol_errors_are_typed_and_session_pinning_is_enforced() {
    let (addr, handle, _server) = spawn_server(ServerConfig {
        workers: 1,
        queue_capacity: 16,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr);

    // Unknown session (no spec yet).
    let r = client.roundtrip(r#"{"session":"ghost","query":1}"#);
    assert_eq!(
        r.get("error").and_then(Json::as_str),
        Some("unknown-session")
    );

    // Create, then contradict the pinned spec.
    let r = client.roundtrip(r#"{"session":"p","kind":"mis","n":1000,"seed":1,"query":3}"#);
    assert!(r.get("answer").is_some(), "{r:?}");
    let r = client.roundtrip(r#"{"session":"p","kind":"mis","n":2000,"seed":1,"query":3}"#);
    assert_eq!(
        r.get("error").and_then(Json::as_str),
        Some("session-mismatch")
    );

    // Wrong query shape and out-of-range vertex.
    let r = client.roundtrip(r#"{"session":"p","query":[1,2]}"#);
    assert_eq!(r.get("error").and_then(Json::as_str), Some("bad-query"));
    let r = client.roundtrip(r#"{"session":"p","query":999999}"#);
    assert_eq!(r.get("error").and_then(Json::as_str), Some("bad-query"));

    // Unknown kind/family are typed.
    let r = client.roundtrip(r#"{"session":"q","kind":"dijkstra","n":10,"query":1}"#);
    assert_eq!(r.get("error").and_then(Json::as_str), Some("unknown-spec"));

    // Malformed JSON answers instead of hanging up.
    let r = client.roundtrip("}{nope");
    assert_eq!(r.get("error").and_then(Json::as_str), Some("bad-request"));

    // Batch queries answer in order.
    let r = client.roundtrip(r#"{"session":"p","queries":[1,2,3]}"#);
    let answers = r.get("answers").and_then(Json::as_array).expect("answers");
    assert_eq!(answers.len(), 3);

    client.roundtrip(r#"{"op":"shutdown"}"#);
    handle.join().expect("drain");
}

#[test]
fn loadgen_closed_loop_verifies_against_the_daemon() {
    let (addr, handle, _server) = spawn_server(ServerConfig {
        workers: 2,
        queue_capacity: 128,
        ..ServerConfig::default()
    });
    let cfg = LoadgenConfig {
        requests: 300,
        concurrency: 3,
        kinds: vec![
            AlgorithmKind::Classic(ClassicKind::Mis),
            AlgorithmKind::Spanner(SpannerKind::Three),
        ],
        family: ImplicitFamily::Gnp,
        n: 100_000,
        seed: 5,
        verify: true,
        query_pool: 64,
        ..LoadgenConfig::default()
    };
    let run = loadgen::run(&addr, &cfg).expect("loadgen run");
    assert_eq!(run.report.ok, 300, "{:?}", run.report);
    assert_eq!(run.report.errors, 0, "{:?}", run.report);
    assert_eq!(run.report.mismatches, 0, "{:?}", run.report);
    assert!(run.report.qps > 0.0);
    let stats = run.server_stats.expect("stats fetched");
    let sessions = stats.get("sessions").expect("sessions");
    let mis = sessions.get("loadgen-mis").expect("mis session");
    // The pool cycles 64 queries through 150 MIS requests: hits guaranteed.
    assert!(
        mis.get("cache_hits").and_then(Json::as_u64).unwrap() > 0
            || sessions
                .get("loadgen-three-spanner")
                .and_then(|s| s.get("cache_hits"))
                .and_then(Json::as_u64)
                .unwrap()
                > 0,
        "{stats:?}"
    );
    loadgen::send_shutdown(&addr).expect("shutdown");
    handle.join().expect("drain");
}

#[test]
fn loadgen_fan_in_verifies_and_witnesses_simultaneous_connections() {
    lca_serve::raise_fd_limit(2048).expect("fd limit");
    let (addr, handle, _server) = spawn_server(ServerConfig {
        workers: 2,
        queue_capacity: 1024,
        ..ServerConfig::default()
    });
    let cfg = LoadgenConfig {
        requests: 600,
        concurrency: 3,
        connections: 300,
        kinds: vec![
            AlgorithmKind::Classic(ClassicKind::Mis),
            AlgorithmKind::Spanner(SpannerKind::Three),
        ],
        family: ImplicitFamily::Gnp,
        n: 50_000,
        seed: 11,
        verify: true,
        query_pool: 64,
        ..LoadgenConfig::default()
    };
    let run = loadgen::run(&addr, &cfg).expect("fan-in run");
    assert_eq!(run.report.ok, 600, "{:?}", run.report);
    assert_eq!(run.report.errors, 0, "{:?}", run.report);
    assert_eq!(run.report.mismatches, 0, "{:?}", run.report);
    assert_eq!(run.report.connections, 300);
    // Stats were snapshotted while every socket was still open: the gauge
    // is the witness (+1 for the stats connection itself is possible).
    let stats = run.server_stats.expect("mid-run stats");
    let open = stats
        .get("stats")
        .and_then(|g| g.get("connections_open"))
        .and_then(Json::as_u64)
        .expect("connections_open");
    assert!(
        open >= 300,
        "expected ≥ 300 open connections at stats time, saw {open}"
    );
    loadgen::send_shutdown(&addr).expect("shutdown");
    handle.join().expect("drain");
}

#[test]
fn budget_exhaustion_is_typed_deterministic_and_counted() {
    let (addr, handle, server) = spawn_server(ServerConfig {
        workers: 2,
        queue_capacity: 64,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr);
    let spec = "\"session\":\"b\",\"kind\":\"mis\",\"family\":\"gnp\",\"n\":100000,\"seed\":9";

    // Measure one query's real cost via the response's ctx-metered probes.
    let r = client.roundtrip(&format!("{{{spec},\"query\":12345}}"));
    let answer = r.get("answer").and_then(Json::as_bool).expect("answer");
    let probes = r.get("probes").and_then(Json::as_u64).expect("probes");

    // Fresh session, same instance: a 1-probe budget must trip (a fresh MIS
    // walk costs at least one degree probe), typed on the wire.
    let spec2 = "\"session\":\"b2\",\"kind\":\"mis\",\"family\":\"gnp\",\"n\":100000,\"seed\":9";
    let r = client.roundtrip(&format!("{{{spec2},\"max_probes\":1,\"query\":12345}}"));
    assert_eq!(
        r.get("error").and_then(Json::as_str),
        Some("budget-exhausted"),
        "{r:?}"
    );
    assert!(r
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("spent 1 of 1"));

    // An exact budget on a third fresh session succeeds with the same
    // answer and the same meter reading — exhaustion is deterministic.
    let spec3 = "\"session\":\"b3\",\"kind\":\"mis\",\"family\":\"gnp\",\"n\":100000,\"seed\":9";
    let r = client.roundtrip(&format!(
        "{{{spec3},\"max_probes\":{probes},\"query\":12345}}"
    ));
    assert_eq!(r.get("answer").and_then(Json::as_bool), Some(answer));
    assert_eq!(r.get("probes").and_then(Json::as_u64), Some(probes));

    // The memoized session answers the same query within any budget now.
    let r = client.roundtrip(r#"{"session":"b","max_probes":1,"query":12345}"#);
    assert_eq!(r.get("answer").and_then(Json::as_bool), Some(answer));

    // Stats carry the exhaustion counters and the utilization histogram.
    let stats = client.roundtrip(r#"{"op":"stats"}"#);
    let global = stats.get("stats").expect("global");
    assert_eq!(
        global.get("budget_exhausted").and_then(Json::as_u64),
        Some(1)
    );
    let b2 = stats.get("sessions").and_then(|s| s.get("b2")).expect("b2");
    assert_eq!(b2.get("budget_exhausted").and_then(Json::as_u64), Some(1));
    assert_eq!(b2.get("errors").and_then(Json::as_u64), Some(0));
    let b3 = stats.get("sessions").and_then(|s| s.get("b3")).expect("b3");
    assert_eq!(b3.get("budgeted_queries").and_then(Json::as_u64), Some(1));
    // Exact budget ⇒ 100% utilization lands in the covering log₂ bucket.
    assert!(
        b3.get("budget_utilization_pct_p50")
            .and_then(Json::as_u64)
            .unwrap()
            >= 100
    );
    assert_eq!(
        server
            .global
            .budget_exhausted
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );

    client.roundtrip(r#"{"op":"shutdown"}"#);
    handle.join().expect("drain");
}

#[test]
fn budget_policy_on_the_wire_fits_reports_and_yields_to_explicit_budgets() {
    let (addr, handle, _server) = spawn_server(ServerConfig {
        workers: 2,
        queue_capacity: 64,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr);
    let spec = "\"session\":\"ap\",\"kind\":\"mis\",\"family\":\"gnp\",\"n\":50000,\"seed\":3";

    // Cold all-distinct traffic under a requested p95 policy: every request
    // re-asserts the policy (latest wins) and feeds the windowed histogram.
    // Once fitted, a tail query may legitimately trip the fitted budget —
    // tolerated, but nothing else may fail.
    let mut answered = 0;
    let mut exhausted = 0;
    for v in 0..200u64 {
        let r = client.roundtrip(&format!(
            "{{{spec},\"budget_policy\":\"p95\",\"query\":{v}}}"
        ));
        match r.get("error").and_then(Json::as_str) {
            None => answered += 1,
            Some("budget-exhausted") => exhausted += 1,
            Some(other) => panic!("unexpected error {other}: {r:?}"),
        }
    }
    assert!(answered > 150, "answered {answered}, exhausted {exhausted}");

    // The per-session stats block reports the live policy and a real fit.
    let stats = client.roundtrip(r#"{"op":"stats"}"#);
    let budget = stats
        .get("sessions")
        .and_then(|s| s.get("ap"))
        .and_then(|s| s.get("budget"))
        .unwrap_or_else(|| panic!("budget block missing: {stats:?}"));
    assert_eq!(budget.get("policy").and_then(Json::as_str), Some("p95"));
    assert_eq!(
        budget.get("target_percentile").and_then(Json::as_f64),
        Some(95.0)
    );
    let fitted = budget
        .get("fitted_max_probes")
        .and_then(Json::as_u64)
        .expect("fitted value");
    assert!(fitted > 0, "no fit after 200 observations: {stats:?}");
    assert!(budget.get("refits").and_then(Json::as_u64).unwrap() >= 1);
    assert!(budget.get("samples").and_then(Json::as_u64).unwrap() >= 200);

    // An explicit request budget overrides the fitted one: a generous
    // max_probes must answer even where the tight fit could trip.
    let r = client.roundtrip(r#"{"session":"ap","max_probes":1000000,"query":49999}"#);
    assert!(r.get("answer").is_some(), "{r:?}");

    // Switching the policy off on the wire is reflected in stats.
    let r = client.roundtrip(r#"{"session":"ap","budget_policy":"off","query":7}"#);
    assert!(
        r.get("answer").is_some() || r.get("error").and_then(Json::as_str).is_none(),
        "{r:?}"
    );
    let stats = client.roundtrip(r#"{"op":"stats"}"#);
    let budget = stats
        .get("sessions")
        .and_then(|s| s.get("ap"))
        .and_then(|s| s.get("budget"))
        .expect("budget block");
    assert_eq!(budget.get("policy").and_then(Json::as_str), Some("off"));

    // A junk policy is a typed parse error.
    let r = client.roundtrip(r#"{"session":"ap","budget_policy":"p0","query":7}"#);
    assert_eq!(r.get("error").and_then(Json::as_str), Some("bad-request"));

    client.roundtrip(r#"{"op":"shutdown"}"#);
    handle.join().expect("drain");
}

#[test]
fn adaptive_server_tightens_cold_sessions_and_verify_stays_green() {
    // A server started with --adaptive-budgets fits every session's budget
    // to p99 of observed spend. Cold all-distinct traffic (pool == request
    // count) is the workload that used to exhaust ~50% at a hand-picked
    // cold-median budget; under the fitted budget exhaustion must be rare
    // and every completed answer must still verify against a direct local
    // computation.
    let (addr, handle, _server) = spawn_server(ServerConfig {
        workers: 2,
        queue_capacity: 128,
        adaptive_budgets: true,
        ..ServerConfig::default()
    });
    let requests = 400;
    let cfg = LoadgenConfig {
        requests,
        concurrency: 2,
        kinds: vec![AlgorithmKind::Classic(ClassicKind::Mis)],
        family: ImplicitFamily::Gnp,
        n: 100_000,
        seed: 13,
        verify: true,
        query_pool: requests,
        ..LoadgenConfig::default()
    };
    let run = loadgen::run(&addr, &cfg).expect("adaptive run");
    assert_eq!(run.report.errors, 0, "{:?}", run.report);
    assert_eq!(run.report.mismatches, 0, "{:?}", run.report);
    assert_eq!(
        run.report.ok + run.report.budget_exhausted,
        requests as u64,
        "{:?}",
        run.report
    );
    // p99 fit + log₂ bucket-upper-bound headroom: trips stay a small tail,
    // nowhere near the ~50% a cold-median fixed budget produces.
    assert!(
        run.report.budget_exhausted <= requests as u64 / 10,
        "adaptive budget exhausted too often: {:?}",
        run.report
    );
    let stats = run.server_stats.expect("stats fetched");
    let budget = stats
        .get("sessions")
        .and_then(|s| s.get("loadgen-mis"))
        .and_then(|s| s.get("budget"))
        .unwrap_or_else(|| panic!("budget block missing: {stats:?}"));
    assert_eq!(budget.get("policy").and_then(Json::as_str), Some("p99"));
    assert!(
        budget
            .get("fitted_max_probes")
            .and_then(Json::as_u64)
            .unwrap()
            > 0,
        "server-wide adaptive mode never fitted: {stats:?}"
    );
    loadgen::send_shutdown(&addr).expect("shutdown");
    handle.join().expect("drain");
}

#[test]
fn overload_backpressure_answers_instead_of_buffering() {
    // One worker, queue of one: pipelined requests behind a slow batch must
    // see `overloaded` rather than unbounded queueing.
    let (addr, handle, _server) = spawn_server(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    });
    let stream = TcpStream::connect(&addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // Two big MIS batches (several ms each) occupy the worker and the
    // 1-slot queue; the singles behind them race dispatch (<1 ms) against
    // the running batch, so at least one must bounce.
    let batch: Vec<String> = (0..3_000).map(|v| v.to_string()).collect();
    let spec = "\"session\":\"burst\",\"kind\":\"mis\",\"family\":\"gnp\",\"n\":1000000,\"seed\":2";
    for id in 0..2 {
        writer
            .write_all(
                format!("{{\"id\":{id},{spec},\"queries\":[{}]}}\n", batch.join(",")).as_bytes(),
            )
            .expect("write batch");
    }
    let singles = 16;
    for id in 2..2 + singles {
        writer
            .write_all(format!("{{\"id\":{id},{spec},\"query\":{id}}}\n").as_bytes())
            .expect("write single");
    }

    let total = 2 + singles;
    let mut answered = 0;
    let mut overloaded = 0;
    let mut line = String::new();
    for _ in 0..total {
        line.clear();
        if reader.read_line(&mut line).expect("read") == 0 {
            break;
        }
        let v: Json = serde_json::from_str(line.trim()).expect("json");
        match v.get("error").and_then(Json::as_str) {
            Some("overloaded") => overloaded += 1,
            Some(other) => panic!("unexpected error {other}: {line}"),
            None => answered += 1,
        }
    }
    assert_eq!(answered + overloaded, total);
    assert!(answered > 0, "nothing served");
    assert!(overloaded > 0, "backpressure never engaged");

    let mut client = Client::connect(&addr);
    client.roundtrip(r#"{"op":"shutdown"}"#);
    handle.join().expect("drain");
}

#[test]
fn idle_stats_polling_is_served_from_the_cached_snapshot() {
    use std::sync::atomic::Ordering;

    let (addr, handle, server) = spawn_server(ServerConfig {
        workers: 1,
        queue_capacity: 16,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr);

    // One query so the snapshot has something in it (and the mutation
    // stamp settles after the session build + histogram update).
    let answer = client
        .roundtrip(r#"{"session":"sc","kind":"mis","family":"gnp","n":10000,"seed":3,"query":7}"#);
    assert!(answer.get("answer").and_then(Json::as_bool).is_some());

    // First poll renders; the following polls must hit the cache — no
    // serving event happens between them, so the stamp cannot move and the
    // responses are byte-identical (uptime included: it is part of the
    // frozen snapshot).
    let renders_before = server.global.stats_renders.load(Ordering::Relaxed);
    let first = client.roundtrip(r#"{"op":"stats"}"#);
    let second = client.roundtrip(r#"{"op":"stats"}"#);
    let third = client.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(first, second);
    assert_eq!(second, third);
    assert_eq!(
        server.global.stats_renders.load(Ordering::Relaxed),
        renders_before + 1,
        "idle polling re-rendered the snapshot"
    );
    assert!(
        server.global.stats_served_cached.load(Ordering::Relaxed) >= 2,
        "cached serves not counted"
    );

    // A query is a mutation: the next poll must re-render and show it.
    client
        .roundtrip(r#"{"session":"sc","kind":"mis","family":"gnp","n":10000,"seed":3,"query":8}"#);
    let fresh = client.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(
        server.global.stats_renders.load(Ordering::Relaxed),
        renders_before + 2,
        "mutation did not invalidate the snapshot"
    );
    let queries = fresh
        .get("sessions")
        .and_then(|s| s.get("sc"))
        .and_then(|s| s.get("queries"))
        .and_then(Json::as_u64);
    assert_eq!(queries, Some(2), "fresh snapshot missing the second query");

    client.roundtrip(r#"{"op":"shutdown"}"#);
    handle.join().expect("drain");
}
