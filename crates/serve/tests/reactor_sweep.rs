//! Runs the reactor end-to-end on the portable sweep backend (the
//! poll-with-timeout fallback used where epoll is absent), proving the two
//! readiness backends are behaviorally interchangeable. Lives in its own
//! integration binary because the backend is selected process-wide via
//! `LCA_SERVE_BACKEND`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use lca_serve::server::{bind, Server, ServerConfig};
use serde::Json;

#[test]
fn sweep_backend_serves_queries_and_drains() {
    std::env::set_var("LCA_SERVE_BACKEND", "sweep");

    let listener = bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let server = Server::new(ServerConfig {
        workers: 2,
        queue_capacity: 64,
        ..ServerConfig::default()
    });
    let handle = {
        let server = server.clone();
        std::thread::spawn(move || server.serve(listener).expect("serve"))
    };

    let stream = TcpStream::connect(&addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut roundtrip = |line: &str| -> Json {
        writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read");
        serde_json::from_str(response.trim()).expect("json")
    };

    // Real queries, batches, stats, and a drain — the full protocol walk.
    let r = roundtrip(r#"{"session":"s","kind":"mis","n":10000,"seed":4,"query":11}"#);
    assert!(r.get("answer").is_some(), "{r:?}");
    let r = roundtrip(r#"{"session":"s","queries":[1,2,3,4]}"#);
    assert_eq!(
        r.get("answers").and_then(Json::as_array).map(<[Json]>::len),
        Some(4),
        "{r:?}"
    );
    let stats = roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(
        stats
            .get("stats")
            .and_then(|g| g.get("connections_open"))
            .and_then(Json::as_u64),
        Some(1)
    );
    let bye = roundtrip(r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("draining").and_then(Json::as_bool), Some(true));
    handle.join().expect("drain");
}
