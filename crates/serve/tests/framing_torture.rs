//! Framing torture tests: the binary frame codec under every adversarial
//! byte-stream shape, and the JSON/binary framings proven equivalent
//! against one live daemon.
//!
//! The codec half never opens a socket: seeded `SplitMix64` loops (the
//! workspace's property-test convention — no external proptest) split
//! encoded frames at every byte boundary, trickle them one byte at a
//! time, concatenate pipelined frames in random chunkings, and inject
//! truncated or oversized length prefixes, asserting byte-identical
//! reassembly and typed [`FrameError`]s. The daemon half forces partial
//! writes with a shrunken client `SO_RCVBUF` and checks that coalesced
//! vectored flushes never interleave response bytes, then drives the
//! same query stream over a JSON connection and a binary connection for
//! every registered algorithm kind and demands identical answers, probe
//! counts, and error codes.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use lca::core::DynQuery;
use lca::prelude::*;
use lca_serve::proto::{
    self, ErrorCode, FrameDecoder, FrameError, FrameFormat, Response, MAX_FRAME,
};
use lca_serve::server::{bind, Server, ServerConfig};
use lca_serve::sys;
use serde::Json;

/// The standard SplitMix64 stream: deterministic, seed-labelled, and good
/// enough to cover chunk-boundary space without a property-test framework.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

/// One of every response shape the wire can carry, with the edge cases
/// that stress the codec: absent ids, empty strings, empty and
/// multi-byte-bitset batches, every error code, and an embedded stats
/// object.
fn sample_responses() -> Vec<Response> {
    let mut shapes = vec![
        Response::Answer {
            id: Some(7),
            session: "torture".to_owned(),
            answer: true,
            probes: 19,
            micros: 1_044,
        },
        Response::Answer {
            id: None,
            session: String::new(),
            answer: false,
            probes: 0,
            micros: 0,
        },
        Response::Answer {
            id: Some(u64::MAX),
            session: "max".to_owned(),
            answer: true,
            probes: u64::MAX,
            micros: u64::MAX,
        },
        Response::Answers {
            id: Some(1),
            session: "batch".to_owned(),
            answers: vec![],
            probes: 0,
            micros: 3,
        },
        Response::Answers {
            id: None,
            session: "batch".to_owned(),
            answers: (0..29).map(|i| i % 3 == 0).collect(),
            probes: 812,
            micros: 90,
        },
        Response::Ok { draining: false },
        Response::Ok { draining: true },
        Response::Stats(Json::Obj(vec![
            ("stats".to_owned(), Json::Obj(vec![])),
            ("nested".to_owned(), Json::Arr(vec![Json::Num(1.0)])),
        ])),
        Response::Hello {
            frame: FrameFormat::Binary,
        },
        Response::Hello {
            frame: FrameFormat::Json,
        },
    ];
    for code in [
        ErrorCode::BadRequest,
        ErrorCode::UnknownSpec,
        ErrorCode::UnknownSession,
        ErrorCode::SessionMismatch,
        ErrorCode::BadQuery,
        ErrorCode::Overloaded,
        ErrorCode::BudgetExhausted,
        ErrorCode::Draining,
        ErrorCode::Internal,
        ErrorCode::DeadlineExceeded,
    ] {
        shapes.push(Response::Error {
            id: if code.to_u8() % 2 == 0 {
                Some(42)
            } else {
                None
            },
            code,
            message: format!("torture {}", code.as_str()),
        });
    }
    shapes
}

#[test]
fn every_split_point_reassembles_byte_identically() {
    for response in sample_responses() {
        let frame = response.encode_frame();
        for cut in 0..=frame.len() {
            let mut decoder = FrameDecoder::new();
            decoder.push(&frame[..cut]);
            if cut < frame.len() {
                assert_eq!(
                    decoder.next_frame().expect("prefix is never an error"),
                    None,
                    "cut {cut} of {} yielded a frame early: {response:?}",
                    frame.len()
                );
            }
            decoder.push(&frame[cut..]);
            let decoded = decoder
                .next_frame()
                .unwrap_or_else(|e| panic!("cut {cut}: {e}: {response:?}"))
                .unwrap_or_else(|| panic!("cut {cut}: frame incomplete: {response:?}"));
            assert_eq!(decoded, response, "cut {cut}");
            assert_eq!(decoder.pending(), 0, "cut {cut} left residue");
            // Byte-identical reassembly: re-encoding the decoded value
            // must reproduce the original frame exactly.
            assert_eq!(decoded.encode_frame(), frame, "cut {cut}");
        }
    }
}

#[test]
fn trickling_one_byte_at_a_time_decodes_the_full_pipeline() {
    let responses = sample_responses();
    let mut wire = Vec::new();
    for response in &responses {
        wire.extend_from_slice(&response.encode_frame());
    }
    let mut decoder = FrameDecoder::new();
    let mut decoded = Vec::new();
    for &byte in &wire {
        decoder.push(&[byte]);
        while let Some(response) = decoder.next_frame().expect("trickled bytes stay valid") {
            decoded.push(response);
        }
    }
    assert_eq!(decoded, responses);
    assert_eq!(decoder.pending(), 0);
}

#[test]
fn random_chunkings_of_concatenated_frames_preserve_order_and_bytes() {
    // Seeded loop over random pipelines and random chunk boundaries; each
    // iteration is reproducible from the printed seed.
    let shapes = sample_responses();
    for seed in 0..64u64 {
        let mut rng = SplitMix64(0xF4A_217 ^ (seed << 8));
        let pipeline: Vec<Response> = (0..1 + rng.below(12))
            .map(|_| shapes[rng.below(shapes.len())].clone())
            .collect();
        let mut wire = Vec::new();
        for response in &pipeline {
            wire.extend_from_slice(&response.encode_frame());
        }
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        let mut offset = 0;
        while offset < wire.len() {
            let chunk = 1 + rng.below(97).min(wire.len() - offset - 1);
            decoder.push(&wire[offset..offset + chunk]);
            offset += chunk;
            while let Some(response) = decoder
                .next_frame()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"))
            {
                decoded.push(response);
            }
        }
        assert_eq!(decoded, pipeline, "seed {seed}");
        assert_eq!(decoder.pending(), 0, "seed {seed}");
    }
}

#[test]
fn every_strict_payload_prefix_is_a_typed_error() {
    // No strict prefix of a valid payload may decode (every field is
    // either fixed-width or length-prefixed), and the failure must be a
    // typed FrameError, not a panic or a wrong value.
    for response in sample_responses() {
        let frame = response.encode_frame();
        let payload = &frame[4..];
        for cut in 0..payload.len() {
            let err = Response::decode_payload(&payload[..cut])
                .expect_err("strict prefix decoded cleanly");
            assert!(
                matches!(
                    err,
                    FrameError::Truncated(_)
                        | FrameError::Malformed(_)
                        | FrameError::BadLength { .. }
                ),
                "cut {cut} of {response:?}: unexpected error class {err:?}"
            );
        }
    }
}

#[test]
fn corrupt_length_prefixes_and_junk_payloads_fail_typed() {
    // Zero length.
    let mut decoder = FrameDecoder::new();
    decoder.push(&0u32.to_le_bytes());
    assert_eq!(
        decoder.next_frame().expect_err("zero length accepted"),
        FrameError::BadLength { len: 0 }
    );

    // Oversized length: rejected from the prefix alone, before any
    // payload bytes arrive (a 4 GiB allocation bomb must not be honored).
    let huge = (MAX_FRAME as u32) + 1;
    let mut decoder = FrameDecoder::new();
    decoder.push(&huge.to_le_bytes());
    assert_eq!(
        decoder.next_frame().expect_err("oversized length accepted"),
        FrameError::BadLength { len: huge }
    );

    // Unknown tag.
    let mut decoder = FrameDecoder::new();
    decoder.push(&1u32.to_le_bytes());
    decoder.push(&[0xEE]);
    assert_eq!(
        decoder.next_frame().expect_err("junk tag accepted"),
        FrameError::BadTag(0xEE)
    );

    // Declared length longer than the payload the tag consumes.
    let frame = (Response::Ok { draining: true }).encode_frame();
    let mut padded = ((frame.len() - 4 + 3) as u32).to_le_bytes().to_vec();
    padded.extend_from_slice(&frame[4..]);
    padded.extend_from_slice(&[0, 0, 0]);
    let mut decoder = FrameDecoder::new();
    decoder.push(&padded);
    assert_eq!(
        decoder.next_frame().expect_err("trailing bytes accepted"),
        FrameError::TrailingBytes { extra: 3 }
    );

    // A reader whose stream dies mid-frame reports UnexpectedEof; a
    // stream that ends cleanly between frames reports None.
    let frame = (Response::Ok { draining: false }).encode_frame();
    for cut in 1..frame.len() {
        let mut truncated = &frame[..cut];
        let err = proto::read_binary_frame(&mut truncated).expect_err("truncation accepted");
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "cut {cut}");
    }
    let mut clean: &[u8] = &[];
    assert_eq!(
        proto::read_binary_frame(&mut clean).expect("clean EOF"),
        None
    );
    let mut whole: &[u8] = &frame;
    assert_eq!(
        proto::read_binary_frame(&mut whole).expect("whole frame"),
        Some(Response::Ok { draining: false })
    );
}

// ---------------------------------------------------------------------------
// Live-daemon halves: partial-write interleaving and framing equivalence.

/// Spawns a daemon on an ephemeral port; returns its address and the
/// serve-loop handle (joined by sending a shutdown request).
fn spawn_server(config: ServerConfig) -> (String, std::thread::JoinHandle<()>, Arc<Server>) {
    let listener = bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server = Server::new(config);
    let handle = {
        let server = server.clone();
        std::thread::spawn(move || {
            server.serve(listener).expect("serve loop");
        })
    };
    (addr, handle, server)
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects, optionally shrinking the client-side receive buffer
    /// *before* any server bytes arrive (a tiny `SO_RCVBUF` caps the TCP
    /// window the server can write into, forcing partial writes there).
    fn connect(addr: &str, recv_buffer: Option<usize>) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
        if let Some(bytes) = recv_buffer {
            sys::set_recv_buffer(&stream, bytes).expect("SO_RCVBUF");
        }
        Client {
            writer: stream.try_clone().expect("clone"),
            reader: BufReader::new(stream),
        }
    }

    /// Switches this connection's responses to binary frames.
    fn negotiate_binary(&mut self) {
        let ack = self.roundtrip_line(&proto::hello_line(FrameFormat::Binary));
        assert_eq!(
            ack.get("frame").and_then(Json::as_str),
            Some("binary"),
            "hello refused: {ack:?}"
        );
    }

    fn send_line(&mut self, line: &str) {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
    }

    fn roundtrip_line(&mut self, line: &str) -> Json {
        self.send_line(line);
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read");
        serde_json::from_str(response.trim())
            .unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
    }

    fn read_json_line(&mut self) -> Json {
        let mut response = String::new();
        assert!(
            self.reader.read_line(&mut response).expect("read") > 0,
            "EOF mid-pipeline"
        );
        serde_json::from_str(response.trim())
            .unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
    }

    fn read_frame(&mut self) -> Response {
        proto::read_binary_frame(&mut self.reader)
            .expect("frame read")
            .expect("EOF mid-pipeline")
    }
}

#[test]
fn forced_partial_writes_never_interleave_responses() {
    // A client that pipelines hundreds of requests into a tiny receive
    // window while reading nothing forces the reactor into short vectored
    // writes mid-frame. Every buffered byte must still come out in order:
    // each JSON line parses, each binary frame decodes, and ids arrive in
    // request order on both connections.
    let (addr, handle, _server) = spawn_server(ServerConfig {
        workers: 1,
        queue_capacity: 16,
        ..ServerConfig::default()
    });
    let pipelined = 800usize;

    for binary in [false, true] {
        let mut client = Client::connect(&addr, Some(2048));
        if binary {
            client.negotiate_binary();
        }
        // `stats` is answered inline with a multi-hundred-byte body:
        // hundreds of them dwarf the 2 KiB window and pile into the
        // connection's write queue before the first read below.
        for id in 0..pipelined {
            client.send_line(&format!("{{\"id\":{id},\"op\":\"ping\"}}"));
            client.send_line("{\"op\":\"stats\"}");
        }
        let mut stats_seen = 0;
        for id in 0..pipelined {
            if binary {
                match client.read_frame() {
                    Response::Ok { draining } => assert!(!draining, "id {id}"),
                    other => panic!("id {id}: expected ok, got {other:?}"),
                }
                match client.read_frame() {
                    Response::Stats(json) => {
                        assert!(json.get("stats").is_some(), "id {id}");
                        stats_seen += 1;
                    }
                    other => panic!("id {id}: expected stats, got {other:?}"),
                }
            } else {
                let ok = client.read_json_line();
                assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true), "id {id}");
                let stats = client.read_json_line();
                assert!(stats.get("stats").is_some(), "id {id}: {stats:?}");
                stats_seen += 1;
            }
        }
        assert_eq!(stats_seen, pipelined, "binary={binary}");
    }

    let mut client = Client::connect(&addr, None);
    client.roundtrip_line(r#"{"op":"shutdown"}"#);
    handle.join().expect("drain");
}

/// Strips the fields that legitimately differ between the two framings'
/// connections: `session` (paired sessions use distinct names),
/// `message` (human-readable detail that may embed the session name — the
/// typed contract is the `error` code), and `micros` (wall-clock).
/// Everything else must match exactly.
fn comparable(mut json: Json) -> Json {
    if let Json::Obj(fields) = &mut json {
        fields.retain(|(k, _)| k != "micros" && k != "session" && k != "message");
    }
    json
}

#[test]
fn json_and_binary_framings_agree_on_every_algorithm_kind() {
    // One daemon, two connections — one per framing. For every registered
    // algorithm kind, paired sessions with identical specs (sessions are
    // independent instances, so cold-state behavior is identical) receive
    // the same query stream: sampled in-range queries, a batch, an
    // out-of-range vertex, a 1-probe budget trip on a fresh session, and
    // a spec-less unknown session. Answers, probe counts, and error codes
    // must be identical field-by-field.
    let (addr, handle, _server) = spawn_server(ServerConfig {
        workers: 2,
        queue_capacity: 64,
        ..ServerConfig::default()
    });
    let mut json_client = Client::connect(&addr, None);
    let mut bin_client = Client::connect(&addr, None);
    bin_client.negotiate_binary();

    let n = 20_000usize;
    let seed = 77u64;
    let family = ImplicitFamily::Gnp;
    let oracle = family.build(n, lca_serve::input_seed(seed));

    let roundtrip_both =
        |json_client: &mut Client, bin_client: &mut Client, json_line: &str, bin_line: &str| {
            let via_json = json_client.roundtrip_line(json_line);
            bin_client.send_line(bin_line);
            let via_binary = serde_json::from_str(&bin_client.read_frame().render())
                .expect("decoded frame re-renders to JSON");
            assert_eq!(
                comparable(via_json.clone()),
                comparable(via_binary),
                "framings disagree on {json_line}"
            );
            via_json
        };

    let mut compared = 0;
    for kind in AlgorithmKind::all() {
        let spec = |session: &str| {
            format!(
                "\"session\":\"{session}\",\"kind\":\"{}\",\"family\":\"gnp\",\
                 \"n\":{n},\"seed\":{seed}",
                kind.name()
            )
        };
        let js = spec(&format!("dj-{}", kind.name()));
        let bs = spec(&format!("db-{}", kind.name()));

        // Sampled in-range queries, answered and metered identically.
        let queries = QuerySource::sample(8, Seed::new(4_000 + seed)).queries(kind, &oracle);
        for (i, query) in queries.iter().enumerate() {
            let wire = match query {
                DynQuery::Vertex(v) => format!("{}", v.raw()),
                DynQuery::Edge(u, v) => format!("[{},{}]", u.raw(), v.raw()),
            };
            let r = roundtrip_both(
                &mut json_client,
                &mut bin_client,
                &format!("{{\"id\":{i},{js},\"query\":{wire}}}"),
                &format!("{{\"id\":{i},{bs},\"query\":{wire}}}"),
            );
            assert!(r.get("answer").is_some(), "{}: {r:?}", kind.name());
            assert!(r.get("probes").and_then(Json::as_u64).is_some());
            compared += 1;
        }

        // A batch; answers and the summed probe meter must agree.
        let batch: Vec<String> = queries
            .iter()
            .take(4)
            .map(|q| match q {
                DynQuery::Vertex(v) => format!("{}", v.raw()),
                DynQuery::Edge(u, v) => format!("[{},{}]", u.raw(), v.raw()),
            })
            .collect();
        let r = roundtrip_both(
            &mut json_client,
            &mut bin_client,
            &format!("{{{js},\"queries\":[{}]}}", batch.join(",")),
            &format!("{{{bs},\"queries\":[{}]}}", batch.join(",")),
        );
        assert!(r.get("answers").is_some(), "{}: {r:?}", kind.name());
        compared += 1;

        // Typed errors: out-of-range vertex, and a 1-probe budget on a
        // fresh session (cold walks cost ≥ 1 probe on every kind).
        let r = roundtrip_both(
            &mut json_client,
            &mut bin_client,
            &format!("{{{js},\"query\":{}}}", n * 10),
            &format!("{{{bs},\"query\":{}}}", n * 10),
        );
        assert_eq!(r.get("error").and_then(Json::as_str), Some("bad-query"));
        compared += 1;

        let jx = spec(&format!("djx-{}", kind.name()));
        let bx = spec(&format!("dbx-{}", kind.name()));
        let wire = match &queries[0] {
            DynQuery::Vertex(v) => format!("{}", v.raw()),
            DynQuery::Edge(u, v) => format!("[{},{}]", u.raw(), v.raw()),
        };
        let r = roundtrip_both(
            &mut json_client,
            &mut bin_client,
            &format!("{{{jx},\"max_probes\":1,\"query\":{wire}}}"),
            &format!("{{{bx},\"max_probes\":1,\"query\":{wire}}}"),
        );
        assert_eq!(
            r.get("error").and_then(Json::as_str),
            Some("budget-exhausted"),
            "{}: {r:?}",
            kind.name()
        );
        compared += 1;
    }

    // Spec-less unknown sessions fail identically too.
    let r = roundtrip_both(
        &mut json_client,
        &mut bin_client,
        r#"{"session":"ghost-j","query":1}"#,
        r#"{"session":"ghost-b","query":1}"#,
    );
    assert_eq!(
        r.get("error").and_then(Json::as_str),
        Some("unknown-session")
    );
    compared += 1;

    assert_eq!(compared, AlgorithmKind::all().len() * 11 + 1);

    json_client.roundtrip_line(r#"{"op":"shutdown"}"#);
    handle.join().expect("drain");
}
