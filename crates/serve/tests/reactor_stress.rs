//! Reactor-specific stress and drain tests: thousands of simultaneous
//! connections on one reactor thread, slow readers that must never block a
//! worker, and the drain-flushes-everything guarantee.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lca_serve::server::{bind, Server, ServerConfig};
use serde::Json;

fn spawn_server(config: ServerConfig) -> (String, std::thread::JoinHandle<()>, Arc<Server>) {
    let listener = bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server = Server::new(config);
    let handle = {
        let server = server.clone();
        std::thread::spawn(move || {
            server.serve(listener).expect("serve loop");
        })
    };
    (addr, handle, server)
}

fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Json {
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("write");
    let mut response = String::new();
    reader.read_line(&mut response).expect("read");
    serde_json::from_str(response.trim())
        .unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
}

fn connect(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

/// The C10k acceptance check: ≥ 1000 connections simultaneously open
/// against a default-sized worker pool, every one of them served, with the
/// server's own `connections_open` gauge as the witness — no
/// per-connection threads exist to make this cheap, only reactor state.
#[test]
fn thousand_connections_held_open_and_served() {
    lca_serve::raise_fd_limit(8192).expect("fd limit");
    let (addr, handle, server) = spawn_server(ServerConfig::default());

    const CONNS: usize = 1_000;
    let spec = "\"kind\":\"mis\",\"family\":\"gnp\",\"n\":100000,\"seed\":3";
    let mut open: Vec<(TcpStream, BufReader<TcpStream>)> = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        let (mut stream, mut reader) = connect(&addr);
        // One real query per connection, answered before the next connect —
        // the reactor is accepting, framing, dispatching, and flushing
        // across an ever-growing fd set.
        let response = roundtrip(
            &mut stream,
            &mut reader,
            &format!(
                "{{\"id\":{i},\"session\":\"c10k\",{spec},\"query\":{}}}",
                i % 100_000
            ),
        );
        assert!(
            response.get("answer").is_some(),
            "connection {i}: {response:?}"
        );
        open.push((stream, reader));
    }

    // All 1000 still open: the server's gauge must say so.
    let (mut stream, mut reader) = connect(&addr);
    let stats = roundtrip(&mut stream, &mut reader, r#"{"op":"stats"}"#);
    let gauge = stats
        .get("stats")
        .and_then(|g| g.get("connections_open"))
        .and_then(Json::as_u64)
        .expect("connections_open in stats");
    assert!(
        gauge >= CONNS as u64,
        "expected ≥ {CONNS} simultaneously open connections, gauge says {gauge}"
    );
    let total = stats
        .get("stats")
        .and_then(|g| g.get("connections"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(total >= gauge);

    // Every connection still answers after the peak.
    for (i, (stream, reader)) in open.iter_mut().enumerate().step_by(97) {
        let response = roundtrip(
            stream,
            reader,
            &format!("{{\"session\":\"c10k\",\"query\":{i}}}"),
        );
        assert!(response.get("answer").is_some(), "{response:?}");
    }

    roundtrip(&mut stream, &mut reader, r#"{"op":"shutdown"}"#);
    drop(open);
    handle.join().expect("drain");
    assert_eq!(
        server
            .global
            .connections_open
            .load(std::sync::atomic::Ordering::Relaxed),
        0,
        "every close must decrement the gauge"
    );
}

/// 256 connections send real query batches and then stop reading. Workers
/// must keep answering other traffic at full speed — responses to stalled
/// clients park in reactor write buffers, never on a worker thread — and
/// every stalled response must still be delivered once the client reads.
#[test]
fn slow_readers_do_not_block_workers() {
    lca_serve::raise_fd_limit(4096).expect("fd limit");
    let (addr, handle, _server) = spawn_server(ServerConfig {
        workers: 2,
        queue_capacity: 2048,
        ..ServerConfig::default()
    });

    const SLOW: usize = 256;
    let spec = "\"kind\":\"mis\",\"family\":\"gnp\",\"n\":2000,\"seed\":5";
    let batch: Vec<String> = (0..200).map(|v| (v % 2000).to_string()).collect();
    let mut stalled: Vec<(TcpStream, BufReader<TcpStream>)> = Vec::with_capacity(SLOW);
    for i in 0..SLOW {
        let (mut stream, reader) = connect(&addr);
        stream
            .write_all(
                format!(
                    "{{\"id\":{i},\"session\":\"slow\",{spec},\"queries\":[{}]}}\n",
                    batch.join(",")
                )
                .as_bytes(),
            )
            .expect("write batch");
        // …and deliberately do not read the response.
        stalled.push((stream, reader));
    }

    // A live client must be served promptly while 256 responses are parked
    // for readers that never drain them.
    let (mut stream, mut reader) = connect(&addr);
    let started = Instant::now();
    for i in 0..32 {
        let response = roundtrip(
            &mut stream,
            &mut reader,
            &format!("{{\"session\":\"live\",{spec},\"query\":{i}}}"),
        );
        assert!(response.get("answer").is_some(), "{response:?}");
    }
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "live traffic starved behind stalled readers: {:?}",
        started.elapsed()
    );

    // The stalled clients finally read: every parked response arrives.
    for (i, (_stream, reader)) in stalled.iter_mut().enumerate() {
        let mut line = String::new();
        reader.read_line(&mut line).expect("stalled read");
        let response: Json = serde_json::from_str(line.trim()).expect("json");
        assert_eq!(
            response.get("id").and_then(Json::as_u64),
            Some(i as u64),
            "stalled connection {i} got {line:?}"
        );
        assert!(
            response.get("answers").is_some() || response.get("error").is_some(),
            "{line:?}"
        );
    }

    roundtrip(&mut stream, &mut reader, r#"{"op":"shutdown"}"#);
    drop(stalled);
    handle.join().expect("drain");
}

/// The graceful-drain regression test: a query admitted *before* shutdown
/// whose response is produced *during* the drain must still be flushed to
/// its connection before the server exits.
#[test]
fn drain_flushes_responses_queued_at_shutdown_time() {
    let (addr, handle, server) = spawn_server(ServerConfig {
        workers: 1,
        queue_capacity: 8,
        ..ServerConfig::default()
    });

    // A slow request: a large cold batch against a million-vertex session
    // occupies the single worker for a while.
    let (mut slow_stream, mut slow_reader) = connect(&addr);
    let batch: Vec<String> = (0..3_000).map(|v| v.to_string()).collect();
    slow_stream
        .write_all(
            format!(
                "{{\"id\":1,\"session\":\"d\",\"kind\":\"mis\",\"family\":\"gnp\",\
                 \"n\":1000000,\"seed\":2,\"queries\":[{}]}}\n",
                batch.join(",")
            )
            .as_bytes(),
        )
        .expect("write slow batch");

    // Give the reactor time to admit it to the pool, then shut down from a
    // second connection while the worker is still computing.
    std::thread::sleep(Duration::from_millis(100));
    let (mut ctl_stream, mut ctl_reader) = connect(&addr);
    let bye = roundtrip(&mut ctl_stream, &mut ctl_reader, r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("draining").and_then(Json::as_bool), Some(true));
    assert!(server.draining());

    // The drain must deliver the in-flight batch's response…
    let mut line = String::new();
    slow_reader.read_line(&mut line).expect("drain delivery");
    let response: Json = serde_json::from_str(line.trim()).expect("json");
    assert_eq!(response.get("id").and_then(Json::as_u64), Some(1));
    assert_eq!(
        response
            .get("answers")
            .and_then(Json::as_array)
            .map(<[Json]>::len),
        Some(3_000),
        "queued response lost in drain: {line:?}"
    );

    // …then close the connection (EOF, not a hang) and exit the loop.
    line.clear();
    assert_eq!(slow_reader.read_line(&mut line).expect("eof"), 0);
    handle.join().expect("serve loop exits after drain");
}

/// A drain must terminate even when a client has stopped reading entirely:
/// enough unread response bytes to overflow the kernel buffers park in the
/// reactor's write buffer, the socket never drains, and the drain's grace
/// period — not the client — decides when the server gets to exit.
#[test]
fn drain_terminates_despite_a_fully_stalled_reader() {
    let (addr, handle, _server) = spawn_server(ServerConfig {
        workers: 1,
        queue_capacity: 64,
        ..ServerConfig::default()
    });

    // ~9 MB of responses (30 batches × 50k answers) that the client will
    // never read: far beyond what the kernel socket buffers can absorb,
    // so most of it is still parked in the reactor when the drain starts.
    let (mut stalled, _stalled_reader) = connect(&addr);
    let batch: Vec<String> = (0..50_000).map(|v| (v % 1_000).to_string()).collect();
    let spec = "\"kind\":\"mis\",\"family\":\"gnp\",\"n\":1000,\"seed\":9";
    for id in 0..30 {
        stalled
            .write_all(
                format!(
                    "{{\"id\":{id},\"session\":\"stall\",{spec},\"queries\":[{}]}}\n",
                    batch.join(",")
                )
                .as_bytes(),
            )
            .expect("write batch");
    }

    // Let the worker finish the batches, then drain. The stalled reader
    // would pin the old exit condition forever; the grace period must cut
    // it loose and let serve() return.
    let (mut ctl_stream, mut ctl_reader) = connect(&addr);
    let bye = roundtrip(&mut ctl_stream, &mut ctl_reader, r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("draining").and_then(Json::as_bool), Some(true));

    let started = Instant::now();
    handle
        .join()
        .expect("serve loop exits despite stalled reader");
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "drain took {:?} — stalled reader pinned it",
        started.elapsed()
    );
}

/// Queries arriving *after* the drain began get the typed `draining` error
/// (unchanged from the thread-per-connection front end). The shutdown and
/// the follow-up query are pipelined in one write so both lines reach the
/// reactor before the drain can close the connection.
#[test]
fn queries_after_drain_are_refused_typed() {
    let (addr, handle, _server) = spawn_server(ServerConfig::default());
    let (mut stream, mut reader) = connect(&addr);
    let first = roundtrip(
        &mut stream,
        &mut reader,
        r#"{"session":"x","kind":"mis","n":1000,"seed":1,"query":7}"#,
    );
    assert!(first.get("answer").is_some());
    stream
        .write_all(b"{\"op\":\"shutdown\"}\n{\"session\":\"x\",\"query\":8}\n")
        .expect("pipelined write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("shutdown ack");
    let ack: Json = serde_json::from_str(line.trim()).expect("json");
    assert_eq!(ack.get("draining").and_then(Json::as_bool), Some(true));
    line.clear();
    reader.read_line(&mut line).expect("refusal");
    let refused: Json = serde_json::from_str(line.trim()).expect("json");
    assert_eq!(
        refused.get("error").and_then(Json::as_str),
        Some("draining"),
        "{refused:?}"
    );
    drop((stream, reader));
    handle.join().expect("drain");
}
