//! A fixed worker pool with a bounded admission queue.
//!
//! Backpressure is explicit: [`WorkerPool::try_execute`] refuses work when
//! the queue is full and the caller answers `overloaded` on the wire,
//! instead of buffering without bound and letting latency (then memory)
//! blow up. Shutdown is a drain — already-admitted jobs run to completion.

#![warn(clippy::unwrap_used)]
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    not_empty: Condvar,
    capacity: usize,
}

/// The pool handle; dropping it without [`WorkerPool::shutdown`] drains too
/// (workers are joined on drop).
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    worker_count: usize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Why a job was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The admission queue is at capacity.
    Full,
    /// The pool is draining and accepts no new work.
    ShuttingDown,
}

impl WorkerPool {
    /// Spawns `workers` threads behind a queue of at most `capacity`
    /// pending jobs (both clamped to ≥ 1).
    pub fn new(workers: usize, capacity: usize) -> Self {
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        });
        let worker_count = workers.max(1);
        let workers = (0..worker_count)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("lca-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    // lint:allow(panic) — startup path: no workers means no server
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Self {
            inner,
            worker_count,
            workers: Mutex::new(workers),
        }
    }

    /// Admits `job`, or rejects it when the queue is full or draining —
    /// the caller turns a rejection into an `overloaded` wire response.
    pub fn try_execute(&self, job: impl FnOnce() + Send + 'static) -> Result<(), RejectReason> {
        // lint:allow(panic) — poison means a worker already panicked; propagate
        let mut state = self.inner.state.lock().expect("pool poisoned");
        if state.shutdown {
            return Err(RejectReason::ShuttingDown);
        }
        if state.queue.len() >= self.inner.capacity {
            return Err(RejectReason::Full);
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Jobs currently waiting for a worker.
    pub fn queue_len(&self) -> usize {
        // lint:allow(panic) — poison means a worker already panicked; propagate
        self.inner.state.lock().expect("pool poisoned").queue.len()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Drains and joins: admitted jobs finish, new ones are rejected.
    /// Idempotent — later calls are no-ops.
    pub fn shutdown(&self) {
        {
            // lint:allow(panic) — poison means a worker already panicked; propagate
            let mut state = self.inner.state.lock().expect("pool poisoned");
            state.shutdown = true;
        }
        self.inner.not_empty.notify_all();
        let handles: Vec<_> = self
            .workers
            .lock()
            // lint:allow(panic) — poison means a worker already panicked; propagate
            .expect("pool poisoned")
            .drain(..)
            .collect();
        for handle in handles {
            // Workers catch job panics, so a failed join is already an
            // anomaly; panicking here would turn a drop-during-unwind
            // into an abort, so just surface it.
            if handle.join().is_err() {
                eprintln!("lca-serve: worker thread panicked outside a job");
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            // lint:allow(panic) — poison means a worker already panicked; propagate
            let mut state = inner.state.lock().expect("pool poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                // lint:allow(panic) — poison means a worker already panicked; propagate
                state = inner.not_empty.wait(state).expect("pool poisoned");
            }
        };
        // A panicking job must not take the worker (and with it a slice of
        // the pool's capacity) down with it.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap IS the assertion
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_every_admitted_job() {
        let pool = WorkerPool::new(4, 64);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let done = done.clone();
            pool.try_execute(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn rejects_when_full_and_when_draining() {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let pool = WorkerPool::new(1, 1);
        // Block the single worker…
        let g = gate.clone();
        pool.try_execute(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        // …give it time to dequeue, then fill the queue.
        std::thread::sleep(Duration::from_millis(50));
        pool.try_execute(|| {}).unwrap();
        let full = pool.try_execute(|| {});
        assert_eq!(full.unwrap_err(), RejectReason::Full);
        // Open the gate and drain.
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        pool.shutdown();
        let after = pool.try_execute(|| {});
        assert_eq!(after.unwrap_err(), RejectReason::ShuttingDown);
    }

    #[test]
    fn shutdown_drains_the_queue() {
        let pool = WorkerPool::new(2, 128);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let done = done.clone();
            pool.try_execute(move || {
                std::thread::sleep(Duration::from_micros(100));
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        // Shutdown must wait for all 100, not abandon the queue.
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 100);
        assert_eq!(pool.queue_len(), 0);
    }

    #[test]
    fn a_panicking_job_does_not_kill_its_worker() {
        let pool = WorkerPool::new(1, 8);
        pool.try_execute(|| panic!("job bug")).unwrap();
        // The single worker must survive to run this:
        let done = Arc::new(AtomicUsize::new(0));
        let d = done.clone();
        pool.try_execute(move || {
            d.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn sizes_are_clamped() {
        let pool = WorkerPool::new(0, 0);
        assert_eq!(pool.workers(), 1);
        pool.try_execute(|| {}).unwrap();
    }
}
