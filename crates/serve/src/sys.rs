//! The thin OS-readiness layer under the reactor: epoll on Linux, a
//! poll-with-timeout sweep everywhere else — both behind one [`Poller`]
//! facade so `reactor.rs` contains zero platform code.
//!
//! This is the only module in the workspace allowed to use `unsafe`: the
//! Linux backend declares the four epoll syscalls (plus `prlimit64` for
//! [`raise_fd_limit`]) as `extern "C"` against the libc the Rust standard
//! library already links — no external crate, no new dependency. Every
//! unsafe block wraps exactly one syscall on file descriptors this module
//! owns or borrows for the duration of the call.
//!
//! Two backends:
//!
//! * **Epoll** (`linux`): level-triggered `epoll_wait` over the registered
//!   descriptors, plus a self-wake socketpair (`UnixStream::pair`) so
//!   worker threads can interrupt a blocked wait when a completed query's
//!   response is ready to flush.
//! * **Sweep** (portable fallback, also selectable on Linux with
//!   `LCA_SERVE_BACKEND=sweep`): no kernel readiness at all — `wait`
//!   parks on a condvar for a few milliseconds (or until a waker fires)
//!   and then reports *every* registered token as maybe-ready; the
//!   reactor's nonblocking reads/writes turn "maybe" into fact. This is a
//!   poll-with-timeout over the fd set: strictly more wakeups than epoll,
//!   but std-only, portable, and with identical observable semantics —
//!   the integration suite runs against both.

#![allow(unsafe_code)]

use std::collections::BTreeSet;
use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

#[cfg(unix)]
use std::os::fd::RawFd;

/// One readiness event: the token the fd was registered under, plus what
/// it is ready for. The sweep backend reports both flags set (the reactor
/// must treat readiness as a hint, never a guarantee — true for epoll
/// level-triggered semantics too).
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The caller-chosen registration token.
    pub token: u64,
    /// Reading (or accepting) would make progress.
    pub readable: bool,
    /// Writing would make progress.
    pub writable: bool,
}

/// A cheap, clonable handle that interrupts a concurrent [`Poller::wait`].
/// Worker threads hold one; waking an idle poller is one `write(2)` (epoll
/// backend) or one condvar notify (sweep backend).
#[derive(Clone)]
pub struct Waker(WakerInner);

#[derive(Clone)]
enum WakerInner {
    #[cfg(all(unix, target_os = "linux"))]
    Pipe(Arc<std::os::unix::net::UnixStream>),
    Sweep(Arc<SweepShared>),
}

impl Waker {
    /// Interrupts the poller's current (or next) wait. Idempotent and
    /// lock-light; safe to call from any thread, any number of times.
    pub fn wake(&self) {
        match &self.0 {
            #[cfg(all(unix, target_os = "linux"))]
            WakerInner::Pipe(tx) => {
                use std::io::Write as _;
                // A full pipe means a wake is already pending — exactly the
                // state we want, so WouldBlock (and any other error: the
                // reactor is gone) is ignored.
                let _ = (&**tx).write(&[1u8]);
            }
            WakerInner::Sweep(shared) => {
                *shared.woken.lock().expect("sweep waker poisoned") = true;
                shared.cv.notify_all();
            }
        }
    }
}

struct SweepShared {
    woken: Mutex<bool>,
    cv: Condvar,
}

/// The readiness facade the reactor runs on. Construct with
/// [`Poller::new`]; backend choice is automatic (epoll on Linux, sweep
/// elsewhere) unless `LCA_SERVE_BACKEND=sweep|epoll` overrides it.
pub enum Poller {
    /// Linux epoll backend.
    #[cfg(all(unix, target_os = "linux"))]
    Epoll(EpollPoller),
    /// Portable poll-with-timeout sweep backend.
    Sweep(SweepPoller),
}

impl Poller {
    /// Builds the platform's preferred backend (see env override above).
    pub fn new() -> io::Result<Poller> {
        let forced = std::env::var("LCA_SERVE_BACKEND").ok();
        match forced.as_deref() {
            Some("sweep") => return Ok(Poller::Sweep(SweepPoller::new())),
            Some("epoll") => {
                // Forcing epoll must fail loudly where it does not exist —
                // a silent sweep fallback would hand an operator (or a
                // backend-comparison test) the wrong backend.
                #[cfg(all(unix, target_os = "linux"))]
                return Ok(Poller::Epoll(EpollPoller::new()?));
                #[cfg(not(all(unix, target_os = "linux")))]
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "LCA_SERVE_BACKEND=epoll is unavailable on this platform (use sweep)",
                ));
            }
            Some(other) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("LCA_SERVE_BACKEND must be epoll or sweep, got {other:?}"),
                ))
            }
            None => {}
        }
        #[cfg(all(unix, target_os = "linux"))]
        {
            Ok(Poller::Epoll(EpollPoller::new()?))
        }
        #[cfg(not(all(unix, target_os = "linux")))]
        {
            Ok(Poller::Sweep(SweepPoller::new()))
        }
    }

    /// The backend's name, for logs and stats.
    pub fn backend(&self) -> &'static str {
        match self {
            #[cfg(all(unix, target_os = "linux"))]
            Poller::Epoll(_) => "epoll",
            Poller::Sweep(_) => "sweep",
        }
    }

    /// A waker for this poller.
    pub fn waker(&self) -> Waker {
        match self {
            #[cfg(all(unix, target_os = "linux"))]
            Poller::Epoll(p) => Waker(WakerInner::Pipe(p.wake_tx.clone())),
            Poller::Sweep(p) => Waker(WakerInner::Sweep(p.shared.clone())),
        }
    }

    /// Registers `fd` under `token`, with write-readiness interest iff
    /// `writable` (read interest is always on).
    pub fn register(&mut self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
        match self {
            #[cfg(all(unix, target_os = "linux"))]
            Poller::Epoll(p) => p.ctl(ffi::EPOLL_CTL_ADD, fd, token, writable),
            Poller::Sweep(p) => {
                p.tokens.insert(token);
                Ok(())
            }
        }
    }

    /// Updates the write-interest of an already-registered fd.
    pub fn set_writable(&mut self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
        match self {
            #[cfg(all(unix, target_os = "linux"))]
            Poller::Epoll(p) => p.ctl(ffi::EPOLL_CTL_MOD, fd, token, writable),
            Poller::Sweep(_) => Ok(()),
        }
    }

    /// Removes an fd (by its registration token) from the interest set.
    pub fn deregister(&mut self, fd: RawFd, token: u64) -> io::Result<()> {
        match self {
            #[cfg(all(unix, target_os = "linux"))]
            Poller::Epoll(p) => p.ctl(ffi::EPOLL_CTL_DEL, fd, token, false),
            Poller::Sweep(p) => {
                p.tokens.remove(&token);
                Ok(())
            }
        }
    }

    /// Blocks until readiness, a wake, or `timeout`; fills `events`
    /// (cleared first). Returns `true` iff a [`Waker`] fired during the
    /// wait — the reactor's signal to drain its completion queue.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<bool> {
        events.clear();
        match self {
            #[cfg(all(unix, target_os = "linux"))]
            Poller::Epoll(p) => p.wait(events, timeout),
            Poller::Sweep(p) => p.wait(events, timeout),
        }
    }
}

/// The portable backend: a registered-token set plus a condvar nap. Every
/// wait reports every token as maybe-ready, so the reactor's nonblocking
/// syscalls do the actual readiness discovery. See the module docs for the
/// trade-off.
pub struct SweepPoller {
    tokens: BTreeSet<u64>,
    shared: Arc<SweepShared>,
    /// Upper bound on one nap; keeps worst-case response latency bounded
    /// even if a waker is lost.
    stride: Duration,
}

impl SweepPoller {
    fn new() -> SweepPoller {
        SweepPoller {
            tokens: BTreeSet::new(),
            shared: Arc::new(SweepShared {
                woken: Mutex::new(false),
                cv: Condvar::new(),
            }),
            stride: Duration::from_millis(4),
        }
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<bool> {
        let nap = timeout.min(self.stride);
        let woken = {
            let guard = self.shared.woken.lock().expect("sweep poisoned");
            let (mut guard, _) = self
                .shared
                .cv
                .wait_timeout_while(guard, nap, |woken| !*woken)
                .expect("sweep poisoned");
            std::mem::take(&mut *guard)
        };
        events.extend(self.tokens.iter().map(|&token| Event {
            token,
            readable: true,
            writable: true,
        }));
        Ok(woken)
    }
}

/// Raises the process's soft `RLIMIT_NOFILE` toward `target` (capped at
/// the hard limit) and returns the resulting soft limit. A no-op
/// returning `target` on non-Linux platforms. High-fan-in harnesses (the
/// 1000-connection tests, `engine_report --serve`, `lca-loadgen
/// --connections`) call this so "thousands of sockets" does not die on the
/// default 1024-fd soft limit.
pub fn raise_fd_limit(target: u64) -> io::Result<u64> {
    #[cfg(all(unix, target_os = "linux"))]
    {
        let mut cur = ffi::Rlimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        // SAFETY: prlimit64(0, …) reads this process's limit into the
        // struct we own; no pointers outlive the call.
        let rc = unsafe { ffi::prlimit64(0, ffi::RLIMIT_NOFILE, std::ptr::null(), &mut cur) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        if cur.rlim_cur >= target {
            return Ok(cur.rlim_cur);
        }
        let want = ffi::Rlimit {
            rlim_cur: target.min(cur.rlim_max),
            rlim_max: cur.rlim_max,
        };
        // SAFETY: same as above; the new-limit struct is ours and outlives
        // the call.
        let rc = unsafe { ffi::prlimit64(0, ffi::RLIMIT_NOFILE, &want, std::ptr::null_mut()) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(want.rlim_cur)
    }
    #[cfg(not(all(unix, target_os = "linux")))]
    {
        Ok(target)
    }
}

/// Writes as many of `bufs` as the socket accepts in **one** syscall and
/// returns the byte count, exactly like `write(2)` but gather-style. On
/// Linux this is `writev(2)` over an iovec array (capped at
/// [`MAX_IOVECS`]; the caller retries for the rest, as with any short
/// write). The portable fallback concatenates the buffers into one scratch
/// allocation and issues a single `write` — same single-syscall contract,
/// one extra copy.
///
/// The reactor counts every call to this function in `write_syscalls`, so
/// the `syscalls_per_response` stat stays truthful on both paths.
pub fn write_vectored(stream: &std::net::TcpStream, bufs: &[&[u8]]) -> io::Result<usize> {
    #[cfg(all(unix, target_os = "linux"))]
    {
        use std::os::fd::AsRawFd;
        let iov: Vec<ffi::Iovec> = bufs
            .iter()
            .take(MAX_IOVECS)
            .map(|b| ffi::Iovec {
                iov_base: b.as_ptr(),
                iov_len: b.len(),
            })
            .collect();
        // SAFETY: every iovec points into a borrowed slice that outlives
        // the call; the kernel only reads through them.
        let n = unsafe { ffi::writev(stream.as_raw_fd(), iov.as_ptr(), iov.len() as i32) };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(n as usize)
    }
    #[cfg(not(all(unix, target_os = "linux")))]
    {
        use std::io::Write as _;
        let total: usize = bufs.iter().take(MAX_IOVECS).map(|b| b.len()).sum();
        let mut scratch = Vec::with_capacity(total);
        for b in bufs.iter().take(MAX_IOVECS) {
            scratch.extend_from_slice(b);
        }
        (&*stream).write(&scratch)
    }
}

/// Most buffers one [`write_vectored`] call will gather. Linux's
/// `UIO_MAXIOV` is 1024; 64 keeps the iovec array cache-friendly while
/// still coalescing a deep per-connection backlog into one syscall.
pub const MAX_IOVECS: usize = 64;

/// Shrinks (or grows) the socket's kernel receive buffer. The framing
/// torture tests set a tiny `SO_RCVBUF` on the *client* side to force the
/// server into partial writes; production code has no reason to call this.
/// No-op outside Linux — the tests that rely on it are gated accordingly.
pub fn set_recv_buffer(stream: &std::net::TcpStream, bytes: usize) -> io::Result<()> {
    #[cfg(all(unix, target_os = "linux"))]
    {
        use std::os::fd::AsRawFd;
        let val: i32 = bytes.min(i32::MAX as usize) as i32;
        // SAFETY: setsockopt reads 4 bytes from our stack-owned value.
        let rc = unsafe {
            ffi::setsockopt(
                stream.as_raw_fd(),
                ffi::SOL_SOCKET,
                ffi::SO_RCVBUF,
                &val as *const i32 as *const std::os::raw::c_void,
                std::mem::size_of::<i32>() as u32,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
    #[cfg(not(all(unix, target_os = "linux")))]
    {
        let _ = (stream, bytes);
        Ok(())
    }
}

#[cfg(all(unix, target_os = "linux"))]
pub use epoll::EpollPoller;

#[cfg(all(unix, target_os = "linux"))]
mod ffi {
    use std::os::raw::{c_int, c_long};

    // The kernel packs epoll_event on x86-64 (and x86) only.
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86_64", target_arch = "x86")), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const RLIMIT_NOFILE: c_int = 7;

    pub const SOL_SOCKET: c_int = 1;
    pub const SO_RCVBUF: c_int = 8;

    #[repr(C)]
    pub struct Rlimit {
        pub rlim_cur: u64,
        pub rlim_max: u64,
    }

    /// `struct iovec` from `<sys/uio.h>`: base pointer + length.
    #[repr(C)]
    pub struct Iovec {
        pub iov_base: *const u8,
        pub iov_len: usize,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn writev(fd: c_int, iov: *const Iovec, iovcnt: c_int) -> isize;
        pub fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const std::os::raw::c_void,
            optlen: u32,
        ) -> c_int;
        pub fn prlimit64(
            pid: c_long,
            resource: c_int,
            new_limit: *const Rlimit,
            old_limit: *mut Rlimit,
        ) -> c_int;
    }
}

#[cfg(all(unix, target_os = "linux"))]
mod epoll {
    use super::ffi;
    use super::Event;
    use std::io::{self, Read as _};
    use std::os::fd::{AsRawFd, RawFd};
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;
    use std::time::Duration;

    /// Token the wake socketpair's read end is registered under; fds never
    /// collide with it because the reactor's tokens are small integers.
    const WAKE_TOKEN: u64 = u64::MAX;

    /// The Linux readiness backend: one level-triggered epoll instance
    /// plus the self-wake socketpair.
    pub struct EpollPoller {
        epfd: RawFd,
        buf: Vec<ffi::EpollEvent>,
        wake_rx: UnixStream,
        pub(super) wake_tx: Arc<UnixStream>,
    }

    impl EpollPoller {
        pub(super) fn new() -> io::Result<EpollPoller> {
            // SAFETY: plain syscall; we own the returned fd for life.
            let epfd = unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            let (wake_rx, wake_tx) = match UnixStream::pair() {
                Ok(pair) => pair,
                Err(e) => {
                    // SAFETY: closing the epoll fd we just created.
                    unsafe { ffi::close(epfd) };
                    return Err(e);
                }
            };
            wake_rx.set_nonblocking(true)?;
            wake_tx.set_nonblocking(true)?;
            let mut poller = EpollPoller {
                epfd,
                buf: vec![ffi::EpollEvent { events: 0, data: 0 }; 1024],
                wake_rx,
                wake_tx: Arc::new(wake_tx),
            };
            poller.ctl(
                ffi::EPOLL_CTL_ADD,
                poller.wake_rx.as_raw_fd(),
                WAKE_TOKEN,
                false,
            )?;
            Ok(poller)
        }

        pub(super) fn ctl(
            &mut self,
            op: i32,
            fd: RawFd,
            token: u64,
            writable: bool,
        ) -> io::Result<()> {
            let mut ev = ffi::EpollEvent {
                events: ffi::EPOLLIN | ffi::EPOLLRDHUP | if writable { ffi::EPOLLOUT } else { 0 },
                data: token,
            };
            // SAFETY: `ev` lives across the call; the kernel copies it.
            let rc = unsafe { ffi::epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Duration,
        ) -> io::Result<bool> {
            let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            // SAFETY: `buf` outlives the call and maxevents matches its
            // length; the kernel writes at most that many entries.
            let n = unsafe {
                ffi::epoll_wait(self.epfd, self.buf.as_mut_ptr(), self.buf.len() as i32, ms)
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(false);
                }
                return Err(e);
            }
            let mut woken = false;
            for raw in &self.buf[..n as usize] {
                let (token, bits) = (raw.data, raw.events);
                if token == WAKE_TOKEN {
                    woken = true;
                    // Drain every pending wake byte so the next write
                    // re-arms readability.
                    let mut sink = [0u8; 64];
                    while matches!((&self.wake_rx).read(&mut sink), Ok(k) if k > 0) {}
                    continue;
                }
                events.push(Event {
                    token,
                    // Errors/hangups surface as readable: the next read
                    // returns 0 or the real error and the reactor closes.
                    readable: bits
                        & (ffi::EPOLLIN | ffi::EPOLLRDHUP | ffi::EPOLLERR | ffi::EPOLLHUP)
                        != 0,
                    writable: bits & (ffi::EPOLLOUT | ffi::EPOLLERR | ffi::EPOLLHUP) != 0,
                });
            }
            Ok(woken)
        }
    }

    impl Drop for EpollPoller {
        fn drop(&mut self) {
            // SAFETY: closing the epoll fd we created; the UnixStreams
            // close themselves.
            unsafe { ffi::close(self.epfd) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    #[cfg(unix)]
    use std::os::fd::AsRawFd;

    #[test]
    fn backend_selection_and_waker() {
        let mut poller = Poller::new().expect("poller");
        #[cfg(target_os = "linux")]
        assert_eq!(poller.backend(), "epoll");
        let waker = poller.waker();
        // A wake fired before the wait must be observed by the wait.
        waker.wake();
        let mut events = Vec::new();
        let woken = poller
            .wait(&mut events, Duration::from_millis(50))
            .expect("wait");
        assert!(woken, "pre-armed wake was lost");
        // And a wait with nothing pending times out quietly.
        let woken = poller
            .wait(&mut events, Duration::from_millis(5))
            .expect("wait");
        assert!(!woken);
    }

    #[cfg(unix)]
    #[test]
    fn readiness_on_a_real_socket() {
        let mut poller = Poller::new().expect("poller");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        listener.set_nonblocking(true).expect("nonblocking");
        poller
            .register(listener.as_raw_fd(), 7, false)
            .expect("register");

        let mut events = Vec::new();
        // Nothing pending yet (sweep backend will report the token anyway —
        // the accept below disambiguates, as in the real reactor).
        let _ = poller.wait(&mut events, Duration::from_millis(1));

        let mut client = TcpStream::connect(addr).expect("connect");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let accepted = loop {
            poller
                .wait(&mut events, Duration::from_millis(20))
                .expect("wait");
            if events.iter().any(|e| e.token == 7 && e.readable) {
                match listener.accept() {
                    Ok((stream, _)) => break stream,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) => panic!("accept: {e}"),
                }
            }
            assert!(std::time::Instant::now() < deadline, "no readiness event");
        };

        // Data readiness on the accepted stream.
        accepted.set_nonblocking(true).expect("nonblocking");
        poller
            .register(accepted.as_raw_fd(), 9, false)
            .expect("register conn");
        client.write_all(b"hi").expect("write");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poller
                .wait(&mut events, Duration::from_millis(20))
                .expect("wait");
            if events.iter().any(|e| e.token == 9 && e.readable) {
                let mut buf = [0u8; 8];
                if let Ok(2) = (&accepted).read(&mut buf) {
                    break;
                }
            }
            assert!(std::time::Instant::now() < deadline, "no data readiness");
        }
        poller
            .deregister(accepted.as_raw_fd(), 9)
            .expect("deregister");
        drop(client);
    }

    #[test]
    fn write_vectored_gathers_across_buffers() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (mut server_side, _) = listener.accept().expect("accept");

        let bufs: [&[u8]; 3] = [b"alpha ", b"", b"beta"];
        let n = write_vectored(&client, &bufs).expect("writev");
        assert_eq!(n, 10, "small gather completes in one call");

        let mut got = vec![0u8; 10];
        server_side.read_exact(&mut got).expect("read");
        assert_eq!(&got, b"alpha beta");
    }

    #[test]
    fn fd_limit_raise_is_monotone() {
        let before = raise_fd_limit(256).expect("query limit");
        assert!(before >= 256);
        let after = raise_fd_limit(before).expect("idempotent");
        assert!(after >= before);
    }
}
