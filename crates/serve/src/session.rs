//! Resident serving sessions: one pinned `(kind, family, n, seed)` instance
//! per client-chosen session name.
//!
//! A session owns the full serving stack for one instance:
//!
//! ```text
//! DynLca (built once via LcaBuilder)
//!   └─ CountingOracle      — session probe totals + per-request deltas
//!        └─ CachedOracle   — cross-query serving cache (sharded)
//!             └─ implicit oracle — the input, recomputed per miss
//! ```
//!
//! The cache sits *below* the session counter, which keeps session probe
//! *totals*; per-request `probes` come from the per-query `QueryCtx`
//! meters (exact under concurrency), while the cache absorbs the cost of
//! recomputing implicit adjacency — the division of labor documented in
//! `lca-probe` ("two caches, two meanings"). The same contexts enforce the
//! request's `max_probes`/`deadline_ms` budget; a tripped query fails the
//! request with `budget-exhausted` (or `deadline-exceeded`) and bumps the
//! session's `budget_exhausted` counter and utilization histogram.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use lca::core::{DynQuery, QueryKind};
use lca::prelude::{CachedOracle, CountingOracle, LcaBuilder, LcaError, Oracle, QueryBudget};
use lca::registry::DynLca;
use lca_graph::VertexId;

use crate::budget::{BudgetController, BudgetPolicyConfig};
use crate::metrics::SessionMetrics;
use crate::proto::{ErrorCode, QueryPayload, Response, SessionSpec};
use crate::{algo_seed, input_seed};

/// The session's oracle stack (see module docs for the layering).
pub type OracleStack = CountingOracle<CachedOracle<lca::family::BoxedImplicitOracle>>;

/// A cheap `Clone` handle to the stack, so [`LcaBuilder::build`] can take
/// the oracle by value and the session can keep reading stats from it.
#[derive(Clone)]
pub struct SharedStack(pub Arc<OracleStack>);

impl Oracle for SharedStack {
    fn vertex_count(&self) -> usize {
        self.0.vertex_count()
    }

    fn degree(&self, v: VertexId) -> usize {
        self.0.degree(v)
    }

    fn neighbor(&self, v: VertexId, i: usize) -> Option<VertexId> {
        self.0.neighbor(v, i)
    }

    fn adjacency(&self, u: VertexId, v: VertexId) -> Option<usize> {
        self.0.adjacency(u, v)
    }

    fn label(&self, v: VertexId) -> u64 {
        self.0.label(v)
    }

    fn probe_cost_hint(&self) -> lca_graph::ProbeCost {
        self.0.probe_cost_hint()
    }
}

/// One resident instance: spec, oracle stack, built algorithm, metrics.
pub struct Session {
    /// The pinned spec (spec fields in later requests must match).
    pub spec: SessionSpec,
    /// When the session was built (for per-session qps).
    pub started: Instant,
    /// Serving counters.
    pub metrics: SessionMetrics,
    /// Adaptive budget controller: observes per-query probe spend and,
    /// when enabled, fits the session's `max_probes` to a target
    /// percentile (see [`crate::budget`]).
    pub controller: BudgetController,
    oracle: Arc<OracleStack>,
    algo: DynLca<'static>,
    /// Deadline-poll stride derived from the oracle stack's probe-cost
    /// hint at build time (implicit oracles are `Compute`-class → 16).
    poll_stride: u64,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("spec", &self.spec)
            .field("vertex_count", &self.vertex_count())
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Builds the session's oracle stack and algorithm from its spec.
    /// Construction is probe-free and cheap (the input is a generator, not
    /// a graph), so building lazily inside the registry lock is fine.
    pub fn build(spec: SessionSpec) -> Session {
        Self::build_with_policy(spec, BudgetPolicyConfig::default())
    }

    /// [`Session::build`] with an explicit server-side budget policy (the
    /// registry passes the server's `--adaptive-budgets` configuration).
    pub fn build_with_policy(spec: SessionSpec, policy: BudgetPolicyConfig) -> Session {
        let implicit = spec
            .family
            .build_with(spec.n, input_seed(spec.seed), spec.knob);
        let oracle = Arc::new(CountingOracle::new(CachedOracle::new(implicit)));
        let algo = LcaBuilder::new(spec.kind)
            .seed(algo_seed(spec.seed))
            .build(SharedStack(oracle.clone()));
        let poll_stride = oracle.probe_cost_hint().poll_stride();
        Session {
            spec,
            started: Instant::now(),
            metrics: SessionMetrics::default(),
            controller: BudgetController::new(policy),
            oracle,
            algo,
            poll_stride,
        }
    }

    /// The instance's actual vertex count (lattice families round the
    /// requested `n`).
    pub fn vertex_count(&self) -> usize {
        self.oracle.vertex_count()
    }

    /// Serving-cache counters.
    pub fn cache_stats(&self) -> lca_probe::CacheStats {
        self.oracle.inner().stats()
    }

    /// Session probe totals (every logical probe, hits included).
    pub fn probe_counts(&self) -> lca_probe::ProbeCounts {
        self.oracle.counts()
    }

    fn to_dyn(&self, q: QueryPayload) -> Result<DynQuery, String> {
        let n = self.vertex_count() as u64;
        let check = |v: u64| -> Result<usize, String> {
            if v < n {
                Ok(v as usize)
            } else {
                Err(format!("vertex {v} out of range (n = {n})"))
            }
        };
        match (q, self.spec.kind.query_kind()) {
            (QueryPayload::Vertex(v), QueryKind::Vertex) => {
                Ok(DynQuery::Vertex(VertexId::new(check(v)?)))
            }
            (QueryPayload::Edge(u, v), QueryKind::Edge) => {
                if u == v {
                    return Err("self-loop query".to_owned());
                }
                Ok(DynQuery::Edge(
                    VertexId::new(check(u)?),
                    VertexId::new(check(v)?),
                ))
            }
            (QueryPayload::Vertex(_), QueryKind::Edge) => Err(format!(
                "{} answers edge queries: send \"query\": [u, v]",
                self.spec.kind
            )),
            (QueryPayload::Edge(..), QueryKind::Vertex) => Err(format!(
                "{} answers vertex queries: send \"query\": v",
                self.spec.kind
            )),
        }
    }

    /// Answers one request's queries under its [`QueryBudget`], recording
    /// metrics, and returns the wire response.
    ///
    /// Every query runs in a fresh `QueryCtx` carrying the request's
    /// `max_probes`; the request's `deadline_ms` becomes one shared
    /// deadline across the whole batch. Pass the pre-resolved `deadline`
    /// from the moment the request was *admitted*, so queue wait counts
    /// against the allowance (the server does); `None` falls back to
    /// deriving it from the budget's timeout at entry. `probes` in the
    /// response is the sum of the contexts' meters — exact per request
    /// even when several workers answer the same session concurrently
    /// (the meter sits above the shared session counter).
    pub fn answer(
        self: &Arc<Self>,
        name: &str,
        queries: &[QueryPayload],
        id: Option<u64>,
        budget: &QueryBudget,
        deadline: Option<Instant>,
    ) -> Response {
        let deadline = deadline.or_else(|| budget.timeout.map(|t| Instant::now() + t));
        let start = Instant::now();
        let mut answers = Vec::with_capacity(queries.len());
        let mut probes = 0u64;
        for &q in queries {
            let dyn_q = match self.to_dyn(q) {
                Ok(dyn_q) => dyn_q,
                Err(message) => {
                    self.metrics.record_error();
                    return Response::Error {
                        id,
                        code: ErrorCode::BadQuery,
                        message,
                    };
                }
            };
            let ctx = budget.ctx_at(deadline).with_poll_stride(self.poll_stride);
            let outcome = self.algo.query_ctx(dyn_q, &ctx);
            probes += ctx.spent();
            match outcome {
                Ok(a) => {
                    // Every completed query feeds the adaptive controller's
                    // windowed histogram (even while fitting is off, so a
                    // later `budget_policy` switch fits from real history).
                    self.controller.observe(ctx.spent());
                    // Utilization is a headroom signal over *successful*
                    // budgeted queries (trips have their own counter; a
                    // failed query's partial spend would skew the p50).
                    if let Some(limit) = budget.max_probes {
                        self.metrics
                            .record_budget_utilization(ctx.spent() * 100 / limit.max(1));
                    }
                    answers.push(a)
                }
                Err(e) if e.is_budget() => {
                    self.metrics.record_budget_exhausted();
                    let code = match e {
                        LcaError::DeadlineExceeded { .. } => ErrorCode::DeadlineExceeded,
                        _ => ErrorCode::BudgetExhausted,
                    };
                    // A probe-budget trip is a *censored* observation: the
                    // true spend is at least the limit. Deadline trips are
                    // not recorded — wall-clock partial spend would bias
                    // the probe fit down.
                    if code == ErrorCode::BudgetExhausted {
                        if let Some(limit) = budget.max_probes {
                            self.controller.observe_exhausted(limit);
                        }
                    }
                    return Response::Error {
                        id,
                        code,
                        message: e.to_string(),
                    };
                }
                Err(e) => {
                    self.metrics.record_error();
                    return Response::Error {
                        id,
                        code: ErrorCode::BadQuery,
                        message: e.to_string(),
                    };
                }
            }
        }
        let micros = start.elapsed().as_micros() as u64;
        let yes = answers.iter().filter(|a| **a).count() as u64;
        self.metrics
            .record(answers.len() as u64, yes, micros, probes);
        if answers.len() == 1 {
            Response::Answer {
                id,
                session: name.to_owned(),
                answer: answers[0],
                probes,
                micros,
            }
        } else {
            Response::Answers {
                id,
                session: name.to_owned(),
                answers,
                probes,
                micros,
            }
        }
    }
}

/// Default number of registry shards — matches the serving cache's shard
/// count, and like it is a concurrency knob, not a capacity one.
const DEFAULT_REGISTRY_SHARDS: usize = 16;

/// One registry shard: its slice of the name space plus a resolve-hit
/// counter (how many resolves found an already-pinned session here).
#[derive(Default)]
struct RegistryShard {
    sessions: Mutex<HashMap<String, Arc<Session>>>,
    hits: std::sync::atomic::AtomicU64,
}

/// The session registry: lazily builds and pins instances by name.
///
/// Sharded with the workspace's Fibonacci-hash router
/// ([`lca_probe::shard_for_str`]) so concurrent resolves of *different*
/// sessions never serialize on one lock — the same routing scheme the
/// probe caches use for vertices, applied to session names. Each shard is
/// an independent `Mutex<HashMap>`; a resolve locks exactly one shard, and
/// `stats` rolls shard counters up the same way `CacheStats::add` rolls up
/// session cache stats.
pub struct SessionRegistry {
    shards: Vec<RegistryShard>,
    /// Server-side budget policy every newly built session starts with.
    policy: BudgetPolicyConfig,
}

impl Default for SessionRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionRegistry {
    /// An empty registry with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_REGISTRY_SHARDS)
    }

    /// An empty registry over `shards` independent locks (clamped to ≥ 1).
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| RegistryShard::default())
                .collect(),
            policy: BudgetPolicyConfig::default(),
        }
    }

    /// An empty registry whose sessions start with `policy` (the server's
    /// `--adaptive-budgets` configuration).
    pub fn with_policy(policy: BudgetPolicyConfig) -> Self {
        Self {
            policy,
            ..Self::new()
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `name` routes to (exposed so tests and dashboards
    /// can reason about placement).
    pub fn shard_of(&self, name: &str) -> usize {
        lca_probe::shard_for_str(name, self.shards.len())
    }

    /// Per-shard resolve-hit counts (resolves that found a pinned
    /// session), in shard order.
    pub fn shard_hits(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.hits.load(std::sync::atomic::Ordering::Relaxed))
            .collect()
    }

    /// Resolves `name`, building the session on first use.
    ///
    /// * name unknown, spec given → build and pin;
    /// * name known, spec given → spec must equal the pinned one;
    /// * name known, no spec → the pinned instance;
    /// * name unknown, no spec → [`ErrorCode::UnknownSession`].
    ///
    /// Locks only the shard `name` routes to; building happens inside that
    /// shard's lock (construction is probe-free and cheap — see
    /// [`Session::build`]) so two racing first-queries for one name pin
    /// exactly one instance, while sessions on other shards stay
    /// uncontended.
    pub fn resolve(
        &self,
        name: &str,
        spec: Option<SessionSpec>,
    ) -> Result<Arc<Session>, (ErrorCode, String)> {
        let shard = &self.shards[self.shard_of(name)];
        let mut sessions = shard.sessions.lock().expect("session registry poisoned");
        match (sessions.get(name), spec) {
            (Some(session), None) => {
                shard.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Ok(session.clone())
            }
            (Some(session), Some(spec)) => {
                if session.spec == spec {
                    shard.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    Ok(session.clone())
                } else {
                    Err((
                        ErrorCode::SessionMismatch,
                        format!(
                            "session {name:?} is pinned to {:?} over {} (n = {}, seed = {}); \
                             drop the spec fields or pick a new session name",
                            session.spec.kind,
                            session.spec.family,
                            session.spec.n,
                            session.spec.seed
                        ),
                    ))
                }
            }
            (None, Some(spec)) => {
                let session = Arc::new(Session::build_with_policy(spec, self.policy));
                sessions.insert(name.to_owned(), session.clone());
                Ok(session)
            }
            (None, None) => Err((
                ErrorCode::UnknownSession,
                format!("session {name:?} has not been specified yet: send kind/n (and optionally family/seed/knob) with the first query"),
            )),
        }
    }

    /// Snapshot of all sessions, for `stats` (locks shards one at a time,
    /// never all at once).
    pub fn snapshot(&self) -> Vec<(String, Arc<Session>)> {
        let mut all: Vec<_> = self
            .shards
            .iter()
            .flat_map(|shard| {
                let sessions = shard.sessions.lock().expect("session registry poisoned");
                sessions
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Number of resident sessions (summed across shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .sessions
                    .lock()
                    .expect("session registry poisoned")
                    .len()
            })
            .sum()
    }

    /// `true` when no session is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Test hook: holds shard `i`'s lock, so tests can prove resolves on
    /// *other* shards do not serialize behind it.
    #[cfg(test)]
    fn lock_shard(&self, i: usize) -> std::sync::MutexGuard<'_, HashMap<String, Arc<Session>>> {
        self.shards[i].sessions.lock().expect("poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lca::prelude::*;

    fn mis_spec(n: usize, seed: u64) -> SessionSpec {
        SessionSpec {
            kind: AlgorithmKind::Classic(ClassicKind::Mis),
            family: ImplicitFamily::Gnp,
            n,
            seed,
            knob: None,
        }
    }

    #[test]
    fn answers_match_a_directly_built_lca() {
        let spec = mis_spec(10_000, 7);
        let session = Arc::new(Session::build(spec.clone()));

        let oracle = spec.family.build_with(spec.n, input_seed(spec.seed), None);
        let direct = LcaBuilder::new(spec.kind)
            .seed(algo_seed(spec.seed))
            .build(&oracle);

        for v in [0u64, 1, 42, 9_999] {
            let resp = session.answer(
                "s",
                &[QueryPayload::Vertex(v)],
                None,
                &QueryBudget::unlimited(),
                None,
            );
            let Response::Answer { answer, probes, .. } = resp else {
                panic!("expected answer, got {resp:?}")
            };
            let expect = direct
                .query(lca::core::DynQuery::Vertex(VertexId::new(v as usize)))
                .unwrap();
            assert_eq!(answer, expect, "vertex {v}");
            assert!(probes > 0);
        }
    }

    #[test]
    fn repeat_queries_hit_the_serving_cache() {
        // Spanners have no cross-query memo, so repeating an edge query
        // re-issues its probes — which the serving cache must absorb.
        let spec = SessionSpec {
            kind: AlgorithmKind::Spanner(SpannerKind::Three),
            family: ImplicitFamily::Regular,
            n: 1_000,
            seed: 1,
            knob: Some(4.0),
        };
        let session = Arc::new(Session::build(spec.clone()));
        let oracle = spec
            .family
            .build_with(spec.n, input_seed(spec.seed), spec.knob);
        let edge = QuerySource::sample(1, Seed::new(3))
            .queries(spec.kind, &oracle)
            .pop()
            .map(|q| match q {
                lca::core::DynQuery::Edge(u, v) => {
                    QueryPayload::Edge(u.raw() as u64, v.raw() as u64)
                }
                lca::core::DynQuery::Vertex(_) => unreachable!("spanner queries are edges"),
            })
            .unwrap();
        session.answer("s", &[edge], None, &QueryBudget::unlimited(), None);
        let after_first = session.cache_stats();
        session.answer("s", &[edge], None, &QueryBudget::unlimited(), None);
        let after_second = session.cache_stats();
        assert!(
            after_second.hits > after_first.hits,
            "first {after_first:?} second {after_second:?}"
        );
        // Counter sits above the cache: probes counted both times.
        let m = &session.metrics;
        assert_eq!(m.queries.load(std::sync::atomic::Ordering::Relaxed), 2);
        assert!(session.probe_counts().total() > after_second.misses);
    }

    #[test]
    fn wrong_shape_and_out_of_range_queries_error() {
        let session = Arc::new(Session::build(mis_spec(100, 2)));
        for bad in [QueryPayload::Edge(1, 2), QueryPayload::Vertex(100)] {
            let resp = session.answer("s", &[bad], Some(4), &QueryBudget::unlimited(), None);
            let Response::Error { code, id, .. } = resp else {
                panic!("expected error for {bad:?}")
            };
            assert_eq!(code, ErrorCode::BadQuery);
            assert_eq!(id, Some(4));
        }
        assert_eq!(
            session
                .metrics
                .errors
                .load(std::sync::atomic::Ordering::Relaxed),
            2
        );
    }

    #[test]
    fn registry_pins_and_validates_specs() {
        let registry = SessionRegistry::new();
        assert!(registry.is_empty());
        let err = registry.resolve("s", None).unwrap_err();
        assert_eq!(err.0, ErrorCode::UnknownSession);

        let spec = mis_spec(500, 3);
        let a = registry.resolve("s", Some(spec.clone())).unwrap();
        let b = registry.resolve("s", None).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same pinned instance");
        let c = registry.resolve("s", Some(spec.clone())).unwrap();
        assert!(Arc::ptr_eq(&a, &c), "matching spec resolves");

        let err = registry.resolve("s", Some(mis_spec(501, 3))).unwrap_err();
        assert_eq!(err.0, ErrorCode::SessionMismatch);
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.snapshot()[0].0, "s");
    }

    #[test]
    fn registry_shards_route_deterministically_and_count_hits() {
        let registry = SessionRegistry::with_shards(8);
        assert_eq!(registry.shard_count(), 8);
        let spec = mis_spec(200, 1);
        registry.resolve("a", Some(spec.clone())).unwrap();
        assert_eq!(registry.shard_hits().iter().sum::<u64>(), 0, "build ≠ hit");
        registry.resolve("a", None).unwrap();
        registry.resolve("a", Some(spec)).unwrap();
        let hits = registry.shard_hits();
        assert_eq!(hits.len(), 8);
        assert_eq!(hits.iter().sum::<u64>(), 2);
        assert_eq!(hits[registry.shard_of("a")], 2);
        // Routing agrees with the workspace router and is name-stable.
        assert_eq!(registry.shard_of("a"), lca_probe::shard_for_str("a", 8));
    }

    #[test]
    fn disjoint_sessions_see_no_cross_shard_serialization() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::time::Duration;

        // 8 threads resolving 8 sessions pinned to 8 *distinct* shards,
        // while the main thread sits on a ninth shard's lock the whole
        // time. If resolves serialized on anything global, they would
        // block behind that held lock; instead all 8 must finish while it
        // is still held.
        let registry = Arc::new(SessionRegistry::with_shards(64));
        let mut names: Vec<String> = Vec::new();
        let mut used = std::collections::HashSet::new();
        let mut i = 0u64;
        while names.len() < 9 {
            let candidate = format!("s{i}");
            if used.insert(registry.shard_of(&candidate)) {
                names.push(candidate);
            }
            i += 1;
        }
        let blocked_shard = registry.shard_of(&names[8]);
        let guard = registry.lock_shard(blocked_shard);

        let done = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = names[..8]
            .iter()
            .cloned()
            .map(|name| {
                let registry = registry.clone();
                let done = done.clone();
                std::thread::spawn(move || {
                    registry.resolve(&name, Some(mis_spec(200, 4))).unwrap();
                    for _ in 0..50 {
                        registry.resolve(&name, None).unwrap();
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        // All 8 finish while the ninth shard's lock is held.
        let deadline = Instant::now() + Duration::from_secs(20);
        while done.load(Ordering::SeqCst) < 8 {
            assert!(
                Instant::now() < deadline,
                "disjoint-shard resolves serialized behind a held shard lock"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(guard);
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(registry.len(), 8);
        assert_eq!(registry.shard_hits().iter().sum::<u64>(), 8 * 50);
    }

    #[test]
    fn batch_requests_answer_in_order() {
        let spec = SessionSpec {
            kind: AlgorithmKind::Spanner(SpannerKind::Three),
            family: ImplicitFamily::Regular,
            n: 2_000,
            seed: 5,
            knob: Some(4.0),
        };
        let session = Arc::new(Session::build(spec.clone()));
        // Sample real edges off the same oracle the session built.
        let oracle = spec
            .family
            .build_with(spec.n, input_seed(spec.seed), spec.knob);
        let queries: Vec<QueryPayload> = QuerySource::sample(8, Seed::new(9))
            .queries(spec.kind, &oracle)
            .into_iter()
            .map(|q| match q {
                lca::core::DynQuery::Edge(u, v) => {
                    QueryPayload::Edge(u.raw() as u64, v.raw() as u64)
                }
                lca::core::DynQuery::Vertex(v) => QueryPayload::Vertex(v.raw() as u64),
            })
            .collect();
        let resp = session.answer("sp", &queries, Some(1), &QueryBudget::unlimited(), None);
        let Response::Answers { answers, .. } = resp else {
            panic!("expected batch answers, got {resp:?}")
        };
        assert_eq!(answers.len(), 8);
        // Same answers one at a time.
        for (q, expect) in queries.iter().zip(&answers) {
            let resp = session.answer("sp", &[*q], None, &QueryBudget::unlimited(), None);
            let Response::Answer { answer, .. } = resp else {
                panic!("expected answer")
            };
            assert_eq!(answer, *expect);
        }
    }
}
