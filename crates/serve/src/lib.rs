//! `lca-serve` — a persistent query-serving daemon for local computation
//! algorithms, plus its load generator.
//!
//! The paper's model is an online one: an LCA is a long-lived oracle
//! answering an adversarial *stream* of queries about one fixed legal
//! solution, consistently across queries (Rubinfeld et al., ICS 2011; Alon
//! et al. for the bounded-state serving regime). The rest of the workspace
//! can *construct* oracles at n = 10⁸ and *batch* queries; this crate is
//! the process that stays up and serves them:
//!
//! * **Protocol** ([`proto`]) — newline-JSON over TCP or stdin; one request
//!   line in, one response line out. Spec: `docs/PROTOCOL.md`.
//! * **Sessions** ([`session`]) — lazily built, pinned
//!   `(kind, family, n, seed)` instances, each owning an algorithm over a
//!   `CountingOracle → CachedOracle → implicit oracle` stack.
//! * **Reactor** ([`reactor`], [`sys`]) — the event-driven TCP front end:
//!   one thread multiplexes every connection over nonblocking sockets and
//!   a readiness loop (epoll on Linux via a thin `extern "C"` layer, a
//!   portable poll-with-timeout sweep elsewhere). No per-connection
//!   threads at any load; thousands of open connections cost buffers, not
//!   stacks.
//! * **Admission** ([`pool`]) — a fixed worker pool behind a bounded queue;
//!   a full queue answers `overloaded` instead of buffering unboundedly.
//!   Workers return responses to the reactor through a completion queue
//!   plus a wake pipe — they never block on a client socket.
//! * **Budgets** — requests carry `max_probes`/`deadline_ms`; every query
//!   runs in a `QueryCtx` enforcing them, over-budget queries fail with the
//!   typed `budget-exhausted` code (never hang a worker), and `stats`
//!   reports exhaustion counters plus a budget-utilization histogram.
//!   Operators can install server-wide defaults
//!   (`lca-serve --max-probes/--deadline-ms`).
//! * **Adaptive budgets** ([`budget`]) — per-session controllers that fit
//!   `max_probes` to a target percentile of the *observed* probe
//!   distribution (windowed, decay-on-rotate histograms), requested per
//!   session via the `budget_policy` field or server-wide via
//!   `lca-serve --adaptive-budgets`. Explicit request budgets always win.
//! * **Metrics** ([`metrics`]) — per-session and global qps, log₂ latency
//!   and probe histograms (p50/p99), cache hit rates; served by the
//!   `stats` request.
//! * **Server** ([`server`]) — the daemon loop with graceful drain.
//! * **Load generator** ([`loadgen`]) — closed/open-loop driver with a
//!   machine-readable throughput report and optional answer verification
//!   against direct [`lca::prelude::LcaBuilder`] queries.
//!
//! Binaries: `lca-serve` (the daemon) and `lca-loadgen` (the driver); see
//! the serving section of `examples/quickstart.rs` for one-liners.

// `deny`, not `forbid`: the one sanctioned exception is `sys.rs`, which
// declares the epoll syscalls against the libc std already links (see its
// module docs); everything else stays safe Rust.
#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod budget;
pub mod loadgen;
pub mod metrics;
pub mod pool;
pub mod proto;
pub(crate) mod reactor;
pub mod server;
pub mod session;
pub mod sys;

pub use sys::raise_fd_limit;

use lca_rand::Seed;

/// The input oracle's seed for a session seed: the two sides of a session
/// (random input, random algorithm choices) draw from independent derived
/// streams so neither can correlate with the other.
pub fn input_seed(seed: u64) -> Seed {
    Seed::new(seed).derive(0x494E_5055) // "INPU"
}

/// The algorithm's seed for a session seed — see [`input_seed`].
pub fn algo_seed(seed: u64) -> Seed {
    Seed::new(seed).derive(0x414C_474F) // "ALGO"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_derivations_are_distinct_and_deterministic() {
        assert_eq!(input_seed(7), input_seed(7));
        assert_eq!(algo_seed(7), algo_seed(7));
        assert_ne!(input_seed(7), algo_seed(7));
        assert_ne!(input_seed(7), input_seed(8));
    }
}
