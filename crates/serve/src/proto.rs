//! The newline-JSON wire protocol.
//!
//! One request per line, one response line per request — the full field
//! reference with `nc` examples lives in `docs/PROTOCOL.md`. This module
//! owns parsing ([`Request::parse`]) and rendering ([`Response`]); it knows
//! nothing about sockets or sessions.

use lca::prelude::{AlgorithmKind, ImplicitFamily};
use serde::Json;

use crate::budget::BudgetPolicy;

/// Version of this wire protocol, reported in every `stats` response so a
/// fleet front end can tag (and age out) backends speaking an older
/// schema. Bump when a field changes meaning or disappears — additive
/// fields do not require a bump.
pub const PROTOCOL_VERSION: u64 = 1;

/// A parsed session specification: the four scalars (plus one optional
/// knob) that pin a served instance.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Which algorithm answers the session's queries.
    pub kind: AlgorithmKind,
    /// Which implicit input family backs the session.
    pub family: ImplicitFamily,
    /// Requested vertex count (lattice families round it; see
    /// [`ImplicitFamily::build_with`]).
    pub n: usize,
    /// The session seed; input and algorithm seeds are derived from it (see
    /// [`crate::input_seed`] / [`crate::algo_seed`]).
    pub seed: u64,
    /// Family shape knob (expected degree for `gnp`, degree for `regular`,
    /// average degree for `chung-lu`).
    pub knob: Option<f64>,
}

/// One query payload: a vertex id or a normalized edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryPayload {
    /// A vertex-subset query (`"query": 42`).
    Vertex(u64),
    /// An edge-subgraph query (`"query": [3, 17]`).
    Edge(u64, u64),
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Answer one query (or a batch) within a session.
    Query {
        /// Client-chosen session name.
        session: String,
        /// Instance spec; required the first time a session name is used,
        /// validated against the pinned instance afterwards when present.
        spec: Option<SessionSpec>,
        /// The queries to answer (singular `query` parses to a 1-batch).
        queries: Vec<QueryPayload>,
        /// Echoed verbatim in the response, for request/response matching
        /// over pipelined connections.
        id: Option<u64>,
        /// Per-query probe budget: a query that would exceed it fails the
        /// request with [`ErrorCode::BudgetExhausted`] instead of running
        /// long.
        max_probes: Option<u64>,
        /// Wall-clock allowance for the whole request, in milliseconds;
        /// overruns fail with [`ErrorCode::DeadlineExceeded`].
        deadline_ms: Option<u64>,
        /// Adaptive-budget policy for the session (`"off"`/`"none"`,
        /// `"adaptive"`, or a `"pNN"` percentile like `"p95"`); latest
        /// request wins. Explicit `max_probes` always overrides the fitted
        /// budget. Absent means "leave the session's policy alone".
        budget_policy: Option<BudgetPolicy>,
    },
    /// Report global and per-session metrics.
    Stats,
    /// Report every resident session's pinned spec (`kind`, `family`, `n`,
    /// `seed`, `knob`) — the spec-introspection half of fleet replication:
    /// any process can rebuild every session from this one response.
    Sessions,
    /// Liveness check.
    Ping,
    /// Begin a graceful drain: stop accepting, finish queued work, exit.
    Shutdown,
}

/// Machine-readable error classes of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed JSON or missing/ill-typed fields.
    BadRequest,
    /// `kind`/`family` did not parse, or the spec is unusable.
    UnknownSpec,
    /// Session name used before being specified.
    UnknownSession,
    /// Spec fields contradict the session's pinned instance.
    SessionMismatch,
    /// Query out of the instance's vertex range, or wrong shape.
    BadQuery,
    /// Admission queue full — retry later.
    Overloaded,
    /// The server is draining and no longer accepts queries.
    Draining,
    /// The query panicked inside the worker — a server bug, not a client
    /// one; the session stays usable.
    Internal,
    /// A query exceeded the request's `max_probes` budget. A clean partial
    /// failure: the session stays consistent and the same query succeeds
    /// under a larger budget.
    BudgetExhausted,
    /// The request ran past its `deadline_ms` allowance.
    DeadlineExceeded,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownSpec => "unknown-spec",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::SessionMismatch => "session-mismatch",
            ErrorCode::BadQuery => "bad-query",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Draining => "draining",
            ErrorCode::Internal => "internal",
            ErrorCode::BudgetExhausted => "budget-exhausted",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
        }
    }
}

/// A response line, ready to render.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A successful answer to a 1-query request.
    Answer {
        /// Echo of the request `id`, if one was sent.
        id: Option<u64>,
        /// The session that answered.
        session: String,
        /// The LCA's answer.
        answer: bool,
        /// Oracle probes spent on this request (approximate when the same
        /// session is being queried concurrently).
        probes: u64,
        /// Wall-clock service time in microseconds (queue wait excluded).
        micros: u64,
    },
    /// A successful answer to a batch request.
    Answers {
        /// Echo of the request `id`, if one was sent.
        id: Option<u64>,
        /// The session that answered.
        session: String,
        /// Per-query answers, in request order.
        answers: Vec<bool>,
        /// Oracle probes spent on this request.
        probes: u64,
        /// Wall-clock service time in microseconds.
        micros: u64,
    },
    /// Any failure, including backpressure.
    Error {
        /// Echo of the request `id`, if one was parsed.
        id: Option<u64>,
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Reply to `ping` and `shutdown`.
    Ok {
        /// `true` iff this reply acknowledges a shutdown (drain started).
        draining: bool,
    },
    /// Reply to `stats`: a pre-rendered JSON object (built by the metrics
    /// module, which owns the schema).
    Stats(Json),
}

impl Response {
    /// Renders the response as one compact JSON line (no trailing newline).
    pub fn render(&self) -> String {
        let json = match self {
            Response::Answer {
                id,
                session,
                answer,
                probes,
                micros,
            } => {
                let mut fields = Vec::new();
                if let Some(id) = id {
                    fields.push(("id".to_owned(), Json::Num(*id as f64)));
                }
                fields.push(("session".to_owned(), Json::Str(session.clone())));
                fields.push(("answer".to_owned(), Json::Bool(*answer)));
                fields.push(("probes".to_owned(), Json::Num(*probes as f64)));
                fields.push(("micros".to_owned(), Json::Num(*micros as f64)));
                Json::Obj(fields)
            }
            Response::Answers {
                id,
                session,
                answers,
                probes,
                micros,
            } => {
                let mut fields = Vec::new();
                if let Some(id) = id {
                    fields.push(("id".to_owned(), Json::Num(*id as f64)));
                }
                fields.push(("session".to_owned(), Json::Str(session.clone())));
                fields.push((
                    "answers".to_owned(),
                    Json::Arr(answers.iter().map(|a| Json::Bool(*a)).collect()),
                ));
                fields.push(("probes".to_owned(), Json::Num(*probes as f64)));
                fields.push(("micros".to_owned(), Json::Num(*micros as f64)));
                Json::Obj(fields)
            }
            Response::Error { id, code, message } => {
                let mut fields = Vec::new();
                if let Some(id) = id {
                    fields.push(("id".to_owned(), Json::Num(*id as f64)));
                }
                fields.push(("error".to_owned(), Json::Str(code.as_str().to_owned())));
                fields.push(("message".to_owned(), Json::Str(message.clone())));
                Json::Obj(fields)
            }
            Response::Ok { draining } => Json::Obj(vec![
                ("ok".to_owned(), Json::Bool(true)),
                ("draining".to_owned(), Json::Bool(*draining)),
            ]),
            Response::Stats(json) => json.clone(),
        };
        let mut out = String::new();
        json.render(&mut out);
        out
    }

    /// Shorthand for an [`ErrorCode::Overloaded`] response.
    pub fn overloaded(id: Option<u64>) -> Response {
        Response::Error {
            id,
            code: ErrorCode::Overloaded,
            message: "admission queue full, retry later".to_owned(),
        }
    }
}

/// A parse failure: the error response to send plus nothing else — parsing
/// never has side effects.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Request id, when one could be extracted before the failure.
    pub id: Option<u64>,
    /// Error class.
    pub code: ErrorCode,
    /// Detail message.
    pub message: String,
}

impl ParseError {
    fn new(id: Option<u64>, code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            id,
            code,
            message: message.into(),
        }
    }

    /// The response line for this failure.
    pub fn response(&self) -> Response {
        Response::Error {
            id: self.id,
            code: self.code,
            message: self.message.clone(),
        }
    }
}

impl Request {
    /// Parses one request line.
    ///
    /// The `op` field selects the request type and defaults to `"query"`.
    /// A query request needs `session` plus either `query` (one vertex id
    /// or `[u, v]` edge) or `queries` (an array of those); `kind`, `n` and
    /// optionally `family`/`seed`/`knob` describe the instance and are
    /// required the first time a session name is used.
    pub fn parse(line: &str) -> Result<Request, ParseError> {
        let v = serde_json::from_str(line)
            .map_err(|e| ParseError::new(None, ErrorCode::BadRequest, e.to_string()))?;
        let id = v.get("id").and_then(Json::as_u64);
        let op = v.get("op").and_then(Json::as_str).unwrap_or("query");
        match op {
            "stats" => Ok(Request::Stats),
            "sessions" => Ok(Request::Sessions),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            "query" => Self::parse_query(&v, id),
            other => Err(ParseError::new(
                id,
                ErrorCode::BadRequest,
                format!("unknown op {other:?}"),
            )),
        }
    }

    fn parse_query(v: &Json, id: Option<u64>) -> Result<Request, ParseError> {
        let session = v
            .get("session")
            .and_then(Json::as_str)
            .ok_or_else(|| {
                ParseError::new(id, ErrorCode::BadRequest, "missing string field `session`")
            })?
            .to_owned();

        let spec = Self::parse_spec(v, id)?;

        let mut queries = Vec::new();
        match (v.get("query"), v.get("queries")) {
            (Some(q), None) => queries.push(Self::parse_payload(q, id)?),
            (None, Some(qs)) => {
                let items = qs.as_array().ok_or_else(|| {
                    ParseError::new(id, ErrorCode::BadRequest, "`queries` must be an array")
                })?;
                if items.is_empty() {
                    return Err(ParseError::new(
                        id,
                        ErrorCode::BadRequest,
                        "`queries` must not be empty",
                    ));
                }
                for q in items {
                    queries.push(Self::parse_payload(q, id)?);
                }
            }
            (Some(_), Some(_)) => {
                return Err(ParseError::new(
                    id,
                    ErrorCode::BadRequest,
                    "send `query` or `queries`, not both",
                ))
            }
            (None, None) => {
                return Err(ParseError::new(
                    id,
                    ErrorCode::BadRequest,
                    "missing `query` (vertex id or [u, v]) or `queries`",
                ))
            }
        }
        let max_probes = v.get("max_probes").and_then(Json::as_u64);
        let deadline_ms = v.get("deadline_ms").and_then(Json::as_u64);
        let budget_policy = match v.get("budget_policy") {
            None => None,
            Some(policy) => {
                let s = policy.as_str().ok_or_else(|| {
                    ParseError::new(
                        id,
                        ErrorCode::BadRequest,
                        "`budget_policy` must be a string",
                    )
                })?;
                Some(BudgetPolicy::parse(s).ok_or_else(|| {
                    ParseError::new(
                        id,
                        ErrorCode::BadRequest,
                        format!("unknown budget_policy {s:?} (use off, adaptive, or pNN like p95)"),
                    )
                })?)
            }
        };
        Ok(Request::Query {
            session,
            spec,
            queries,
            id,
            max_probes,
            deadline_ms,
            budget_policy,
        })
    }

    /// Parses the spec fields if any are present; `kind` + `n` make a spec,
    /// anything partial (including a stray `family`/`seed`/`knob` without
    /// them) is an error — a typo would otherwise silently fall back to the
    /// pinned instance.
    fn parse_spec(v: &Json, id: Option<u64>) -> Result<Option<SessionSpec>, ParseError> {
        let kind = v.get("kind").and_then(Json::as_str);
        let n = v.get("n").and_then(Json::as_u64);
        let (kind, n) = match (kind, n) {
            (Some(kind), Some(n)) => (kind, n),
            (None, None) => {
                if let Some(stray) = ["family", "seed", "knob"]
                    .iter()
                    .find(|k| v.get(k).is_some())
                {
                    return Err(ParseError::new(
                        id,
                        ErrorCode::BadRequest,
                        format!("`{stray}` without `kind` and `n` — send the full spec or none"),
                    ));
                }
                return Ok(None);
            }
            _ => {
                return Err(ParseError::new(
                    id,
                    ErrorCode::BadRequest,
                    "a session spec needs both `kind` and `n`",
                ))
            }
        };
        let kind = AlgorithmKind::parse(kind).ok_or_else(|| {
            ParseError::new(id, ErrorCode::UnknownSpec, format!("unknown kind {kind:?}"))
        })?;
        let family = match v.get("family").and_then(Json::as_str) {
            None => ImplicitFamily::Gnp,
            Some(name) => ImplicitFamily::parse(name).ok_or_else(|| {
                ParseError::new(
                    id,
                    ErrorCode::UnknownSpec,
                    format!("unknown family {name:?}"),
                )
            })?,
        };
        let seed = v.get("seed").and_then(Json::as_u64).unwrap_or(0);
        let knob = v.get("knob").and_then(Json::as_f64);
        Ok(Some(SessionSpec {
            kind,
            family,
            n: n as usize,
            seed,
            knob,
        }))
    }

    fn parse_payload(q: &Json, id: Option<u64>) -> Result<QueryPayload, ParseError> {
        if let Some(v) = q.as_u64() {
            return Ok(QueryPayload::Vertex(v));
        }
        if let Some([a, b]) = q.as_array() {
            if let (Some(u), Some(w)) = (a.as_u64(), b.as_u64()) {
                return Ok(QueryPayload::Edge(u, w));
            }
        }
        Err(ParseError::new(
            id,
            ErrorCode::BadRequest,
            "`query` must be a vertex id or a two-element [u, v] array",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lca::prelude::{ClassicKind, SpannerKind};

    #[test]
    fn parses_the_issue_example_shape() {
        let req = Request::parse(
            r#"{"session": "s", "kind": "mis", "n": 1000000, "seed": 7, "query": 42}"#,
        )
        .unwrap();
        let Request::Query {
            session,
            spec,
            queries,
            id,
            max_probes,
            deadline_ms,
            budget_policy,
        } = req
        else {
            panic!("not a query")
        };
        assert_eq!(session, "s");
        assert_eq!(max_probes, None);
        assert_eq!(deadline_ms, None);
        assert_eq!(budget_policy, None);
        assert_eq!(id, None);
        let spec = spec.unwrap();
        assert_eq!(spec.kind, AlgorithmKind::Classic(ClassicKind::Mis));
        assert_eq!(spec.family, ImplicitFamily::Gnp);
        assert_eq!(spec.n, 1_000_000);
        assert_eq!(spec.seed, 7);
        assert_eq!(queries, vec![QueryPayload::Vertex(42)]);
    }

    #[test]
    fn parses_edge_queries_batches_and_ids() {
        let req = Request::parse(
            r#"{"id": 9, "session": "sp", "kind": "spanner3", "family": "regular",
                "n": 4096, "knob": 6, "queries": [[1, 2], [3, 4]]}"#,
        )
        .unwrap();
        let Request::Query {
            spec, queries, id, ..
        } = req
        else {
            panic!("not a query")
        };
        assert_eq!(id, Some(9));
        let spec = spec.unwrap();
        assert_eq!(spec.kind, AlgorithmKind::Spanner(SpannerKind::Three));
        assert_eq!(spec.family, ImplicitFamily::Regular);
        assert_eq!(spec.knob, Some(6.0));
        assert_eq!(
            queries,
            vec![QueryPayload::Edge(1, 2), QueryPayload::Edge(3, 4)]
        );
    }

    #[test]
    fn budget_fields_parse_and_codes_render() {
        let req = Request::parse(
            r#"{"session": "s", "kind": "mis", "n": 100, "max_probes": 64,
                "deadline_ms": 250, "query": 1}"#,
        )
        .unwrap();
        let Request::Query {
            max_probes,
            deadline_ms,
            ..
        } = req
        else {
            panic!("not a query")
        };
        assert_eq!(max_probes, Some(64));
        assert_eq!(deadline_ms, Some(250));
        assert_eq!(ErrorCode::BudgetExhausted.as_str(), "budget-exhausted");
        assert_eq!(ErrorCode::DeadlineExceeded.as_str(), "deadline-exceeded");
    }

    #[test]
    fn budget_policy_parses_and_rejects_junk() {
        for (policy, expect) in [
            ("off", BudgetPolicy::Off),
            ("none", BudgetPolicy::Off),
            ("adaptive", BudgetPolicy::Adaptive(None)),
            ("p95", BudgetPolicy::Adaptive(Some(95.0))),
            ("p99.9", BudgetPolicy::Adaptive(Some(99.9))),
        ] {
            let line = format!(
                r#"{{"session": "s", "kind": "mis", "n": 100, "budget_policy": "{policy}", "query": 1}}"#
            );
            let Request::Query { budget_policy, .. } = Request::parse(&line).unwrap() else {
                panic!("not a query")
            };
            assert_eq!(budget_policy, Some(expect), "{policy}");
        }
        for line in [
            r#"{"session": "s", "kind": "mis", "n": 100, "budget_policy": "p0", "query": 1}"#,
            r#"{"session": "s", "kind": "mis", "n": 100, "budget_policy": "banana", "query": 1}"#,
            r#"{"session": "s", "kind": "mis", "n": 100, "budget_policy": 99, "query": 1}"#,
        ] {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{line}");
            assert!(err.message.contains("budget_policy"), "{line}");
        }
    }

    #[test]
    fn spec_is_optional_after_first_use() {
        let req = Request::parse(r#"{"session": "s", "query": 1}"#).unwrap();
        let Request::Query { spec, .. } = req else {
            panic!("not a query")
        };
        assert_eq!(spec, None);
    }

    #[test]
    fn stray_spec_fields_without_kind_and_n_are_rejected() {
        // A typo'd spec must not silently fall back to the pinned instance.
        for line in [
            r#"{"session": "s", "seed": 9, "query": 1}"#,
            r#"{"session": "s", "family": "gnp", "query": 1}"#,
            r#"{"session": "s", "knob": 3.5, "query": 1}"#,
        ] {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{line}");
        }
    }

    #[test]
    fn ops_parse() {
        assert_eq!(
            Request::parse(r#"{"op": "stats"}"#).unwrap(),
            Request::Stats
        );
        assert_eq!(
            Request::parse(r#"{"op": "sessions"}"#).unwrap(),
            Request::Sessions
        );
        assert_eq!(Request::parse(r#"{"op": "ping"}"#).unwrap(), Request::Ping);
        assert_eq!(
            Request::parse(r#"{"op": "shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn malformed_requests_carry_codes_and_ids() {
        let cases = [
            ("not json", ErrorCode::BadRequest),
            (r#"{"op": "frobnicate"}"#, ErrorCode::BadRequest),
            (
                r#"{"session": "s", "kind": "mis", "query": 1}"#,
                ErrorCode::BadRequest,
            ),
            (
                r#"{"session": "s", "kind": "nope", "n": 10, "query": 1}"#,
                ErrorCode::UnknownSpec,
            ),
            (
                r#"{"session": "s", "kind": "mis", "n": 10, "family": "petersen", "query": 1}"#,
                ErrorCode::UnknownSpec,
            ),
            (
                r#"{"session": "s", "kind": "mis", "n": 10}"#,
                ErrorCode::BadRequest,
            ),
            (
                r#"{"session": "s", "kind": "mis", "n": 10, "query": [1, 2, 3]}"#,
                ErrorCode::BadRequest,
            ),
            (
                r#"{"session": "s", "kind": "mis", "n": 10, "queries": []}"#,
                ErrorCode::BadRequest,
            ),
        ];
        for (line, code) in cases {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.code, code, "{line}");
        }
        let err = Request::parse(r#"{"id": 5, "op": "frobnicate"}"#).unwrap_err();
        assert_eq!(err.id, Some(5));
        assert!(err.response().render().contains("\"id\":5"));
    }

    #[test]
    fn stats_response_round_trips_through_the_wire_format() {
        use crate::metrics::{
            global_stats_json, session_stats_json, GlobalMetrics, GlobalSnapshot, SessionMetrics,
        };
        use std::sync::atomic::Ordering;

        // Build a stats response exactly the way the server does, render it
        // to one wire line, parse that line back, and check every new
        // field survives the round trip with its value intact.
        let global = GlobalMetrics::default();
        global.requests.store(42, Ordering::Relaxed);
        global.connections.store(1200, Ordering::Relaxed);
        global.connections_open.store(1024, Ordering::Relaxed);
        global.reactor_wakeups.store(77, Ordering::Relaxed);
        let snap = GlobalSnapshot {
            backend_id: "b0".into(),
            queue_len: 3,
            draining: false,
            sessions: 2,
            registry_shards: 4,
            registry_shard_hits: vec![5, 0, 9, 1],
            cache_total: lca_probe::CacheStats {
                hits: 30,
                misses: 10,
                entries: 10,
            },
        };
        let session = SessionMetrics::default();
        session.record(10, 4, 250, 99);
        let response = Response::Stats(Json::Obj(vec![
            ("stats".into(), global_stats_json(&global, &snap)),
            (
                "sessions".into(),
                Json::Obj(vec![(
                    "s".into(),
                    session_stats_json(
                        &session,
                        snap.cache_total,
                        lca_probe::ProbeCounts::default(),
                        1.0,
                    ),
                )]),
            ),
        ]));
        let line = response.render();
        let parsed = serde_json::from_str(&line).expect("stats line parses");
        let g = parsed.get("stats").expect("global object");
        // The fleet-tagging fields: protocol version, operator-assigned
        // backend identity, and millisecond-precision uptime.
        assert_eq!(
            g.get("version").and_then(Json::as_u64),
            Some(PROTOCOL_VERSION)
        );
        assert_eq!(g.get("backend_id").and_then(Json::as_str), Some("b0"));
        assert!(
            g.get("uptime_ms").and_then(Json::as_u64).is_some(),
            "uptime_ms present and integral"
        );
        assert_eq!(g.get("requests").and_then(Json::as_u64), Some(42));
        assert_eq!(g.get("connections").and_then(Json::as_u64), Some(1200));
        assert_eq!(g.get("connections_open").and_then(Json::as_u64), Some(1024));
        assert_eq!(g.get("reactor_wakeups").and_then(Json::as_u64), Some(77));
        assert_eq!(g.get("queue_len").and_then(Json::as_u64), Some(3));
        assert_eq!(g.get("sessions").and_then(Json::as_u64), Some(2));
        assert_eq!(g.get("registry_shards").and_then(Json::as_u64), Some(4));
        let hits = g
            .get("registry_shard_hits")
            .and_then(Json::as_array)
            .expect("shard hit array");
        let hits: Vec<u64> = hits.iter().map(|h| h.as_u64().unwrap()).collect();
        assert_eq!(hits, vec![5, 0, 9, 1]);
        assert_eq!(g.get("cache_hits_total").and_then(Json::as_u64), Some(30));
        assert_eq!(g.get("cache_misses_total").and_then(Json::as_u64), Some(10));
        assert_eq!(
            g.get("cache_hit_rate_total").and_then(Json::as_f64),
            Some(0.75)
        );
        assert_eq!(g.get("draining").and_then(Json::as_bool), Some(false));
        let s = parsed.get("sessions").and_then(|s| s.get("s")).expect("s");
        assert_eq!(s.get("queries").and_then(Json::as_u64), Some(10));
        assert_eq!(s.get("cache_hits").and_then(Json::as_u64), Some(30));
    }

    #[test]
    fn empty_global_snapshot_renders_zero_rollups() {
        use crate::metrics::{global_stats_json, GlobalMetrics, GlobalSnapshot};
        let json = global_stats_json(
            &GlobalMetrics::default(),
            &GlobalSnapshot {
                backend_id: String::new(),
                queue_len: 0,
                draining: true,
                sessions: 0,
                registry_shards: 16,
                registry_shard_hits: vec![0; 16],
                cache_total: lca_probe::CacheStats {
                    hits: 0,
                    misses: 0,
                    entries: 0,
                },
            },
        );
        let mut line = String::new();
        json.render(&mut line);
        let parsed = serde_json::from_str(&line).expect("parses");
        // No traffic: the hit rate must render 0, not NaN/null.
        assert_eq!(
            parsed.get("cache_hit_rate_total").and_then(Json::as_f64),
            Some(0.0)
        );
        assert_eq!(parsed.get("draining").and_then(Json::as_bool), Some(true));
        assert_eq!(
            parsed.get("connections_open").and_then(Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn responses_render_the_documented_shapes() {
        let r = Response::Answer {
            id: Some(3),
            session: "s".into(),
            answer: true,
            probes: 12,
            micros: 87,
        };
        assert_eq!(
            r.render(),
            r#"{"id":3,"session":"s","answer":true,"probes":12,"micros":87}"#
        );
        let r = Response::overloaded(None);
        assert!(r.render().starts_with(r#"{"error":"overloaded""#));
        let r = Response::Ok { draining: true };
        assert_eq!(r.render(), r#"{"ok":true,"draining":true}"#);
        let r = Response::Answers {
            id: None,
            session: "s".into(),
            answers: vec![true, false],
            probes: 4,
            micros: 9,
        };
        assert_eq!(
            r.render(),
            r#"{"session":"s","answers":[true,false],"probes":4,"micros":9}"#
        );
    }
}
