//! The newline-JSON wire protocol.
//!
//! One request per line, one response line per request — the full field
//! reference with `nc` examples lives in `docs/PROTOCOL.md`. This module
//! owns parsing ([`Request::parse`]) and rendering ([`Response`]); it knows
//! nothing about sockets or sessions.

#![warn(clippy::unwrap_used)]
use lca::prelude::{AlgorithmKind, ImplicitFamily};
use serde::Json;

use crate::budget::BudgetPolicy;

/// Version of this wire protocol, reported in every `stats` response so a
/// fleet front end can tag (and age out) backends speaking an older
/// schema. Bump when a field changes meaning or disappears — additive
/// fields do not require a bump.
pub const PROTOCOL_VERSION: u64 = 1;

/// Largest accepted binary frame payload, matching the newline framer's
/// line cap: anything bigger is a corrupt or hostile length prefix, not a
/// plausible response.
pub const MAX_FRAME: usize = 16 << 20;

/// How responses are framed on a connection.
///
/// Every connection starts in [`FrameFormat::Json`]; a client may switch
/// the *response* direction to length-prefixed binary frames with a
/// `{"op": "hello", "frame": "binary"}` request. Requests stay
/// newline-JSON in both modes — only the server→client leg changes, which
/// is where the rendering and parsing cost concentrates on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrameFormat {
    /// One compact JSON object per `\n`-terminated line (the default).
    #[default]
    Json,
    /// u32-LE payload length followed by a tag-based compact payload (see
    /// the frame layout section in `docs/PROTOCOL.md`).
    Binary,
}

impl FrameFormat {
    /// The wire spelling (`"json"` / `"binary"`).
    pub fn as_str(self) -> &'static str {
        match self {
            FrameFormat::Json => "json",
            FrameFormat::Binary => "binary",
        }
    }

    /// Parses a wire spelling.
    pub fn parse(s: &str) -> Option<FrameFormat> {
        match s {
            "json" => Some(FrameFormat::Json),
            "binary" => Some(FrameFormat::Binary),
            _ => None,
        }
    }
}

/// The hello line a client sends to negotiate response framing.
pub fn hello_line(frame: FrameFormat) -> String {
    format!("{{\"op\":\"hello\",\"frame\":\"{}\"}}", frame.as_str())
}

/// A parsed session specification: the four scalars (plus one optional
/// knob) that pin a served instance.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Which algorithm answers the session's queries.
    pub kind: AlgorithmKind,
    /// Which implicit input family backs the session.
    pub family: ImplicitFamily,
    /// Requested vertex count (lattice families round it; see
    /// [`ImplicitFamily::build_with`]).
    pub n: usize,
    /// The session seed; input and algorithm seeds are derived from it (see
    /// [`crate::input_seed`] / [`crate::algo_seed`]).
    pub seed: u64,
    /// Family shape knob (expected degree for `gnp`, degree for `regular`,
    /// average degree for `chung-lu`).
    pub knob: Option<f64>,
}

/// One query payload: a vertex id or a normalized edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryPayload {
    /// A vertex-subset query (`"query": 42`).
    Vertex(u64),
    /// An edge-subgraph query (`"query": [3, 17]`).
    Edge(u64, u64),
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Answer one query (or a batch) within a session.
    Query {
        /// Client-chosen session name.
        session: String,
        /// Instance spec; required the first time a session name is used,
        /// validated against the pinned instance afterwards when present.
        spec: Option<SessionSpec>,
        /// The queries to answer (singular `query` parses to a 1-batch).
        queries: Vec<QueryPayload>,
        /// Echoed verbatim in the response, for request/response matching
        /// over pipelined connections.
        id: Option<u64>,
        /// Per-query probe budget: a query that would exceed it fails the
        /// request with [`ErrorCode::BudgetExhausted`] instead of running
        /// long.
        max_probes: Option<u64>,
        /// Wall-clock allowance for the whole request, in milliseconds;
        /// overruns fail with [`ErrorCode::DeadlineExceeded`].
        deadline_ms: Option<u64>,
        /// Adaptive-budget policy for the session (`"off"`/`"none"`,
        /// `"adaptive"`, or a `"pNN"` percentile like `"p95"`); latest
        /// request wins. Explicit `max_probes` always overrides the fitted
        /// budget. Absent means "leave the session's policy alone".
        budget_policy: Option<BudgetPolicy>,
    },
    /// Report global and per-session metrics.
    Stats,
    /// Report every resident session's pinned spec (`kind`, `family`, `n`,
    /// `seed`, `knob`) — the spec-introspection half of fleet replication:
    /// any process can rebuild every session from this one response.
    Sessions,
    /// Liveness check.
    Ping,
    /// Begin a graceful drain: stop accepting, finish queued work, exit.
    Shutdown,
    /// Negotiate the connection's response framing. The acknowledgement is
    /// sent in the *current* framing; every response after it uses the
    /// requested one.
    Hello {
        /// The framing the client wants for responses.
        frame: FrameFormat,
    },
}

/// Machine-readable error classes of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed JSON or missing/ill-typed fields.
    BadRequest,
    /// `kind`/`family` did not parse, or the spec is unusable.
    UnknownSpec,
    /// Session name used before being specified.
    UnknownSession,
    /// Spec fields contradict the session's pinned instance.
    SessionMismatch,
    /// Query out of the instance's vertex range, or wrong shape.
    BadQuery,
    /// Admission queue full — retry later.
    Overloaded,
    /// The server is draining and no longer accepts queries.
    Draining,
    /// The query panicked inside the worker — a server bug, not a client
    /// one; the session stays usable.
    Internal,
    /// A query exceeded the request's `max_probes` budget. A clean partial
    /// failure: the session stays consistent and the same query succeeds
    /// under a larger budget.
    BudgetExhausted,
    /// The request ran past its `deadline_ms` allowance.
    DeadlineExceeded,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownSpec => "unknown-spec",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::SessionMismatch => "session-mismatch",
            ErrorCode::BadQuery => "bad-query",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Draining => "draining",
            ErrorCode::Internal => "internal",
            ErrorCode::BudgetExhausted => "budget-exhausted",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
        }
    }

    /// The binary-frame spelling of the code (one byte, nonzero).
    pub fn to_u8(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 1,
            ErrorCode::UnknownSpec => 2,
            ErrorCode::UnknownSession => 3,
            ErrorCode::SessionMismatch => 4,
            ErrorCode::BadQuery => 5,
            ErrorCode::Overloaded => 6,
            ErrorCode::Draining => 7,
            ErrorCode::Internal => 8,
            ErrorCode::BudgetExhausted => 9,
            ErrorCode::DeadlineExceeded => 10,
        }
    }

    /// Inverse of [`ErrorCode::to_u8`].
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::BadRequest,
            2 => ErrorCode::UnknownSpec,
            3 => ErrorCode::UnknownSession,
            4 => ErrorCode::SessionMismatch,
            5 => ErrorCode::BadQuery,
            6 => ErrorCode::Overloaded,
            7 => ErrorCode::Draining,
            8 => ErrorCode::Internal,
            9 => ErrorCode::BudgetExhausted,
            10 => ErrorCode::DeadlineExceeded,
            _ => return None,
        })
    }
}

/// A response line, ready to render.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A successful answer to a 1-query request.
    Answer {
        /// Echo of the request `id`, if one was sent.
        id: Option<u64>,
        /// The session that answered.
        session: String,
        /// The LCA's answer.
        answer: bool,
        /// Oracle probes spent on this request (approximate when the same
        /// session is being queried concurrently).
        probes: u64,
        /// Wall-clock service time in microseconds (queue wait excluded).
        micros: u64,
    },
    /// A successful answer to a batch request.
    Answers {
        /// Echo of the request `id`, if one was sent.
        id: Option<u64>,
        /// The session that answered.
        session: String,
        /// Per-query answers, in request order.
        answers: Vec<bool>,
        /// Oracle probes spent on this request.
        probes: u64,
        /// Wall-clock service time in microseconds.
        micros: u64,
    },
    /// Any failure, including backpressure.
    Error {
        /// Echo of the request `id`, if one was parsed.
        id: Option<u64>,
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Reply to `ping` and `shutdown`.
    Ok {
        /// `true` iff this reply acknowledges a shutdown (drain started).
        draining: bool,
    },
    /// Reply to `stats`: a pre-rendered JSON object (built by the metrics
    /// module, which owns the schema).
    Stats(Json),
    /// Acknowledgement of a `hello`, echoing the framing that every
    /// *subsequent* response will use.
    Hello {
        /// The negotiated response framing.
        frame: FrameFormat,
    },
}

impl Response {
    /// Renders the response as one compact JSON line (no trailing newline).
    pub fn render(&self) -> String {
        let json = match self {
            Response::Answer {
                id,
                session,
                answer,
                probes,
                micros,
            } => {
                let mut fields = Vec::new();
                if let Some(id) = id {
                    fields.push(("id".to_owned(), Json::Num(*id as f64)));
                }
                fields.push(("session".to_owned(), Json::Str(session.clone())));
                fields.push(("answer".to_owned(), Json::Bool(*answer)));
                fields.push(("probes".to_owned(), Json::Num(*probes as f64)));
                fields.push(("micros".to_owned(), Json::Num(*micros as f64)));
                Json::Obj(fields)
            }
            Response::Answers {
                id,
                session,
                answers,
                probes,
                micros,
            } => {
                let mut fields = Vec::new();
                if let Some(id) = id {
                    fields.push(("id".to_owned(), Json::Num(*id as f64)));
                }
                fields.push(("session".to_owned(), Json::Str(session.clone())));
                fields.push((
                    "answers".to_owned(),
                    Json::Arr(answers.iter().map(|a| Json::Bool(*a)).collect()),
                ));
                fields.push(("probes".to_owned(), Json::Num(*probes as f64)));
                fields.push(("micros".to_owned(), Json::Num(*micros as f64)));
                Json::Obj(fields)
            }
            Response::Error { id, code, message } => {
                let mut fields = Vec::new();
                if let Some(id) = id {
                    fields.push(("id".to_owned(), Json::Num(*id as f64)));
                }
                fields.push(("error".to_owned(), Json::Str(code.as_str().to_owned())));
                fields.push(("message".to_owned(), Json::Str(message.clone())));
                Json::Obj(fields)
            }
            Response::Ok { draining } => Json::Obj(vec![
                ("ok".to_owned(), Json::Bool(true)),
                ("draining".to_owned(), Json::Bool(*draining)),
            ]),
            Response::Stats(json) => json.clone(),
            Response::Hello { frame } => Json::Obj(vec![
                ("ok".to_owned(), Json::Bool(true)),
                ("frame".to_owned(), Json::Str(frame.as_str().to_owned())),
            ]),
        };
        let mut out = String::new();
        json.render(&mut out);
        out
    }

    /// Shorthand for an [`ErrorCode::Overloaded`] response.
    pub fn overloaded(id: Option<u64>) -> Response {
        Response::Error {
            id,
            code: ErrorCode::Overloaded,
            message: "admission queue full, retry later".to_owned(),
        }
    }
}

// ---------------------------------------------------------------------------
// Binary frames.
//
// Layout: a u32-LE payload length (1..=MAX_FRAME), then the payload. The
// payload's first byte is a tag selecting the response variant; integers
// are little-endian, strings are a u32-LE byte length plus UTF-8 bytes,
// and batch answers pack into an LSB-first bitset. Stats responses carry
// their rendered JSON verbatim — they are off the hot path and their
// schema belongs to the metrics module, not the framer.

const TAG_ANSWER: u8 = 1;
const TAG_ANSWERS: u8 = 2;
const TAG_ERROR: u8 = 3;
const TAG_OK: u8 = 4;
const TAG_STATS: u8 = 5;
const TAG_HELLO: u8 = 6;

const FLAG_HAS_ID: u8 = 1;
const FLAG_ANSWER: u8 = 2;

/// Why a binary frame failed to decode. Every variant is a protocol
/// violation: the connection carrying it cannot be resynchronized and must
/// be dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix was zero or exceeded [`MAX_FRAME`].
    BadLength {
        /// The offending prefix value.
        len: u32,
    },
    /// The payload's leading tag byte named no response variant.
    BadTag(u8),
    /// An error payload carried an unknown [`ErrorCode`] byte.
    BadCode(u8),
    /// The payload ended before the field named here was complete.
    Truncated(&'static str),
    /// The payload decoded cleanly but bytes were left over.
    TrailingBytes {
        /// How many bytes followed the decoded value.
        extra: usize,
    },
    /// A string field was not UTF-8, or an embedded stats object was not
    /// valid JSON.
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadLength { len } => {
                write!(f, "bad frame length {len} (must be 1..={MAX_FRAME})")
            }
            FrameError::BadTag(tag) => write!(f, "unknown frame tag {tag}"),
            FrameError::BadCode(code) => write!(f, "unknown error code byte {code}"),
            FrameError::Truncated(what) => write!(f, "frame payload truncated in {what}"),
            FrameError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after frame payload")
            }
            FrameError::Malformed(what) => write!(f, "malformed frame field: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked little-endian reader over one frame payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(FrameError::Truncated(what))?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(FrameError::Truncated(what))?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, FrameError> {
        Ok(self.take(1, what)?.first().copied().unwrap_or(0))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, FrameError> {
        let bytes = self.take(4, what)?;
        let arr = bytes.try_into().map_err(|_| FrameError::Truncated(what))?;
        Ok(u32::from_le_bytes(arr))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, FrameError> {
        let bytes = self.take(8, what)?;
        let arr = bytes.try_into().map_err(|_| FrameError::Truncated(what))?;
        Ok(u64::from_le_bytes(arr))
    }

    fn str(&mut self, what: &'static str) -> Result<String, FrameError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::Malformed(what))
    }

    fn opt_id(&mut self, flags: u8) -> Result<Option<u64>, FrameError> {
        if flags & FLAG_HAS_ID != 0 {
            Ok(Some(self.u64("id")?))
        } else {
            Ok(None)
        }
    }
}

impl Response {
    /// Encodes the response as one complete binary frame, length prefix
    /// included.
    pub fn encode_frame(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(64);
        match self {
            Response::Answer {
                id,
                session,
                answer,
                probes,
                micros,
            } => {
                p.push(TAG_ANSWER);
                let mut flags = if *answer { FLAG_ANSWER } else { 0 };
                if id.is_some() {
                    flags |= FLAG_HAS_ID;
                }
                p.push(flags);
                if let Some(id) = id {
                    p.extend_from_slice(&id.to_le_bytes());
                }
                put_str(&mut p, session);
                p.extend_from_slice(&probes.to_le_bytes());
                p.extend_from_slice(&micros.to_le_bytes());
            }
            Response::Answers {
                id,
                session,
                answers,
                probes,
                micros,
            } => {
                p.push(TAG_ANSWERS);
                p.push(if id.is_some() { FLAG_HAS_ID } else { 0 });
                if let Some(id) = id {
                    p.extend_from_slice(&id.to_le_bytes());
                }
                put_str(&mut p, session);
                p.extend_from_slice(&(answers.len() as u32).to_le_bytes());
                let mut bits = vec![0u8; answers.len().div_ceil(8)];
                for (i, &a) in answers.iter().enumerate() {
                    if a {
                        if let Some(byte) = bits.get_mut(i / 8) {
                            *byte |= 1 << (i % 8);
                        }
                    }
                }
                p.extend_from_slice(&bits);
                p.extend_from_slice(&probes.to_le_bytes());
                p.extend_from_slice(&micros.to_le_bytes());
            }
            Response::Error { id, code, message } => {
                p.push(TAG_ERROR);
                p.push(if id.is_some() { FLAG_HAS_ID } else { 0 });
                if let Some(id) = id {
                    p.extend_from_slice(&id.to_le_bytes());
                }
                p.push(code.to_u8());
                put_str(&mut p, message);
            }
            Response::Ok { draining } => {
                p.push(TAG_OK);
                p.push(u8::from(*draining));
            }
            Response::Stats(json) => {
                p.push(TAG_STATS);
                let mut rendered = String::new();
                json.render(&mut rendered);
                p.extend_from_slice(rendered.as_bytes());
            }
            Response::Hello { frame } => {
                p.push(TAG_HELLO);
                p.push(match frame {
                    FrameFormat::Json => 0,
                    FrameFormat::Binary => 1,
                });
            }
        }
        let mut frame = Vec::with_capacity(p.len() + 4);
        frame.extend_from_slice(&(p.len() as u32).to_le_bytes());
        frame.extend_from_slice(&p);
        frame
    }

    /// Decodes one frame payload (the bytes *after* the length prefix).
    /// Strict: every byte must be consumed.
    pub fn decode_payload(payload: &[u8]) -> Result<Response, FrameError> {
        let mut c = Cursor {
            bytes: payload,
            pos: 0,
        };
        let tag = c.u8("tag")?;
        let response = match tag {
            TAG_ANSWER => {
                let flags = c.u8("flags")?;
                let id = c.opt_id(flags)?;
                let session = c.str("session")?;
                let probes = c.u64("probes")?;
                let micros = c.u64("micros")?;
                Response::Answer {
                    id,
                    session,
                    answer: flags & FLAG_ANSWER != 0,
                    probes,
                    micros,
                }
            }
            TAG_ANSWERS => {
                let flags = c.u8("flags")?;
                let id = c.opt_id(flags)?;
                let session = c.str("session")?;
                let count = c.u32("answer count")? as usize;
                let bits = c.take(count.div_ceil(8), "answer bitset")?;
                let answers = (0..count)
                    .map(|i| bits.get(i / 8).is_some_and(|b| b >> (i % 8) & 1 != 0))
                    .collect();
                let probes = c.u64("probes")?;
                let micros = c.u64("micros")?;
                Response::Answers {
                    id,
                    session,
                    answers,
                    probes,
                    micros,
                }
            }
            TAG_ERROR => {
                let flags = c.u8("flags")?;
                let id = c.opt_id(flags)?;
                let byte = c.u8("error code")?;
                let code = ErrorCode::from_u8(byte).ok_or(FrameError::BadCode(byte))?;
                let message = c.str("message")?;
                Response::Error { id, code, message }
            }
            TAG_OK => Response::Ok {
                draining: c.u8("draining")? != 0,
            },
            TAG_STATS => {
                let rest = c.take(payload.len() - c.pos, "stats body")?;
                let text = std::str::from_utf8(rest)
                    .map_err(|_| FrameError::Malformed("stats body utf-8"))?;
                let json = serde_json::from_str(text)
                    .map_err(|_| FrameError::Malformed("stats body json"))?;
                Response::Stats(json)
            }
            TAG_HELLO => Response::Hello {
                frame: match c.u8("frame format")? {
                    0 => FrameFormat::Json,
                    1 => FrameFormat::Binary,
                    _ => return Err(FrameError::Malformed("frame format byte")),
                },
            },
            other => return Err(FrameError::BadTag(other)),
        };
        if c.pos != payload.len() {
            return Err(FrameError::TrailingBytes {
                extra: payload.len() - c.pos,
            });
        }
        Ok(response)
    }
}

/// An incremental binary-frame reassembler: feed it arbitrary byte chunks
/// (partial frames, many frames at once — whatever the socket produced)
/// and pull complete responses out.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends raw bytes from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered while waiting for a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete response, `Ok(None)` when more bytes are
    /// needed. After any `Err` the stream is unrecoverable — drop the
    /// connection.
    pub fn next_frame(&mut self) -> Result<Option<Response>, FrameError> {
        let Some(&prefix) = self.buf.first_chunk::<4>() else {
            return Ok(None);
        };
        let len = u32::from_le_bytes(prefix);
        if len == 0 || len as usize > MAX_FRAME {
            return Err(FrameError::BadLength { len });
        }
        let total = 4 + len as usize;
        let Some(payload) = self.buf.get(4..total) else {
            return Ok(None);
        };
        let response = Response::decode_payload(payload)?;
        self.buf.drain(..total);
        Ok(Some(response))
    }
}

/// Reads one binary frame off a blocking reader. `Ok(None)` means clean
/// EOF at a frame boundary; EOF inside a frame and every [`FrameError`]
/// surface as `io::Error`.
pub fn read_binary_frame(r: &mut impl std::io::Read) -> std::io::Result<Option<Response>> {
    use std::io::{Error, ErrorKind};
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        let Some(rest) = prefix.get_mut(got..) else {
            break;
        };
        match r.read(rest) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(Error::new(
                    ErrorKind::UnexpectedEof,
                    "eof inside frame length prefix",
                ))
            }
            Ok(k) => got += k,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len == 0 || len as usize > MAX_FRAME {
        return Err(Error::new(
            ErrorKind::InvalidData,
            FrameError::BadLength { len }.to_string(),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Response::decode_payload(&payload)
        .map(Some)
        .map_err(|e| Error::new(ErrorKind::InvalidData, e.to_string()))
}

/// A parse failure: the error response to send plus nothing else — parsing
/// never has side effects.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Request id, when one could be extracted before the failure.
    pub id: Option<u64>,
    /// Error class.
    pub code: ErrorCode,
    /// Detail message.
    pub message: String,
}

impl ParseError {
    fn new(id: Option<u64>, code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            id,
            code,
            message: message.into(),
        }
    }

    /// The response line for this failure.
    pub fn response(&self) -> Response {
        Response::Error {
            id: self.id,
            code: self.code,
            message: self.message.clone(),
        }
    }
}

impl Request {
    /// Parses one request line.
    ///
    /// The `op` field selects the request type and defaults to `"query"`.
    /// A query request needs `session` plus either `query` (one vertex id
    /// or `[u, v]` edge) or `queries` (an array of those); `kind`, `n` and
    /// optionally `family`/`seed`/`knob` describe the instance and are
    /// required the first time a session name is used.
    pub fn parse(line: &str) -> Result<Request, ParseError> {
        let v = serde_json::from_str(line)
            .map_err(|e| ParseError::new(None, ErrorCode::BadRequest, e.to_string()))?;
        let id = v.get("id").and_then(Json::as_u64);
        let op = v.get("op").and_then(Json::as_str).unwrap_or("query");
        match op {
            "stats" => Ok(Request::Stats),
            "sessions" => Ok(Request::Sessions),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            "hello" => {
                let name = v.get("frame").and_then(Json::as_str).ok_or_else(|| {
                    ParseError::new(id, ErrorCode::BadRequest, "missing string field `frame`")
                })?;
                let frame = FrameFormat::parse(name).ok_or_else(|| {
                    ParseError::new(
                        id,
                        ErrorCode::BadRequest,
                        format!("unknown frame {name:?} (use \"json\" or \"binary\")"),
                    )
                })?;
                Ok(Request::Hello { frame })
            }
            "query" => Self::parse_query(&v, id),
            other => Err(ParseError::new(
                id,
                ErrorCode::BadRequest,
                format!("unknown op {other:?}"),
            )),
        }
    }

    fn parse_query(v: &Json, id: Option<u64>) -> Result<Request, ParseError> {
        let session = v
            .get("session")
            .and_then(Json::as_str)
            .ok_or_else(|| {
                ParseError::new(id, ErrorCode::BadRequest, "missing string field `session`")
            })?
            .to_owned();

        let spec = Self::parse_spec(v, id)?;

        let mut queries = Vec::new();
        match (v.get("query"), v.get("queries")) {
            (Some(q), None) => queries.push(Self::parse_payload(q, id)?),
            (None, Some(qs)) => {
                let items = qs.as_array().ok_or_else(|| {
                    ParseError::new(id, ErrorCode::BadRequest, "`queries` must be an array")
                })?;
                if items.is_empty() {
                    return Err(ParseError::new(
                        id,
                        ErrorCode::BadRequest,
                        "`queries` must not be empty",
                    ));
                }
                for q in items {
                    queries.push(Self::parse_payload(q, id)?);
                }
            }
            (Some(_), Some(_)) => {
                return Err(ParseError::new(
                    id,
                    ErrorCode::BadRequest,
                    "send `query` or `queries`, not both",
                ))
            }
            (None, None) => {
                return Err(ParseError::new(
                    id,
                    ErrorCode::BadRequest,
                    "missing `query` (vertex id or [u, v]) or `queries`",
                ))
            }
        }
        let max_probes = v.get("max_probes").and_then(Json::as_u64);
        let deadline_ms = v.get("deadline_ms").and_then(Json::as_u64);
        let budget_policy = match v.get("budget_policy") {
            None => None,
            Some(policy) => {
                let s = policy.as_str().ok_or_else(|| {
                    ParseError::new(
                        id,
                        ErrorCode::BadRequest,
                        "`budget_policy` must be a string",
                    )
                })?;
                Some(BudgetPolicy::parse(s).ok_or_else(|| {
                    ParseError::new(
                        id,
                        ErrorCode::BadRequest,
                        format!("unknown budget_policy {s:?} (use off, adaptive, or pNN like p95)"),
                    )
                })?)
            }
        };
        Ok(Request::Query {
            session,
            spec,
            queries,
            id,
            max_probes,
            deadline_ms,
            budget_policy,
        })
    }

    /// Parses the spec fields if any are present; `kind` + `n` make a spec,
    /// anything partial (including a stray `family`/`seed`/`knob` without
    /// them) is an error — a typo would otherwise silently fall back to the
    /// pinned instance.
    fn parse_spec(v: &Json, id: Option<u64>) -> Result<Option<SessionSpec>, ParseError> {
        let kind = v.get("kind").and_then(Json::as_str);
        let n = v.get("n").and_then(Json::as_u64);
        let (kind, n) = match (kind, n) {
            (Some(kind), Some(n)) => (kind, n),
            (None, None) => {
                if let Some(stray) = ["family", "seed", "knob"]
                    .iter()
                    .find(|k| v.get(k).is_some())
                {
                    return Err(ParseError::new(
                        id,
                        ErrorCode::BadRequest,
                        format!("`{stray}` without `kind` and `n` — send the full spec or none"),
                    ));
                }
                return Ok(None);
            }
            _ => {
                return Err(ParseError::new(
                    id,
                    ErrorCode::BadRequest,
                    "a session spec needs both `kind` and `n`",
                ))
            }
        };
        let kind = AlgorithmKind::parse(kind).ok_or_else(|| {
            ParseError::new(id, ErrorCode::UnknownSpec, format!("unknown kind {kind:?}"))
        })?;
        let family = match v.get("family").and_then(Json::as_str) {
            None => ImplicitFamily::Gnp,
            Some(name) => ImplicitFamily::parse(name).ok_or_else(|| {
                ParseError::new(
                    id,
                    ErrorCode::UnknownSpec,
                    format!("unknown family {name:?}"),
                )
            })?,
        };
        let seed = v.get("seed").and_then(Json::as_u64).unwrap_or(0);
        let knob = v.get("knob").and_then(Json::as_f64);
        Ok(Some(SessionSpec {
            kind,
            family,
            n: n as usize,
            seed,
            knob,
        }))
    }

    fn parse_payload(q: &Json, id: Option<u64>) -> Result<QueryPayload, ParseError> {
        if let Some(v) = q.as_u64() {
            return Ok(QueryPayload::Vertex(v));
        }
        if let Some([a, b]) = q.as_array() {
            if let (Some(u), Some(w)) = (a.as_u64(), b.as_u64()) {
                return Ok(QueryPayload::Edge(u, w));
            }
        }
        Err(ParseError::new(
            id,
            ErrorCode::BadRequest,
            "`query` must be a vertex id or a two-element [u, v] array",
        ))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap IS the assertion
mod tests {
    use super::*;
    use lca::prelude::{ClassicKind, SpannerKind};

    #[test]
    fn parses_the_issue_example_shape() {
        let req = Request::parse(
            r#"{"session": "s", "kind": "mis", "n": 1000000, "seed": 7, "query": 42}"#,
        )
        .unwrap();
        let Request::Query {
            session,
            spec,
            queries,
            id,
            max_probes,
            deadline_ms,
            budget_policy,
        } = req
        else {
            panic!("not a query")
        };
        assert_eq!(session, "s");
        assert_eq!(max_probes, None);
        assert_eq!(deadline_ms, None);
        assert_eq!(budget_policy, None);
        assert_eq!(id, None);
        let spec = spec.unwrap();
        assert_eq!(spec.kind, AlgorithmKind::Classic(ClassicKind::Mis));
        assert_eq!(spec.family, ImplicitFamily::Gnp);
        assert_eq!(spec.n, 1_000_000);
        assert_eq!(spec.seed, 7);
        assert_eq!(queries, vec![QueryPayload::Vertex(42)]);
    }

    #[test]
    fn parses_edge_queries_batches_and_ids() {
        let req = Request::parse(
            r#"{"id": 9, "session": "sp", "kind": "spanner3", "family": "regular",
                "n": 4096, "knob": 6, "queries": [[1, 2], [3, 4]]}"#,
        )
        .unwrap();
        let Request::Query {
            spec, queries, id, ..
        } = req
        else {
            panic!("not a query")
        };
        assert_eq!(id, Some(9));
        let spec = spec.unwrap();
        assert_eq!(spec.kind, AlgorithmKind::Spanner(SpannerKind::Three));
        assert_eq!(spec.family, ImplicitFamily::Regular);
        assert_eq!(spec.knob, Some(6.0));
        assert_eq!(
            queries,
            vec![QueryPayload::Edge(1, 2), QueryPayload::Edge(3, 4)]
        );
    }

    #[test]
    fn budget_fields_parse_and_codes_render() {
        let req = Request::parse(
            r#"{"session": "s", "kind": "mis", "n": 100, "max_probes": 64,
                "deadline_ms": 250, "query": 1}"#,
        )
        .unwrap();
        let Request::Query {
            max_probes,
            deadline_ms,
            ..
        } = req
        else {
            panic!("not a query")
        };
        assert_eq!(max_probes, Some(64));
        assert_eq!(deadline_ms, Some(250));
        assert_eq!(ErrorCode::BudgetExhausted.as_str(), "budget-exhausted");
        assert_eq!(ErrorCode::DeadlineExceeded.as_str(), "deadline-exceeded");
    }

    #[test]
    fn budget_policy_parses_and_rejects_junk() {
        for (policy, expect) in [
            ("off", BudgetPolicy::Off),
            ("none", BudgetPolicy::Off),
            ("adaptive", BudgetPolicy::Adaptive(None)),
            ("p95", BudgetPolicy::Adaptive(Some(95.0))),
            ("p99.9", BudgetPolicy::Adaptive(Some(99.9))),
        ] {
            let line = format!(
                r#"{{"session": "s", "kind": "mis", "n": 100, "budget_policy": "{policy}", "query": 1}}"#
            );
            let Request::Query { budget_policy, .. } = Request::parse(&line).unwrap() else {
                panic!("not a query")
            };
            assert_eq!(budget_policy, Some(expect), "{policy}");
        }
        for line in [
            r#"{"session": "s", "kind": "mis", "n": 100, "budget_policy": "p0", "query": 1}"#,
            r#"{"session": "s", "kind": "mis", "n": 100, "budget_policy": "banana", "query": 1}"#,
            r#"{"session": "s", "kind": "mis", "n": 100, "budget_policy": 99, "query": 1}"#,
        ] {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{line}");
            assert!(err.message.contains("budget_policy"), "{line}");
        }
    }

    #[test]
    fn spec_is_optional_after_first_use() {
        let req = Request::parse(r#"{"session": "s", "query": 1}"#).unwrap();
        let Request::Query { spec, .. } = req else {
            panic!("not a query")
        };
        assert_eq!(spec, None);
    }

    #[test]
    fn stray_spec_fields_without_kind_and_n_are_rejected() {
        // A typo'd spec must not silently fall back to the pinned instance.
        for line in [
            r#"{"session": "s", "seed": 9, "query": 1}"#,
            r#"{"session": "s", "family": "gnp", "query": 1}"#,
            r#"{"session": "s", "knob": 3.5, "query": 1}"#,
        ] {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{line}");
        }
    }

    #[test]
    fn ops_parse() {
        assert_eq!(
            Request::parse(r#"{"op": "stats"}"#).unwrap(),
            Request::Stats
        );
        assert_eq!(
            Request::parse(r#"{"op": "sessions"}"#).unwrap(),
            Request::Sessions
        );
        assert_eq!(Request::parse(r#"{"op": "ping"}"#).unwrap(), Request::Ping);
        assert_eq!(
            Request::parse(r#"{"op": "shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn malformed_requests_carry_codes_and_ids() {
        let cases = [
            ("not json", ErrorCode::BadRequest),
            (r#"{"op": "frobnicate"}"#, ErrorCode::BadRequest),
            (
                r#"{"session": "s", "kind": "mis", "query": 1}"#,
                ErrorCode::BadRequest,
            ),
            (
                r#"{"session": "s", "kind": "nope", "n": 10, "query": 1}"#,
                ErrorCode::UnknownSpec,
            ),
            (
                r#"{"session": "s", "kind": "mis", "n": 10, "family": "petersen", "query": 1}"#,
                ErrorCode::UnknownSpec,
            ),
            (
                r#"{"session": "s", "kind": "mis", "n": 10}"#,
                ErrorCode::BadRequest,
            ),
            (
                r#"{"session": "s", "kind": "mis", "n": 10, "query": [1, 2, 3]}"#,
                ErrorCode::BadRequest,
            ),
            (
                r#"{"session": "s", "kind": "mis", "n": 10, "queries": []}"#,
                ErrorCode::BadRequest,
            ),
        ];
        for (line, code) in cases {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.code, code, "{line}");
        }
        let err = Request::parse(r#"{"id": 5, "op": "frobnicate"}"#).unwrap_err();
        assert_eq!(err.id, Some(5));
        assert!(err.response().render().contains("\"id\":5"));
    }

    #[test]
    fn hello_parses_and_acks_render() {
        assert_eq!(
            Request::parse(r#"{"op": "hello", "frame": "binary"}"#).unwrap(),
            Request::Hello {
                frame: FrameFormat::Binary
            }
        );
        assert_eq!(
            Request::parse(r#"{"op": "hello", "frame": "json"}"#).unwrap(),
            Request::Hello {
                frame: FrameFormat::Json
            }
        );
        for line in [
            r#"{"op": "hello"}"#,
            r#"{"op": "hello", "frame": "msgpack"}"#,
            r#"{"op": "hello", "frame": 3}"#,
        ] {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{line}");
        }
        assert_eq!(
            Response::Hello {
                frame: FrameFormat::Binary
            }
            .render(),
            r#"{"ok":true,"frame":"binary"}"#
        );
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Answer {
                id: Some(7),
                session: "s".into(),
                answer: true,
                probes: 12,
                micros: 87,
            },
            Response::Answer {
                id: None,
                session: "αβγ".into(),
                answer: false,
                probes: 0,
                micros: u64::MAX,
            },
            Response::Answers {
                id: Some(u64::MAX),
                session: "batch".into(),
                answers: vec![true, false, true, true, false, false, true, false, true],
                probes: 99,
                micros: 3,
            },
            Response::Answers {
                id: None,
                session: String::new(),
                answers: vec![false],
                probes: 1,
                micros: 1,
            },
            Response::Error {
                id: Some(4),
                code: ErrorCode::BudgetExhausted,
                message: "probe budget exhausted".into(),
            },
            Response::Error {
                id: None,
                code: ErrorCode::BadRequest,
                message: String::new(),
            },
            Response::Ok { draining: false },
            Response::Ok { draining: true },
            Response::Hello {
                frame: FrameFormat::Binary,
            },
            Response::Stats(Json::Obj(vec![
                ("requests".into(), Json::Num(42.0)),
                ("backend_id".into(), Json::Str("b0".into())),
            ])),
        ]
    }

    #[test]
    fn binary_frames_round_trip_every_response_shape() {
        for response in sample_responses() {
            let frame = response.encode_frame();
            let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
            assert_eq!(len + 4, frame.len(), "length prefix covers the payload");
            let decoded = Response::decode_payload(&frame[4..]).unwrap();
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn error_codes_round_trip_through_bytes() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::UnknownSpec,
            ErrorCode::UnknownSession,
            ErrorCode::SessionMismatch,
            ErrorCode::BadQuery,
            ErrorCode::Overloaded,
            ErrorCode::Draining,
            ErrorCode::Internal,
            ErrorCode::BudgetExhausted,
            ErrorCode::DeadlineExceeded,
        ] {
            assert_eq!(ErrorCode::from_u8(code.to_u8()), Some(code));
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(11), None);
    }

    #[test]
    fn malformed_payloads_fail_with_typed_errors() {
        // Unknown tag.
        assert_eq!(
            Response::decode_payload(&[200]),
            Err(FrameError::BadTag(200))
        );
        // Empty payload cannot even carry a tag.
        assert_eq!(
            Response::decode_payload(&[]),
            Err(FrameError::Truncated("tag"))
        );
        // Answer truncated mid-session-string.
        let mut frame = Response::Answer {
            id: None,
            session: "hello".into(),
            answer: true,
            probes: 1,
            micros: 1,
        }
        .encode_frame();
        let cut = frame.len() - 20;
        assert!(matches!(
            Response::decode_payload(&frame[4..cut]),
            Err(FrameError::Truncated(_))
        ));
        // Trailing garbage after a well-formed payload.
        frame.push(0xFF);
        assert_eq!(
            Response::decode_payload(&frame[4..]),
            Err(FrameError::TrailingBytes { extra: 1 })
        );
        // Unknown error-code byte.
        let mut err_frame = Response::Error {
            id: None,
            code: ErrorCode::Internal,
            message: String::new(),
        }
        .encode_frame();
        err_frame[6] = 0; // tag, flags, then the code byte at payload offset 2
        assert_eq!(
            Response::decode_payload(&err_frame[4..]),
            Err(FrameError::BadCode(0))
        );
        // Non-UTF-8 session bytes.
        let mut bad_utf8 = vec![TAG_ANSWER, 0];
        bad_utf8.extend_from_slice(&2u32.to_le_bytes());
        bad_utf8.extend_from_slice(&[0xFF, 0xFE]);
        bad_utf8.extend_from_slice(&[0u8; 16]);
        assert_eq!(
            Response::decode_payload(&bad_utf8),
            Err(FrameError::Malformed("session"))
        );
    }

    #[test]
    fn decoder_rejects_zero_and_oversized_length_prefixes() {
        let mut d = FrameDecoder::new();
        d.push(&0u32.to_le_bytes());
        assert_eq!(d.next_frame(), Err(FrameError::BadLength { len: 0 }));

        let mut d = FrameDecoder::new();
        let huge = (MAX_FRAME as u32) + 1;
        d.push(&huge.to_le_bytes());
        assert_eq!(d.next_frame(), Err(FrameError::BadLength { len: huge }));
    }

    #[test]
    fn read_binary_frame_distinguishes_clean_eof_from_truncation() {
        use std::io::Cursor;
        let response = Response::Ok { draining: false };
        let frame = response.encode_frame();

        // Clean EOF at a frame boundary: one frame, then None.
        let mut r = Cursor::new(frame.clone());
        assert_eq!(read_binary_frame(&mut r).unwrap(), Some(response));
        assert_eq!(read_binary_frame(&mut r).unwrap(), None);

        // EOF mid-prefix and mid-payload are both errors.
        let mut r = Cursor::new(frame[..2].to_vec());
        assert!(read_binary_frame(&mut r).is_err());
        let mut r = Cursor::new(frame[..frame.len() - 1].to_vec());
        assert!(read_binary_frame(&mut r).is_err());
    }

    #[test]
    fn stats_response_round_trips_through_the_wire_format() {
        use crate::metrics::{
            global_stats_json, session_stats_json, GlobalMetrics, GlobalSnapshot, SessionMetrics,
        };
        use std::sync::atomic::Ordering;

        // Build a stats response exactly the way the server does, render it
        // to one wire line, parse that line back, and check every new
        // field survives the round trip with its value intact.
        let global = GlobalMetrics::default();
        global.requests.store(42, Ordering::Relaxed);
        global.connections.store(1200, Ordering::Relaxed);
        global.connections_open.store(1024, Ordering::Relaxed);
        global.reactor_wakeups.store(77, Ordering::Relaxed);
        global.completions_delivered.store(308, Ordering::Relaxed);
        global.write_syscalls.store(50, Ordering::Relaxed);
        global.responses.store(40, Ordering::Relaxed);
        global.bytes_written.store(9001, Ordering::Relaxed);
        let snap = GlobalSnapshot {
            backend_id: "b0".into(),
            queue_len: 3,
            draining: false,
            sessions: 2,
            registry_shards: 4,
            registry_shard_hits: vec![5, 0, 9, 1],
            cache_total: lca_probe::CacheStats {
                hits: 30,
                misses: 10,
                entries: 10,
            },
        };
        let session = SessionMetrics::default();
        session.record(10, 4, 250, 99);
        let response = Response::Stats(Json::Obj(vec![
            ("stats".into(), global_stats_json(&global, &snap)),
            (
                "sessions".into(),
                Json::Obj(vec![(
                    "s".into(),
                    session_stats_json(
                        &session,
                        snap.cache_total,
                        lca_probe::ProbeCounts::default(),
                        1.0,
                    ),
                )]),
            ),
        ]));
        let line = response.render();
        let parsed = serde_json::from_str(&line).expect("stats line parses");
        let g = parsed.get("stats").expect("global object");
        // The fleet-tagging fields: protocol version, operator-assigned
        // backend identity, and millisecond-precision uptime.
        assert_eq!(
            g.get("version").and_then(Json::as_u64),
            Some(PROTOCOL_VERSION)
        );
        assert_eq!(g.get("backend_id").and_then(Json::as_str), Some("b0"));
        assert!(
            g.get("uptime_ms").and_then(Json::as_u64).is_some(),
            "uptime_ms present and integral"
        );
        assert_eq!(g.get("requests").and_then(Json::as_u64), Some(42));
        assert_eq!(g.get("connections").and_then(Json::as_u64), Some(1200));
        assert_eq!(g.get("connections_open").and_then(Json::as_u64), Some(1024));
        assert_eq!(g.get("reactor_wakeups").and_then(Json::as_u64), Some(77));
        // The syscall-budget fields: raw counters plus the two derived
        // ratios the bench trajectory gates on.
        assert_eq!(
            g.get("completions_delivered").and_then(Json::as_u64),
            Some(308)
        );
        assert_eq!(g.get("write_syscalls").and_then(Json::as_u64), Some(50));
        assert_eq!(g.get("responses").and_then(Json::as_u64), Some(40));
        assert_eq!(g.get("bytes_written").and_then(Json::as_u64), Some(9001));
        assert_eq!(
            g.get("completions_per_wake").and_then(Json::as_f64),
            Some(4.0)
        );
        assert_eq!(
            g.get("syscalls_per_response").and_then(Json::as_f64),
            Some(1.25)
        );
        assert_eq!(g.get("queue_len").and_then(Json::as_u64), Some(3));
        assert_eq!(g.get("sessions").and_then(Json::as_u64), Some(2));
        assert_eq!(g.get("registry_shards").and_then(Json::as_u64), Some(4));
        let hits = g
            .get("registry_shard_hits")
            .and_then(Json::as_array)
            .expect("shard hit array");
        let hits: Vec<u64> = hits.iter().map(|h| h.as_u64().unwrap()).collect();
        assert_eq!(hits, vec![5, 0, 9, 1]);
        assert_eq!(g.get("cache_hits_total").and_then(Json::as_u64), Some(30));
        assert_eq!(g.get("cache_misses_total").and_then(Json::as_u64), Some(10));
        assert_eq!(
            g.get("cache_hit_rate_total").and_then(Json::as_f64),
            Some(0.75)
        );
        assert_eq!(g.get("draining").and_then(Json::as_bool), Some(false));
        let s = parsed.get("sessions").and_then(|s| s.get("s")).expect("s");
        assert_eq!(s.get("queries").and_then(Json::as_u64), Some(10));
        assert_eq!(s.get("cache_hits").and_then(Json::as_u64), Some(30));
    }

    #[test]
    fn empty_global_snapshot_renders_zero_rollups() {
        use crate::metrics::{global_stats_json, GlobalMetrics, GlobalSnapshot};
        let json = global_stats_json(
            &GlobalMetrics::default(),
            &GlobalSnapshot {
                backend_id: String::new(),
                queue_len: 0,
                draining: true,
                sessions: 0,
                registry_shards: 16,
                registry_shard_hits: vec![0; 16],
                cache_total: lca_probe::CacheStats {
                    hits: 0,
                    misses: 0,
                    entries: 0,
                },
            },
        );
        let mut line = String::new();
        json.render(&mut line);
        let parsed = serde_json::from_str(&line).expect("parses");
        // No traffic: the hit rate must render 0, not NaN/null.
        assert_eq!(
            parsed.get("cache_hit_rate_total").and_then(Json::as_f64),
            Some(0.0)
        );
        assert_eq!(parsed.get("draining").and_then(Json::as_bool), Some(true));
        assert_eq!(
            parsed.get("connections_open").and_then(Json::as_u64),
            Some(0)
        );
        // The derived ratios must also render 0 (not NaN/null) pre-traffic.
        assert_eq!(
            parsed.get("completions_per_wake").and_then(Json::as_f64),
            Some(0.0)
        );
        assert_eq!(
            parsed.get("syscalls_per_response").and_then(Json::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn responses_render_the_documented_shapes() {
        let r = Response::Answer {
            id: Some(3),
            session: "s".into(),
            answer: true,
            probes: 12,
            micros: 87,
        };
        assert_eq!(
            r.render(),
            r#"{"id":3,"session":"s","answer":true,"probes":12,"micros":87}"#
        );
        let r = Response::overloaded(None);
        assert!(r.render().starts_with(r#"{"error":"overloaded""#));
        let r = Response::Ok { draining: true };
        assert_eq!(r.render(), r#"{"ok":true,"draining":true}"#);
        let r = Response::Answers {
            id: None,
            session: "s".into(),
            answers: vec![true, false],
            probes: 4,
            micros: 9,
        };
        assert_eq!(
            r.render(),
            r#"{"session":"s","answers":[true,false],"probes":4,"micros":9}"#
        );
    }
}
