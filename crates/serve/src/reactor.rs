//! The event-driven front end: one thread, every connection.
//!
//! The reactor multiplexes thousands of nonblocking `TcpStream`s over the
//! readiness loop in [`crate::sys`] (epoll on Linux, a portable sweep
//! elsewhere). Each connection is a small state machine owning its read
//! buffer (incremental newline framing), its write buffer (responses wait
//! here, never on a worker), and a count of in-flight pool jobs. The
//! worker pool stays the execution tier: the reactor admits query work via
//! [`crate::server::Server::handle_line`], and workers hand finished
//! responses back through the [`Completions`] queue plus a wake pipe —
//! the only two points where the two tiers touch.
//!
//! ```text
//!  sockets ──readiness──► reactor ──framing──► dispatch ──admit──► pool
//!     ▲                      ▲                (inline ops answered     │
//!     │                      │                 straight to write buf)  │
//!     └──────write bufs──────┴──── completion queue + wake pipe ◄─────┘
//! ```
//!
//! Invariants the tests lean on:
//!
//! * **No worker ever blocks on a socket.** Delivery is a queue push plus
//!   a wake; a stalled client just grows its own write buffer (bounded —
//!   past [`MAX_WRITE_BUFFER`] the connection is dropped).
//! * **One response per request line**, whether inline or deferred, until
//!   the peer goes away.
//! * **Drain flushes.** After a shutdown request the reactor stops
//!   accepting, keeps servicing readiness until every admitted job has
//!   delivered and every write buffer is empty, then closes and returns.

#![warn(clippy::unwrap_used)]
use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::proto::{FrameFormat, Response};
use crate::server::{LineOutcome, Server};
use crate::sys::{self, Event, Poller, Waker};

/// Registration token of the listener (connection tokens never reach it:
/// they encode a slab index in the low 32 bits and a generation above).
const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// A connection whose write buffer exceeds this is not reading its
/// responses; it is dropped rather than allowed to hold server memory
/// hostage (the bounded-everything rule, applied to the write side).
const MAX_WRITE_BUFFER: usize = 16 << 20;

/// A single request line longer than this is answered with nothing and the
/// connection dropped — no legitimate request is 16 MiB.
const MAX_LINE: usize = 16 << 20;

/// How long one `wait` may block: the upper bound on drain-progress and
/// lost-wake recovery latency, not on response latency (completions wake
/// the poller immediately).
const WAIT_TIMEOUT: Duration = Duration::from_millis(100);

/// How long a drain keeps waiting for stalled connections to accept their
/// pending responses. A client that reads gets every byte well inside
/// this; one that has stopped reading (or silently vanished — a TCP
/// half-open never becomes writable) would otherwise pin the drain loop
/// forever. Past the grace period its connection is dropped so shutdown
/// always terminates, matching the old thread-per-connection front end's
/// bounded drain.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Worker→reactor handoff: finished responses parked until the reactor
/// flushes them into per-connection write buffers.
///
/// Wakes are **coalesced**: a push only writes the wake pipe when the
/// queue transitions empty → nonempty. While the queue is nonempty a wake
/// is already in flight (the reactor drains the whole queue per wake), so
/// concurrent completions ride the pending wake instead of issuing one
/// `write(2)` each — under fan-in load many responses land per reactor
/// wakeup, which is exactly what the `reactor_wakeups`-per-response ratio
/// in `stats` witnesses (well below 1.0 when batching works).
pub(crate) struct Completions {
    queue: Mutex<Vec<(u64, Response)>>,
    waker: Waker,
    /// Wake-pipe writes actually issued (tests pin the coalescing here).
    wakes_issued: std::sync::atomic::AtomicU64,
}

impl Completions {
    /// Parks a finished response for `token`'s connection and wakes the
    /// reactor iff no wake is already pending. Called from pool workers;
    /// never blocks on I/O.
    fn push(&self, token: u64, response: Response) {
        let was_empty = {
            // lint:allow(panic) — poisoned queue means a worker already panicked; propagate
            let mut queue = self.queue.lock().expect("completion queue poisoned");
            let was_empty = queue.is_empty();
            queue.push((token, response));
            was_empty
        };
        if was_empty {
            self.wakes_issued.fetch_add(1, Ordering::Relaxed);
            self.waker.wake();
        }
    }

    fn drain(&self) -> Vec<(u64, Response)> {
        // lint:allow(panic) — poisoned queue means a worker already panicked; propagate
        std::mem::take(&mut *self.queue.lock().expect("completion queue poisoned"))
    }
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet framed into a complete line.
    read_buf: Vec<u8>,
    /// Rendered wire units (newline-JSON lines or binary frames) awaiting
    /// socket space, oldest first. Kept as separate buffers so a flush can
    /// gather many of them into one `writev` without copying.
    write_queue: VecDeque<Vec<u8>>,
    /// Bytes of the front `write_queue` entry already accepted by the
    /// kernel (a previous short write stopped mid-unit).
    write_head: usize,
    /// Unsent bytes across the whole queue (`write_queue` total minus
    /// `write_head`) — the buffer-cap and "owes nothing" bookkeeping.
    queued_bytes: usize,
    /// Response framing negotiated for this connection (`hello`); starts
    /// as newline-JSON.
    frame: FrameFormat,
    /// Pool jobs admitted for this connection whose responses have not yet
    /// been delivered to `write_queue`.
    pending: usize,
    /// The peer half-closed its write side (EOF seen); we still flush what
    /// we owe, then close.
    peer_closed: bool,
    /// Whether the poller currently watches this fd for write readiness.
    want_write: bool,
}

impl Conn {
    /// Renders `response` in the connection's negotiated framing and
    /// queues it for flushing. Rendering happens exactly once, here — the
    /// flush path only ever gathers byte slices.
    fn enqueue(&mut self, response: &Response) {
        let unit = match self.frame {
            FrameFormat::Json => {
                let mut bytes = response.render().into_bytes();
                bytes.push(b'\n');
                bytes
            }
            FrameFormat::Binary => response.encode_frame(),
        };
        self.queued_bytes += unit.len();
        self.write_queue.push_back(unit);
    }
}

/// Consumes `written` bytes off the front of a connection's write queue,
/// popping fully-sent units and leaving `head` at the partial-write point
/// inside the new front unit. Exact by construction: it advances by
/// precisely what the syscall reported, which is what keeps
/// `bytes_written` (and retry offsets) truthful under short writes.
fn advance_write_queue(queue: &mut VecDeque<Vec<u8>>, head: &mut usize, mut written: usize) {
    while written > 0 {
        let Some(front) = queue.front() else {
            return; // kernel can't accept more than we gathered
        };
        let remaining = front.len() - *head;
        if written >= remaining {
            written -= remaining;
            queue.pop_front();
            *head = 0;
        } else {
            *head += written;
            written = 0;
        }
    }
}

struct Slot {
    gen: u32,
    conn: Option<Conn>,
}

fn token_of(idx: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | idx as u64
}

fn split_token(token: u64) -> (usize, u32) {
    ((token & u32::MAX as u64) as usize, (token >> 32) as u32)
}

/// The reactor; see the module docs. Constructed and run by
/// [`Server::serve`].
pub(crate) struct Reactor {
    server: Arc<Server>,
    poller: Poller,
    listener: Option<TcpListener>,
    completions: Arc<Completions>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Pool jobs admitted and not yet completed, across all connections
    /// (including ones whose connection died while the job ran).
    in_flight: usize,
    /// Open connections (slab occupancy).
    open: usize,
    /// When the drain began (first loop iteration that observed the flag);
    /// stalled connections are force-closed [`DRAIN_GRACE`] after this.
    drain_started: Option<std::time::Instant>,
}

impl Reactor {
    /// Builds a reactor around a bound listener (made nonblocking and
    /// registered here). Split from [`Reactor::run`] so tests can drive
    /// the pieces — accept, completion delivery, flush — by hand.
    pub(crate) fn new(server: Arc<Server>, listener: TcpListener) -> io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, false)?;
        let completions = Arc::new(Completions {
            queue: Mutex::new(Vec::new()),
            waker: poller.waker(),
            wakes_issued: std::sync::atomic::AtomicU64::new(0),
        });
        Ok(Reactor {
            server,
            poller,
            listener: Some(listener),
            completions,
            slots: Vec::new(),
            free: Vec::new(),
            in_flight: 0,
            open: 0,
            drain_started: None,
        })
    }

    /// Runs the serve loop to drain completion. The listener is consumed;
    /// the pool is left running (the caller shuts it down).
    pub(crate) fn run(server: Arc<Server>, listener: TcpListener) -> io::Result<()> {
        let mut reactor = Reactor::new(server, listener)?;
        let result = reactor.event_loop();
        // Whatever remains (error paths): close sockets before returning so
        // clients see EOF rather than a dead peer.
        for idx in 0..reactor.slots.len() {
            reactor.close_conn(idx);
        }
        result
    }

    fn event_loop(&mut self) -> io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let woken = self.poller.wait(&mut events, WAIT_TIMEOUT)?;
            if woken {
                self.server
                    .global
                    .reactor_wakeups
                    .fetch_add(1, Ordering::Relaxed);
            }
            // Deliver finished responses first so this iteration's write
            // readiness can flush them immediately.
            self.deliver_completions();
            // `events` is a local buffer, disjoint from `self`, so the
            // loop body can mutate the reactor freely.
            for &ev in &events {
                if ev.token == LISTENER_TOKEN {
                    if ev.readable {
                        self.accept_ready();
                    }
                } else {
                    self.conn_ready(ev);
                }
            }
            // Completions that landed while we processed events go out now
            // instead of waiting for the wake to be observed next
            // iteration — one drain's worth of latency saved per loop.
            self.deliver_completions();
            if self.server.draining() {
                self.stop_accepting();
                let drain_started = *self
                    .drain_started
                    .get_or_insert_with(std::time::Instant::now);
                // Close every connection that owes nothing; past the grace
                // period, also ones whose responses are all *delivered*
                // but sit unread in the write buffer (a peer that stopped
                // reading, or a half-open that will never become writable,
                // must not pin the drain forever). A connection still
                // waiting on an in-flight job is never abandoned — its
                // job finishes, delivery flushes what the socket accepts,
                // and the next iteration applies this same rule. Exit once
                // all are gone and no admitted job is still running.
                let grace_expired = drain_started.elapsed() >= DRAIN_GRACE;
                for idx in 0..self.slots.len() {
                    let done = matches!(
                        self.conn_ref(idx),
                        Some(c) if c.pending == 0 && (grace_expired || c.queued_bytes == 0)
                    );
                    if done {
                        self.close_conn(idx);
                    }
                }
                if self.open == 0 && self.in_flight == 0 {
                    self.deliver_completions(); // nothing lands: queue is empty once in_flight is 0
                    return Ok(());
                }
            }
        }
    }

    fn stop_accepting(&mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd(), LISTENER_TOKEN);
            // Dropping closes the socket: new connects are refused, which
            // is the drain contract.
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if self.server.draining() {
                        continue; // accepted in the race window: just close
                    }
                    self.register_conn(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Transient accept failures (EMFILE, aborted handshake):
                    // yield briefly so a level-triggered listener event
                    // cannot spin the loop hot, then let the next readiness
                    // retry.
                    std::thread::sleep(Duration::from_millis(1));
                    return;
                }
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        // Responses are single small lines: Nagle would hold each one back
        // ~40ms against the client's delayed ACK.
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(Slot { gen: 0, conn: None });
                self.slots.len() - 1
            }
        };
        let Some(token) = self.token_at(idx) else {
            return;
        };
        if self
            .poller
            .register(stream.as_raw_fd(), token, false)
            .is_err()
        {
            self.free.push(idx);
            return;
        }
        let Some(slot) = self.slots.get_mut(idx) else {
            return;
        };
        slot.conn = Some(Conn {
            stream,
            read_buf: Vec::new(),
            write_queue: VecDeque::new(),
            write_head: 0,
            queued_bytes: 0,
            frame: FrameFormat::Json,
            pending: 0,
            peer_closed: false,
            want_write: false,
        });
        self.open += 1;
        self.server
            .global
            .connections
            .fetch_add(1, Ordering::Relaxed);
        self.server
            .global
            .connections_open
            .fetch_add(1, Ordering::Relaxed);
        // The gauges feed the stats snapshot; invalidate the cached render.
        self.server.global.mark_mutation();
    }

    fn close_conn(&mut self, idx: usize) {
        let Some(slot) = self.slots.get_mut(idx) else {
            return;
        };
        let token = token_of(idx, slot.gen);
        let Some(conn) = slot.conn.take() else {
            return;
        };
        slot.gen = slot.gen.wrapping_add(1);
        let _ = self.poller.deregister(conn.stream.as_raw_fd(), token);
        self.free.push(idx);
        self.open -= 1;
        self.server
            .global
            .connections_open
            .fetch_sub(1, Ordering::Relaxed);
        self.server.global.mark_mutation();
        // `conn.stream` drops here, closing the socket. Any still-running
        // job for this connection delivers into the completion queue and is
        // discarded there (stale generation).
    }

    /// Looks up a live connection by token, ignoring stale generations
    /// (a completion racing a close).
    fn live(&self, token: u64) -> Option<usize> {
        let (idx, gen) = split_token(token);
        match self.slots.get(idx) {
            Some(slot) if slot.gen == gen && slot.conn.is_some() => Some(idx),
            _ => None,
        }
    }

    /// The live connection at `idx`, if any — an already-closed slot (a
    /// dispatch or flush raced a close) is `None`, never a panic.
    fn conn_ref(&self, idx: usize) -> Option<&Conn> {
        self.slots.get(idx).and_then(|slot| slot.conn.as_ref())
    }

    /// Mutable variant of [`Reactor::conn_ref`].
    fn conn_mut(&mut self, idx: usize) -> Option<&mut Conn> {
        self.slots.get_mut(idx).and_then(|slot| slot.conn.as_mut())
    }

    /// The poll token currently naming `idx`, if the slot exists.
    fn token_at(&self, idx: usize) -> Option<u64> {
        self.slots.get(idx).map(|slot| token_of(idx, slot.gen))
    }

    /// Drains the whole completion queue in one pass: every response is
    /// staged into its connection's write queue first, then each touched
    /// connection is flushed exactly once — N completions for one
    /// connection cost one `writev`, not N `write`s.
    fn deliver_completions(&mut self) {
        let batch = self.completions.drain();
        if batch.is_empty() {
            return;
        }
        self.server
            .global
            .completions_delivered
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        let mut touched: Vec<usize> = Vec::with_capacity(batch.len());
        for (token, response) in batch {
            self.in_flight -= 1;
            let Some(idx) = self.live(token) else {
                continue;
            };
            let Some(conn) = self.conn_mut(idx) else {
                continue;
            };
            conn.pending -= 1;
            conn.enqueue(&response);
            self.server.global.responses.fetch_add(1, Ordering::Relaxed);
            touched.push(idx);
        }
        touched.sort_unstable();
        touched.dedup();
        for idx in touched {
            // flush_conn is a no-op on a slot something above closed.
            self.flush_conn(idx);
        }
    }

    fn conn_ready(&mut self, ev: Event) {
        let Some(idx) = self.live(ev.token) else {
            return;
        };
        if ev.readable {
            self.read_ready(idx);
        }
        if ev.writable && self.conn_ref(idx).is_some() {
            self.flush_conn(idx);
        }
    }

    /// Reads whatever the socket has, frames complete lines, dispatches
    /// each. EOF with a final unterminated line still dispatches it —
    /// stdio mode would serve it, TCP must too.
    fn read_ready(&mut self, idx: usize) {
        let Some(token) = self.token_at(idx) else {
            return;
        };
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let Some(conn) = self.conn_mut(idx) else {
                return;
            };
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_closed = true;
                    if !conn.read_buf.is_empty() {
                        let line = std::mem::take(&mut conn.read_buf);
                        self.dispatch_line(idx, token, &line);
                    }
                    break;
                }
                Ok(k) => {
                    conn.read_buf
                        .extend_from_slice(chunk.get(..k).unwrap_or(&[]));
                    if conn.read_buf.len() > MAX_LINE {
                        self.close_conn(idx);
                        return;
                    }
                    // Frame and dispatch every complete line we now hold.
                    // Inline responses pile up in the write queue; they are
                    // flushed together below, so a pipelined burst of K
                    // requests costs one gather-write, not K writes.
                    loop {
                        let Some(conn) = self.conn_mut(idx) else {
                            return;
                        };
                        let Some(pos) = conn.read_buf.iter().position(|&b| b == b'\n') else {
                            break;
                        };
                        let line: Vec<u8> = conn.read_buf.drain(..=pos).collect();
                        self.dispatch_line(idx, token, &line);
                        match self.conn_ref(idx) {
                            None => return, // dispatch closed the connection
                            // A pipelined flood must not stage unboundedly
                            // between flushes: shed pressure mid-batch.
                            Some(c) if c.queued_bytes > MAX_WRITE_BUFFER => {
                                self.flush_conn(idx);
                                if self.conn_ref(idx).is_none() {
                                    return;
                                }
                            }
                            Some(_) => {}
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(idx);
                    return;
                }
            }
        }
        // One coalesced flush for everything this readiness event staged.
        if matches!(self.conn_ref(idx), Some(c) if c.queued_bytes > 0) {
            self.flush_conn(idx);
            if self.conn_ref(idx).is_none() {
                return;
            }
        }
        // EOF: the peer cannot send more requests. Close as soon as every
        // owed response has flushed (checked again on each completion).
        self.maybe_close_finished(idx);
    }

    fn dispatch_line(&mut self, idx: usize, token: u64, raw: &[u8]) {
        let completions = self.completions.clone();
        let outcome = self
            .server
            .clone()
            .handle_raw_line(raw, move |response| completions.push(token, response));
        match outcome {
            LineOutcome::Inline(response) => {
                let Some(conn) = self.conn_mut(idx) else {
                    return;
                };
                conn.enqueue(&response);
                self.server.global.responses.fetch_add(1, Ordering::Relaxed);
            }
            LineOutcome::Hello(format) => {
                // STARTTLS convention: acknowledge in the *current*
                // framing, then switch — the client reads one response in
                // the old framing and everything after in the new one.
                let Some(conn) = self.conn_mut(idx) else {
                    return;
                };
                conn.enqueue(&Response::Hello { frame: format });
                conn.frame = format;
                self.server.global.responses.fetch_add(1, Ordering::Relaxed);
            }
            LineOutcome::Deferred => {
                // Count in_flight unconditionally: the job was handed to the
                // pool and its completion will be drained either way.
                self.in_flight += 1;
                if let Some(conn) = self.conn_mut(idx) {
                    conn.pending += 1;
                }
            }
            LineOutcome::Ignored => {}
        }
    }

    /// Writes as much of the connection's queue as the socket accepts —
    /// gathering up to [`sys::MAX_IOVECS`] queued units per `writev` —
    /// maintains write-readiness interest, enforces the buffer cap, and
    /// closes once a finished connection owes nothing.
    ///
    /// Accounting is exact per syscall: `bytes_written` grows by precisely
    /// the syscall's return value and the queue advances by the same
    /// amount, so short writes never over- or under-report.
    fn flush_conn(&mut self, idx: usize) {
        let server = self.server.clone();
        let mut close = false;
        let mut interest = None;
        let Some(slot) = self.slots.get_mut(idx) else {
            return;
        };
        let gen = slot.gen;
        let Some(conn) = slot.conn.as_mut() else {
            return;
        };
        while conn.queued_bytes > 0 {
            let mut bufs: Vec<&[u8]> =
                Vec::with_capacity(conn.write_queue.len().min(sys::MAX_IOVECS));
            let mut gathered = 0usize;
            let mut units = conn.write_queue.iter();
            let Some(front) = units.next() else {
                break; // queued_bytes drifted from an empty queue: bail
            };
            let head = front.get(conn.write_head..).unwrap_or(&[]);
            bufs.push(head);
            gathered += head.len();
            for unit in units.take(sys::MAX_IOVECS - 1) {
                bufs.push(unit);
                gathered += unit.len();
            }
            server.global.write_syscalls.fetch_add(1, Ordering::Relaxed);
            match sys::write_vectored(&conn.stream, &bufs) {
                Ok(0) => {
                    close = true;
                    break;
                }
                Ok(k) => {
                    server
                        .global
                        .bytes_written
                        .fetch_add(k as u64, Ordering::Relaxed);
                    advance_write_queue(&mut conn.write_queue, &mut conn.write_head, k);
                    conn.queued_bytes -= k;
                    if k < gathered {
                        // Short write: the socket buffer is full; retrying
                        // now would only earn a WouldBlock.
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    close = true;
                    break;
                }
            }
        }
        if conn.queued_bytes > MAX_WRITE_BUFFER {
            // The peer has stopped reading; it forfeits the connection.
            close = true;
        }
        if !close {
            let needs_write = conn.queued_bytes > 0;
            if needs_write != conn.want_write {
                conn.want_write = needs_write;
                interest = Some((conn.stream.as_raw_fd(), needs_write));
            }
        }
        if close {
            self.close_conn(idx);
            return;
        }
        if let Some((fd, needs_write)) = interest {
            let _ = self
                .poller
                .set_writable(fd, token_of(idx, gen), needs_write);
        }
        self.maybe_close_finished(idx);
    }

    /// Closes a connection whose peer is gone and which owes nothing more.
    fn maybe_close_finished(&mut self, idx: usize) {
        let done = matches!(
            self.conn_ref(idx),
            Some(c) if c.peer_closed && c.pending == 0 && c.queued_bytes == 0
        );
        if done {
            self.close_conn(idx);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap IS the assertion
mod tests {
    use super::*;

    #[test]
    fn completion_pushes_coalesce_into_one_wake() {
        let poller = Poller::new().expect("poller");
        let completions = Completions {
            queue: Mutex::new(Vec::new()),
            waker: poller.waker(),
            wakes_issued: std::sync::atomic::AtomicU64::new(0),
        };
        // Ten completions land while the reactor is busy: only the first
        // (empty → nonempty) may write the wake pipe.
        for i in 0..10 {
            completions.push(i, Response::Ok { draining: false });
        }
        assert_eq!(completions.wakes_issued.load(Ordering::Relaxed), 1);
        assert_eq!(completions.drain().len(), 10);
        // Once drained the next push must wake again — coalescing never
        // loses the transition.
        completions.push(11, Response::Ok { draining: false });
        assert_eq!(completions.wakes_issued.load(Ordering::Relaxed), 2);
        assert_eq!(completions.drain().len(), 1);
    }

    #[test]
    fn tokens_round_trip_and_generations_differ() {
        for (idx, gen) in [(0usize, 0u32), (7, 3), (u32::MAX as usize, u32::MAX)] {
            let t = token_of(idx, gen);
            assert_eq!(split_token(t), (idx, gen));
            assert_ne!(t, LISTENER_TOKEN);
        }
        assert_ne!(token_of(5, 1), token_of(5, 2), "reuse is distinguishable");
    }

    #[test]
    fn advance_write_queue_is_exact_under_short_writes() {
        let mut queue: VecDeque<Vec<u8>> = [b"aaaa".to_vec(), b"bb".to_vec(), b"cccccc".to_vec()]
            .into_iter()
            .collect();
        let mut head = 0usize;
        // A short write that ends mid-second-unit.
        advance_write_queue(&mut queue, &mut head, 5);
        assert_eq!(queue.len(), 2);
        assert_eq!(head, 1);
        // Zero progress is a no-op.
        advance_write_queue(&mut queue, &mut head, 0);
        assert_eq!((queue.len(), head), (2, 1));
        // Finishing the partial unit exactly resets the head.
        advance_write_queue(&mut queue, &mut head, 1);
        assert_eq!((queue.len(), head), (1, 0));
        // Consuming everything empties the queue.
        advance_write_queue(&mut queue, &mut head, 6);
        assert!(queue.is_empty());
        assert_eq!(head, 0);
    }

    /// The batch-drain path: N completions land while the reactor is
    /// stalled — exactly one wake is issued, and the next drain delivers
    /// all N responses through exactly one write syscall.
    #[test]
    fn stalled_burst_costs_one_wake_and_one_write_syscall() {
        use crate::server::ServerConfig;
        use std::io::BufRead as _;

        let server = Server::new(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut reactor = Reactor::new(server.clone(), listener).expect("reactor");

        // Connect a client and accept it without running the event loop —
        // the "stalled reactor" half of the scenario.
        let client = std::net::TcpStream::connect(addr).expect("connect");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while reactor.open == 0 {
            reactor.accept_ready();
            assert!(std::time::Instant::now() < deadline, "accept never landed");
        }
        let token = token_of(0, reactor.slots[0].gen);

        // A burst of N completions with no drain in between: only the
        // empty→nonempty transition may write the wake pipe.
        const N: usize = 10;
        reactor.slots[0].conn.as_mut().expect("conn").pending = N;
        reactor.in_flight = N;
        for i in 0..N {
            reactor.completions.push(
                token,
                Response::Answer {
                    id: Some(i as u64),
                    session: "burst".into(),
                    answer: true,
                    probes: 1,
                    micros: 1,
                },
            );
        }
        assert_eq!(
            reactor.completions.wakes_issued.load(Ordering::Relaxed),
            1,
            "burst must coalesce into one wake"
        );

        // One drain delivers all N and coalesces them into one writev.
        reactor.deliver_completions();
        let g = &server.global;
        assert_eq!(g.completions_delivered.load(Ordering::Relaxed), N as u64);
        assert_eq!(g.responses.load(Ordering::Relaxed), N as u64);
        assert_eq!(
            g.write_syscalls.load(Ordering::Relaxed),
            1,
            "N responses for one connection must flush as one gather-write"
        );
        assert_eq!(reactor.in_flight, 0);
        assert_eq!(reactor.slots[0].conn.as_ref().expect("conn").pending, 0);

        // The client sees all N responses, in completion order.
        let mut reader = std::io::BufReader::new(client);
        let mut total_bytes = 0u64;
        for i in 0..N {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read response");
            total_bytes += line.len() as u64;
            assert!(line.contains(&format!("\"id\":{i}")), "{line}");
        }
        assert_eq!(
            g.bytes_written.load(Ordering::Relaxed),
            total_bytes,
            "bytes_written matches what actually crossed the socket"
        );
        server.pool.shutdown();
    }
}
