//! Lock-free serving metrics: latency/probe histograms, per-session and
//! global counters, and the JSON rendering behind the `stats` request.

#![warn(clippy::unwrap_used)]
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use serde::Json;

/// A log₂-bucketed histogram over `u64` samples (latencies in µs, probes
/// per query). Recording is one relaxed atomic increment; quantiles are
/// read as the upper bound of the covering bucket, so they are exact to
/// within a factor of two — the right fidelity for a serving dashboard at
/// zero contention cost.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; 65],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    fn bucket(value: u64) -> usize {
        // value 0 → bucket 0; otherwise 1 + ⌊log₂ v⌋ (bucket upper bound 2^i - 1).
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        // bucket() ≤ 64 by construction; get() keeps the hot path panic-free.
        if let Some(bucket) = self.buckets.get(Self::bucket(value)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Mean of recorded samples (`0` when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the covering
    /// bucket; `0` when empty.
    ///
    /// Allocation-free: a `stats` render makes eight quantile calls per
    /// session and the adaptive-budget refit loop far more, so the atomics
    /// are iterated directly. Concurrent recording can only grow counts
    /// between the two passes, so the rank computed from the first pass is
    /// always reachable in the second.
    pub fn quantile(&self, q: f64) -> u64 {
        let mut total: u64 = 0;
        for b in &self.buckets {
            total += b.load(Ordering::Relaxed);
        }
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return match i {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
            }
        }
        u64::MAX
    }
}

/// Counters for one serving session.
#[derive(Debug, Default)]
pub struct SessionMetrics {
    /// Queries answered (batch requests count each contained query).
    pub queries: AtomicU64,
    /// YES answers among them.
    pub yes: AtomicU64,
    /// Requests rejected with an error inside the session (bad query
    /// range/shape).
    pub errors: AtomicU64,
    /// Requests failed because a query tripped its probe budget or
    /// deadline (counted separately from `errors`: a budget trip is an
    /// accepted serving outcome, not a client mistake).
    pub budget_exhausted: AtomicU64,
    /// Service-time histogram, microseconds per request.
    pub latency_us: Histogram,
    /// Probe-cost histogram, probes per request.
    pub probes: Histogram,
    /// Probe-budget utilization histogram: per *successful* budgeted
    /// query, `100 · spent / max_probes` — the headroom signal (a p99
    /// pinned at the bucket covering 100 means the budget is tight).
    /// Exhausted queries are counted in `budget_exhausted` instead, so the
    /// two read together: utilization says how close survivors run to the
    /// cap, the counter says how many did not survive. Empty while no
    /// request carries a probe budget.
    pub budget_utilization: Histogram,
}

impl SessionMetrics {
    /// Records one answered request.
    pub fn record(&self, queries: u64, yes: u64, micros: u64, probes: u64) {
        self.queries.fetch_add(queries, Ordering::Relaxed);
        self.yes.fetch_add(yes, Ordering::Relaxed);
        self.latency_us.record(micros);
        self.probes.record(probes);
    }

    /// Records one failed request.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request failed on a tripped budget/deadline.
    pub fn record_budget_exhausted(&self) {
        self.budget_exhausted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records how much of its probe budget one successful query used, in
    /// percent.
    pub fn record_budget_utilization(&self, percent: u64) {
        self.budget_utilization.record(percent);
    }
}

/// Whole-process counters (everything not attributable to one session).
#[derive(Debug)]
pub struct GlobalMetrics {
    /// Requests parsed off the wire (any op).
    pub requests: AtomicU64,
    /// Lines that failed to parse.
    pub parse_errors: AtomicU64,
    /// Query requests bounced with `overloaded`.
    pub overloaded: AtomicU64,
    /// Query requests failed on a tripped probe budget or deadline.
    pub budget_exhausted: AtomicU64,
    /// Connections accepted over TCP since the process started.
    pub connections: AtomicU64,
    /// Connections currently open (a gauge: the reactor increments on
    /// accept and decrements on close — the C10k witness in `stats`).
    pub connections_open: AtomicU64,
    /// Times the reactor was woken by a worker completion (the wake-pipe
    /// side of the readiness loop; a coarse proxy for response batching —
    /// fewer wakeups per response means better batching).
    pub reactor_wakeups: AtomicU64,
    /// Worker completions pulled off the completion queue, across all
    /// drains. Divided by `reactor_wakeups` this is `completions_per_wake`
    /// — the direct measure of drain batching (1.0 means every completion
    /// paid a full wake; higher means the exhaustive drain amortized them).
    pub completions_delivered: AtomicU64,
    /// Write syscalls the reactor issued (each `writev`/`write` counts
    /// once, including short writes and retries).
    pub write_syscalls: AtomicU64,
    /// Responses handed to connection write queues (every framing, every
    /// op). Divided into `write_syscalls` this is `syscalls_per_response`.
    pub responses: AtomicU64,
    /// Bytes actually accepted by the kernel across all write syscalls —
    /// exact under short writes, because the reactor adds precisely what
    /// each syscall returned.
    pub bytes_written: AtomicU64,
    /// Coarse mutation stamp for the stats snapshot cache: bumped whenever
    /// serving state that feeds `stats` changes — request dispatch, worker
    /// completions, connection lifecycle, drain. Read-only requests
    /// (ping/stats/sessions) do not bump it, so an idle dashboard polling
    /// `stats` is served the cached snapshot without re-rendering. Pure-IO
    /// counters (`write_syscalls`, `bytes_written`, `reactor_wakeups`) and
    /// the uptime clock intentionally do not bump it either: the cached
    /// snapshot may lag those until the next mutation, which is the
    /// accepted coarseness of the cache.
    pub mutations: AtomicU64,
    /// Stats snapshots built from scratch (cache misses).
    pub stats_renders: AtomicU64,
    /// Stats requests answered from the cached snapshot.
    pub stats_served_cached: AtomicU64,
    /// Process start, for uptime/qps.
    pub started: Instant,
}

impl GlobalMetrics {
    /// Bumps the mutation stamp, invalidating the cached stats snapshot.
    pub fn mark_mutation(&self) {
        self.mutations.fetch_add(1, Ordering::Relaxed);
    }
}

impl Default for GlobalMetrics {
    fn default() -> Self {
        Self {
            requests: AtomicU64::new(0),
            parse_errors: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            budget_exhausted: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            reactor_wakeups: AtomicU64::new(0),
            completions_delivered: AtomicU64::new(0),
            write_syscalls: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            mutations: AtomicU64::new(0),
            stats_renders: AtomicU64::new(0),
            stats_served_cached: AtomicU64::new(0),
            started: Instant::now(),
        }
    }
}

fn num(x: u64) -> Json {
    Json::Num(x as f64)
}

/// `a / b` rendering 0 (not NaN/null) before any traffic.
fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// Renders one session's stats object (the `sessions` map values of the
/// `stats` response).
pub fn session_stats_json(
    metrics: &SessionMetrics,
    cache: lca_probe::CacheStats,
    probe_totals: lca_probe::ProbeCounts,
    uptime_s: f64,
) -> Json {
    let queries = metrics.queries.load(Ordering::Relaxed);
    Json::Obj(vec![
        ("queries".into(), num(queries)),
        ("yes".into(), num(metrics.yes.load(Ordering::Relaxed))),
        ("errors".into(), num(metrics.errors.load(Ordering::Relaxed))),
        (
            "qps".into(),
            Json::Num(if uptime_s > 0.0 {
                queries as f64 / uptime_s
            } else {
                0.0
            }),
        ),
        (
            "latency_p50_us".into(),
            num(metrics.latency_us.quantile(0.5)),
        ),
        (
            "latency_p99_us".into(),
            num(metrics.latency_us.quantile(0.99)),
        ),
        (
            "latency_mean_us".into(),
            Json::Num(metrics.latency_us.mean()),
        ),
        ("probes_p50".into(), num(metrics.probes.quantile(0.5))),
        ("probes_p99".into(), num(metrics.probes.quantile(0.99))),
        ("probes_total".into(), num(probe_totals.total())),
        (
            "budget_exhausted".into(),
            num(metrics.budget_exhausted.load(Ordering::Relaxed)),
        ),
        (
            "budget_utilization_pct_p50".into(),
            num(metrics.budget_utilization.quantile(0.5)),
        ),
        (
            "budget_utilization_pct_p99".into(),
            num(metrics.budget_utilization.quantile(0.99)),
        ),
        (
            "budgeted_queries".into(),
            num(metrics.budget_utilization.count()),
        ),
        ("cache_hits".into(), num(cache.hits)),
        ("cache_misses".into(), num(cache.misses)),
        ("cache_entries".into(), num(cache.entries as u64)),
        (
            "cache_hit_rate".into(),
            // NaN renders as null; keep 0 for "no traffic yet" instead.
            Json::Num(if cache.requests() == 0 {
                0.0
            } else {
                cache.hit_rate()
            }),
        ),
    ])
}

/// The non-atomic half of the global `stats` object: values the server
/// snapshots at render time (queue depth, drain flag, the registry-shard
/// rollup and the fleet-wide cache rollup built with `CacheStats + CacheStats`).
#[derive(Debug, Clone)]
pub struct GlobalSnapshot {
    /// Operator-assigned backend identity (`lca-serve --backend-id`),
    /// echoed in `stats` so a fleet rollup can tag which member answered;
    /// empty when the operator assigned none.
    pub backend_id: String,
    /// Jobs waiting in the worker pool's admission queue.
    pub queue_len: usize,
    /// Whether a drain has begun.
    pub draining: bool,
    /// Resident sessions across all registry shards.
    pub sessions: usize,
    /// Number of registry shards.
    pub registry_shards: usize,
    /// Per-shard resolve-hit counts (a resolve that found a pinned
    /// session), in shard order — skew here means hot session names, not
    /// lock contention (shards lock independently).
    pub registry_shard_hits: Vec<u64>,
    /// All sessions' serving-cache stats rolled up via `CacheStats::add`.
    pub cache_total: lca_probe::CacheStats,
}

/// Renders the global half of the `stats` response.
pub fn global_stats_json(global: &GlobalMetrics, snap: &GlobalSnapshot) -> Json {
    let uptime_s = global.started.elapsed().as_secs_f64();
    let requests = global.requests.load(Ordering::Relaxed);
    Json::Obj(vec![
        ("version".into(), num(crate::proto::PROTOCOL_VERSION)),
        ("backend_id".into(), Json::Str(snap.backend_id.clone())),
        ("uptime_s".into(), Json::Num(uptime_s)),
        (
            "uptime_ms".into(),
            num(global.started.elapsed().as_millis() as u64),
        ),
        ("requests".into(), num(requests)),
        (
            "qps".into(),
            Json::Num(if uptime_s > 0.0 {
                requests as f64 / uptime_s
            } else {
                0.0
            }),
        ),
        (
            "parse_errors".into(),
            num(global.parse_errors.load(Ordering::Relaxed)),
        ),
        (
            "overloaded".into(),
            num(global.overloaded.load(Ordering::Relaxed)),
        ),
        (
            "budget_exhausted".into(),
            num(global.budget_exhausted.load(Ordering::Relaxed)),
        ),
        (
            "connections".into(),
            num(global.connections.load(Ordering::Relaxed)),
        ),
        (
            "connections_open".into(),
            num(global.connections_open.load(Ordering::Relaxed)),
        ),
        (
            "reactor_wakeups".into(),
            num(global.reactor_wakeups.load(Ordering::Relaxed)),
        ),
        (
            "completions_delivered".into(),
            num(global.completions_delivered.load(Ordering::Relaxed)),
        ),
        (
            "write_syscalls".into(),
            num(global.write_syscalls.load(Ordering::Relaxed)),
        ),
        (
            "responses".into(),
            num(global.responses.load(Ordering::Relaxed)),
        ),
        (
            "bytes_written".into(),
            num(global.bytes_written.load(Ordering::Relaxed)),
        ),
        (
            "completions_per_wake".into(),
            Json::Num(ratio(
                global.completions_delivered.load(Ordering::Relaxed),
                global.reactor_wakeups.load(Ordering::Relaxed),
            )),
        ),
        (
            "syscalls_per_response".into(),
            Json::Num(ratio(
                global.write_syscalls.load(Ordering::Relaxed),
                global.responses.load(Ordering::Relaxed),
            )),
        ),
        (
            "stats_renders".into(),
            num(global.stats_renders.load(Ordering::Relaxed)),
        ),
        (
            "stats_served_cached".into(),
            num(global.stats_served_cached.load(Ordering::Relaxed)),
        ),
        ("queue_len".into(), num(snap.queue_len as u64)),
        ("sessions".into(), num(snap.sessions as u64)),
        ("registry_shards".into(), num(snap.registry_shards as u64)),
        (
            "registry_shard_hits".into(),
            Json::Arr(snap.registry_shard_hits.iter().map(|&h| num(h)).collect()),
        ),
        ("cache_hits_total".into(), num(snap.cache_total.hits)),
        ("cache_misses_total".into(), num(snap.cache_total.misses)),
        (
            "cache_hit_rate_total".into(),
            Json::Num(if snap.cache_total.requests() == 0 {
                0.0
            } else {
                snap.cache_total.hit_rate()
            }),
        ),
        ("draining".into(), Json::Bool(snap.draining)),
    ])
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap IS the assertion
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bound_the_samples() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000, 1000, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert!(h.mean() > 0.0);
        // p50 covers the 4th sample (3) → bucket upper bound 3.
        assert_eq!(h.quantile(0.5), 3);
        // p99 covers 1000 → upper bound 1023.
        assert_eq!(h.quantile(0.99), 1023);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn zero_and_max_bucket_edges() {
        let h = Histogram::new();
        h.record(0);
        assert_eq!(h.quantile(1.0), 0);
        h.record(u64::MAX);
        // The top bucket's upper bound saturates.
        assert!(h.quantile(1.0) >= (1u64 << 63) - 1);
    }

    #[test]
    fn stats_render_without_traffic() {
        let m = SessionMetrics::default();
        let json = session_stats_json(
            &m,
            lca_probe::CacheStats {
                hits: 0,
                misses: 0,
                entries: 0,
            },
            lca_probe::ProbeCounts::default(),
            0.0,
        );
        let mut s = String::new();
        json.render(&mut s);
        assert!(s.contains("\"cache_hit_rate\":0"), "{s}");
        assert!(s.contains("\"qps\":0"), "{s}");
    }
}
