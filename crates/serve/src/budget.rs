//! Self-tuning probe budgets: the observe→fit→admit loop.
//!
//! The paper's defining resource is the per-query probe bound. PR 4 made it
//! an enforceable wire-level budget, but picking the number by hand is a
//! losing game: the hub-driven probe tails of Levi–Rubinfeld–Yodpinyanee
//! (arXiv:1502.04022) mean a cold-median budget exhausts roughly half the
//! implicit-workload queries. This module closes the loop instead — each
//! session observes its own probe spend into a *windowed* histogram and
//! periodically re-fits `max_probes` to a target percentile of what it has
//! actually seen.
//!
//! Windowing matters because the serving [`Histogram`](crate::metrics::Histogram)
//! is cumulative: it can never forget a cold start, so a fit against it would
//! be permanently anchored to the first expensive queries. The
//! [`WindowedHistogram`] here rotates at fixed observation-count epochs and
//! halves the carried counts on every rotation, so old mass decays
//! geometrically (weight `2^-k` after `k` windows) while recent windows
//! dominate the fit.
//!
//! Determinism story: the fitted budget is just a server-chosen `max_probes`.
//! The loadgen `--verify` invariant from PR 4 is unchanged — answers under a
//! budget must match the unbudgeted answer whenever the query completes, and
//! exhaustion is tolerated exactly where a deterministic cold replay admits
//! it. Adaptive fitting changes *how often* the budget trips, never *what*
//! a completed query answers.

#![warn(clippy::unwrap_used)]
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of log2 buckets, mirroring [`crate::metrics::Histogram`]:
/// bucket 0 holds value 0, bucket `i` holds values in `[2^(i-1), 2^i)`.
const BUCKETS: usize = 65;

/// Default number of observations per window before a rotation.
const DEFAULT_WINDOW: u64 = 256;

/// Default number of observations between budget re-fits.
const DEFAULT_REFIT_EVERY: u64 = 64;

#[inline]
fn bucket(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

#[inline]
fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A log2-bucketed histogram that forgets: observations accumulate into a
/// current window, and every `window` observations the window is folded into
/// a decayed carry with `carry = carry/2 + window`, so mass from `k` windows
/// ago contributes with weight `2^-k`.
///
/// Recording is lock-free in the common case; the fold at a window boundary
/// takes a private mutex so exactly one thread performs the rotation.
pub struct WindowedHistogram {
    cur: [AtomicU64; BUCKETS],
    decayed: [AtomicU64; BUCKETS],
    window: u64,
    in_window: AtomicU64,
    epochs: AtomicU64,
    rotate: Mutex<()>,
}

impl WindowedHistogram {
    /// Creates an empty windowed histogram rotating every `window`
    /// observations (values below 1 are clamped to 1).
    pub fn new(window: u64) -> Self {
        Self {
            cur: std::array::from_fn(|_| AtomicU64::new(0)),
            decayed: std::array::from_fn(|_| AtomicU64::new(0)),
            window: window.max(1),
            in_window: AtomicU64::new(0),
            epochs: AtomicU64::new(0),
            rotate: Mutex::new(()),
        }
    }

    /// Records one observation, rotating the window if this observation
    /// fills it.
    pub fn record(&self, value: u64) {
        // bucket() < BUCKETS by construction; get() keeps the hot path panic-free.
        if let Some(counter) = self.cur.get(bucket(value)) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
        let seen = self.in_window.fetch_add(1, Ordering::Relaxed) + 1;
        if seen >= self.window {
            self.try_rotate();
        }
    }

    fn try_rotate(&self) {
        // lint:allow(panic) — poison means a sibling recorder panicked; propagate
        let _guard = self.rotate.lock().expect("rotate mutex poisoned");
        // Double-check under the lock: a racing thread may have already
        // rotated on behalf of this window.
        if self.in_window.load(Ordering::Relaxed) < self.window {
            return;
        }
        for (cur, decayed) in self.cur.iter().zip(&self.decayed) {
            let fresh = cur.swap(0, Ordering::Relaxed);
            let old = decayed.load(Ordering::Relaxed);
            decayed.store(old / 2 + fresh, Ordering::Relaxed);
        }
        self.in_window.store(0, Ordering::Relaxed);
        self.epochs.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of completed window rotations.
    pub fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }

    /// The q-quantile (`0.0 < q <= 1.0`) over the combined decayed carry and
    /// current window, reported as the upper bound of the covering bucket.
    /// Returns 0 when empty. Allocation-free.
    pub fn quantile(&self, q: f64) -> u64 {
        let mut total: u64 = 0;
        for (decayed, cur) in self.decayed.iter().zip(&self.cur) {
            total += decayed.load(Ordering::Relaxed) + cur.load(Ordering::Relaxed);
        }
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, (decayed, cur)) in self.decayed.iter().zip(&self.cur).enumerate() {
            seen += decayed.load(Ordering::Relaxed) + cur.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        // Concurrent recording can only grow the second pass's counts, so the
        // rank computed from the first pass is always reachable; this line is
        // unreachable in practice.
        u64::MAX
    }
}

/// How a session asks the server to manage its probe budget, parsed from the
/// wire-level `budget_policy` request field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetPolicy {
    /// Disable adaptive fitting; only explicit or server-default budgets apply.
    Off,
    /// Fit the budget to a target percentile; `None` uses the server default.
    Adaptive(Option<f64>),
}

impl BudgetPolicy {
    /// Parses the wire grammar: `"off"` / `"none"` disable, `"adaptive"`
    /// enables at the server's default percentile, and `"pNN"` / `"pNN.N"`
    /// (with `0 < NN <= 100`) pins the target percentile. Returns `None` for
    /// anything else.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" | "none" => Some(Self::Off),
            "adaptive" => Some(Self::Adaptive(None)),
            _ => {
                let pct: f64 = s.strip_prefix('p')?.parse().ok()?;
                if pct > 0.0 && pct <= 100.0 {
                    Some(Self::Adaptive(Some(pct)))
                } else {
                    None
                }
            }
        }
    }
}

/// Server-side defaults for per-session budget controllers.
#[derive(Debug, Clone, Copy)]
pub struct BudgetPolicyConfig {
    /// Whether new sessions start with adaptive fitting enabled.
    pub enabled: bool,
    /// Target percentile for the fit (e.g. `99.0` for p99).
    pub percentile: f64,
    /// The fitted budget never drops below this floor.
    pub floor: u64,
    /// The fitted budget never exceeds this cap (typically the server's
    /// `--max-probes`); the cap wins if floor and cap conflict.
    pub cap: u64,
}

impl Default for BudgetPolicyConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            percentile: 99.0,
            floor: 8,
            cap: u64::MAX,
        }
    }
}

/// Per-session controller closing the observe→fit→admit loop: successful
/// queries feed their probe spend into a [`WindowedHistogram`], and every
/// `refit_every` observations the controller re-fits `max_probes` to the
/// target percentile, clamped to `[floor, cap]`.
///
/// Exhausted queries are censored observations — the true spend is unknown
/// but at least the limit — so they are recorded at twice the tripped limit.
/// This lets an over-tight fit recover upward instead of locking in.
///
/// The target percentile is stored in basis points (p99 → 9900); zero means
/// adaptive fitting is off. A fitted value of zero means "not fitted yet".
pub struct BudgetController {
    hist: WindowedHistogram,
    target_bp: AtomicU64,
    floor: u64,
    cap: u64,
    fitted: AtomicU64,
    refits: AtomicU64,
    since_refit: AtomicU64,
    refit_every: u64,
    samples: AtomicU64,
}

impl BudgetController {
    /// Creates a controller with the default window (256) and refit cadence
    /// (every 64 observations).
    pub fn new(cfg: BudgetPolicyConfig) -> Self {
        Self::with_tuning(cfg, DEFAULT_WINDOW, DEFAULT_REFIT_EVERY)
    }

    /// Creates a controller with explicit window / refit cadence, mainly for
    /// tests that want fast rotation.
    pub fn with_tuning(cfg: BudgetPolicyConfig, window: u64, refit_every: u64) -> Self {
        let target_bp = if cfg.enabled {
            percentile_to_bp(cfg.percentile)
        } else {
            0
        };
        Self {
            hist: WindowedHistogram::new(window),
            target_bp: AtomicU64::new(target_bp),
            floor: cfg.floor,
            cap: cfg.cap,
            fitted: AtomicU64::new(0),
            refits: AtomicU64::new(0),
            since_refit: AtomicU64::new(0),
            refit_every: refit_every.max(1),
            samples: AtomicU64::new(0),
        }
    }

    /// Applies a wire-level policy request; `default_percentile` fills in
    /// `"adaptive"` with the server's configured target. Enabling (or
    /// retargeting) re-fits immediately so the next query sees the new
    /// policy.
    pub fn set_policy(&self, policy: BudgetPolicy, default_percentile: f64) {
        match policy {
            BudgetPolicy::Off => {
                self.target_bp.store(0, Ordering::Relaxed);
            }
            BudgetPolicy::Adaptive(pct) => {
                let bp = percentile_to_bp(pct.unwrap_or(default_percentile));
                self.target_bp.store(bp, Ordering::Relaxed);
                self.refit();
            }
        }
    }

    /// Records the probe spend of a successfully completed query and re-fits
    /// on cadence.
    pub fn observe(&self, spent: u64) {
        self.hist.record(spent);
        self.samples.fetch_add(1, Ordering::Relaxed);
        let since = self.since_refit.fetch_add(1, Ordering::Relaxed) + 1;
        if since >= self.refit_every && self.enabled() {
            self.since_refit.store(0, Ordering::Relaxed);
            self.refit();
        }
    }

    /// Records a budget-exhausted query as a censored observation at twice
    /// the tripped limit.
    pub fn observe_exhausted(&self, limit: u64) {
        self.observe(limit.saturating_mul(2));
    }

    /// Re-fits the budget to the target percentile of the windowed histogram,
    /// clamped to `[floor, cap]` (cap wins). No-op while disabled or before
    /// any observations.
    pub fn refit(&self) {
        let bp = self.target_bp.load(Ordering::Relaxed);
        if bp == 0 {
            return;
        }
        let q = self.hist.quantile(bp as f64 / 10_000.0);
        if q == 0 && self.samples.load(Ordering::Relaxed) == 0 {
            return;
        }
        let fitted = q.max(self.floor).min(self.cap);
        self.fitted.store(fitted, Ordering::Relaxed);
        self.refits.fetch_add(1, Ordering::Relaxed);
    }

    /// The fitted budget, if adaptive fitting is enabled and a fit has
    /// happened.
    pub fn fitted(&self) -> Option<u64> {
        if !self.enabled() {
            return None;
        }
        match self.fitted.load(Ordering::Relaxed) {
            0 => None,
            n => Some(n),
        }
    }

    /// Whether adaptive fitting is currently enabled.
    pub fn enabled(&self) -> bool {
        self.target_bp.load(Ordering::Relaxed) != 0
    }

    /// The target percentile (e.g. `99.0`), or 0.0 while disabled.
    pub fn target_percentile(&self) -> f64 {
        self.target_bp.load(Ordering::Relaxed) as f64 / 100.0
    }

    /// Renders the per-session `budget` stats block.
    pub fn stats_json(&self) -> serde::Json {
        use serde::Json;
        let bp = self.target_bp.load(Ordering::Relaxed);
        let policy = if bp == 0 {
            "off".to_string()
        } else if bp.is_multiple_of(100) {
            format!("p{}", bp / 100)
        } else {
            format!("p{}", bp as f64 / 100.0)
        };
        Json::Obj(vec![
            ("policy".into(), Json::Str(policy)),
            (
                "target_percentile".into(),
                Json::Num(self.target_percentile()),
            ),
            (
                "fitted_max_probes".into(),
                Json::Num(self.fitted.load(Ordering::Relaxed) as f64),
            ),
            (
                "refits".into(),
                Json::Num(self.refits.load(Ordering::Relaxed) as f64),
            ),
            ("window_epochs".into(), Json::Num(self.hist.epochs() as f64)),
            (
                "samples".into(),
                Json::Num(self.samples.load(Ordering::Relaxed) as f64),
            ),
        ])
    }
}

fn percentile_to_bp(pct: f64) -> u64 {
    ((pct.clamp(0.01, 100.0)) * 100.0).round() as u64
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap IS the assertion
mod tests {
    use super::*;

    #[test]
    fn windowed_histogram_rotates_and_decays_geometrically() {
        let h = WindowedHistogram::new(4);
        // Window 1: four large values fill the window and rotate.
        for _ in 0..4 {
            h.record(1000);
        }
        assert_eq!(h.epochs(), 1);
        // Large values dominate: p50 covers the 1000-bucket upper bound.
        assert_eq!(h.quantile(0.5), 1023);
        // Two windows of small values: the carry halves twice (4 → 2 → 1)
        // while 8 fresh small observations accumulate, so the median and
        // even p80 move to the small bucket.
        for _ in 0..8 {
            h.record(3);
        }
        assert_eq!(h.epochs(), 3);
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(0.8), 3);
        // The decayed large mass still shows at the extreme tail.
        assert_eq!(h.quantile(1.0), 1023);
    }

    #[test]
    fn windowed_histogram_is_empty_safe_and_partial_windows_count() {
        let h = WindowedHistogram::new(100);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.epochs(), 0);
        h.record(7);
        // A partial window still contributes to quantiles before rotation.
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.epochs(), 0);
    }

    #[test]
    fn refit_converges_when_the_distribution_shifts_down() {
        let cfg = BudgetPolicyConfig {
            enabled: true,
            percentile: 99.0,
            floor: 1,
            cap: u64::MAX,
        };
        let c = BudgetController::with_tuning(cfg, 8, 8);
        for _ in 0..16 {
            c.observe(5000);
        }
        let hot = c.fitted().expect("fitted after cold window");
        assert!(hot >= 5000, "p99 fit covers the observed cold spend");
        // The workload warms up: spends drop two orders of magnitude. After
        // enough windows the cold mass decays below the p99 rank.
        for _ in 0..800 {
            c.observe(12);
        }
        let warm = c.fitted().expect("fitted after warm windows");
        assert!(
            warm <= 15,
            "fit follows the shifted distribution down, got {warm}"
        );
        assert!(
            c.stats_json()
                .get("refits")
                .and_then(|j| j.as_u64())
                .unwrap()
                >= 2
        );
    }

    #[test]
    fn exhausted_observations_are_censored_upward() {
        let cfg = BudgetPolicyConfig {
            enabled: true,
            percentile: 50.0,
            floor: 1,
            cap: u64::MAX,
        };
        let c = BudgetController::with_tuning(cfg, 4, 4);
        // Every query trips a limit of 10: censored records at 20 push the
        // fit above the tripped limit so it can recover.
        for _ in 0..8 {
            c.observe_exhausted(10);
        }
        let fitted = c.fitted().expect("fitted from censored observations");
        assert!(fitted > 10, "censored fit must exceed the tripped limit");
    }

    #[test]
    fn clamps_apply_floor_then_cap_and_cap_wins() {
        let floor_cfg = BudgetPolicyConfig {
            enabled: true,
            percentile: 99.0,
            floor: 64,
            cap: u64::MAX,
        };
        let c = BudgetController::with_tuning(floor_cfg, 4, 4);
        for _ in 0..4 {
            c.observe(1);
        }
        assert_eq!(c.fitted(), Some(64), "floor lifts a tiny fit");

        let cap_cfg = BudgetPolicyConfig {
            enabled: true,
            percentile: 99.0,
            floor: 8,
            cap: 100,
        };
        let c = BudgetController::with_tuning(cap_cfg, 4, 4);
        for _ in 0..4 {
            c.observe(1_000_000);
        }
        assert_eq!(c.fitted(), Some(100), "cap bounds a huge fit");

        let conflict = BudgetPolicyConfig {
            enabled: true,
            percentile: 99.0,
            floor: 500,
            cap: 100,
        };
        let c = BudgetController::with_tuning(conflict, 4, 4);
        for _ in 0..4 {
            c.observe(10);
        }
        assert_eq!(c.fitted(), Some(100), "cap wins over a conflicting floor");
    }

    #[test]
    fn disabled_controller_observes_but_never_fits() {
        let c = BudgetController::with_tuning(BudgetPolicyConfig::default(), 4, 4);
        for _ in 0..16 {
            c.observe(100);
        }
        assert_eq!(c.fitted(), None);
        assert!(!c.enabled());
        // Enabling via a wire policy fits immediately from the history.
        c.set_policy(BudgetPolicy::Adaptive(None), 95.0);
        assert!(c.enabled());
        assert!(c.fitted().is_some());
        assert!((c.target_percentile() - 95.0).abs() < 1e-9);
        // Turning it back off hides the fit without erasing history.
        c.set_policy(BudgetPolicy::Off, 95.0);
        assert_eq!(c.fitted(), None);
    }

    #[test]
    fn policy_grammar_parses_and_rejects() {
        assert_eq!(BudgetPolicy::parse("off"), Some(BudgetPolicy::Off));
        assert_eq!(BudgetPolicy::parse("none"), Some(BudgetPolicy::Off));
        assert_eq!(
            BudgetPolicy::parse("adaptive"),
            Some(BudgetPolicy::Adaptive(None))
        );
        assert_eq!(
            BudgetPolicy::parse("p99"),
            Some(BudgetPolicy::Adaptive(Some(99.0)))
        );
        assert_eq!(
            BudgetPolicy::parse("p99.5"),
            Some(BudgetPolicy::Adaptive(Some(99.5)))
        );
        assert_eq!(
            BudgetPolicy::parse("p100"),
            Some(BudgetPolicy::Adaptive(Some(100.0)))
        );
        for junk in ["", "p0", "p101", "p-5", "percentile", "99", "P99"] {
            assert_eq!(BudgetPolicy::parse(junk), None, "junk {junk:?} must fail");
        }
    }

    #[test]
    fn stats_block_renders_policy_and_counters() {
        let cfg = BudgetPolicyConfig {
            enabled: true,
            percentile: 99.5,
            floor: 8,
            cap: u64::MAX,
        };
        let c = BudgetController::with_tuning(cfg, 4, 4);
        for _ in 0..8 {
            c.observe(100);
        }
        let stats = c.stats_json();
        assert_eq!(stats.get("policy").and_then(|j| j.as_str()), Some("p99.5"));
        assert_eq!(stats.get("samples").and_then(|j| j.as_u64()), Some(8));
        assert!(
            stats
                .get("fitted_max_probes")
                .and_then(|j| j.as_u64())
                .unwrap()
                >= 100
        );
        assert!(stats.get("refits").and_then(|j| j.as_u64()).unwrap() >= 1);
        assert_eq!(stats.get("window_epochs").and_then(|j| j.as_u64()), Some(2));
    }
}
