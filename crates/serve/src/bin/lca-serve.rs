//! The serving daemon.
//!
//! ```text
//! lca-serve [--addr 127.0.0.1:7400] [--workers N] [--queue N]
//!           [--max-probes P] [--deadline-ms MS] [--adaptive-budgets]
//!           [--budget-percentile P] [--budget-floor F]
//!           [--max-connections C] [--backend epoll|sweep]
//!           [--backend-id ID] [--stdin]
//! ```
//!
//! `--max-probes`/`--deadline-ms` install a server-side default query
//! budget; requests carrying their own `max_probes`/`deadline_ms` fields
//! override it field-by-field.
//!
//! `--adaptive-budgets` starts every session with adaptive budget fitting
//! enabled: the server fits each session's `max_probes` to
//! `--budget-percentile` (default p99) of its observed probe distribution,
//! clamped to `[--budget-floor, --max-probes]`. Explicit request
//! `max_probes` always wins, and sessions can opt in or out per request
//! with the `budget_policy` field.
//!
//! TCP connections are served by a single-threaded event-driven reactor
//! (no per-connection threads); `--max-connections` (default 10240) sizes
//! the process's fd soft limit accordingly, and `--backend` forces a
//! readiness backend (default: epoll on Linux, the portable sweep
//! elsewhere).
//!
//! Responses default to newline-JSON; a client may switch its own
//! connection to length-prefixed binary frames by sending
//! `{"op": "hello", "frame": "binary"}` as its first request (requests stay
//! newline-JSON either way). No server flag is needed — framing is
//! negotiated per connection. See `docs/PROTOCOL.md` for the frame layout.
//!
//! TCP mode prints one `{"listening": "<addr>"}` line to stdout once bound
//! (with `--addr host:0` the kernel picks the port — scrape it from that
//! line), then serves until a `{"op": "shutdown"}` request drains it.
//! `--stdin` serves requests from stdin to stdout instead — no socket, same
//! protocol — which is what the docs examples and CI smoke use.
//!
//! Protocol reference: `docs/PROTOCOL.md`.

// This binary's product is its stdout; the workspace print ban
// applies to library code, not report/CLI entry points.
#![allow(clippy::print_stdout)]
use std::process::ExitCode;
use std::sync::atomic::Ordering;

use lca_serve::server::{bind, Server, ServerConfig};

struct Args {
    addr: String,
    config: ServerConfig,
    stdin: bool,
    max_connections: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7400".to_owned(),
        config: ServerConfig::default(),
        stdin: false,
        max_connections: 10_240,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                args.config.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--max-probes" => {
                args.config.default_budget.max_probes = Some(
                    value("--max-probes")?
                        .parse()
                        .map_err(|e| format!("--max-probes: {e}"))?,
                )
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
                args.config.default_budget.timeout = Some(std::time::Duration::from_millis(ms));
            }
            "--adaptive-budgets" => args.config.adaptive_budgets = true,
            "--budget-percentile" => {
                let pct: f64 = value("--budget-percentile")?
                    .parse()
                    .map_err(|e| format!("--budget-percentile: {e}"))?;
                if !(pct > 0.0 && pct <= 100.0) {
                    return Err(format!(
                        "--budget-percentile must be in (0, 100], got {pct}"
                    ));
                }
                args.config.budget_percentile = pct;
            }
            "--budget-floor" => {
                args.config.budget_floor = value("--budget-floor")?
                    .parse()
                    .map_err(|e| format!("--budget-floor: {e}"))?
            }
            "--max-connections" => {
                args.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?
            }
            "--backend" => {
                let backend = value("--backend")?;
                if backend != "epoll" && backend != "sweep" {
                    return Err(format!("--backend must be epoll or sweep, got {backend:?}"));
                }
                // The reactor's poller reads this env var at startup.
                std::env::set_var("LCA_SERVE_BACKEND", backend);
            }
            "--backend-id" => args.config.backend_id = value("--backend-id")?,
            "--stdin" => args.stdin = true,
            "--help" | "-h" => {
                return Err(
                    "usage: lca-serve [--addr host:port] [--workers N] [--queue N] \
                     [--max-probes P] [--deadline-ms MS] [--adaptive-budgets] \
                     [--budget-percentile P] [--budget-floor F] \
                     [--max-connections C] [--backend epoll|sweep] \
                     [--backend-id ID] [--stdin]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let server = Server::new(args.config);
    if args.stdin {
        server.serve_stdio();
        return ExitCode::SUCCESS;
    }
    // Thousands of open sockets need fds: grow the soft limit toward the
    // target before binding (best-effort — the hard limit caps it).
    if let Err(e) = lca_serve::raise_fd_limit(args.max_connections + 128) {
        eprintln!("warning: could not raise fd limit: {e}");
    }
    let listener = match bind(&*args.addr) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        Ok(addr) => println!("{{\"listening\":\"{addr}\"}}"),
        Err(e) => {
            eprintln!("failed to read bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = server.serve(listener) {
        eprintln!("serve error: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "drained: {} requests served, {} sessions resident",
        server.global.requests.load(Ordering::Relaxed),
        server.registry.len()
    );
    ExitCode::SUCCESS
}
