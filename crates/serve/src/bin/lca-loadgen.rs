//! The load generator.
//!
//! ```text
//! lca-loadgen --addr 127.0.0.1:7400 [--requests 1000] [--concurrency 4]
//!             [--connections C] [--mix mis,spanner3] [--family gnp]
//!             [--n 1000000] [--seed 7] [--knob C] [--rate QPS]
//!             [--max-probes P] [--budget-policy POLICY] [--verify]
//!             [--session PREFIX] [--pool N] [--shutdown]
//!             [--frames json|binary] [--target http://host:port]
//! ```
//!
//! `--budget-policy` sends the `budget_policy` field with every request
//! (`off`, `adaptive`, or a percentile like `p95`), asking the server to
//! fit each session's probe budget to its observed distribution; `--verify`
//! stays sound because server-chosen budgets are tolerated exactly like
//! server-side defaults (answers must still match).
//!
//! `--frames binary` negotiates length-prefixed binary response frames on
//! every connection (a `hello` handshake per socket); requests stay
//! newline-JSON and `--verify` is unchanged because decoded frames are
//! re-rendered to the canonical JSON line before checking. Incompatible
//! with `--target` (the gateway speaks HTTP).
//!
//! `--target http://host:port` points the same traffic shapes at an
//! `lca-gateway` over HTTP/1.1 (`POST /v1/query` per request) instead of
//! raw newline-JSON — one tool measures both serving tiers. `--shutdown`
//! then drains the *gateway* (`POST /v1/shutdown`), not its backends.
//!
//! Drives an `lca-serve` daemon closed-loop (default), open-loop
//! (`--rate`), or in high-fan-in mode (`--connections C`: C sockets held
//! open simultaneously across the `--concurrency` sender threads, one
//! in-flight request per socket — the C10k probe; the process raises its
//! own fd soft limit to fit). Prints the machine-readable [`LoadReport`]
//! as one JSON line,
//! then the server's `stats` object on a second line. `--verify` recomputes
//! every answer locally through `LcaBuilder` and counts mismatches;
//! `--shutdown` drains the daemon afterwards. Exit code is nonzero when
//! anything went wrong: protocol errors, mismatches, or zero throughput —
//! which is what the CI smoke step asserts.

use std::process::ExitCode;

use lca::prelude::{AlgorithmKind, ImplicitFamily};
use lca_serve::loadgen::{run, send_shutdown, LoadReport, LoadgenConfig};

struct Args {
    addr: String,
    cfg: LoadgenConfig,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7400".to_owned(),
        cfg: LoadgenConfig::default(),
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--target" => {
                let target = value("--target")?;
                let Some(addr) = target.strip_prefix("http://") else {
                    return Err(format!(
                        "--target must be http://host:port, got {target:?} \
                         (use --addr for raw newline-JSON)"
                    ));
                };
                args.addr = addr.trim_end_matches('/').to_owned();
                args.cfg.http = true;
            }
            "--requests" => {
                args.cfg.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--concurrency" => {
                args.cfg.concurrency = value("--concurrency")?
                    .parse()
                    .map_err(|e| format!("--concurrency: {e}"))?
            }
            "--connections" => {
                args.cfg.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?
            }
            "--mix" => {
                let spec = value("--mix")?;
                let mut kinds = Vec::new();
                for name in spec.split(',') {
                    kinds.push(
                        AlgorithmKind::parse(name.trim())
                            .ok_or_else(|| format!("--mix: unknown kind {name:?}"))?,
                    );
                }
                if kinds.is_empty() {
                    return Err("--mix needs at least one kind".to_owned());
                }
                args.cfg.kinds = kinds;
            }
            "--family" => {
                let name = value("--family")?;
                args.cfg.family = ImplicitFamily::parse(&name)
                    .ok_or_else(|| format!("--family: unknown family {name:?}"))?;
            }
            "--n" => args.cfg.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--seed" => {
                args.cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--knob" => {
                args.cfg.knob = Some(
                    value("--knob")?
                        .parse()
                        .map_err(|e| format!("--knob: {e}"))?,
                )
            }
            "--rate" => {
                args.cfg.rate = Some(
                    value("--rate")?
                        .parse()
                        .map_err(|e| format!("--rate: {e}"))?,
                )
            }
            "--max-probes" => {
                args.cfg.max_probes = Some(
                    value("--max-probes")?
                        .parse()
                        .map_err(|e| format!("--max-probes: {e}"))?,
                )
            }
            "--budget-policy" => {
                let policy = value("--budget-policy")?;
                if lca_serve::budget::BudgetPolicy::parse(&policy).is_none() {
                    return Err(format!(
                        "--budget-policy: unknown policy {policy:?} \
                         (use off, adaptive, or pNN like p95)"
                    ));
                }
                args.cfg.budget_policy = Some(policy);
            }
            "--frames" => {
                let name = value("--frames")?;
                args.cfg.frames = lca_serve::proto::FrameFormat::parse(&name)
                    .ok_or_else(|| format!("--frames: unknown framing {name:?} (json|binary)"))?;
            }
            "--verify" => args.cfg.verify = true,
            "--session" => args.cfg.session_prefix = value("--session")?,
            "--pool" => {
                args.cfg.query_pool = value("--pool")?
                    .parse()
                    .map_err(|e| format!("--pool: {e}"))?
            }
            "--shutdown" => args.shutdown = true,
            "--help" | "-h" => {
                return Err(
                    "usage: lca-loadgen --addr host:port [--requests N] [--concurrency C] \
                     [--connections C] [--mix k1,k2] [--family F] [--n N] [--seed S] [--knob X] \
                     [--rate QPS] [--max-probes P] [--budget-policy POLICY] [--verify] \
                     [--session PREFIX] [--pool N] [--frames json|binary] \
                     [--shutdown] [--target http://host:port]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if args.cfg.http && args.cfg.frames == lca_serve::proto::FrameFormat::Binary {
        return Err("--frames binary is a backend-protocol feature; \
             it cannot be combined with --target (the gateway speaks HTTP)"
            .to_owned());
    }
    Ok(args)
}

fn healthy(report: &LoadReport) -> bool {
    report.ok > 0 && report.qps > 0.0 && report.errors == 0 && report.mismatches == 0
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.cfg.connections > 0 {
        // Fan-in mode needs its sockets to fit under the fd soft limit;
        // each connection costs two fds (the stream plus its try_clone
        // writer dup).
        if let Err(e) = lca_serve::raise_fd_limit(2 * args.cfg.connections as u64 + 128) {
            eprintln!("warning: could not raise fd limit: {e}");
        }
    }
    let outcome = run(&args.addr, &args.cfg);
    if args.shutdown {
        let result = if args.cfg.http {
            lca_serve::loadgen::send_shutdown_http(&args.addr)
        } else {
            send_shutdown(&args.addr)
        };
        if let Err(e) = result {
            eprintln!("shutdown request failed: {e}");
        }
    }
    match outcome {
        Ok(run) => {
            // Reports are routinely piped (`| head`, `| jq`): a closed pipe
            // must not panic the exit-code contract away.
            use std::io::Write as _;
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            let report = serde_json::to_string(&run.report).expect("report renders");
            let _ = writeln!(out, "{report}");
            if let Some(stats) = &run.server_stats {
                let mut line = String::new();
                stats.render(&mut line);
                let _ = writeln!(out, "{line}");
            }
            let _ = out.flush();
            drop(out);
            if healthy(&run.report) {
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "unhealthy run: ok={} errors={} mismatches={} qps={:.1}",
                    run.report.ok, run.report.errors, run.report.mismatches, run.report.qps
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("loadgen transport error: {e}");
            ExitCode::FAILURE
        }
    }
}
