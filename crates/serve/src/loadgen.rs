//! The load generator: drive an `lca-serve` daemon and report throughput.
//!
//! Three traffic shapes:
//!
//! * **Closed loop** (default): each of `concurrency` connections keeps
//!   exactly one request in flight — the classic saturation probe.
//! * **Open loop** (`rate`): targets an offered load in requests/second; a
//!   per-connection reader thread matches responses to requests by `id`,
//!   so slow responses queue instead of slowing the arrival process.
//! * **Fan-in** (`connections > 0`): the high-fan-in C10k probe. A few
//!   sender threads hold *many* sockets open at once (one in-flight
//!   request per socket, sends issued across a thread's whole socket set
//!   before any response is awaited, optional `rate` pacing), so a
//!   thousand simultaneous open connections hit a daemon whose worker
//!   pool is a handful of threads — exactly the shape the event-driven
//!   reactor exists for. The server's `stats` are fetched *while every
//!   socket is still open*, so the report's `connections_open` witnesses
//!   the simultaneity instead of asserting it.
//!
//! Queries are sampled client-side from the *same* implicit oracle the
//! server builds — the generator needs only `(family, n, seed)` to produce
//! valid vertex and edge queries, which is the whole point of implicit
//! inputs.
//!
//! With [`LoadgenConfig::http`] (the `--target http://host:port` flag) the
//! same traffic shapes drive an `lca-gateway` instead: each request line
//! ships as the body of a `POST /v1/query` and each response is read back
//! out of the HTTP response body — one tool measures both tiers, and the
//! `--verify` machinery applies unchanged because the gateway passes
//! backend response lines through verbatim.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use lca::core::DynQuery;
use lca::prelude::*;
use serde::Json;

/// What `--verify` expects for one query under the configured budget.
///
/// Soundness of the budget half: the server's classic-LCA sessions memoize
/// decisions across queries, and memo warmth only ever *reduces* a query's
/// probe spend, so a cold (fresh-instance) local run upper-bounds the
/// server's spend for the same query at any point in the traffic. Hence,
/// when the client configures `--max-probes` (request fields override any
/// server-side default, so the effective probe budget is known):
///
/// * cold run fits the budget ⇒ the server can never exhaust on this
///   query — a `budget-exhausted` response is a mismatch
///   (`may_exhaust == false`);
/// * cold run trips ⇒ the server may either exhaust (cold memo) or answer
///   (warm memo); an answer must still equal `answer`.
///
/// Without a client-side `--max-probes`, a `budget-exhausted` response can
/// only come from a server-side default (`lca-serve --max-probes`) the
/// generator cannot model, so it is tolerated (`may_exhaust == true`).
/// `deadline-exceeded` is tolerated unconditionally — wall-clock trips are
/// inherently nondeterministic.
#[derive(Debug, Clone, Copy)]
struct Expected {
    /// The unbudgeted answer (what any successful response must equal).
    answer: bool,
    /// Whether a `budget-exhausted` response is acceptable for this query.
    may_exhaust: bool,
}

use crate::proto::{self, FrameFormat, QueryPayload};
use crate::{algo_seed, input_seed};

/// What to throw at the daemon.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Total requests to send across all connections.
    pub requests: usize,
    /// Worker threads (and, when [`LoadgenConfig::connections`] is 0, the
    /// connection count: one connection per thread).
    pub concurrency: usize,
    /// Fan-in mode when nonzero: this many simultaneously open sockets
    /// spread across the `concurrency` sender threads, one in-flight
    /// request per socket. `0` keeps the classic one-connection-per-thread
    /// loops.
    pub connections: usize,
    /// Query mix: round-robin across these kinds (one session per kind).
    pub kinds: Vec<AlgorithmKind>,
    /// Input family for every session.
    pub family: ImplicitFamily,
    /// Vertex count of every session.
    pub n: usize,
    /// Session seed (input and algorithm seeds derive from it).
    pub seed: u64,
    /// Family shape knob, forwarded verbatim.
    pub knob: Option<f64>,
    /// `Some(rate)` = open loop at `rate` requests/second total;
    /// `None` = closed loop.
    pub rate: Option<f64>,
    /// Per-query probe budget sent with every request (`max_probes` wire
    /// field); budget trips are counted, not treated as errors.
    pub max_probes: Option<u64>,
    /// Adaptive-budget policy sent with every request (`budget_policy`
    /// wire field, e.g. `"p99"`). Server-fitted budgets can trip like any
    /// server-side default, which `--verify` tolerates deterministically
    /// (see [`Expected`]); answers must still match.
    pub budget_policy: Option<String>,
    /// Recompute every answer locally and count mismatches (the acceptance
    /// check: served answers must equal direct `LcaBuilder` queries).
    pub verify: bool,
    /// Session names are `{prefix}-{kind}`.
    pub session_prefix: String,
    /// Distinct queries sampled per kind (requests cycle through them, so
    /// smaller pools produce hotter, more cacheable traffic).
    pub query_pool: usize,
    /// Speak HTTP/1.1 to an `lca-gateway` instead of newline-JSON to an
    /// `lca-serve`: request lines become `POST /v1/query` bodies, stats
    /// come from `GET /v1/stats`, shutdown from `POST /v1/shutdown`.
    pub http: bool,
    /// Response framing negotiated per connection (`--frames binary` sends
    /// a `hello` after connect and decodes length-prefixed frames). Every
    /// decoded frame is re-rendered to the canonical JSON line before
    /// tallying, so the `--verify` machinery is byte-identical across
    /// framings. Incompatible with [`LoadgenConfig::http`].
    pub frames: FrameFormat,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            requests: 1_000,
            concurrency: 4,
            connections: 0,
            kinds: vec![AlgorithmKind::Classic(ClassicKind::Mis)],
            family: ImplicitFamily::Gnp,
            n: 1_000_000,
            seed: 7,
            knob: None,
            rate: None,
            max_probes: None,
            budget_policy: None,
            verify: false,
            session_prefix: "loadgen".to_owned(),
            query_pool: 256,
            http: false,
            frames: FrameFormat::Json,
        }
    }
}

/// The machine-readable throughput report.
#[derive(Debug, Clone, serde::Serialize)]
pub struct LoadReport {
    /// Requests attempted.
    pub requests: usize,
    /// Sockets the generator held open simultaneously (fan-in mode; the
    /// thread count in the classic loops).
    pub connections: usize,
    /// Requests answered with an `answer` field.
    pub ok: u64,
    /// YES answers among them.
    pub yes: u64,
    /// Protocol errors (anything with an `error` field except
    /// `overloaded`), plus transport failures.
    pub errors: u64,
    /// `overloaded` bounces observed (closed loop retries them; open loop
    /// counts and moves on).
    pub overloaded: u64,
    /// `budget-exhausted`/`deadline-exceeded` responses — accepted
    /// budgeted misses, not errors (never retried).
    pub budget_exhausted: u64,
    /// Answers that contradicted a direct local computation (only counted
    /// with [`LoadgenConfig::verify`]).
    pub mismatches: u64,
    /// Total probes the server reported across all answers.
    pub probes: u64,
    /// Wall-clock duration of the run.
    pub elapsed_s: f64,
    /// Answered requests per second.
    pub qps: f64,
    /// Median response latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile response latency, microseconds.
    pub p99_us: u64,
    /// Mean response latency, microseconds.
    pub mean_us: f64,
}

/// A finished run: the report plus the server's own `stats` object,
/// fetched after the last response.
#[derive(Debug, Clone)]
pub struct LoadRun {
    /// Client-side throughput report.
    pub report: LoadReport,
    /// The daemon's `stats` response (`None` if the fetch failed).
    pub server_stats: Option<Json>,
}

/// One kind's prepared traffic: session name, request-line prefix with the
/// full spec, sampled query pool, and (under `verify`) expected answers.
struct KindPlan {
    session: String,
    spec_fields: String,
    queries: Vec<QueryPayload>,
    expected: Vec<Expected>,
}

fn payload_json(q: QueryPayload) -> String {
    match q {
        QueryPayload::Vertex(v) => format!("{v}"),
        QueryPayload::Edge(u, v) => format!("[{u},{v}]"),
    }
}

fn prepare(cfg: &LoadgenConfig) -> Vec<KindPlan> {
    let oracle = cfg.family.build_with(cfg.n, input_seed(cfg.seed), cfg.knob);
    cfg.kinds
        .iter()
        .enumerate()
        .map(|(ki, &kind)| {
            let sample_seed = Seed::new(cfg.seed).derive2(0x5156_504F_4F4C, ki as u64);
            let queries: Vec<QueryPayload> =
                QuerySource::sample(cfg.query_pool.max(1), sample_seed)
                    .queries(kind, &oracle)
                    .into_iter()
                    .map(|q| match q {
                        DynQuery::Vertex(v) => QueryPayload::Vertex(v.raw() as u64),
                        DynQuery::Edge(u, v) => QueryPayload::Edge(u.raw() as u64, v.raw() as u64),
                    })
                    .collect();
            let expected = if cfg.verify {
                let algo = LcaBuilder::new(kind)
                    .seed(algo_seed(cfg.seed))
                    .build(&oracle);
                queries
                    .iter()
                    .map(|&q| {
                        let dyn_q = match q {
                            QueryPayload::Vertex(v) => {
                                DynQuery::Vertex(lca_graph::VertexId::new(v as usize))
                            }
                            QueryPayload::Edge(u, v) => DynQuery::Edge(
                                lca_graph::VertexId::new(u as usize),
                                lca_graph::VertexId::new(v as usize),
                            ),
                        };
                        let answer = algo.query(dyn_q).expect("local verification query failed");
                        let may_exhaust = match cfg.max_probes {
                            // No client budget: only a server-side default
                            // could trip, which we cannot model — tolerate.
                            None => true,
                            Some(limit) => {
                                // Cold run: a fresh instance per query, so
                                // memo warmth cannot hide exhaustion the
                                // server could still hit (see [`Expected`]).
                                let cold = LcaBuilder::new(kind)
                                    .seed(algo_seed(cfg.seed))
                                    .build(&oracle);
                                let ctx = QueryCtx::new(Some(limit), None, None);
                                match cold.query_ctx(dyn_q, &ctx) {
                                    Ok(a) => {
                                        assert_eq!(a, answer, "budgeted local answer diverged");
                                        false
                                    }
                                    Err(e) if e.is_budget() => true,
                                    Err(e) => {
                                        panic!("local budgeted verification failed: {e}")
                                    }
                                }
                            }
                        };
                        Expected {
                            answer,
                            may_exhaust,
                        }
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let mut spec_fields = format!(
                "\"kind\":\"{}\",\"family\":\"{}\",\"n\":{},\"seed\":{}",
                kind.name(),
                cfg.family.name(),
                cfg.n,
                cfg.seed
            );
            if let Some(knob) = cfg.knob {
                spec_fields.push_str(&format!(",\"knob\":{knob}"));
            }
            KindPlan {
                session: format!("{}-{}", cfg.session_prefix, kind.name()),
                spec_fields,
                queries,
                expected,
            }
        })
        .collect()
}

#[derive(Default)]
struct Tally {
    ok: u64,
    yes: u64,
    errors: u64,
    overloaded: u64,
    budget_exhausted: u64,
    mismatches: u64,
    probes: u64,
    latencies_us: Vec<u64>,
}

impl Tally {
    fn merge(&mut self, other: Tally) {
        self.ok += other.ok;
        self.yes += other.yes;
        self.errors += other.errors;
        self.overloaded += other.overloaded;
        self.budget_exhausted += other.budget_exhausted;
        self.mismatches += other.mismatches;
        self.probes += other.probes;
        self.latencies_us.extend(other.latencies_us);
    }

    /// Classifies one response line; `expected` is the locally recomputed
    /// outcome under `verify`. Returns `true` when the request should be
    /// retried (closed-loop overload).
    fn absorb(&mut self, line: &str, expected: Option<Expected>, micros: u64) -> bool {
        let Ok(v) = serde_json::from_str(line) else {
            self.errors += 1;
            return false;
        };
        if let Some(err) = v.get("error").and_then(Json::as_str) {
            if err == "overloaded" {
                self.overloaded += 1;
                return true;
            }
            if err == "deadline-exceeded" {
                // Wall-clock trips are nondeterministic: count, never judge.
                self.budget_exhausted += 1;
                return false;
            }
            if err == "budget-exhausted" {
                self.budget_exhausted += 1;
                // Deterministic tolerance: a trip is only legal when the
                // cold local run exceeds the client's budget too (or no
                // client budget was configured — see [`Expected`]).
                if matches!(expected, Some(e) if !e.may_exhaust) {
                    self.mismatches += 1;
                }
                return false;
            }
            self.errors += 1;
            return false;
        }
        match v.get("answer").and_then(Json::as_bool) {
            Some(answer) => {
                self.ok += 1;
                self.yes += u64::from(answer);
                self.probes += v.get("probes").and_then(Json::as_u64).unwrap_or(0);
                self.latencies_us.push(micros);
                if let Some(expected) = expected {
                    if answer != expected.answer {
                        self.mismatches += 1;
                    }
                }
                false
            }
            None => {
                self.errors += 1;
                false
            }
        }
    }
}

fn request_line(plan: &KindPlan, query_idx: usize, id: u64, cfg: &LoadgenConfig) -> String {
    // The session name carries the user-supplied --session prefix: render
    // it through the JSON writer so quotes/backslashes stay well-formed.
    let mut session = String::new();
    Json::Str(plan.session.clone()).render(&mut session);
    let mut budget = match cfg.max_probes {
        Some(n) => format!(",\"max_probes\":{n}"),
        None => String::new(),
    };
    if let Some(policy) = &cfg.budget_policy {
        let mut rendered = String::new();
        Json::Str(policy.clone()).render(&mut rendered);
        budget.push_str(&format!(",\"budget_policy\":{rendered}"));
    }
    format!(
        "{{\"id\":{id},\"session\":{session},{}{budget},\"query\":{}}}",
        plan.spec_fields,
        payload_json(plan.queries[query_idx])
    )
}

/// The locally recomputed outcome for global request `id` — same
/// [`schedule`] mapping the senders use, so `--verify` can never drift
/// from the traffic layout.
fn expected_answer(id: u64, plans: &[KindPlan], verify: bool) -> Option<Expected> {
    if !verify {
        return None;
    }
    let (ki, qi) = schedule(id as usize, plans);
    Some(plans[ki].expected[qi])
}

/// `(kind index, query index)` served by global request number `i`.
fn schedule(i: usize, plans: &[KindPlan]) -> (usize, usize) {
    let ki = i % plans.len();
    let qi = (i / plans.len()) % plans[ki].queries.len();
    (ki, qi)
}

/// Writes one protocol request over the configured transport: the raw
/// newline-JSON line, or the same line as a `POST /v1/query` body when
/// driving a gateway.
fn write_request(w: &mut impl Write, line: &str, http: bool) -> io::Result<()> {
    if http {
        write!(
            w,
            "POST /v1/query HTTP/1.1\r\nHost: lca\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{line}",
            line.len()
        )
    } else {
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")
    }
}

/// Negotiates the connection's response framing: a no-op for JSON; for
/// binary, sends the `hello` line and validates the (still-JSON) ack —
/// every response after it arrives as a length-prefixed frame.
fn negotiate(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    frames: FrameFormat,
) -> io::Result<()> {
    if frames == FrameFormat::Json {
        return Ok(());
    }
    writer.write_all(proto::hello_line(FrameFormat::Binary).as_bytes())?;
    writer.write_all(b"\n")?;
    let mut ack = String::new();
    if reader.read_line(&mut ack)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "EOF before hello acknowledgement",
        ));
    }
    let v = serde_json::from_str(ack.trim())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("hello ack: {e}")))?;
    if v.get("frame").and_then(Json::as_str) != Some("binary") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("server refused binary framing: {}", ack.trim()),
        ));
    }
    Ok(())
}

/// Reads one protocol response into `line` over the configured transport:
/// a newline-JSON line, a binary frame re-rendered to its canonical JSON
/// line (so every tally/verify path downstream is framing-agnostic), or an
/// HTTP response whose body is that line (the gateway answers every
/// request with a JSON body, whatever the status).
/// Returns 0 on clean EOF, like `read_line`.
fn read_response(
    reader: &mut BufReader<TcpStream>,
    http: bool,
    frames: FrameFormat,
    line: &mut String,
) -> io::Result<usize> {
    line.clear();
    if !http {
        if frames == FrameFormat::Binary {
            return match proto::read_binary_frame(reader)? {
                None => Ok(0),
                Some(response) => {
                    line.push_str(&response.render());
                    Ok(line.len().max(1))
                }
            };
        }
        return reader.read_line(line);
    }
    let mut header = String::new();
    if reader.read_line(&mut header)? == 0 {
        return Ok(0); // EOF between responses: peer closed
    }
    let mut content_length: usize = 0;
    loop {
        header.clear();
        if reader.read_line(&mut header)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF inside HTTP headers",
            ));
        }
        let h = header.trim();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|e| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("content-length: {e}"))
                })?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 HTTP body"))?;
    line.push_str(&body);
    // A zero-length body still counts as one received response.
    Ok(line.len().max(1))
}

fn closed_loop_worker(
    addr: &str,
    plans: &[KindPlan],
    cfg: &LoadgenConfig,
    counter: &AtomicUsize,
) -> io::Result<Tally> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    negotiate(&mut writer, &mut reader, cfg.frames)?;
    let mut tally = Tally::default();
    let mut line = String::new();
    loop {
        let i = counter.fetch_add(1, Ordering::Relaxed);
        if i >= cfg.requests {
            break;
        }
        let (ki, qi) = schedule(i, plans);
        let request = request_line(&plans[ki], qi, i as u64, cfg);
        let expected = expected_answer(i as u64, plans, cfg.verify);
        // Closed loop: bounce on overload, back off briefly, retry — every
        // request eventually lands, which the verification relies on.
        let mut attempts = 0;
        loop {
            attempts += 1;
            let start = Instant::now();
            write_request(&mut writer, &request, cfg.http)?;
            if read_response(&mut reader, cfg.http, cfg.frames, &mut line)? == 0 {
                tally.errors += 1;
                return Ok(tally);
            }
            let micros = start.elapsed().as_micros() as u64;
            let retry = tally.absorb(line.trim(), expected, micros);
            if !retry {
                break;
            }
            if attempts > 1_000 {
                tally.errors += 1;
                break;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
    }
    Ok(tally)
}

/// One fan-in socket: a blocking client stream with at most one request in
/// flight.
struct FanSock {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// `(global request id, send time, attempts)` of the in-flight request.
    in_flight: Option<(u64, Instant, u32)>,
    dead: bool,
}

/// The fan-in sender: `sockets` simultaneously open connections driven by
/// one thread. Each round issues a send on every idle socket *before*
/// awaiting any response (open within the round), then collects one
/// response per busy socket; `overloaded` bounces are retried on the same
/// socket. Socket-level failures are counted, never returned — the worker
/// must always reach the two barriers (`done`: all requests finished,
/// sockets still open, the window where the caller snapshots server stats;
/// `release`: sockets may now close).
#[allow(clippy::too_many_arguments)]
fn fan_in_worker(
    addr: &str,
    plans: &[KindPlan],
    cfg: &LoadgenConfig,
    counter: &AtomicUsize,
    sockets: usize,
    gap: Option<Duration>,
    done: &std::sync::Barrier,
    release: &std::sync::Barrier,
) -> io::Result<Tally> {
    let mut socks: Vec<FanSock> = Vec::with_capacity(sockets);
    let mut connect_err = None;
    for _ in 0..sockets {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
                match stream.try_clone() {
                    Ok(mut writer) => {
                        let mut reader = BufReader::new(stream);
                        if let Err(e) = negotiate(&mut writer, &mut reader, cfg.frames) {
                            connect_err = Some(e);
                            break;
                        }
                        socks.push(FanSock {
                            writer,
                            reader,
                            in_flight: None,
                            dead: false,
                        });
                    }
                    Err(e) => {
                        connect_err = Some(e);
                        break;
                    }
                }
            }
            Err(e) => {
                connect_err = Some(e);
                break;
            }
        }
    }

    let mut tally = Tally::default();
    let mut next_send = Instant::now();
    if connect_err.is_none() {
        loop {
            let mut live = false;
            // Send phase: one request onto every idle, live socket.
            for sock in socks.iter_mut().filter(|s| !s.dead) {
                live = true;
                if sock.in_flight.is_some() {
                    continue;
                }
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= cfg.requests {
                    continue;
                }
                if let Some(gap) = gap {
                    let now = Instant::now();
                    if next_send > now {
                        std::thread::sleep(next_send - now);
                    }
                    next_send += gap;
                }
                let (ki, qi) = schedule(i, plans);
                let request = request_line(&plans[ki], qi, i as u64, cfg);
                if write_request(&mut sock.writer, &request, cfg.http).is_err() {
                    tally.errors += 1;
                    sock.dead = true;
                    continue;
                }
                sock.in_flight = Some((i as u64, Instant::now(), 1));
            }
            // Read phase: one response from every busy socket.
            let mut line = String::new();
            for sock in socks.iter_mut().filter(|s| !s.dead) {
                let Some((id, started, attempts)) = sock.in_flight else {
                    continue;
                };
                match read_response(&mut sock.reader, cfg.http, cfg.frames, &mut line) {
                    Ok(0) | Err(_) => {
                        tally.errors += 1;
                        sock.dead = true;
                        sock.in_flight = None;
                        continue;
                    }
                    Ok(_) => {}
                }
                let micros = started.elapsed().as_micros() as u64;
                let expected = expected_answer(id, plans, cfg.verify);
                let retry = tally.absorb(line.trim(), expected, micros);
                if !retry {
                    sock.in_flight = None;
                    continue;
                }
                // Overloaded: resend the same id on the same socket after a
                // short backoff, like the closed loop.
                if attempts > 1_000 {
                    tally.errors += 1;
                    sock.in_flight = None;
                    continue;
                }
                std::thread::sleep(Duration::from_micros(500));
                let (ki, qi) = schedule(id as usize, plans);
                let request = request_line(&plans[ki], qi, id, cfg);
                if write_request(&mut sock.writer, &request, cfg.http).is_err() {
                    tally.errors += 1;
                    sock.dead = true;
                    sock.in_flight = None;
                    continue;
                }
                sock.in_flight = Some((id, Instant::now(), attempts + 1));
            }
            let idle = socks.iter().all(|s| s.dead || s.in_flight.is_none());
            if !live || (idle && counter.load(Ordering::Relaxed) >= cfg.requests) {
                break;
            }
        }
    }

    // Hold every socket open across the stats window, then release.
    done.wait();
    release.wait();
    drop(socks);
    match connect_err {
        Some(e) => Err(e),
        None => Ok(tally),
    }
}

fn open_loop_worker(
    addr: &str,
    plans: &[KindPlan],
    cfg: &LoadgenConfig,
    counter: &AtomicUsize,
    gap: Duration,
) -> io::Result<Tally> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let reader_stream = stream.try_clone()?;
    // Negotiate before the reader thread exists: the hello ack is the only
    // response the sender side ever reads, and the BufReader (with any
    // bytes it buffered) then moves into the reader thread.
    let mut negotiated_reader = BufReader::new(reader_stream);
    negotiate(&mut writer, &mut negotiated_reader, cfg.frames)?;

    let in_flight: Mutex<HashMap<u64, Instant>> = Mutex::new(HashMap::new());
    let sent = AtomicU64::new(0);

    let tally = std::thread::scope(|s| {
        // Reader: match responses to send times by id, deriving the
        // expected answer from the same schedule() the sender used.
        let (in_flight, sent) = (&in_flight, &sent);
        let reader_handle = s.spawn(move || {
            let mut reader = negotiated_reader;
            let mut tally = Tally::default();
            let mut line = String::new();
            let mut received: u64 = 0;
            loop {
                match read_response(&mut reader, cfg.http, cfg.frames, &mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {
                        let trimmed = line.trim();
                        let (expected, micros) = match serde_json::from_str(trimmed)
                            .ok()
                            .and_then(|v| v.get("id").and_then(Json::as_u64))
                        {
                            Some(id) => {
                                let started = in_flight.lock().expect("poisoned").remove(&id);
                                (
                                    expected_answer(id, plans, cfg.verify),
                                    started.map_or(0, |t| t.elapsed().as_micros() as u64),
                                )
                            }
                            None => (None, 0),
                        };
                        tally.absorb(trimmed, expected, micros);
                        received += 1;
                        // All sends done and all responses in: stop.
                        let total = sent.load(Ordering::Acquire);
                        if total > 0 && received >= total {
                            break;
                        }
                    }
                }
            }
            tally
        });

        let mut next_send = Instant::now();
        let mut my_sends: u64 = 0;
        let mut send_result: io::Result<()> = Ok(());
        loop {
            let i = counter.fetch_add(1, Ordering::Relaxed);
            if i >= cfg.requests {
                break;
            }
            let (ki, qi) = schedule(i, plans);
            let request = request_line(&plans[ki], qi, i as u64, cfg);
            let now = Instant::now();
            if next_send > now {
                std::thread::sleep(next_send - now);
            }
            next_send += gap;
            in_flight
                .lock()
                .expect("poisoned")
                .insert(i as u64, Instant::now());
            if let Err(e) = write_request(&mut writer, &request, cfg.http) {
                send_result = Err(e);
                break;
            }
            my_sends += 1;
        }
        // Publish the final send count, then give the reader a bounded
        // grace period (reads time out against the closed write half).
        sent.store(my_sends, Ordering::Release);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let tally = reader_handle.join().expect("loadgen reader panicked");
        send_result.map(|()| tally)
    })?;
    Ok(tally)
}

/// Runs the configured load against a daemon at `addr` and collects the
/// report plus the server's post-run `stats`.
///
/// # Errors
///
/// Fails on connection/transport errors; protocol-level failures are
/// counted in the report instead.
pub fn run(addr: &str, cfg: &LoadgenConfig) -> io::Result<LoadRun> {
    assert!(!cfg.kinds.is_empty(), "need at least one kind in the mix");
    assert!(
        !(cfg.http && cfg.frames == FrameFormat::Binary),
        "binary framing is a backend-protocol feature; the gateway speaks HTTP"
    );
    let plans = prepare(cfg);
    for plan in &plans {
        assert!(
            !plan.queries.is_empty(),
            "query sampling produced nothing for session {} — degenerate input?",
            plan.session
        );
    }
    let counter = AtomicUsize::new(0);
    let start = Instant::now();
    // Fan-in mode captures server stats *while* every socket is still
    // open (between the two barriers); the classic loops fetch them after.
    let mut mid_run_stats: Option<Json> = None;
    let tallies: Vec<io::Result<Tally>> = if cfg.connections > 0 {
        let threads = cfg.concurrency.clamp(1, cfg.connections);
        let gap = cfg
            .rate
            .map(|r| Duration::from_secs_f64(threads as f64 / r.max(1e-9)));
        let done = std::sync::Barrier::new(threads + 1);
        let release = std::sync::Barrier::new(threads + 1);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let sockets =
                        cfg.connections / threads + usize::from(t < cfg.connections % threads);
                    let (plans, counter, done, release) = (&plans, &counter, &done, &release);
                    s.spawn(move || {
                        fan_in_worker(addr, plans, cfg, counter, sockets, gap, done, release)
                    })
                })
                .collect();
            done.wait();
            mid_run_stats = if cfg.http {
                fetch_stats_http(addr).ok()
            } else {
                fetch_stats(addr).ok()
            };
            release.wait();
            handles
                .into_iter()
                .map(|h| h.join().expect("loadgen worker panicked"))
                .collect()
        })
    } else {
        let gap = cfg
            .rate
            .map(|r| Duration::from_secs_f64(cfg.concurrency.max(1) as f64 / r.max(1e-9)));
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..cfg.concurrency.max(1))
                .map(|_| {
                    let plans = &plans;
                    let counter = &counter;
                    s.spawn(move || match gap {
                        None => closed_loop_worker(addr, plans, cfg, counter),
                        Some(gap) => open_loop_worker(addr, plans, cfg, counter, gap),
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("loadgen worker panicked"))
                .collect()
        })
    };
    let elapsed_s = start.elapsed().as_secs_f64();
    let mut total = Tally::default();
    for tally in tallies {
        total.merge(tally?);
    }
    total.latencies_us.sort_unstable();
    let pct = |q: f64| -> u64 {
        if total.latencies_us.is_empty() {
            return 0;
        }
        let rank = ((q * total.latencies_us.len() as f64).ceil() as usize)
            .clamp(1, total.latencies_us.len());
        total.latencies_us[rank - 1]
    };
    let mean_us = if total.latencies_us.is_empty() {
        0.0
    } else {
        total.latencies_us.iter().sum::<u64>() as f64 / total.latencies_us.len() as f64
    };
    let report = LoadReport {
        requests: cfg.requests,
        connections: if cfg.connections > 0 {
            cfg.connections
        } else {
            cfg.concurrency.max(1)
        },
        ok: total.ok,
        yes: total.yes,
        errors: total.errors,
        overloaded: total.overloaded,
        budget_exhausted: total.budget_exhausted,
        mismatches: total.mismatches,
        probes: total.probes,
        elapsed_s,
        qps: if elapsed_s > 0.0 {
            total.ok as f64 / elapsed_s
        } else {
            0.0
        },
        p50_us: pct(0.5),
        p99_us: pct(0.99),
        mean_us,
    };
    let server_stats = match mid_run_stats {
        Some(stats) => Some(stats),
        None if cfg.http => fetch_stats_http(addr).ok(),
        None => fetch_stats(addr).ok(),
    };
    Ok(LoadRun {
        report,
        server_stats,
    })
}

/// Sends a `stats` request on a fresh connection and parses the reply.
pub fn fetch_stats(addr: &str) -> io::Result<Json> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    writer.write_all(b"{\"op\":\"stats\"}\n")?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    serde_json::from_str(line.trim())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Sends a `shutdown` request, starting the daemon's graceful drain.
pub fn send_shutdown(addr: &str) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    writer.write_all(b"{\"op\":\"shutdown\"}\n")?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    Ok(())
}

/// Fetches `GET /v1/stats` from an `lca-gateway` and parses the JSON body
/// (the fleet rollup plus per-backend snapshots).
pub fn fetch_stats_http(addr: &str) -> io::Result<Json> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    write!(writer, "GET /v1/stats HTTP/1.1\r\nHost: lca\r\n\r\n")?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    read_response(&mut reader, true, FrameFormat::Json, &mut line)?;
    serde_json::from_str(line.trim())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Sends `POST /v1/shutdown` to an `lca-gateway`, starting its drain (the
/// backends behind it keep running).
pub fn send_shutdown_http(addr: &str) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    write!(
        writer,
        "POST /v1/shutdown HTTP/1.1\r\nHost: lca\r\nContent-Length: 0\r\n\r\n"
    )?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    read_response(&mut reader, true, FrameFormat::Json, &mut line)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_cycles_kinds_then_queries() {
        let cfg = LoadgenConfig {
            n: 2_000,
            kinds: vec![
                AlgorithmKind::Classic(ClassicKind::Mis),
                AlgorithmKind::Spanner(SpannerKind::Three),
            ],
            query_pool: 4,
            ..LoadgenConfig::default()
        };
        let plans = prepare(&cfg);
        assert_eq!(plans.len(), 2);
        assert_eq!(schedule(0, &plans), (0, 0));
        assert_eq!(schedule(1, &plans), (1, 0));
        assert_eq!(schedule(2, &plans), (0, 1));
        assert_eq!(schedule(9, &plans), (1, 0)); // wrapped: pool of 4
    }

    #[test]
    fn prepared_requests_are_valid_protocol_lines() {
        let cfg = LoadgenConfig {
            n: 5_000,
            verify: true,
            query_pool: 8,
            kinds: vec![AlgorithmKind::Classic(ClassicKind::Mis)],
            ..LoadgenConfig::default()
        };
        let plans = prepare(&cfg);
        assert_eq!(plans[0].expected.len(), plans[0].queries.len());
        assert!(plans[0].expected.iter().all(|e| e.may_exhaust));
        let budgeted = LoadgenConfig {
            max_probes: Some(500),
            budget_policy: Some("p95".to_owned()),
            ..cfg
        };
        let line = request_line(&plans[0], 3, 42, &budgeted);
        let req = crate::proto::Request::parse(&line).unwrap();
        let crate::proto::Request::Query {
            session,
            spec,
            queries,
            id,
            max_probes,
            budget_policy,
            ..
        } = req
        else {
            panic!("not a query")
        };
        assert_eq!(max_probes, Some(500));
        assert_eq!(
            budget_policy,
            Some(crate::budget::BudgetPolicy::Adaptive(Some(95.0)))
        );
        assert_eq!(session, "loadgen-mis");
        assert_eq!(id, Some(42));
        assert_eq!(spec.unwrap().n, 5_000);
        assert_eq!(queries, vec![plans[0].queries[3]]);
    }

    #[test]
    fn tally_classifies_responses() {
        let expect_true = Some(Expected {
            answer: true,
            may_exhaust: false,
        });
        let mut t = Tally::default();
        assert!(!t.absorb(r#"{"answer":true,"probes":5}"#, expect_true, 10));
        assert!(!t.absorb(r#"{"answer":false,"probes":2}"#, expect_true, 20));
        assert!(t.absorb(r#"{"error":"overloaded","message":"x"}"#, None, 0));
        assert!(!t.absorb(r#"{"error":"bad-query","message":"x"}"#, None, 0));
        assert!(!t.absorb("garbage", None, 0));
        assert_eq!(t.ok, 2);
        assert_eq!(t.yes, 1);
        assert_eq!(t.mismatches, 1);
        assert_eq!(t.overloaded, 1);
        assert_eq!(t.errors, 2);
        assert_eq!(t.probes, 7);
        assert_eq!(t.latencies_us, vec![10, 20]);
    }

    #[test]
    fn tally_tolerates_budget_trips_deterministically() {
        let mut t = Tally::default();
        // Cold local run also exhausts (or no client budget): trip accepted.
        let over = Some(Expected {
            answer: true,
            may_exhaust: true,
        });
        assert!(!t.absorb(r#"{"error":"budget-exhausted","message":"x"}"#, over, 0));
        assert_eq!(t.budget_exhausted, 1);
        assert_eq!(t.mismatches, 0);
        // Warm server memo answered instead: the answer must still match.
        assert!(!t.absorb(r#"{"answer":true,"probes":1}"#, over, 5));
        assert_eq!(t.mismatches, 0);
        // Cold local run fits the client's budget: a probe trip is a
        // mismatch…
        let within = Some(Expected {
            answer: false,
            may_exhaust: false,
        });
        assert!(!t.absorb(r#"{"error":"budget-exhausted","message":"x"}"#, within, 0));
        assert_eq!(t.budget_exhausted, 2);
        assert_eq!(t.mismatches, 1);
        // …but a deadline trip never is — wall clocks are not replayable.
        assert!(!t.absorb(r#"{"error":"deadline-exceeded","message":"x"}"#, within, 0));
        assert_eq!(t.budget_exhausted, 3);
        assert_eq!(t.mismatches, 1);
        assert_eq!(t.errors, 0);
    }
}
