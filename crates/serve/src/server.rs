//! The daemon: request dispatch, stats, drain — transport-agnostic.
//!
//! Two transports share this module's dispatch core:
//!
//! * **TCP** ([`Server::serve`]) — the event-driven reactor in
//!   [`crate::reactor`]: one thread multiplexes every connection through a
//!   readiness loop (epoll on Linux, a portable sweep elsewhere; see
//!   [`crate::sys`]), and the bounded [`WorkerPool`] executes queries.
//!   Workers never touch sockets — they hand finished responses back to
//!   the reactor through its completion queue + wake pipe, so a stalled
//!   client can never block a worker.
//! * **stdio** ([`Server::serve_stdio`]) — a plain line loop, what the
//!   integration tests and shell examples use.
//!
//! Dispatch itself ([`Server::handle_line`]) is sink-based: inline
//! responses (ping/stats/shutdown, parse and session errors, backpressure)
//! are returned to the caller, query work is admitted to the pool with a
//! `deliver` callback the worker invokes when the response is ready.

#![warn(clippy::unwrap_used)]
use std::io::{self, Write};
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use lca::prelude::QueryBudget;
use serde::Json;

use crate::budget::BudgetPolicyConfig;
use crate::metrics::{global_stats_json, session_stats_json, GlobalMetrics, GlobalSnapshot};
use crate::pool::{RejectReason, WorkerPool};
use crate::proto::{ErrorCode, Request, Response};
use crate::session::SessionRegistry;

/// Sizing knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads answering queries (default: available parallelism).
    pub workers: usize,
    /// Admission-queue bound; one more request than this in flight gets
    /// `overloaded` (default 1024).
    pub queue_capacity: usize,
    /// Server-side default budget applied to query requests that do not
    /// carry their own `max_probes`/`deadline_ms` (request fields win
    /// field-by-field). Unlimited by default — operators cap tail latency
    /// with `lca-serve --max-probes`/`--deadline-ms`.
    pub default_budget: QueryBudget,
    /// Operator-assigned identity echoed in `stats` (`backend_id`), so a
    /// fleet rollup can tag which member a snapshot came from. Empty by
    /// default; set with `lca-serve --backend-id`.
    pub backend_id: String,
    /// When `true`, every session starts with adaptive budget fitting
    /// enabled (`lca-serve --adaptive-budgets`); sessions can still opt in
    /// or out per request via `budget_policy`.
    pub adaptive_budgets: bool,
    /// Default target percentile for adaptive fits (`--budget-percentile`,
    /// default 99.0); also fills in a wire-level `"adaptive"` policy.
    pub budget_percentile: f64,
    /// The fitted budget never drops below this floor
    /// (`--budget-floor`, default 8 probes).
    pub budget_floor: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            queue_capacity: 1024,
            default_budget: QueryBudget::unlimited(),
            backend_id: String::new(),
            adaptive_budgets: false,
            budget_percentile: 99.0,
            budget_floor: 8,
        }
    }
}

/// A shared, locked line sink: the stdio loop and its workers interleave
/// whole lines, never bytes.
pub type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

fn write_line(out: &SharedWriter, response: &Response) {
    let line = response.render();
    // lint:allow(panic) — poison means a sibling writer panicked; propagate
    let mut w = out.lock().expect("writer poisoned");
    // A vanished client is not a server error; drop the response.
    let _ = writeln!(w, "{line}");
    let _ = w.flush();
}

/// What one request line turned into — the reactor and stdio loops route
/// responses differently depending on which.
pub(crate) enum LineOutcome {
    /// Answered synchronously; the caller owns delivery.
    Inline(Response),
    /// Admitted to the worker pool; the `deliver` callback passed to
    /// [`Server::handle_line`] fires with the response when a worker
    /// finishes (exactly once).
    Deferred,
    /// A framing negotiation: the transport must acknowledge in its
    /// *current* framing, then switch responses to the requested one. Only
    /// the reactor can actually switch; stdio rejects `binary`.
    Hello(crate::proto::FrameFormat),
    /// An empty line: no response owed.
    Ignored,
}

/// The serving daemon: session registry + worker pool + metrics.
pub struct Server {
    /// Resident sessions (sharded by name).
    pub registry: SessionRegistry,
    /// Whole-process counters.
    pub global: GlobalMetrics,
    pub(crate) pool: WorkerPool,
    draining: AtomicBool,
    default_budget: QueryBudget,
    backend_id: String,
    budget_percentile: f64,
    /// The zero-render stats snapshot: the last built `stats` JSON plus the
    /// [`GlobalMetrics::mutations`] stamp it was built at. A `stats`
    /// request whose stamp still matches is answered from here without
    /// touching a histogram or a session shard.
    stats_cache: Mutex<Option<(u64, Json)>>,
}

impl Server {
    /// Builds a server (spawns its worker pool immediately).
    pub fn new(config: ServerConfig) -> Arc<Server> {
        // The server's own `--max-probes` is the hard cap: an adaptive fit
        // may tighten the budget below it but never loosen past it.
        let policy = BudgetPolicyConfig {
            enabled: config.adaptive_budgets,
            percentile: config.budget_percentile,
            floor: config.budget_floor,
            cap: config.default_budget.max_probes.unwrap_or(u64::MAX),
        };
        Arc::new(Server {
            registry: SessionRegistry::with_policy(policy),
            global: GlobalMetrics::default(),
            pool: WorkerPool::new(config.workers, config.queue_capacity),
            draining: AtomicBool::new(false),
            default_budget: config.default_budget,
            backend_id: config.backend_id,
            budget_percentile: config.budget_percentile,
            stats_cache: Mutex::new(None),
        })
    }

    /// `true` once a shutdown request has been accepted.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Starts the drain without a wire request (used by harnesses).
    pub fn begin_shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// The `stats` response: global counters plus one object per session.
    /// The global half carries the shard and cache rollups
    /// ([`GlobalSnapshot`], summed with `CacheStats::add` across sessions).
    ///
    /// Renders are cached against the coarse mutation stamp
    /// ([`GlobalMetrics::mark_mutation`]): while nothing that feeds the
    /// snapshot has changed, repeated `stats` requests are answered from
    /// the pre-built JSON — a polled dashboard costs zero histogram walks
    /// and zero session-shard locks in steady state. `stats_renders` and
    /// `stats_served_cached` in the snapshot count both outcomes.
    pub fn stats_response(&self) -> Response {
        let stamp = self.global.mutations.load(Ordering::Relaxed);
        {
            let cache = match self.stats_cache.lock() {
                Ok(cache) => cache,
                Err(poisoned) => poisoned.into_inner(),
            };
            if let Some((cached_stamp, json)) = cache.as_ref() {
                if *cached_stamp == stamp {
                    self.global
                        .stats_served_cached
                        .fetch_add(1, Ordering::Relaxed);
                    return Response::Stats(json.clone());
                }
            }
        }
        // Count the rebuild before building so the fresh snapshot reports
        // itself.
        self.global.stats_renders.fetch_add(1, Ordering::Relaxed);
        let sessions = self.registry.snapshot();
        let mut cache_total = lca_probe::CacheStats {
            hits: 0,
            misses: 0,
            entries: 0,
        };
        let session_objs: Vec<(String, Json)> = sessions
            .iter()
            .map(|(name, s)| {
                let cache = s.cache_stats();
                cache_total = cache_total + cache;
                let mut obj = match session_stats_json(
                    &s.metrics,
                    cache,
                    s.probe_counts(),
                    s.started.elapsed().as_secs_f64(),
                ) {
                    Json::Obj(fields) => fields,
                    // lint:allow(panic) — session_stats_json returns Obj by construction
                    _ => unreachable!("session stats render as an object"),
                };
                obj.insert(0, ("kind".into(), Json::Str(s.spec.kind.to_string())));
                obj.insert(1, ("family".into(), Json::Str(s.spec.family.to_string())));
                obj.insert(2, ("n".into(), Json::Num(s.vertex_count() as f64)));
                obj.insert(3, ("seed".into(), Json::Num(s.spec.seed as f64)));
                obj.push(("budget".into(), s.controller.stats_json()));
                (name.clone(), Json::Obj(obj))
            })
            .collect();
        let snap = GlobalSnapshot {
            backend_id: self.backend_id.clone(),
            queue_len: self.pool.queue_len(),
            draining: self.draining(),
            sessions: sessions.len(),
            registry_shards: self.registry.shard_count(),
            registry_shard_hits: self.registry.shard_hits(),
            cache_total,
        };
        let json = Json::Obj(vec![
            ("stats".into(), global_stats_json(&self.global, &snap)),
            ("sessions".into(), Json::Obj(session_objs)),
        ]);
        {
            let mut cache = match self.stats_cache.lock() {
                Ok(cache) => cache,
                Err(poisoned) => poisoned.into_inner(),
            };
            // A concurrent mutation between the stamp load and here leaves
            // a snapshot stamped with the older value — it is served until
            // the *next* mutation, the documented coarseness.
            *cache = Some((stamp, json.clone()));
        }
        Response::Stats(json)
    }

    /// The `sessions` response: every resident session's pinned spec —
    /// enough for any process (a fleet gateway, a fresh replica) to
    /// rebuild each instance exactly, because a session *is* its spec
    /// (state is a seed, not a tape).
    pub fn sessions_response(&self) -> Response {
        let sessions = self.registry.snapshot();
        let objs: Vec<(String, Json)> = sessions
            .iter()
            .map(|(name, s)| {
                let mut fields = vec![
                    ("kind".into(), Json::Str(s.spec.kind.to_string())),
                    ("family".into(), Json::Str(s.spec.family.to_string())),
                    ("n".into(), Json::Num(s.spec.n as f64)),
                    ("seed".into(), Json::Num(s.spec.seed as f64)),
                ];
                if let Some(knob) = s.spec.knob {
                    fields.push(("knob".into(), Json::Num(knob)));
                }
                (name.clone(), Json::Obj(fields))
            })
            .collect();
        Response::Stats(Json::Obj(vec![("sessions".into(), Json::Obj(objs))]))
    }

    /// Handles one raw wire line: non-UTF-8 is answered `bad-request`
    /// without reaching the parser.
    pub(crate) fn handle_raw_line(
        self: &Arc<Self>,
        raw: &[u8],
        deliver: impl FnOnce(Response) + Send + 'static,
    ) -> LineOutcome {
        match std::str::from_utf8(raw) {
            Ok(line) => self.handle_line(line, deliver),
            Err(_) => {
                self.global.parse_errors.fetch_add(1, Ordering::Relaxed);
                self.global.mark_mutation();
                LineOutcome::Inline(Response::Error {
                    id: None,
                    code: ErrorCode::BadRequest,
                    message: "request line is not UTF-8".to_owned(),
                })
            }
        }
    }

    /// Handles one request line. Control requests, errors, and
    /// backpressure are answered in the return value; query work is
    /// admitted to the pool and `deliver` fires from a worker with the
    /// response ([`LineOutcome::Deferred`] — exactly one call, even if the
    /// query panics).
    pub(crate) fn handle_line(
        self: &Arc<Self>,
        line: &str,
        deliver: impl FnOnce(Response) + Send + 'static,
    ) -> LineOutcome {
        let line = line.trim();
        if line.is_empty() {
            return LineOutcome::Ignored;
        }
        let request = match Request::parse(line) {
            Ok(request) => {
                self.global.requests.fetch_add(1, Ordering::Relaxed);
                request
            }
            Err(e) => {
                self.global.parse_errors.fetch_add(1, Ordering::Relaxed);
                self.global.mark_mutation();
                return LineOutcome::Inline(e.response());
            }
        };
        match request {
            Request::Ping => LineOutcome::Inline(Response::Ok {
                draining: self.draining(),
            }),
            Request::Stats => LineOutcome::Inline(self.stats_response()),
            Request::Sessions => LineOutcome::Inline(self.sessions_response()),
            Request::Shutdown => {
                self.begin_shutdown();
                self.global.mark_mutation();
                LineOutcome::Inline(Response::Ok { draining: true })
            }
            Request::Hello { frame } => LineOutcome::Hello(frame),
            Request::Query {
                session,
                spec,
                queries,
                id,
                max_probes,
                deadline_ms,
                budget_policy,
            } => {
                // Every query outcome moves something the snapshot shows
                // (session registry, queue depth, error counters), so the
                // whole arm is one coarse mutation; a second bump fires
                // from the worker when the histograms are updated.
                self.global.mark_mutation();
                if self.draining() {
                    return LineOutcome::Inline(Response::Error {
                        id,
                        code: ErrorCode::Draining,
                        message: "server is draining".to_owned(),
                    });
                }
                let resolved = match self.registry.resolve(&session, spec) {
                    Ok(resolved) => resolved,
                    Err((code, message)) => {
                        return LineOutcome::Inline(Response::Error { id, code, message })
                    }
                };
                if let Some(policy) = budget_policy {
                    resolved
                        .controller
                        .set_policy(policy, self.budget_percentile);
                }
                // Precedence: an explicit request budget always wins, then
                // the session's fitted adaptive budget, then the server
                // default.
                let budget = QueryBudget {
                    max_probes: max_probes
                        .or_else(|| resolved.controller.fitted())
                        .or(self.default_budget.max_probes),
                    timeout: deadline_ms
                        .map(Duration::from_millis)
                        .or(self.default_budget.timeout),
                    cancel: None,
                };
                // The deadline clock starts now — at admission — so time
                // spent waiting in the queue counts against the request's
                // allowance (the documented whole-request contract).
                let deadline = budget.timeout.map(|t| std::time::Instant::now() + t);
                let server = self.clone();
                let admitted = self.pool.try_execute(move || {
                    // The pool also catches panics (to keep the worker), but
                    // catching here too lets the client get a response
                    // instead of a silent hang on this id.
                    let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        resolved.answer(&session, &queries, id, &budget, deadline)
                    }))
                    .unwrap_or_else(|_| Response::Error {
                        id,
                        code: ErrorCode::Internal,
                        message: "query panicked in the worker (server bug)".to_owned(),
                    });
                    if matches!(
                        &response,
                        Response::Error {
                            code: ErrorCode::BudgetExhausted | ErrorCode::DeadlineExceeded,
                            ..
                        }
                    ) {
                        server
                            .global
                            .budget_exhausted
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    server.global.mark_mutation();
                    deliver(response);
                });
                match admitted {
                    Ok(()) => LineOutcome::Deferred,
                    Err(RejectReason::Full) => {
                        self.global.overloaded.fetch_add(1, Ordering::Relaxed);
                        LineOutcome::Inline(Response::overloaded(id))
                    }
                    Err(RejectReason::ShuttingDown) => LineOutcome::Inline(Response::Error {
                        id,
                        code: ErrorCode::Draining,
                        message: "server is draining".to_owned(),
                    }),
                }
            }
        }
    }

    /// Handles one request line against a [`SharedWriter`] (the stdio
    /// transport): inline responses are written immediately, deferred ones
    /// when their worker finishes.
    pub fn dispatch(self: &Arc<Self>, line: &str, out: &SharedWriter) {
        use crate::proto::FrameFormat;
        let deferred_out = out.clone();
        match self.handle_line(line, move |response| write_line(&deferred_out, &response)) {
            LineOutcome::Inline(response) => write_line(out, &response),
            // stdio is a line transport: acknowledging `json` is a no-op,
            // but binary frames would corrupt the stream, so refuse.
            LineOutcome::Hello(FrameFormat::Json) => write_line(
                out,
                &Response::Hello {
                    frame: FrameFormat::Json,
                },
            ),
            LineOutcome::Hello(FrameFormat::Binary) => write_line(
                out,
                &Response::Error {
                    id: None,
                    code: ErrorCode::BadRequest,
                    message: "binary framing requires the TCP transport".to_owned(),
                },
            ),
            LineOutcome::Deferred | LineOutcome::Ignored => {}
        }
    }

    /// Serves TCP connections on the event-driven reactor until a shutdown
    /// request lands, then drains: accepting stops, admitted queries
    /// finish, every connection's pending responses are flushed, the pool
    /// joins.
    ///
    /// One reactor thread owns every socket; N pool workers own every
    /// query. No per-connection threads exist at any load.
    pub fn serve(self: &Arc<Self>, listener: TcpListener) -> io::Result<()> {
        let result = crate::reactor::Reactor::run(self.clone(), listener);
        self.pool.shutdown();
        result
    }

    /// Serves newline requests from stdin to stdout until EOF or shutdown,
    /// then drains (so every admitted response is flushed before return).
    pub fn serve_stdio(self: &Arc<Self>) {
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(io::stdout())));
        let stdin = io::stdin();
        let mut line = String::new();
        loop {
            line.clear();
            match stdin.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => self.dispatch(&line, &out),
            }
            if self.draining() {
                break;
            }
        }
        self.pool.shutdown();
    }
}

/// Binds a listener, resolving `addr` (`host:port`; port 0 picks an
/// ephemeral port — read it back from `TcpListener::local_addr`).
pub fn bind(addr: impl ToSocketAddrs) -> io::Result<TcpListener> {
    TcpListener::bind(addr)
}
