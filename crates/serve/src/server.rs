//! The daemon: connection handling, request dispatch, stats, drain.
//!
//! Transport is pluggable at the cheapest possible level — a line in, a
//! line out — so the same [`Server`] serves TCP connections
//! ([`Server::serve`]) and a stdin/stdout loop ([`Server::serve_stdio`],
//! what the integration tests and shell examples use). Query work runs on
//! the bounded [`WorkerPool`]; everything else (ping/stats/shutdown,
//! parse and session errors, backpressure) is answered inline by the
//! connection thread.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use lca::prelude::QueryBudget;
use serde::Json;

use crate::metrics::{global_stats_json, session_stats_json, GlobalMetrics};
use crate::pool::{RejectReason, WorkerPool};
use crate::proto::{ErrorCode, Request, Response};
use crate::session::SessionRegistry;

/// Sizing knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads answering queries (default: available parallelism).
    pub workers: usize,
    /// Admission-queue bound; one more request than this in flight gets
    /// `overloaded` (default 1024).
    pub queue_capacity: usize,
    /// Server-side default budget applied to query requests that do not
    /// carry their own `max_probes`/`deadline_ms` (request fields win
    /// field-by-field). Unlimited by default — operators cap tail latency
    /// with `lca-serve --max-probes`/`--deadline-ms`.
    pub default_budget: QueryBudget,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            queue_capacity: 1024,
            default_budget: QueryBudget::unlimited(),
        }
    }
}

/// A shared, locked line sink: workers and the connection thread interleave
/// whole lines, never bytes.
pub type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

fn write_line(out: &SharedWriter, response: &Response) {
    let line = response.render();
    let mut w = out.lock().expect("writer poisoned");
    // A vanished client is not a server error; drop the response.
    let _ = writeln!(w, "{line}");
    let _ = w.flush();
}

/// The serving daemon: session registry + worker pool + metrics.
pub struct Server {
    /// Resident sessions.
    pub registry: SessionRegistry,
    /// Whole-process counters.
    pub global: GlobalMetrics,
    pool: WorkerPool,
    draining: AtomicBool,
    default_budget: QueryBudget,
}

impl Server {
    /// Builds a server (spawns its worker pool immediately).
    pub fn new(config: ServerConfig) -> Arc<Server> {
        Arc::new(Server {
            registry: SessionRegistry::new(),
            global: GlobalMetrics::default(),
            pool: WorkerPool::new(config.workers, config.queue_capacity),
            draining: AtomicBool::new(false),
            default_budget: config.default_budget,
        })
    }

    /// `true` once a shutdown request has been accepted.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Starts the drain without a wire request (used by harnesses).
    pub fn begin_shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// The `stats` response: global counters plus one object per session.
    pub fn stats_response(&self) -> Response {
        let sessions = self.registry.snapshot();
        let session_objs: Vec<(String, Json)> = sessions
            .iter()
            .map(|(name, s)| {
                let mut obj = match session_stats_json(
                    &s.metrics,
                    s.cache_stats(),
                    s.probe_counts(),
                    s.started.elapsed().as_secs_f64(),
                ) {
                    Json::Obj(fields) => fields,
                    _ => unreachable!("session stats render as an object"),
                };
                obj.insert(0, ("kind".into(), Json::Str(s.spec.kind.to_string())));
                obj.insert(1, ("family".into(), Json::Str(s.spec.family.to_string())));
                obj.insert(2, ("n".into(), Json::Num(s.vertex_count() as f64)));
                obj.insert(3, ("seed".into(), Json::Num(s.spec.seed as f64)));
                (name.clone(), Json::Obj(obj))
            })
            .collect();
        Response::Stats(Json::Obj(vec![
            (
                "stats".into(),
                global_stats_json(&self.global, self.pool.queue_len(), self.draining()),
            ),
            ("sessions".into(), Json::Obj(session_objs)),
        ]))
    }

    /// Handles one request line: inline responses are written immediately,
    /// query work is admitted to the pool (whose worker writes the
    /// response when done).
    pub fn dispatch(self: &Arc<Self>, line: &str, out: &SharedWriter) {
        let line = line.trim();
        if line.is_empty() {
            return;
        }
        let request = match Request::parse(line) {
            Ok(request) => {
                self.global.requests.fetch_add(1, Ordering::Relaxed);
                request
            }
            Err(e) => {
                self.global.parse_errors.fetch_add(1, Ordering::Relaxed);
                write_line(out, &e.response());
                return;
            }
        };
        match request {
            Request::Ping => write_line(
                out,
                &Response::Ok {
                    draining: self.draining(),
                },
            ),
            Request::Stats => write_line(out, &self.stats_response()),
            Request::Shutdown => {
                self.begin_shutdown();
                write_line(out, &Response::Ok { draining: true });
            }
            Request::Query {
                session,
                spec,
                queries,
                id,
                max_probes,
                deadline_ms,
            } => {
                if self.draining() {
                    write_line(
                        out,
                        &Response::Error {
                            id,
                            code: ErrorCode::Draining,
                            message: "server is draining".to_owned(),
                        },
                    );
                    return;
                }
                let resolved = match self.registry.resolve(&session, spec) {
                    Ok(resolved) => resolved,
                    Err((code, message)) => {
                        write_line(out, &Response::Error { id, code, message });
                        return;
                    }
                };
                let budget = QueryBudget {
                    max_probes: max_probes.or(self.default_budget.max_probes),
                    timeout: deadline_ms
                        .map(Duration::from_millis)
                        .or(self.default_budget.timeout),
                    cancel: None,
                };
                // The deadline clock starts now — at admission — so time
                // spent waiting in the queue counts against the request's
                // allowance (the documented whole-request contract).
                let deadline = budget.timeout.map(|t| std::time::Instant::now() + t);
                let job_out = out.clone();
                let server = self.clone();
                let admitted = self.pool.try_execute(move || {
                    // The pool also catches panics (to keep the worker), but
                    // catching here too lets the client get a response
                    // instead of a silent hang on this id.
                    let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        resolved.answer(&session, &queries, id, &budget, deadline)
                    }))
                    .unwrap_or_else(|_| Response::Error {
                        id,
                        code: ErrorCode::Internal,
                        message: "query panicked in the worker (server bug)".to_owned(),
                    });
                    if matches!(
                        &response,
                        Response::Error {
                            code: ErrorCode::BudgetExhausted | ErrorCode::DeadlineExceeded,
                            ..
                        }
                    ) {
                        server
                            .global
                            .budget_exhausted
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    write_line(&job_out, &response);
                });
                match admitted {
                    Ok(()) => {}
                    Err(RejectReason::Full) => {
                        self.global.overloaded.fetch_add(1, Ordering::Relaxed);
                        write_line(out, &Response::overloaded(id));
                    }
                    Err(RejectReason::ShuttingDown) => write_line(
                        out,
                        &Response::Error {
                            id,
                            code: ErrorCode::Draining,
                            message: "server is draining".to_owned(),
                        },
                    ),
                }
            }
        }
    }

    /// Serves TCP connections until a shutdown request lands, then drains
    /// the pool and joins connection threads.
    pub fn serve(self: &Arc<Self>, listener: TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.draining() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    self.global.connections.fetch_add(1, Ordering::Relaxed);
                    let server = self.clone();
                    connections.push(std::thread::spawn(move || {
                        server.handle_connection(stream);
                    }));
                    connections.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        // Drain: connection threads notice the flag within their read
        // timeout; admitted queries finish and flush before the pool stops.
        for handle in connections {
            let _ = handle.join();
        }
        self.pool.shutdown();
        Ok(())
    }

    /// Serves newline requests from stdin to stdout until EOF or shutdown,
    /// then drains (so every admitted response is flushed before return).
    pub fn serve_stdio(self: &Arc<Self>) {
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(io::stdout())));
        let stdin = io::stdin();
        let mut line = String::new();
        loop {
            line.clear();
            match stdin.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => self.dispatch(&line, &out),
            }
            if self.draining() {
                break;
            }
        }
        self.pool.shutdown();
    }

    /// Dispatches one raw wire line, answering `bad-request` on non-UTF-8.
    fn dispatch_raw(self: &Arc<Self>, raw: &[u8], out: &SharedWriter) {
        match std::str::from_utf8(raw) {
            Ok(line) => self.dispatch(line, out),
            Err(_) => {
                self.global.parse_errors.fetch_add(1, Ordering::Relaxed);
                write_line(
                    out,
                    &Response::Error {
                        id: None,
                        code: ErrorCode::BadRequest,
                        message: "request line is not UTF-8".to_owned(),
                    },
                );
            }
        }
    }

    fn handle_connection(self: Arc<Self>, stream: TcpStream) {
        // Responses are single small lines: Nagle would hold each one back
        // ~40ms against the client's delayed ACK.
        let _ = stream.set_nodelay(true);
        // Periodic timeouts let the thread observe the drain flag between
        // lines without busy-waiting.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let out: SharedWriter = match stream.try_clone() {
            Ok(w) => Arc::new(Mutex::new(Box::new(w))),
            Err(_) => return,
        };
        let mut stream = stream;
        let mut buffered = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => {
                    // A final unterminated line still deserves an answer —
                    // stdio mode would serve it, TCP must too.
                    if !buffered.is_empty() {
                        let raw = std::mem::take(&mut buffered);
                        self.dispatch_raw(&raw, &out);
                    }
                    break;
                }
                Ok(k) => {
                    buffered.extend_from_slice(&chunk[..k]);
                    while let Some(pos) = buffered.iter().position(|&b| b == b'\n') {
                        let raw: Vec<u8> = buffered.drain(..=pos).collect();
                        self.dispatch_raw(&raw, &out);
                    }
                    // The timeout branch is not the only place the drain
                    // flag must be visible: a client streaming lines
                    // back-to-back would otherwise pin this thread (and
                    // the serve loop's join) forever.
                    if self.draining() {
                        break;
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if self.draining() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    }
}

/// Binds a listener, resolving `addr` (`host:port`; port 0 picks an
/// ephemeral port — read it back from `TcpListener::local_addr`).
pub fn bind(addr: impl ToSocketAddrs) -> io::Result<TcpListener> {
    TcpListener::bind(addr)
}
