//! Breadth-first search primitives.

use std::collections::VecDeque;

use crate::{Graph, VertexId};

/// Distance label for unreachable vertices.
pub(crate) const UNREACHED: u32 = u32::MAX;

/// Single-source BFS distances; unreachable vertices get `u32::MAX`.
///
/// # Example
///
/// ```
/// use lca_graph::{analysis::bfs_distances, gen::structured, VertexId};
/// let g = structured::path(4);
/// let d = bfs_distances(&g, VertexId::new(0));
/// assert_eq!(d, vec![0, 1, 2, 3]);
/// ```
pub fn bfs_distances(graph: &Graph, source: VertexId) -> Vec<u32> {
    let mut dist = vec![UNREACHED; graph.vertex_count()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for &w in graph.neighbors(u) {
            if dist[w.index()] == UNREACHED {
                dist[w.index()] = du + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// BFS truncated at `max_dist` hops and `max_visited` discovered vertices.
/// Returns `(vertex, distance)` pairs in discovery order (source first).
pub fn bfs_limited(
    graph: &Graph,
    source: VertexId,
    max_dist: u32,
    max_visited: usize,
) -> Vec<(VertexId, u32)> {
    let mut out = Vec::new();
    if max_visited == 0 {
        return out;
    }
    let mut dist = std::collections::HashMap::new();
    let mut queue = VecDeque::new();
    dist.insert(source, 0u32);
    out.push((source, 0));
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[&u];
        if du >= max_dist {
            continue;
        }
        for &w in graph.neighbors(u) {
            if out.len() >= max_visited {
                return out;
            }
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                e.insert(du + 1);
                out.push((w, du + 1));
                queue.push_back(w);
            }
        }
    }
    out
}

/// Shortest-path distance between `u` and `v` if it is at most `bound`,
/// else `None`. Runs a truncated BFS from `u`.
pub fn distance_within(graph: &Graph, u: VertexId, v: VertexId, bound: u32) -> Option<u32> {
    if u == v {
        return Some(0);
    }
    let mut dist = std::collections::HashMap::new();
    let mut queue = VecDeque::new();
    dist.insert(u, 0u32);
    queue.push_back(u);
    while let Some(x) = queue.pop_front() {
        let dx = dist[&x];
        if dx >= bound {
            continue;
        }
        for &w in graph.neighbors(x) {
            if w == v {
                return Some(dx + 1);
            }
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                e.insert(dx + 1);
                queue.push_back(w);
            }
        }
    }
    None
}

/// The eccentricity of `source` (max distance to a reachable vertex).
pub fn eccentricity(graph: &Graph, source: VertexId) -> u32 {
    bfs_distances(graph, source)
        .into_iter()
        .filter(|&d| d != UNREACHED)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::structured;

    #[test]
    fn distances_on_cycle() {
        let g = structured::cycle(6);
        let d = bfs_distances(&g, VertexId::new(0));
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn unreachable_vertices_are_flagged() {
        let g = crate::GraphBuilder::new(4).edge(0, 1).build().unwrap();
        let d = bfs_distances(&g, VertexId::new(0));
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHED);
        assert_eq!(d[3], UNREACHED);
    }

    #[test]
    fn limited_bfs_respects_radius() {
        let g = structured::path(10);
        let visited = bfs_limited(&g, VertexId::new(0), 3, usize::MAX);
        assert_eq!(visited.len(), 4); // v0..v3
        assert!(visited.iter().all(|&(_, d)| d <= 3));
    }

    #[test]
    fn limited_bfs_respects_visit_cap() {
        let g = structured::star(50);
        let visited = bfs_limited(&g, VertexId::new(0), 10, 5);
        assert_eq!(visited.len(), 5);
        assert_eq!(visited[0], (VertexId::new(0), 0));
    }

    #[test]
    fn limited_bfs_discovery_order_is_adjacency_order() {
        let g = crate::GraphBuilder::new(4)
            .edge(0, 2)
            .edge(0, 1)
            .edge(0, 3)
            .build()
            .unwrap();
        let visited: Vec<usize> = bfs_limited(&g, VertexId::new(0), 1, usize::MAX)
            .into_iter()
            .map(|(v, _)| v.index())
            .collect();
        assert_eq!(visited, vec![0, 2, 1, 3]);
    }

    #[test]
    fn distance_within_bounds() {
        let g = structured::path(8);
        let (a, b) = (VertexId::new(0), VertexId::new(5));
        assert_eq!(distance_within(&g, a, b, 5), Some(5));
        assert_eq!(distance_within(&g, a, b, 4), None);
        assert_eq!(distance_within(&g, a, a, 0), Some(0));
    }

    #[test]
    fn eccentricity_of_path_end() {
        let g = structured::path(7);
        assert_eq!(eccentricity(&g, VertexId::new(0)), 6);
        assert_eq!(eccentricity(&g, VertexId::new(3)), 3);
    }
}
