//! Degree statistics for workload characterization.

use crate::Graph;

/// Summary statistics of a graph's degree sequence.
///
/// The spanner constructions branch on degree thresholds (√n, n^{3/4},
/// ∆_med, ∆_super, …); the bench harness prints these stats so every table
/// row documents which regime the workload actually hit.
///
/// # Example
///
/// ```
/// use lca_graph::{analysis::DegreeStats, gen::structured};
/// let s = DegreeStats::compute(&structured::star(11));
/// assert_eq!(s.max, 10);
/// assert_eq!(s.min, 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree ∆.
    pub max: usize,
    /// Mean degree 2m/n.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// Number of vertices with degree at least each power of two:
    /// `at_least[i] = #{v : deg(v) >= 2^i}`.
    pub at_least_pow2: Vec<usize>,
}

impl DegreeStats {
    /// Computes the statistics (O(n log n)).
    pub fn compute(graph: &Graph) -> Self {
        let mut degrees: Vec<usize> = graph.vertices().map(|v| graph.degree(v)).collect();
        degrees.sort_unstable();
        let n = degrees.len();
        let (min, max, median) = if n == 0 {
            (0, 0, 0)
        } else {
            (degrees[0], degrees[n - 1], degrees[n / 2])
        };
        let max_pow = if max == 0 {
            0
        } else {
            (usize::BITS - max.leading_zeros()) as usize
        };
        let mut at_least_pow2 = Vec::with_capacity(max_pow + 1);
        for i in 0..=max_pow {
            let threshold = 1usize << i;
            let idx = degrees.partition_point(|&d| d < threshold);
            at_least_pow2.push(n - idx);
        }
        Self {
            min,
            max,
            mean: graph.avg_degree(),
            median,
            at_least_pow2,
        }
    }

    /// Number of vertices with degree at least `threshold` (recomputed from
    /// the graph would be exact; this interpolates from the pow-2 table and
    /// is exact when `threshold` is a power of two).
    pub fn count_at_least_pow2(&self, i: usize) -> usize {
        self.at_least_pow2.get(i).copied().unwrap_or(0)
    }
}

impl std::fmt::Display for DegreeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "deg[min={} med={} mean={:.2} max={}]",
            self.min, self.median, self.mean, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::structured;
    use crate::GraphBuilder;

    #[test]
    fn stats_on_star() {
        let s = DegreeStats::compute(&structured::star(9));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 8);
        assert_eq!(s.median, 1);
        assert!((s.mean - 16.0 / 9.0).abs() < 1e-12);
        // One vertex has degree >= 8 = 2^3.
        assert_eq!(s.count_at_least_pow2(3), 1);
        // All 9 have degree >= 1 = 2^0.
        assert_eq!(s.count_at_least_pow2(0), 9);
    }

    #[test]
    fn stats_on_empty_graph() {
        let s = DegreeStats::compute(&GraphBuilder::new(0).build().unwrap());
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn stats_on_regular_graph() {
        let s = DegreeStats::compute(&structured::cycle(10));
        assert_eq!((s.min, s.max, s.median), (2, 2, 2));
        assert_eq!(s.count_at_least_pow2(1), 10);
        assert_eq!(s.count_at_least_pow2(2), 0);
    }

    #[test]
    fn display_is_informative() {
        let s = DegreeStats::compute(&structured::cycle(5));
        assert!(format!("{s}").contains("max=2"));
    }
}
