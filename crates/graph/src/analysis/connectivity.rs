//! Connectivity: union–find and component labelling.

use crate::{Graph, VertexId};

/// A classic disjoint-set forest with path halving and union by size.
///
/// Exposed publicly because the lower-bound crate uses it to certify that
/// D⁻ instances really are disconnected across the designated edge.
///
/// # Example
///
/// ```
/// use lca_graph::analysis::UnionFind;
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.same(0, 1));
/// assert!(!uf.same(1, 2));
/// assert_eq!(uf.component_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Finds the representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp; // path halving
            x = gp;
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

/// Labels each vertex with a component id in `[0, #components)`; returns
/// `(labels, component_count)`.
pub fn connected_components(graph: &Graph) -> (Vec<u32>, usize) {
    let n = graph.vertex_count();
    let mut labels = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack = Vec::new();
    for s in 0..n {
        if labels[s] != u32::MAX {
            continue;
        }
        labels[s] = next;
        stack.push(VertexId::new(s));
        while let Some(u) = stack.pop() {
            for &w in graph.neighbors(u) {
                if labels[w.index()] == u32::MAX {
                    labels[w.index()] = next;
                    stack.push(w);
                }
            }
        }
        next += 1;
    }
    (labels, next as usize)
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(graph: &Graph) -> bool {
    connected_components(graph).1 <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::structured;
    use crate::GraphBuilder;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(1, 2));
        assert!(uf.same(0, 2));
        assert_eq!(uf.component_size(2), 3);
        assert_eq!(uf.component_count(), 3);
    }

    #[test]
    fn components_on_disjoint_paths() {
        let g = GraphBuilder::new(6)
            .edges([(0, 1), (1, 2), (3, 4)])
            .build()
            .unwrap();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[5], labels[0]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn connected_families() {
        assert!(is_connected(&structured::cycle(9)));
        assert!(is_connected(&structured::grid(4, 5)));
        assert!(is_connected(&structured::dumbbell(4, 2)));
        assert!(is_connected(&GraphBuilder::new(0).build().unwrap()));
        assert!(is_connected(&GraphBuilder::new(1).build().unwrap()));
    }
}
