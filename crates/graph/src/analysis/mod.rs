//! Graph analysis utilities: BFS, connectivity, degree statistics.
//!
//! These are *global* algorithms — the verification side of the workspace.
//! LCAs never call them; the test and bench harnesses use them to check
//! stretch, connectivity preservation, and workload shapes.

mod bfs;
mod connectivity;
mod stats;

pub use bfs::{bfs_distances, bfs_limited, distance_within, eccentricity};
pub use connectivity::{connected_components, is_connected, UnionFind};
pub use stats::DegreeStats;
