//! Preferential attachment (Barabási–Albert) and small-world
//! (Watts–Strogatz) generators.

use lca_rand::Seed;

use super::gnp::finalize;
use super::CommonOpts;
use crate::{Graph, GraphBuilder};

/// Builds a Barabási–Albert preferential-attachment graph: vertices arrive
/// one at a time and attach `m_edges` links to existing vertices chosen
/// proportionally to their current degree.
///
/// Produces the heavy-tailed hub structure (power-law with β ≈ 3) that
/// stresses the super-high-degree machinery of the 3/5-spanner LCAs.
///
/// # Example
///
/// ```
/// use lca_graph::gen::PreferentialBuilder;
/// use lca_rand::Seed;
/// let g = PreferentialBuilder::new(500, 3).seed(Seed::new(1)).build();
/// assert_eq!(g.vertex_count(), 500);
/// assert!(g.max_degree() > 3 * 4);
/// ```
#[derive(Debug, Clone)]
pub struct PreferentialBuilder {
    n: usize,
    m_edges: usize,
    opts: CommonOpts,
}

impl PreferentialBuilder {
    /// Starts a builder for `n` vertices with `m_edges` attachments each.
    ///
    /// # Panics
    ///
    /// Panics if `m_edges == 0`.
    pub fn new(n: usize, m_edges: usize) -> Self {
        assert!(m_edges >= 1, "each vertex must attach at least one edge");
        Self {
            n,
            m_edges,
            opts: CommonOpts::default(),
        }
    }

    /// Sets the generation seed.
    pub fn seed(mut self, seed: Seed) -> Self {
        self.opts.seed = seed;
        self
    }

    /// Also permute vertex labels.
    pub fn shuffle_labels(mut self, yes: bool) -> Self {
        self.opts.shuffle_labels = yes;
        self
    }

    /// Shuffle adjacency lists (default: true).
    pub fn shuffle_adjacency(mut self, yes: bool) -> Self {
        self.opts.shuffle_adjacency = yes;
        self
    }

    /// Generates the graph.
    pub fn build(self) -> Graph {
        let n = self.n;
        let m = self.m_edges;
        let mut stream = self.opts.seed.derive(0x4241).stream();
        // `targets` holds one entry per half-edge: sampling uniformly from
        // it is degree-proportional sampling.
        let mut targets: Vec<u32> = Vec::new();
        let mut builder = GraphBuilder::new(n);
        let core = (m + 1).min(n);
        // Seed clique so early attachments have somewhere to go.
        for u in 0..core {
            for v in (u + 1)..core {
                builder = builder.edge(u, v);
                targets.push(u as u32);
                targets.push(v as u32);
            }
        }
        for v in core..n {
            let mut chosen: Vec<u32> = Vec::with_capacity(m);
            let mut guard = 0;
            while chosen.len() < m.min(v) && guard < 50 * m {
                guard += 1;
                let t = targets[stream.next_below(targets.len() as u64) as usize];
                if t as usize != v && !chosen.contains(&t) {
                    chosen.push(t);
                }
            }
            for &t in &chosen {
                builder = builder.edge(v, t as usize);
                targets.push(v as u32);
                targets.push(t);
            }
        }
        finalize(builder, &self.opts)
    }
}

/// Builds a Watts–Strogatz small-world graph: a ring lattice where each
/// vertex links to its `k_half` nearest neighbors on each side, with every
/// lattice edge rewired to a random endpoint with probability `beta`.
///
/// Constant degree plus short global distances — the bounded-degree regime
/// of Theorem 1.2 with nontrivial ball growth.
///
/// # Example
///
/// ```
/// use lca_graph::gen::SmallWorldBuilder;
/// use lca_rand::Seed;
/// let g = SmallWorldBuilder::new(200, 2, 0.1).seed(Seed::new(1)).build();
/// assert_eq!(g.vertex_count(), 200);
/// ```
#[derive(Debug, Clone)]
pub struct SmallWorldBuilder {
    n: usize,
    k_half: usize,
    beta: f64,
    opts: CommonOpts,
}

impl SmallWorldBuilder {
    /// Starts a builder: ring of `n` vertices, `k_half` neighbors per side,
    /// rewiring probability `beta`.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is outside `[0, 1]` or `2·k_half >= n`.
    pub fn new(n: usize, k_half: usize, beta: f64) -> Self {
        assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
        assert!(2 * k_half < n.max(1), "lattice degree must be below n");
        Self {
            n,
            k_half,
            beta,
            opts: CommonOpts::default(),
        }
    }

    /// Sets the generation seed.
    pub fn seed(mut self, seed: Seed) -> Self {
        self.opts.seed = seed;
        self
    }

    /// Shuffle adjacency lists (default: true).
    pub fn shuffle_adjacency(mut self, yes: bool) -> Self {
        self.opts.shuffle_adjacency = yes;
        self
    }

    /// Generates the graph.
    pub fn build(self) -> Graph {
        let n = self.n;
        let mut stream = self.opts.seed.derive(0x5753).stream();
        let mut edges: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        let norm = |a: usize, b: usize| {
            let (a, b) = if a < b { (a, b) } else { (b, a) };
            (a as u32, b as u32)
        };
        for v in 0..n {
            for j in 1..=self.k_half {
                let w = (v + j) % n;
                if stream.next_f64() < self.beta {
                    // Rewire: pick a random endpoint avoiding loops/dups.
                    let mut guard = 0;
                    loop {
                        guard += 1;
                        let t = stream.next_below(n as u64) as usize;
                        if t != v && !edges.contains(&norm(v, t)) {
                            edges.insert(norm(v, t));
                            break;
                        }
                        if guard > 100 {
                            edges.insert(norm(v, w));
                            break;
                        }
                    }
                } else {
                    edges.insert(norm(v, w));
                }
            }
        }
        let mut builder = GraphBuilder::new(n);
        let mut sorted: Vec<(u32, u32)> = edges.into_iter().collect();
        sorted.sort_unstable();
        for (a, b) in sorted {
            builder = builder.edge(a as usize, b as usize);
        }
        finalize(builder, &self.opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn preferential_attachment_grows_hubs() {
        let g = PreferentialBuilder::new(800, 2).seed(Seed::new(3)).build();
        assert_eq!(g.vertex_count(), 800);
        assert!(analysis::is_connected(&g));
        // The earliest vertices should be strong hubs.
        let early_max = (0..5)
            .map(|i| g.degree(crate::VertexId::new(i)))
            .max()
            .unwrap();
        assert!(early_max > 20, "hub degree only {early_max}");
        // Most vertices stay near the minimum attachment count.
        let small = g.vertices().filter(|&v| g.degree(v) <= 4).count();
        assert!(small > 400, "tail too small: {small}");
    }

    #[test]
    fn preferential_is_deterministic() {
        let a = PreferentialBuilder::new(200, 3).seed(Seed::new(5)).build();
        let b = PreferentialBuilder::new(200, 3).seed(Seed::new(5)).build();
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn preferential_rejects_zero_m() {
        let _ = PreferentialBuilder::new(10, 0);
    }

    #[test]
    fn small_world_without_rewiring_is_a_lattice() {
        let g = SmallWorldBuilder::new(30, 2, 0.0).build();
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert!(analysis::is_connected(&g));
    }

    #[test]
    fn small_world_rewiring_shrinks_diameter() {
        let lattice = SmallWorldBuilder::new(400, 2, 0.0).build();
        let rewired = SmallWorldBuilder::new(400, 2, 0.2)
            .seed(Seed::new(2))
            .build();
        let d0 = analysis::eccentricity(&lattice, crate::VertexId::new(0));
        let d1 = analysis::eccentricity(&rewired, crate::VertexId::new(0));
        assert!(d1 < d0, "rewiring should shorten paths: {d1} !< {d0}");
    }

    #[test]
    #[should_panic(expected = "beta must be in [0, 1]")]
    fn small_world_rejects_bad_beta() {
        let _ = SmallWorldBuilder::new(10, 2, 1.5);
    }
}
