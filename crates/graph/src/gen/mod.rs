//! Synthetic graph generators.
//!
//! The paper has no datasets: every claim is parameterized only by
//! `(n, m, ∆, k)`, so reproduction workloads are synthetic families chosen to
//! pin those parameters:
//!
//! * [`GnpBuilder`] / [`GnmBuilder`] — Erdős–Rényi; the dense regime
//!   (∆ = Θ(n)) of the 3/5-spanner theorems.
//! * [`RegularBuilder`] — random d-regular graphs via the §6 matching-table
//!   model; the bounded-degree regime of Theorem 1.2 and the lower bound.
//! * [`ChungLuBuilder`] — power-law expected degrees; mixed-degree workloads
//!   exercising every edge class of the 5-spanner construction.
//! * [`structured`] — deterministic families (complete, cycle, path, star,
//!   grid, bipartite, dumbbell, clustered) for unit tests and edge cases.
//!
//! All generators are deterministic functions of a [`Seed`].

mod chung_lu;
mod gnm;
mod gnp;
mod preferential;
mod regular;
pub mod structured;

pub use chung_lu::ChungLuBuilder;
pub use gnm::GnmBuilder;
pub use gnp::GnpBuilder;
pub use preferential::{PreferentialBuilder, SmallWorldBuilder};
pub use regular::RegularBuilder;

use lca_rand::Seed;

/// Options shared by the randomized generator builders.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CommonOpts {
    pub seed: Seed,
    pub shuffle_labels: bool,
    pub shuffle_adjacency: bool,
}

impl Default for CommonOpts {
    fn default() -> Self {
        Self {
            seed: Seed::new(0),
            shuffle_labels: false,
            shuffle_adjacency: true,
        }
    }
}
