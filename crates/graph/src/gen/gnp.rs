//! Erdős–Rényi G(n, p).

use lca_rand::Seed;

use super::CommonOpts;
use crate::{Graph, GraphBuilder};

/// Builds an Erdős–Rényi graph G(n, p): every unordered pair is an edge
/// independently with probability `p`.
///
/// Uses geometric skipping, so generation costs O(n + m) rather than O(n²).
///
/// # Example
///
/// ```
/// use lca_graph::gen::GnpBuilder;
/// use lca_rand::Seed;
/// let g = GnpBuilder::new(100, 0.1).seed(Seed::new(1)).build();
/// assert_eq!(g.vertex_count(), 100);
/// assert!(g.edge_count() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct GnpBuilder {
    n: usize,
    p: f64,
    opts: CommonOpts,
}

impl GnpBuilder {
    /// Starts a G(n, p) builder.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn new(n: usize, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        Self {
            n,
            p,
            opts: CommonOpts::default(),
        }
    }

    /// Sets the generation seed.
    pub fn seed(mut self, seed: Seed) -> Self {
        self.opts.seed = seed;
        self
    }

    /// Also permute vertex labels (default: labels are `0..n`).
    pub fn shuffle_labels(mut self, yes: bool) -> Self {
        self.opts.shuffle_labels = yes;
        self
    }

    /// Shuffle adjacency lists (default: true — the model's order is
    /// arbitrary, so we never hand algorithms a sorted order by accident).
    pub fn shuffle_adjacency(mut self, yes: bool) -> Self {
        self.opts.shuffle_adjacency = yes;
        self
    }

    /// Generates the graph.
    pub fn build(self) -> Graph {
        let n = self.n;
        let p = self.p;
        let mut builder = GraphBuilder::new(n);
        if p > 0.0 && n >= 2 {
            let mut stream = self.opts.seed.derive(0x474E50).stream();
            if p >= 1.0 {
                for u in 0..n {
                    for v in (u + 1)..n {
                        builder = builder.edge(u, v);
                    }
                }
            } else {
                // Geometric skipping over the implicit pair sequence
                // (0,1),(0,2),…,(0,n-1),(1,2),… .
                let log1p = (1.0 - p).ln();
                let total = n as u64 * (n as u64 - 1) / 2;
                let mut pos: u64 = 0;
                loop {
                    let r = stream.next_f64().max(f64::MIN_POSITIVE);
                    let skip = (r.ln() / log1p).floor() as u64;
                    pos = match pos.checked_add(skip) {
                        Some(p) => p,
                        None => break,
                    };
                    if pos >= total {
                        break;
                    }
                    let (u, v) = pair_from_rank(pos, n as u64);
                    builder = builder.edge(u as usize, v as usize);
                    pos += 1;
                    if pos >= total {
                        break;
                    }
                }
            }
        }
        finalize(builder, &self.opts)
    }
}

/// Maps a rank in `[0, n(n-1)/2)` to the corresponding pair `(u, v)`,
/// enumerating pairs row by row: (0,1)…(0,n-1),(1,2)… .
fn pair_from_rank(rank: u64, n: u64) -> (u64, u64) {
    // Row u starts at offset u*n - u*(u+1)/2 - u... solve incrementally via
    // the quadratic formula on the triangular layout.
    // Offset of row u: S(u) = u*(2n - u - 1)/2.
    // Find the largest u with S(u) <= rank.
    let fu = {
        // Approximate root of u^2 - (2n-1)u + 2*rank = 0.
        let a = (2 * n - 1) as f64;
        let disc = (a * a - 8.0 * rank as f64).max(0.0);
        ((a - disc.sqrt()) / 2.0).floor() as u64
    };
    let mut u = fu.min(n.saturating_sub(2));
    let row_start = |u: u64| u * (2 * n - u - 1) / 2;
    while u > 0 && row_start(u) > rank {
        u -= 1;
    }
    while u + 1 < n - 1 && row_start(u + 1) <= rank {
        u += 1;
    }
    let v = u + 1 + (rank - row_start(u));
    (u, v)
}

pub(crate) fn finalize(mut builder: GraphBuilder, opts: &CommonOpts) -> Graph {
    if opts.shuffle_labels {
        builder = builder.shuffle_labels(opts.seed.derive(0x4C424C));
    }
    if opts.shuffle_adjacency {
        builder = builder.shuffle_adjacency(opts.seed.derive(0x414A44));
    }
    builder
        .dedup(true)
        .build()
        .expect("generator produced an invalid graph")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_from_rank_enumerates_all_pairs() {
        for n in [2u64, 3, 5, 9] {
            let total = n * (n - 1) / 2;
            let mut seen = std::collections::HashSet::new();
            for r in 0..total {
                let (u, v) = pair_from_rank(r, n);
                assert!(u < v && v < n, "rank {r} -> ({u},{v}) for n={n}");
                assert!(seen.insert((u, v)));
            }
            assert_eq!(seen.len() as u64, total);
        }
    }

    #[test]
    fn edge_count_matches_expectation() {
        let n = 400;
        let p = 0.05;
        let g = GnpBuilder::new(n, p).seed(Seed::new(7)).build();
        let expect = p * (n * (n - 1) / 2) as f64;
        let sigma = (expect * (1.0 - p)).sqrt();
        assert!(
            (g.edge_count() as f64 - expect).abs() < 6.0 * sigma + 10.0,
            "m = {}, expected ≈ {expect}",
            g.edge_count()
        );
    }

    #[test]
    fn p_zero_and_one() {
        let empty = GnpBuilder::new(10, 0.0).build();
        assert_eq!(empty.edge_count(), 0);
        let full = GnpBuilder::new(10, 1.0).build();
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GnpBuilder::new(100, 0.1).seed(Seed::new(3)).build();
        let b = GnpBuilder::new(100, 0.1).seed(Seed::new(3)).build();
        assert_eq!(a.edge_count(), b.edge_count());
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
        let c = GnpBuilder::new(100, 0.1).seed(Seed::new(4)).build();
        assert_ne!(a.edges().collect::<Vec<_>>(), c.edges().collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "p must be in [0, 1]")]
    fn invalid_p_panics() {
        let _ = GnpBuilder::new(10, 1.5);
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(GnpBuilder::new(0, 0.5).build().vertex_count(), 0);
        assert_eq!(GnpBuilder::new(1, 1.0).build().edge_count(), 0);
    }
}
