//! Chung–Lu graphs with power-law expected degrees.

use lca_rand::Seed;

use super::gnp::finalize;
use super::CommonOpts;
use crate::{Graph, GraphBuilder};

/// Builds a Chung–Lu random graph: vertices carry weights `w_i`, and pair
/// `{i, j}` is an edge independently with probability
/// `min(1, w_i·w_j / Σw)`.
///
/// The default weight profile is a power law `w_i ∝ (i+1)^{−1/(β−1)}` scaled
/// to a target average degree — the “social network” mixed-degree workload:
/// a few hubs of very high degree plus a heavy tail of low-degree vertices,
/// which exercises all edge classes of the 5-spanner construction at once.
///
/// Generation uses the Miller–Hagberg skipping technique, costing O(n + m).
///
/// # Example
///
/// ```
/// use lca_graph::gen::ChungLuBuilder;
/// use lca_rand::Seed;
/// let g = ChungLuBuilder::power_law(300, 2.5, 8.0).seed(Seed::new(1)).build();
/// assert!(g.max_degree() > g.avg_degree() as usize);
/// ```
#[derive(Debug, Clone)]
pub struct ChungLuBuilder {
    weights: Vec<f64>,
    opts: CommonOpts,
}

impl ChungLuBuilder {
    /// Builds from explicit non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or non-finite.
    pub fn with_weights(weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        Self {
            weights,
            opts: CommonOpts::default(),
        }
    }

    /// Power-law weights with exponent `beta > 2` scaled so the expected
    /// average degree is `avg_degree`.
    ///
    /// # Panics
    ///
    /// Panics if `beta <= 2` or `avg_degree <= 0`.
    pub fn power_law(n: usize, beta: f64, avg_degree: f64) -> Self {
        assert!(beta > 2.0, "beta must exceed 2 for a finite mean");
        assert!(avg_degree > 0.0, "avg_degree must be positive");
        let gamma = 1.0 / (beta - 1.0);
        let mut weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-gamma)).collect();
        let sum: f64 = weights.iter().sum();
        if sum > 0.0 {
            let scale = avg_degree * n as f64 / sum;
            for w in &mut weights {
                *w *= scale;
            }
        }
        Self::with_weights(weights)
    }

    /// Sets the generation seed.
    pub fn seed(mut self, seed: Seed) -> Self {
        self.opts.seed = seed;
        self
    }

    /// Also permute vertex labels.
    pub fn shuffle_labels(mut self, yes: bool) -> Self {
        self.opts.shuffle_labels = yes;
        self
    }

    /// Shuffle adjacency lists (default: true).
    pub fn shuffle_adjacency(mut self, yes: bool) -> Self {
        self.opts.shuffle_adjacency = yes;
        self
    }

    /// Generates the graph (Miller–Hagberg algorithm).
    pub fn build(self) -> Graph {
        let n = self.weights.len();
        let mut order: Vec<usize> = (0..n).collect();
        // Sort by weight descending; ties by index for determinism.
        order.sort_by(|&a, &b| {
            self.weights[b]
                .partial_cmp(&self.weights[a])
                .unwrap()
                .then(a.cmp(&b))
        });
        let w: Vec<f64> = order.iter().map(|&i| self.weights[i]).collect();
        let total: f64 = w.iter().sum();
        let mut builder = GraphBuilder::new(n);
        if total > 0.0 {
            let mut stream = self.opts.seed.derive(0x434C55).stream();
            for i in 0..n.saturating_sub(1) {
                let mut j = i + 1;
                if w[i] <= 0.0 {
                    break; // weights sorted descending: nothing further
                }
                let mut p = (w[i] * w[j] / total).min(1.0);
                while j < n && p > 0.0 {
                    if p < 1.0 {
                        let r = stream.next_f64().max(f64::MIN_POSITIVE);
                        let skip = (r.ln() / (1.0 - p).ln()).floor() as usize;
                        j = j.saturating_add(skip);
                    }
                    if j >= n {
                        break;
                    }
                    let q = (w[i] * w[j] / total).min(1.0);
                    if stream.next_f64() < q / p {
                        builder = builder.edge(order[i], order[j]);
                    }
                    p = q;
                    j += 1;
                }
            }
        }
        finalize(builder, &self.opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_degree_is_near_target() {
        let target = 6.0;
        let g = ChungLuBuilder::power_law(2_000, 2.8, target)
            .seed(Seed::new(11))
            .build();
        let avg = g.avg_degree();
        assert!(
            (avg - target).abs() < 1.5,
            "avg degree {avg}, target {target}"
        );
    }

    #[test]
    fn power_law_has_hubs_and_tail() {
        let g = ChungLuBuilder::power_law(2_000, 2.2, 6.0)
            .seed(Seed::new(2))
            .build();
        assert!(g.max_degree() > 40, "max degree {}", g.max_degree());
        let low = g.vertices().filter(|&v| g.degree(v) <= 3).count();
        assert!(low > 500, "tail too small: {low}");
    }

    #[test]
    fn zero_weights_give_empty_graph() {
        let g = ChungLuBuilder::with_weights(vec![0.0; 10]).build();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn heavy_pair_is_almost_surely_connected() {
        // Two huge weights, rest tiny: edge {0,1} has probability ~1.
        let mut w = vec![0.001; 50];
        w[0] = 100.0;
        w[1] = 100.0;
        let hits = (0..20)
            .filter(|&s| {
                ChungLuBuilder::with_weights(w.clone())
                    .seed(Seed::new(s))
                    .build()
                    .has_edge(crate::VertexId::new(0), crate::VertexId::new(1))
            })
            .count();
        assert!(hits >= 18, "hub edge present only {hits}/20 times");
    }

    #[test]
    fn deterministic() {
        let a = ChungLuBuilder::power_law(300, 2.5, 5.0)
            .seed(Seed::new(4))
            .build();
        let b = ChungLuBuilder::power_law(300, 2.5, 5.0)
            .seed(Seed::new(4))
            .build();
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "beta must exceed 2")]
    fn invalid_beta_panics() {
        let _ = ChungLuBuilder::power_law(10, 2.0, 3.0);
    }

    #[test]
    #[should_panic(expected = "weights must be finite")]
    fn negative_weight_panics() {
        let _ = ChungLuBuilder::with_weights(vec![1.0, -2.0]);
    }
}
