//! Erdős–Rényi G(n, m): exactly `m` uniform distinct edges.

use std::collections::HashSet;

use lca_rand::Seed;

use super::gnp::finalize;
use super::CommonOpts;
use crate::{Graph, GraphBuilder};

/// Builds a uniform graph with exactly `n` vertices and `m` distinct edges.
///
/// # Example
///
/// ```
/// use lca_graph::gen::GnmBuilder;
/// use lca_rand::Seed;
/// let g = GnmBuilder::new(50, 120).seed(Seed::new(2)).build();
/// assert_eq!(g.edge_count(), 120);
/// ```
#[derive(Debug, Clone)]
pub struct GnmBuilder {
    n: usize,
    m: usize,
    opts: CommonOpts,
}

impl GnmBuilder {
    /// Starts a G(n, m) builder.
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds `n·(n−1)/2`.
    pub fn new(n: usize, m: usize) -> Self {
        let max = n.saturating_mul(n.saturating_sub(1)) / 2;
        assert!(m <= max, "m = {m} exceeds the {max} possible edges");
        Self {
            n,
            m,
            opts: CommonOpts::default(),
        }
    }

    /// Sets the generation seed.
    pub fn seed(mut self, seed: Seed) -> Self {
        self.opts.seed = seed;
        self
    }

    /// Also permute vertex labels.
    pub fn shuffle_labels(mut self, yes: bool) -> Self {
        self.opts.shuffle_labels = yes;
        self
    }

    /// Shuffle adjacency lists (default: true).
    pub fn shuffle_adjacency(mut self, yes: bool) -> Self {
        self.opts.shuffle_adjacency = yes;
        self
    }

    /// Generates the graph.
    pub fn build(self) -> Graph {
        let n = self.n;
        let mut stream = self.opts.seed.derive(0x474E4D).stream();
        let mut chosen: HashSet<(u32, u32)> = HashSet::with_capacity(self.m);
        let mut builder = GraphBuilder::new(n);
        let max = n.saturating_mul(n.saturating_sub(1)) / 2;
        if max == 0 {
            return finalize(builder, &self.opts);
        }
        // Dense request: enumerate and sample complement instead to avoid a
        // long rejection tail.
        if self.m * 2 > max {
            let mut all: Vec<(u32, u32)> = Vec::with_capacity(max);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    all.push((u, v));
                }
            }
            // Partial Fisher–Yates: choose m positions.
            for i in 0..self.m {
                let j = i + stream.next_below((max - i) as u64) as usize;
                all.swap(i, j);
            }
            for &(u, v) in all.iter().take(self.m) {
                builder = builder.edge(u as usize, v as usize);
            }
            return finalize(builder, &self.opts);
        }
        while chosen.len() < self.m {
            let u = stream.next_below(n as u64) as u32;
            let v = stream.next_below(n as u64) as u32;
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if chosen.insert(key) {
                builder = builder.edge(key.0 as usize, key.1 as usize);
            }
        }
        finalize(builder, &self.opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count() {
        for (n, m) in [(10, 0), (10, 45), (30, 100), (50, 1)] {
            let g = GnmBuilder::new(n, m).seed(Seed::new(5)).build();
            assert_eq!(g.edge_count(), m, "n={n} m={m}");
            assert_eq!(g.vertex_count(), n);
        }
    }

    #[test]
    fn dense_path_produces_simple_graph() {
        let g = GnmBuilder::new(12, 60).seed(Seed::new(1)).build();
        assert_eq!(g.edge_count(), 60);
        // Simplicity is enforced by the builder; spot-check degrees.
        let total: usize = g.vertices().map(|v| g.degree(v)).sum();
        assert_eq!(total, 120);
    }

    #[test]
    fn deterministic() {
        let a = GnmBuilder::new(40, 80).seed(Seed::new(9)).build();
        let b = GnmBuilder::new(40, 80).seed(Seed::new(9)).build();
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn too_many_edges_panics() {
        let _ = GnmBuilder::new(3, 4);
    }
}
