//! Deterministic structured graph families.
//!
//! Small, fully-understood topologies used throughout the test suites, plus
//! two composite families ([`dumbbell`], [`clustered`]) that plant the degree
//! and density mixes the 3/5-spanner edge classification needs to see.

use lca_rand::Seed;

use crate::{Graph, GraphBuilder, GraphError};

/// The complete graph K_n.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b = b.edge(u, v);
        }
    }
    b.build().expect("complete graph is simple")
}

/// The cycle C_n (`n >= 3`).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        b = b.edge(u, (u + 1) % n);
    }
    b.build().expect("cycle is simple")
}

/// The path P_n on `n` vertices (`n-1` edges).
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 1..n {
        b = b.edge(u - 1, u);
    }
    b.build().expect("path is simple")
}

/// The star K_{1,n−1}: vertex 0 joined to all others.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b = b.edge(0, v);
    }
    b.build().expect("star is simple")
}

/// The `rows × cols` grid.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::new(n);
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            if c + 1 < cols {
                b = b.edge(i, i + 1);
            }
            if r + 1 < rows {
                b = b.edge(i, i + cols);
            }
        }
    }
    b.build().expect("grid is simple")
}

/// The complete bipartite graph K_{a,b}.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in 0..b {
            builder = builder.edge(u, a + v);
        }
    }
    builder.build().expect("bipartite is simple")
}

/// Two cliques of size `clique` joined by a path of `bridge` extra vertices.
///
/// Distances across the bridge are large, making this the canonical stretch
/// stress test: a spanner must keep (almost) the whole bridge.
///
/// # Panics
///
/// Panics if `clique < 1`.
pub fn dumbbell(clique: usize, bridge: usize) -> Graph {
    assert!(clique >= 1, "cliques must be non-empty");
    let n = 2 * clique + bridge;
    let mut b = GraphBuilder::new(n);
    for u in 0..clique {
        for v in (u + 1)..clique {
            b = b.edge(u, v);
        }
    }
    let right = clique + bridge;
    for u in right..n {
        for v in (u + 1)..n {
            b = b.edge(u, v);
        }
    }
    // Bridge path: clique0's vertex 0 — bridge vertices — right clique's first.
    let mut prev = 0usize;
    for i in 0..bridge {
        b = b.edge(prev, clique + i);
        prev = clique + i;
    }
    b = b.edge(prev, right);
    b.build().expect("dumbbell is simple")
}

/// The `rows × cols` torus (grid with wraparound): 4-regular when both
/// dimensions exceed 2.
///
/// # Panics
///
/// Panics if either dimension is below 3 (wraparound would create parallel
/// edges).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs both dimensions ≥ 3");
    let n = rows * cols;
    let mut b = GraphBuilder::new(n);
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            b = b.edge(i, r * cols + (c + 1) % cols);
            b = b.edge(i, ((r + 1) % rows) * cols + c);
        }
    }
    b.build().expect("torus is simple")
}

/// The `d`-dimensional hypercube on `2^d` vertices.
///
/// # Panics
///
/// Panics if `d == 0` or `d > 20`.
pub fn hypercube(d: u32) -> Graph {
    assert!((1..=20).contains(&d), "dimension must be in 1..=20");
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1 << bit);
            if v < w {
                b = b.edge(v, w);
            }
        }
    }
    b.build().expect("hypercube is simple")
}

/// A planted-partition (“clustered”) graph: `communities` blocks of
/// `block_size` vertices, intra-block pairs joined with probability
/// `p_intra`, inter-block pairs with probability `p_inter`.
///
/// # Errors
///
/// Returns an error only on pathological parameters (propagated from the
/// builder); probabilities are clamped to `[0, 1]`.
pub fn clustered(
    communities: usize,
    block_size: usize,
    p_intra: f64,
    p_inter: f64,
    seed: Seed,
) -> Result<Graph, GraphError> {
    let n = communities * block_size;
    let p_intra = p_intra.clamp(0.0, 1.0);
    let p_inter = p_inter.clamp(0.0, 1.0);
    let mut stream = seed.derive(0x434C5553).stream();
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let same = u / block_size == v / block_size;
            let p = if same { p_intra } else { p_inter };
            if p > 0.0 && stream.next_f64() < p {
                b = b.edge(u, v);
            }
        }
    }
    b.shuffle_adjacency(seed.derive(0x414A44)).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::VertexId;

    #[test]
    fn complete_graph_counts() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert!(g.vertices().all(|v| g.degree(v) == 5));
    }

    #[test]
    fn cycle_counts_and_connectivity() {
        let g = cycle(7);
        assert_eq!(g.edge_count(), 7);
        assert!(g.vertices().all(|v| g.degree(v) == 2));
        assert!(analysis::is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_panics() {
        let _ = cycle(2);
    }

    #[test]
    fn path_counts() {
        let g = path(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(VertexId::new(0)), 1);
        assert_eq!(g.degree(VertexId::new(2)), 2);
        assert_eq!(path(1).edge_count(), 0);
        assert_eq!(path(0).vertex_count(), 0);
    }

    #[test]
    fn star_counts() {
        let g = star(10);
        assert_eq!(g.edge_count(), 9);
        assert_eq!(g.degree(VertexId::new(0)), 9);
        assert!((1..10).all(|i| g.degree(VertexId::new(i)) == 1));
    }

    #[test]
    fn grid_counts() {
        let g = grid(3, 4);
        assert_eq!(g.vertex_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // rows*(cols-1) + (rows-1)*cols
        assert!(analysis::is_connected(&g));
    }

    #[test]
    fn bipartite_counts() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.edge_count(), 12);
        assert!((0..3).all(|i| g.degree(VertexId::new(i)) == 4));
        assert!((3..7).all(|i| g.degree(VertexId::new(i)) == 3));
    }

    #[test]
    fn dumbbell_distance_spans_bridge() {
        let g = dumbbell(5, 3);
        assert!(analysis::is_connected(&g));
        let d = analysis::bfs_distances(&g, VertexId::new(1));
        // From inside the left clique to inside the right clique:
        // 1 (to v0) + bridge 3 + 1 (into right clique) + 1 = 6 hops to the
        // farthest right vertex.
        let far = d[g.vertex_count() - 1];
        assert_eq!(far, 6);
    }

    #[test]
    fn clustered_blocks_are_denser_inside() {
        let g = clustered(4, 25, 0.5, 0.01, Seed::new(3)).unwrap();
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v) in g.edges() {
            if u.index() / 25 == v.index() / 25 {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > inter, "intra {intra} inter {inter}");
    }

    #[test]
    fn clustered_respects_zero_probabilities() {
        let g = clustered(3, 10, 0.0, 0.0, Seed::new(1)).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn torus_is_4_regular_and_connected() {
        let g = torus(5, 7);
        assert_eq!(g.vertex_count(), 35);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert!(analysis::is_connected(&g));
        assert_eq!(g.edge_count(), 2 * 35);
    }

    #[test]
    #[should_panic(expected = "dimensions ≥ 3")]
    fn tiny_torus_panics() {
        let _ = torus(2, 5);
    }

    #[test]
    fn hypercube_degrees_and_distances() {
        let g = hypercube(4);
        assert_eq!(g.vertex_count(), 16);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        // Distance = Hamming distance: opposite corner is d away.
        let d = analysis::bfs_distances(&g, VertexId::new(0));
        assert_eq!(d[0b1111], 4);
        assert_eq!(d[0b0101], 2);
    }

    #[test]
    #[should_panic(expected = "dimension must be")]
    fn zero_dim_hypercube_panics() {
        let _ = hypercube(0);
    }
}
