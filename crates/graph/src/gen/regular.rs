//! Random d-regular graphs via the matching-table model of Section 6.
//!
//! The paper's lower-bound instances are defined as perfect matchings between
//! the cells of an `n × d` table: matching cell `(u, i)` to `(v, j)` makes `v`
//! the i-th neighbor of `u` and `u` the j-th neighbor of `v`. This generator
//! samples such a matching uniformly and then repairs the (expected O(d²))
//! self-loops and parallel edges by re-pairing, exactly as the paper's
//! simplification step prescribes.

use std::collections::HashSet;

use lca_rand::Seed;

use super::gnp::finalize;
use super::CommonOpts;
use crate::{Graph, GraphBuilder, GraphError};

/// Builds a uniform-ish random d-regular simple graph (configuration model
/// with collision repair).
///
/// # Example
///
/// ```
/// use lca_graph::gen::RegularBuilder;
/// use lca_rand::Seed;
/// let g = RegularBuilder::new(100, 4).seed(Seed::new(3)).build().unwrap();
/// assert!(g.vertices().all(|v| g.degree(v) == 4));
/// ```
#[derive(Debug, Clone)]
pub struct RegularBuilder {
    n: usize,
    d: usize,
    opts: CommonOpts,
    max_repair_rounds: usize,
}

impl RegularBuilder {
    /// Starts a d-regular builder.
    pub fn new(n: usize, d: usize) -> Self {
        Self {
            n,
            d,
            opts: CommonOpts::default(),
            max_repair_rounds: 200,
        }
    }

    /// Sets the generation seed.
    pub fn seed(mut self, seed: Seed) -> Self {
        self.opts.seed = seed;
        self
    }

    /// Also permute vertex labels.
    pub fn shuffle_labels(mut self, yes: bool) -> Self {
        self.opts.shuffle_labels = yes;
        self
    }

    /// Shuffle adjacency lists (default: true).
    pub fn shuffle_adjacency(mut self, yes: bool) -> Self {
        self.opts.shuffle_adjacency = yes;
        self
    }

    /// Generates the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Unsatisfiable`] if `n·d` is odd, `d >= n`, or
    /// collision repair fails to converge (essentially impossible for
    /// `d = o(√n)`).
    pub fn build(self) -> Result<Graph, GraphError> {
        let (n, d) = (self.n, self.d);
        if d == 0 {
            return Ok(finalize(GraphBuilder::new(n), &self.opts));
        }
        if d >= n {
            return Err(GraphError::Unsatisfiable {
                reason: format!("d = {d} must be < n = {n}"),
            });
        }
        if (n * d) % 2 != 0 {
            return Err(GraphError::Unsatisfiable {
                reason: format!("n·d = {} is odd", n * d),
            });
        }
        let mut stream = self.opts.seed.derive(0x524547).stream();
        // Stubs: cell (v, i) is stub v for each of the d slots.
        let mut stubs: Vec<u32> = Vec::with_capacity(n * d);
        for v in 0..n as u32 {
            for _ in 0..d {
                stubs.push(v);
            }
        }
        // Shuffle and pair consecutive stubs.
        for i in (1..stubs.len()).rev() {
            let j = stream.next_below(i as u64 + 1) as usize;
            stubs.swap(i, j);
        }
        let mut pairs: Vec<(u32, u32)> = stubs.chunks_exact(2).map(|c| (c[0], c[1])).collect();

        // Repair: repeatedly re-pair bad matches with random good ones.
        let mut rounds = 0usize;
        loop {
            let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(pairs.len());
            let mut bad: Vec<usize> = Vec::new();
            for (idx, &(a, b)) in pairs.iter().enumerate() {
                let key = if a < b { (a, b) } else { (b, a) };
                if a == b || !seen.insert(key) {
                    bad.push(idx);
                }
            }
            if bad.is_empty() {
                break;
            }
            rounds += 1;
            if rounds > self.max_repair_rounds {
                return Err(GraphError::Unsatisfiable {
                    reason: format!(
                        "matching repair did not converge after {rounds} rounds (n={n}, d={d})"
                    ),
                });
            }
            // Swap one endpoint of each bad pair with a random other pair.
            for idx in bad {
                let other = stream.next_below(pairs.len() as u64) as usize;
                if other == idx {
                    continue;
                }
                let (a, b) = pairs[idx];
                let (c, e) = pairs[other];
                pairs[idx] = (a, e);
                pairs[other] = (c, b);
            }
        }

        let mut builder = GraphBuilder::new(n);
        for (a, b) in pairs {
            builder = builder.edge(a as usize, b as usize);
        }
        Ok(finalize(builder, &self.opts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_are_exactly_d() {
        for (n, d) in [(20usize, 3usize), (50, 4), (100, 7), (64, 2)] {
            let g = RegularBuilder::new(n, d)
                .seed(Seed::new(1))
                .build()
                .unwrap();
            assert_eq!(g.vertex_count(), n);
            assert!(
                g.vertices().all(|v| g.degree(v) == d),
                "n={n} d={d}: degrees {:?}",
                g.vertices().map(|v| g.degree(v)).collect::<Vec<_>>()
            );
            assert_eq!(g.edge_count(), n * d / 2);
        }
    }

    #[test]
    fn zero_degree_is_empty() {
        let g = RegularBuilder::new(5, 0).build().unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn odd_total_degree_fails() {
        let err = RegularBuilder::new(5, 3).build().unwrap_err();
        assert!(matches!(err, GraphError::Unsatisfiable { .. }));
    }

    #[test]
    fn d_at_least_n_fails() {
        let err = RegularBuilder::new(4, 4).build().unwrap_err();
        assert!(matches!(err, GraphError::Unsatisfiable { .. }));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RegularBuilder::new(60, 4)
            .seed(Seed::new(8))
            .build()
            .unwrap();
        let b = RegularBuilder::new(60, 4)
            .seed(Seed::new(8))
            .build()
            .unwrap();
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        let c = RegularBuilder::new(60, 4)
            .seed(Seed::new(9))
            .build()
            .unwrap();
        assert_ne!(a.edges().collect::<Vec<_>>(), c.edges().collect::<Vec<_>>());
    }

    #[test]
    fn near_complete_regular_graph() {
        // d = n - 1 forces the complete graph; the repair loop must converge.
        let g = RegularBuilder::new(8, 7)
            .seed(Seed::new(2))
            .build()
            .unwrap();
        assert_eq!(g.edge_count(), 28);
    }

    #[test]
    fn random_regular_graphs_are_usually_connected() {
        // d >= 3 random regular graphs are connected w.h.p.
        let g = RegularBuilder::new(200, 3)
            .seed(Seed::new(4))
            .build()
            .unwrap();
        assert!(crate::analysis::is_connected(&g));
    }
}
