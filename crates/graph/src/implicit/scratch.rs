//! Per-thread generation scratch for the matching-backed implicit oracles.
//!
//! Every probe against an implicit oracle regenerates the probed vertex's
//! full adjacency list — O(K) Feistel cycle-walks plus hash-coin thinning —
//! even though real query workloads hammer the *same* vertex many times in a
//! row (`degree(v)` followed by `neighbor(v, 0..d)` is the canonical scan,
//! and BFS/DFS layers revisit frontier vertices constantly). The LCA model
//! charges for probes to the input, not for local recomputation, so
//! remembering the last few generated lists is free in-model: answers are a
//! pure function of `(oracle, vertex)`, so a remembered list is bit-identical
//! to a regenerated one and probe transcripts cannot change (call sites
//! still issue exactly the probes they issued before).
//!
//! The scratch is a tiny per-thread set-associative memo: [`WAYS`] entries,
//! each keyed by `(oracle id, vertex)` and owning a reusable `Vec` so the
//! steady state allocates nothing. Oracle ids come from a process-global
//! counter handed out at construction ([`next_oracle_id`]), so two distinct
//! oracles never alias; clones share an id, which is sound because clones
//! are field-for-field identical generators. Replacement is second chance:
//! a hit sets the entry's referenced bit, and the round-robin victim pointer
//! skips (and clears) referenced entries before reusing one.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::VertexId;

/// Associativity of the per-thread memo. Four ways cover the common probe
/// shapes: a scan of `v` interleaved with `adjacency(w, v)` back-probes
/// touches two vertices, BFS expansion with parent checks touches three.
const WAYS: usize = 4;

/// Process-global id well; `0` is reserved as "no entry".
static NEXT_ORACLE_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh oracle id (called once per oracle construction).
pub(crate) fn next_oracle_id() -> u64 {
    NEXT_ORACLE_ID.fetch_add(1, Ordering::Relaxed)
}

/// One memo way: the generated list for `(oracle, vertex)`.
#[derive(Default)]
struct Way {
    oracle: u64,
    vertex: u32,
    referenced: bool,
    list: Vec<VertexId>,
}

/// The per-thread memo: a handful of ways plus a clock hand.
#[derive(Default)]
struct Memo {
    ways: [Way; WAYS],
    hand: usize,
}

thread_local! {
    static MEMO: RefCell<Memo> = RefCell::new(Memo::default());
}

/// Runs `read` on the generated adjacency list of `(oracle, v)`, generating
/// via `generate` only when the per-thread memo has no copy. `generate` must
/// be a pure function of `(oracle, v)` that fills the cleared buffer it is
/// handed; it must not recurse into [`with_list`] (the implicit generators
/// are leaf computations, so they never do).
pub(crate) fn with_list<R>(
    oracle: u64,
    v: VertexId,
    generate: impl FnOnce(&mut Vec<VertexId>),
    read: impl FnOnce(&[VertexId]) -> R,
) -> R {
    MEMO.with(|memo| {
        let Ok(mut memo) = memo.try_borrow_mut() else {
            // Unreachable without reentrancy; regenerate without caching.
            let mut list = Vec::new();
            generate(&mut list);
            return read(&list);
        };
        let memo = &mut *memo;
        for way in memo.ways.iter_mut() {
            if way.oracle == oracle && way.vertex == v.raw() {
                way.referenced = true;
                return read(&way.list);
            }
        }
        // Miss: second-chance victim selection — sweep from the clock hand
        // clearing referenced bits; the first unreferenced way is the
        // victim, and a fully-referenced set falls back to the hand itself
        // (whose bit the sweep just cleared).
        let mut victim = memo.hand;
        for off in 0..WAYS {
            let idx = (memo.hand + off) % WAYS;
            if memo.ways.get(idx).is_some_and(|w| w.referenced) {
                if let Some(w) = memo.ways.get_mut(idx) {
                    w.referenced = false;
                }
                victim = (idx + 1) % WAYS;
            } else {
                victim = idx;
                break;
            }
        }
        memo.hand = (victim + 1) % WAYS;
        if let Some(way) = memo.ways.get_mut(victim) {
            way.oracle = oracle;
            way.vertex = v.raw();
            way.referenced = true;
            way.list.clear();
            generate(&mut way.list);
            read(&way.list)
        } else {
            // victim < WAYS always; kept total for the panic-free contract.
            let mut list = Vec::new();
            generate(&mut list);
            read(&list)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_ids_are_unique() {
        let a = next_oracle_id();
        let b = next_oracle_id();
        assert_ne!(a, b);
        assert_ne!(a, 0);
    }

    #[test]
    fn memo_serves_repeats_without_regenerating() {
        let id = next_oracle_id();
        let v = VertexId::new(7);
        let mut generations = 0;
        for _ in 0..5 {
            let len = with_list(
                id,
                v,
                |out| {
                    generations += 1;
                    out.extend([VertexId::new(1), VertexId::new(2)]);
                },
                |list| list.len(),
            );
            assert_eq!(len, 2);
        }
        assert_eq!(generations, 1, "repeat probes must hit the memo");
    }

    #[test]
    fn distinct_oracles_do_not_alias() {
        let a = next_oracle_id();
        let b = next_oracle_id();
        let v = VertexId::new(3);
        let la = with_list(a, v, |out| out.push(VertexId::new(10)), |l| l.to_vec());
        let lb = with_list(b, v, |out| out.push(VertexId::new(20)), |l| l.to_vec());
        assert_eq!(la, vec![VertexId::new(10)]);
        assert_eq!(lb, vec![VertexId::new(20)]);
    }

    #[test]
    fn eviction_cycles_through_many_vertices() {
        let id = next_oracle_id();
        // Far more distinct vertices than ways: every access regenerates,
        // and the answers stay keyed correctly.
        for round in 0..3 {
            for i in 0..64u32 {
                let got = with_list(
                    id,
                    VertexId::from(i),
                    |out| out.push(VertexId::from(i ^ 1)),
                    |l| l[0],
                );
                assert_eq!(got, VertexId::from(i ^ 1), "round {round}");
            }
        }
    }
}
