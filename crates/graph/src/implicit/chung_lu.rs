//! Implicit Chung–Lu power-law graphs.

use lca_rand::Seed;

use crate::{Oracle, VertexId};

use super::matchings::MatchingSlots;
use super::{scratch, ImplicitOracle};

/// Exact weight-sum cutoff: below this `n` the normalizing sum is computed
/// term by term; above it the tail is integrated (Euler–Maclaurin leading
/// term), so construction stays O(min(n, 2²⁰)) even at `n = 10⁹`.
const EXACT_SUM_CAP: usize = 1 << 20;

/// A Chung–Lu power-law graph served implicitly: vertex `i` carries weight
/// `w_i ∝ (i+1)^{−1/(β−1)}` scaled to a target average degree, and pair
/// `{u, v}` matched in one of `K` seeded matchings is kept with probability
/// `min(1, w_u·w_v / (K·w̄))` — a hash coin both endpoints can evaluate, so
/// adjacency stays symmetric without materialization. Expected degrees track
/// the weights (`E[deg v] ≈ w_v`) except that hubs saturate at `K`: a truly
/// unbounded hub would force the oracle to enumerate `Θ(w_max)` neighbors,
/// which is exactly the non-local behavior an implicit oracle must avoid, so
/// the slot count doubles as an explicit degree cutoff.
///
/// Probe cost: O(K). Memory: O(K), independent of `n`.
///
/// # Example
///
/// ```
/// use lca_graph::implicit::ImplicitChungLu;
/// use lca_graph::{Oracle, VertexId};
/// use lca_rand::Seed;
///
/// let o = ImplicitChungLu::power_law(10_000_000, 2.5, 6.0, Seed::new(1));
/// // Low-index vertices are the hubs; the tail has small degrees.
/// assert!(o.degree(VertexId::new(0)) >= o.degree(VertexId::new(9_999_999)));
/// ```
#[derive(Debug, Clone)]
pub struct ImplicitChungLu {
    core: MatchingSlots,
    n: usize,
    gamma: f64,
    scale: f64,
    /// `K · w̄` — the keep-probability denominator.
    denom: f64,
    memo_id: u64,
}

impl ImplicitChungLu {
    /// Builds the oracle with power-law exponent `beta > 2`, target average
    /// degree `avg_degree > 0` and the default 64 matching slots.
    ///
    /// # Panics
    ///
    /// Panics if `beta <= 2` or `avg_degree <= 0` (mirrors
    /// [`crate::gen::ChungLuBuilder::power_law`]).
    pub fn power_law(n: usize, beta: f64, avg_degree: f64, seed: Seed) -> Self {
        Self::with_slots(n, beta, avg_degree, 64, seed)
    }

    /// Builds with an explicit slot count `K ≥ 1` (the hub degree cutoff).
    pub fn with_slots(n: usize, beta: f64, avg_degree: f64, slots: usize, seed: Seed) -> Self {
        assert!(beta > 2.0, "beta must exceed 2 for a finite mean");
        assert!(avg_degree > 0.0, "avg_degree must be positive");
        assert!(slots >= 1, "at least one matching slot is required");
        let gamma = 1.0 / (beta - 1.0);
        let sum = weight_sum(n, gamma);
        let scale = if sum > 0.0 {
            avg_degree * n as f64 / sum
        } else {
            0.0
        };
        Self {
            core: MatchingSlots::new(n, slots, seed),
            n,
            gamma,
            scale,
            denom: slots as f64 * avg_degree,
            memo_id: scratch::next_oracle_id(),
        }
    }

    /// The number of matching slots `K` (also the hub degree cutoff).
    pub fn slots(&self) -> usize {
        self.core.slots()
    }

    /// The Chung–Lu weight of vertex `v` (its expected degree, up to the
    /// hub cutoff).
    pub fn weight(&self, v: VertexId) -> f64 {
        self.scale * ((v.index() + 1) as f64).powf(-self.gamma)
    }

    /// Runs `read` on `Γ(v)` through the per-thread generation scratch:
    /// one weight/coin setup per generation instead of per probe.
    fn with_list<R>(&self, v: VertexId, read: impl FnOnce(&[VertexId]) -> R) -> R {
        assert!(v.index() < self.n, "vertex {v} out of range");
        scratch::with_list(
            self.memo_id,
            v,
            |out| {
                let raw = v.raw() as u64;
                let wv = self.weight(v);
                self.core.neighbors_into(
                    v,
                    |slot, w| {
                        // Keep the exact float expression of the original
                        // per-probe path: reassociating would flip ULP-edge
                        // coins and silently regenerate a different graph.
                        let q = (wv * self.weight(VertexId::from(w as u32)) / self.denom).min(1.0);
                        self.core.pair_unit(slot, raw, w) < q
                    },
                    out,
                );
            },
            read,
        )
    }
}

/// `Σ_{t=1}^{n} t^{-γ}`: exact below [`EXACT_SUM_CAP`], integral tail above.
fn weight_sum(n: usize, gamma: f64) -> f64 {
    let head = n.min(EXACT_SUM_CAP);
    let mut sum: f64 = (1..=head).map(|t| (t as f64).powf(-gamma)).sum();
    if n > head {
        let e = 1.0 - gamma;
        sum += ((n as f64).powf(e) - (head as f64).powf(e)) / e;
    }
    sum
}

impl Oracle for ImplicitChungLu {
    fn vertex_count(&self) -> usize {
        self.n
    }

    fn degree(&self, v: VertexId) -> usize {
        self.with_list(v, |l| l.len())
    }

    fn neighbor(&self, v: VertexId, i: usize) -> Option<VertexId> {
        self.with_list(v, |l| l.get(i).copied())
    }

    fn adjacency(&self, u: VertexId, v: VertexId) -> Option<usize> {
        self.with_list(u, |l| l.iter().position(|&w| w == v))
    }

    fn neighbors_into(&self, v: VertexId, out: &mut Vec<VertexId>) -> usize {
        self.with_list(v, |l| {
            out.clear();
            out.extend_from_slice(l);
            l.len()
        })
    }

    fn label(&self, v: VertexId) -> u64 {
        v.index() as u64
    }
    fn probe_cost_hint(&self) -> crate::ProbeCost {
        crate::ProbeCost::Compute
    }
}

impl ImplicitOracle for ImplicitChungLu {
    fn family(&self) -> &'static str {
        "implicit-chung-lu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_degree_tracks_target() {
        let (n, target) = (4_000usize, 6.0);
        let o = ImplicitChungLu::power_law(n, 2.8, target, Seed::new(1));
        let total: usize = (0..n).map(|v| o.degree(VertexId::new(v))).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - target).abs() < 1.5,
            "mean degree {mean}, target {target}"
        );
    }

    #[test]
    fn hubs_and_tail_coexist() {
        let n = 4_000;
        let o = ImplicitChungLu::power_law(n, 2.2, 6.0, Seed::new(2));
        let hub_mean: f64 = (0..10)
            .map(|v| o.degree(VertexId::new(v)) as f64)
            .sum::<f64>()
            / 10.0;
        let tail_low = (n - 500..n)
            .filter(|&v| o.degree(VertexId::new(v)) <= 3)
            .count();
        assert!(hub_mean > 15.0, "hub mean degree {hub_mean}");
        assert!(tail_low > 250, "tail too dense: {tail_low}/500 low-degree");
    }

    #[test]
    fn adjacency_is_symmetric_including_hubs() {
        let o = ImplicitChungLu::power_law(20_000_000, 2.5, 8.0, Seed::new(3));
        for probe in [0usize, 1, 5, 19_999_999, 10_000_000] {
            let v = VertexId::new(probe);
            for i in 0..o.degree(v) {
                let w = o.neighbor(v, i).unwrap();
                let back = o.adjacency(w, v).expect("missing reverse edge");
                assert_eq!(o.neighbor(w, back), Some(v));
            }
        }
    }

    #[test]
    fn weight_sum_tail_approximation_is_close() {
        // Compare the hybrid sum against the exact sum just above the cap.
        let n = EXACT_SUM_CAP + 50_000;
        let gamma = 0.6;
        let exact: f64 = (1..=n).map(|t| (t as f64).powf(-gamma)).sum();
        let approx = weight_sum(n, gamma);
        assert!(
            ((approx - exact) / exact).abs() < 1e-4,
            "approx {approx} vs exact {exact}"
        );
    }
}
