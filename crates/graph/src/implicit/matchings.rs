//! The matching-table core behind the randomized implicit families.
//!
//! The paper's Section 6 instances are unions of perfect matchings on the
//! cells of an `n × d` table. That construction is *locally invertible*: if
//! each matching pairs table positions `2k ↔ 2k+1` under a seeded
//! permutation `π_j` of `[0, n)` ([`SeededPermutation`]), then the partner of
//! `v` in slot `j` is `π_j(π_j⁻¹(v) XOR 1)` — one O(1) computation, no
//! materialization. Every randomized implicit oracle here is a union of `K`
//! such matchings, *thinned* by a per-`(slot, pair)` hash coin:
//!
//! * d-regular: `K = d` slots, every matched pair kept;
//! * sparse G(n, c/n)-style: keep with probability `c / K`, so degrees are
//!   `Binomial(K, c/K) → Poisson(c)`;
//! * Chung–Lu: keep pair `{u, v}` with probability
//!   `min(1, w_u·w_v / (K·w̄))`, so `E[deg v] ≈ w_v`.
//!
//! Thinning by an *unordered-pair* coin keeps the construction symmetric —
//! both endpoints compute the same coin — which is what makes every family
//! satisfy the oracle laws (adjacency symmetry, inverse-index consistency)
//! by construction.

use lca_rand::Seed;

use crate::VertexId;

use super::permute::SeededPermutation;

/// Derivation tag for per-slot permutation seeds.
const TAG_PERM: u64 = 0x004D_4154_4348_5F50;
/// Derivation tag for the pair-coin seed.
const TAG_COIN: u64 = 0x004D_4154_4348_5F43;

/// `K` seeded perfect matchings on `[0, n)` with O(1) partner lookup and a
/// per-`(slot, unordered pair)` uniform coin.
#[derive(Debug, Clone)]
pub(crate) struct MatchingSlots {
    n: u64,
    perms: Vec<SeededPermutation>,
    coin: Seed,
}

impl MatchingSlots {
    /// Builds `slots` matchings over `[0, n)` from a seed.
    pub(crate) fn new(n: usize, slots: usize, seed: Seed) -> Self {
        let n = n as u64;
        let perms = (0..slots)
            .map(|j| SeededPermutation::new(n.max(1), seed.derive2(TAG_PERM, j as u64)))
            .collect();
        Self {
            n,
            perms,
            coin: seed.derive(TAG_COIN),
        }
    }

    /// Number of matching slots `K`.
    pub(crate) fn slots(&self) -> usize {
        self.perms.len()
    }

    /// The partner of `v` in matching `slot`, or `None` if `v` sits in the
    /// unmatched last cell of an odd-sized table.
    pub(crate) fn partner(&self, v: u64, slot: usize) -> Option<u64> {
        if self.n < 2 {
            return None;
        }
        let perm = &self.perms[slot];
        let pos = perm.backward(v);
        let mate = pos ^ 1;
        if mate >= self.n {
            return None; // n odd: position n−1 is unmatched in this slot
        }
        Some(perm.forward(mate))
    }

    /// A uniform value in `[0, 1)`, deterministic per `(slot, {u, w})` and
    /// identical from both endpoints (the thinning coin).
    pub(crate) fn pair_unit(&self, slot: usize, u: u64, w: u64) -> f64 {
        let (a, b) = if u <= w { (u, w) } else { (w, u) };
        let h = self.coin.derive2(slot as u64, (a << 32) | b).value();
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The full neighbor list of `v`: partners of all slots whose pair passes
    /// `keep`, in slot order, with duplicate pairs (the same `{v, w}` matched
    /// in several slots) reported once at their first kept slot.
    ///
    /// Cost: O(K) permutation evaluations — this is the per-*generation*
    /// work bound of every matching-backed oracle (the per-thread scratch in
    /// [`super::scratch`] amortizes it across repeated probes of one vertex).
    #[cfg(test)]
    pub(crate) fn neighbors_of(
        &self,
        v: VertexId,
        keep: impl FnMut(usize, u64) -> bool,
    ) -> Vec<VertexId> {
        let mut out = Vec::new();
        self.neighbors_into(v, keep, &mut out);
        out
    }

    /// Buffered form of [`MatchingSlots::neighbors_of`]: clears `out` and
    /// fills it with the kept partners of `v`, in slot order, deduplicated.
    /// One permutation-table walk per call — the single place the Feistel
    /// setup is paid, whatever buffer the caller brings.
    pub(crate) fn neighbors_into(
        &self,
        v: VertexId,
        mut keep: impl FnMut(usize, u64) -> bool,
        out: &mut Vec<VertexId>,
    ) {
        let v = v.raw() as u64;
        out.clear();
        for slot in 0..self.perms.len() {
            let Some(w) = self.partner(v, slot) else {
                continue;
            };
            if !keep(slot, w) {
                continue;
            }
            let w = VertexId::from(w as u32);
            if !out.contains(&w) {
                out.push(w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partner_is_an_involution_without_fixed_points() {
        for n in [2usize, 9, 64, 257] {
            let m = MatchingSlots::new(n, 5, Seed::new(3));
            for slot in 0..m.slots() {
                let mut unmatched = 0;
                for v in 0..n as u64 {
                    match m.partner(v, slot) {
                        Some(w) => {
                            assert_ne!(w, v, "self-loop at n={n}");
                            assert_eq!(m.partner(w, slot), Some(v), "not an involution");
                        }
                        None => unmatched += 1,
                    }
                }
                assert_eq!(unmatched, n % 2, "n={n}: wrong unmatched count");
            }
        }
    }

    #[test]
    fn pair_coin_is_symmetric_and_slot_sensitive() {
        let m = MatchingSlots::new(100, 4, Seed::new(9));
        assert_eq!(m.pair_unit(2, 3, 77), m.pair_unit(2, 77, 3));
        assert_ne!(m.pair_unit(0, 3, 77), m.pair_unit(1, 3, 77));
        let u = m.pair_unit(0, 1, 2);
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn neighbors_dedup_and_preserve_slot_order() {
        let m = MatchingSlots::new(50, 6, Seed::new(5));
        let v = VertexId::new(7);
        let all = m.neighbors_of(v, |_, _| true);
        let mut seen = std::collections::HashSet::new();
        for w in &all {
            assert!(seen.insert(*w), "duplicate neighbor {w}");
        }
        assert!(all.len() <= 6);
        // Keeping nothing yields the empty list.
        assert!(m.neighbors_of(v, |_, _| false).is_empty());
    }
}
