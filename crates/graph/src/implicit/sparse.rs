//! Implicit sparse G(n, c/n)-style graphs.

use lca_rand::Seed;

use crate::{Oracle, VertexId};

use super::matchings::MatchingSlots;
use super::{scratch, ImplicitOracle};

/// A sparse random graph with expected degree `c` served implicitly — the
/// G(n, c/n) regime of the paper, on graphs far too large to materialize.
///
/// Construction: `K` seeded perfect matchings, each matched pair kept with
/// probability `c/K` by a symmetric per-`(slot, pair)` hash coin. Degrees
/// are `Binomial(K, c/K)`, which converges to the `Poisson(c)` degree law of
/// G(n, c/n) as `K` grows (default `K = max(8, ⌈4c⌉)`), and the graph is
/// locally tree-like exactly as G(n, c/n) is. The distribution is not
/// *literally* Erdős–Rényi — edges are confined to the matching union, so
/// the maximum degree is `K` — but every per-vertex adjacency is generated
/// on demand from the seed, which is the property the LCA model needs.
///
/// Probe cost: O(K) permutation evaluations. Memory: O(K), independent
/// of `n`.
///
/// # Example
///
/// ```
/// use lca_graph::implicit::ImplicitGnp;
/// use lca_graph::{Oracle, VertexId};
/// use lca_rand::Seed;
///
/// let o = ImplicitGnp::new(100_000_000, 4.0, Seed::new(1));
/// let v = VertexId::new(99_999_999);
/// let d = o.degree(v); // generated, not looked up
/// assert!(d <= o.slots());
/// ```
#[derive(Debug, Clone)]
pub struct ImplicitGnp {
    core: MatchingSlots,
    n: usize,
    keep: f64,
    memo_id: u64,
}

impl ImplicitGnp {
    /// Builds the oracle for `n` vertices with expected degree `c ≥ 0`
    /// (edge probability `c/n`), using `max(8, ⌈4c⌉)` matching slots.
    ///
    /// # Panics
    ///
    /// Panics if `c` is negative or not finite.
    pub fn new(n: usize, c: f64, seed: Seed) -> Self {
        assert!(
            c.is_finite() && c >= 0.0,
            "expected degree must be finite and >= 0"
        );
        let slots = (c * 4.0).ceil().max(8.0) as usize;
        Self::with_slots(n, c, slots, seed)
    }

    /// Builds with an explicit slot count `K ≥ 1`; the per-slot keep
    /// probability is `min(1, c/K)`.
    pub fn with_slots(n: usize, c: f64, slots: usize, seed: Seed) -> Self {
        assert!(slots >= 1, "at least one matching slot is required");
        assert!(
            c.is_finite() && c >= 0.0,
            "expected degree must be finite and >= 0"
        );
        Self {
            core: MatchingSlots::new(n, slots, seed),
            n,
            keep: (c / slots as f64).min(1.0),
            memo_id: scratch::next_oracle_id(),
        }
    }

    /// The number of matching slots `K` (also the maximum possible degree).
    pub fn slots(&self) -> usize {
        self.core.slots()
    }

    /// The expected degree `c` the oracle was built for.
    pub fn expected_degree(&self) -> f64 {
        self.keep * self.core.slots() as f64
    }

    /// Runs `read` on `Γ(v)`, generating at most once per memo residency:
    /// the per-thread scratch returns the remembered list when this oracle
    /// generated `v` recently on this thread.
    fn with_list<R>(&self, v: VertexId, read: impl FnOnce(&[VertexId]) -> R) -> R {
        assert!(v.index() < self.n, "vertex {v} out of range");
        scratch::with_list(
            self.memo_id,
            v,
            |out| {
                let raw = v.raw() as u64;
                self.core.neighbors_into(
                    v,
                    |slot, w| self.core.pair_unit(slot, raw, w) < self.keep,
                    out,
                );
            },
            read,
        )
    }

    #[cfg(test)]
    fn list(&self, v: VertexId) -> Vec<VertexId> {
        self.with_list(v, |l| l.to_vec())
    }
}

impl Oracle for ImplicitGnp {
    fn vertex_count(&self) -> usize {
        self.n
    }

    fn degree(&self, v: VertexId) -> usize {
        self.with_list(v, |l| l.len())
    }

    fn neighbor(&self, v: VertexId, i: usize) -> Option<VertexId> {
        self.with_list(v, |l| l.get(i).copied())
    }

    fn adjacency(&self, u: VertexId, v: VertexId) -> Option<usize> {
        self.with_list(u, |l| l.iter().position(|&w| w == v))
    }

    fn neighbors_into(&self, v: VertexId, out: &mut Vec<VertexId>) -> usize {
        self.with_list(v, |l| {
            out.clear();
            out.extend_from_slice(l);
            l.len()
        })
    }

    fn label(&self, v: VertexId) -> u64 {
        v.index() as u64
    }
    fn probe_cost_hint(&self) -> crate::ProbeCost {
        crate::ProbeCost::Compute
    }
}

impl ImplicitOracle for ImplicitGnp {
    fn family(&self) -> &'static str {
        "implicit-gnp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_degree_tracks_c() {
        let (n, c) = (4_000usize, 5.0);
        let o = ImplicitGnp::new(n, c, Seed::new(11));
        let total: usize = (0..n).map(|v| o.degree(VertexId::new(v))).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - c).abs() < 0.5, "mean degree {mean}, target {c}");
    }

    #[test]
    fn adjacency_is_symmetric_at_scale() {
        let o = ImplicitGnp::new(50_000_000, 3.0, Seed::new(2));
        let v = VertexId::new(31_415_926);
        for i in 0..o.degree(v) {
            let w = o.neighbor(v, i).unwrap();
            let back = o.adjacency(w, v).expect("missing reverse edge");
            assert_eq!(o.neighbor(w, back), Some(v));
        }
    }

    #[test]
    fn zero_degree_graph_is_empty() {
        let o = ImplicitGnp::new(100, 0.0, Seed::new(3));
        assert!((0..100).all(|v| o.degree(VertexId::new(v)) == 0));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ImplicitGnp::new(1_000, 4.0, Seed::new(5));
        let b = ImplicitGnp::new(1_000, 4.0, Seed::new(5));
        let c = ImplicitGnp::new(1_000, 4.0, Seed::new(6));
        let same = (0..1_000).all(|v| a.list(VertexId::new(v)) == b.list(VertexId::new(v)));
        assert!(same);
        let differs = (0..1_000).any(|v| a.list(VertexId::new(v)) != c.list(VertexId::new(v)));
        assert!(differs);
    }
}
