//! Implicit random d-regular graphs.

use lca_rand::Seed;

use crate::{Oracle, VertexId};

use super::matchings::MatchingSlots;
use super::{scratch, ImplicitOracle};

/// A random (near-)d-regular graph served implicitly: the union of `d`
/// seeded perfect matchings (the paper's §6 matching-table model), with
/// partner lookup by pairing-function inversion instead of materialization.
///
/// Every vertex has degree exactly `d` except for two rare, deterministic
/// deficiencies: when `n` is odd each matching leaves one cell unmatched,
/// and when two slots match the same pair `{u, v}` the duplicate collapses
/// (probability `O(d²/n)` per vertex). Unlike [`crate::gen::RegularBuilder`]
/// there is no repair pass — repair is a global operation, and this oracle
/// never sees the whole graph.
///
/// Probe cost: O(d) permutation evaluations per probe. Memory: O(d) seeds,
/// independent of `n`.
///
/// # Example
///
/// ```
/// use lca_graph::implicit::ImplicitRegular;
/// use lca_graph::{Oracle, VertexId};
/// use lca_rand::Seed;
///
/// let o = ImplicitRegular::new(1_000_000_000, 4, Seed::new(7));
/// assert_eq!(o.vertex_count(), 1_000_000_000);
/// let v = VertexId::new(123_456_789);
/// let w = o.neighbor(v, 0).unwrap();
/// assert!(o.adjacency(w, v).is_some()); // symmetric, probe-for-probe
/// ```
#[derive(Debug, Clone)]
pub struct ImplicitRegular {
    core: MatchingSlots,
    n: usize,
    d: usize,
    memo_id: u64,
}

impl ImplicitRegular {
    /// Builds the oracle for `n` vertices and target degree `d`.
    pub fn new(n: usize, d: usize, seed: Seed) -> Self {
        Self {
            core: MatchingSlots::new(n, d, seed),
            n,
            d,
            memo_id: scratch::next_oracle_id(),
        }
    }

    /// The target degree `d` (an upper bound on every actual degree).
    pub fn target_degree(&self) -> usize {
        self.d
    }

    /// Runs `read` on `Γ(v)` through the per-thread generation scratch.
    fn with_list<R>(&self, v: VertexId, read: impl FnOnce(&[VertexId]) -> R) -> R {
        assert!(v.index() < self.n, "vertex {v} out of range");
        scratch::with_list(
            self.memo_id,
            v,
            |out| self.core.neighbors_into(v, |_, _| true, out),
            read,
        )
    }

    #[cfg(test)]
    fn list(&self, v: VertexId) -> Vec<VertexId> {
        self.with_list(v, |l| l.to_vec())
    }
}

impl Oracle for ImplicitRegular {
    fn vertex_count(&self) -> usize {
        self.n
    }

    fn degree(&self, v: VertexId) -> usize {
        self.with_list(v, |l| l.len())
    }

    fn neighbor(&self, v: VertexId, i: usize) -> Option<VertexId> {
        self.with_list(v, |l| l.get(i).copied())
    }

    fn adjacency(&self, u: VertexId, v: VertexId) -> Option<usize> {
        self.with_list(u, |l| l.iter().position(|&w| w == v))
    }

    fn neighbors_into(&self, v: VertexId, out: &mut Vec<VertexId>) -> usize {
        self.with_list(v, |l| {
            out.clear();
            out.extend_from_slice(l);
            l.len()
        })
    }

    fn label(&self, v: VertexId) -> u64 {
        v.index() as u64
    }
    fn probe_cost_hint(&self) -> crate::ProbeCost {
        crate::ProbeCost::Compute
    }
}

impl ImplicitOracle for ImplicitRegular {
    fn family(&self) -> &'static str {
        "implicit-regular"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_are_d_or_slightly_below() {
        let (n, d) = (2_000usize, 4usize);
        let o = ImplicitRegular::new(n, d, Seed::new(1));
        let mut full = 0;
        for v in 0..n {
            let deg = o.degree(VertexId::new(v));
            assert!(deg <= d);
            full += usize::from(deg == d);
        }
        assert!(full > n * 9 / 10, "only {full}/{n} vertices reach degree d");
    }

    #[test]
    fn huge_n_probes_in_constant_memory() {
        let o = ImplicitRegular::new(3_000_000_000, 3, Seed::new(2));
        let v = VertexId::new(2_999_999_999);
        let d = o.degree(v);
        assert!(d <= 3);
        for i in 0..d {
            let w = o.neighbor(v, i).unwrap();
            let back = o.adjacency(w, v).unwrap();
            assert_eq!(o.neighbor(w, back), Some(v));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ImplicitRegular::new(500, 5, Seed::new(3));
        let b = ImplicitRegular::new(500, 5, Seed::new(3));
        let c = ImplicitRegular::new(500, 5, Seed::new(4));
        let va = VertexId::new(77);
        assert_eq!(a.list(va), b.list(va));
        let differs = (0..500).any(|v| a.list(VertexId::new(v)) != c.list(VertexId::new(v)));
        assert!(differs);
    }
}
