//! Implicit lattice families: grid, torus, hypercube.
//!
//! These have closed-form neighborhoods, so the oracle is pure arithmetic —
//! the cleanest demonstration that "the input" can be a formula rather than
//! a data structure. They mirror [`crate::gen::structured::grid`],
//! [`crate::gen::structured::torus`] and
//! [`crate::gen::structured::hypercube`] in shape (not in adjacency order:
//! an implicit oracle fixes its own canonical order).

use crate::{Oracle, VertexId};

use super::ImplicitOracle;

/// The `rows × cols` grid served implicitly. Vertex `r·cols + c` is adjacent
/// to its existing 4-neighborhood in the fixed order north, west, east,
/// south.
///
/// # Example
///
/// ```
/// use lca_graph::implicit::ImplicitGrid;
/// use lca_graph::{Oracle, VertexId};
///
/// let o = ImplicitGrid::new(30_000, 30_000); // 900M vertices, zero bytes of adjacency
/// assert_eq!(o.degree(VertexId::new(0)), 2); // corner
/// ```
#[derive(Debug, Clone)]
pub struct ImplicitGrid {
    rows: usize,
    cols: usize,
}

impl ImplicitGrid {
    /// Builds the oracle for a `rows × cols` grid.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols }
    }

    fn fill(&self, v: VertexId, out: &mut Vec<VertexId>) {
        let i = v.index();
        assert!(i < self.rows * self.cols, "vertex {v} out of range");
        let (r, c) = (i / self.cols, i % self.cols);
        out.clear();
        if r > 0 {
            out.push(VertexId::new(i - self.cols)); // north
        }
        if c > 0 {
            out.push(VertexId::new(i - 1)); // west
        }
        if c + 1 < self.cols {
            out.push(VertexId::new(i + 1)); // east
        }
        if r + 1 < self.rows {
            out.push(VertexId::new(i + self.cols)); // south
        }
    }

    fn list(&self, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(4);
        self.fill(v, &mut out);
        out
    }
}

impl Oracle for ImplicitGrid {
    fn vertex_count(&self) -> usize {
        self.rows * self.cols
    }

    fn degree(&self, v: VertexId) -> usize {
        self.list(v).len()
    }

    fn neighbor(&self, v: VertexId, i: usize) -> Option<VertexId> {
        self.list(v).get(i).copied()
    }

    fn adjacency(&self, u: VertexId, v: VertexId) -> Option<usize> {
        self.list(u).iter().position(|&w| w == v)
    }

    fn neighbors_into(&self, v: VertexId, out: &mut Vec<VertexId>) -> usize {
        self.fill(v, out);
        out.len()
    }

    fn label(&self, v: VertexId) -> u64 {
        v.index() as u64
    }
    fn probe_cost_hint(&self) -> crate::ProbeCost {
        crate::ProbeCost::Compute
    }
}

impl ImplicitOracle for ImplicitGrid {
    fn family(&self) -> &'static str {
        "implicit-grid"
    }
}

/// The `rows × cols` torus (both dimensions ≥ 3, so it is 4-regular and
/// simple) served implicitly. Neighbor order: east, south, west, north.
#[derive(Debug, Clone)]
pub struct ImplicitTorus {
    rows: usize,
    cols: usize,
}

impl ImplicitTorus {
    /// Builds the oracle for a `rows × cols` torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 3 (wraparound would create
    /// parallel edges), matching [`crate::gen::structured::torus`].
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows >= 3 && cols >= 3, "torus needs both dimensions ≥ 3");
        Self { rows, cols }
    }

    fn list(&self, v: VertexId) -> [VertexId; 4] {
        let i = v.index();
        assert!(i < self.rows * self.cols, "vertex {v} out of range");
        let (r, c) = (i / self.cols, i % self.cols);
        [
            VertexId::new(r * self.cols + (c + 1) % self.cols), // east
            VertexId::new(((r + 1) % self.rows) * self.cols + c), // south
            VertexId::new(r * self.cols + (c + self.cols - 1) % self.cols), // west
            VertexId::new(((r + self.rows - 1) % self.rows) * self.cols + c), // north
        ]
    }
}

impl Oracle for ImplicitTorus {
    fn vertex_count(&self) -> usize {
        self.rows * self.cols
    }

    fn degree(&self, v: VertexId) -> usize {
        self.list(v).len()
    }

    fn neighbor(&self, v: VertexId, i: usize) -> Option<VertexId> {
        self.list(v).get(i).copied()
    }

    fn adjacency(&self, u: VertexId, v: VertexId) -> Option<usize> {
        self.list(u).iter().position(|&w| w == v)
    }

    fn neighbors_into(&self, v: VertexId, out: &mut Vec<VertexId>) -> usize {
        out.clear();
        out.extend_from_slice(&self.list(v));
        4
    }

    fn label(&self, v: VertexId) -> u64 {
        v.index() as u64
    }
    fn probe_cost_hint(&self) -> crate::ProbeCost {
        crate::ProbeCost::Compute
    }
}

impl ImplicitOracle for ImplicitTorus {
    fn family(&self) -> &'static str {
        "implicit-torus"
    }
}

/// The `d`-dimensional hypercube on `2^d` vertices served implicitly:
/// the `i`-th neighbor of `v` is `v XOR 2^i` — adjacency is a single
/// XOR-and-popcount, the only oracle here with O(1) probes and O(1)
/// adjacency without scanning.
#[derive(Debug, Clone)]
pub struct ImplicitHypercube {
    dim: u32,
}

impl ImplicitHypercube {
    /// Builds the oracle for dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0` or `d > 30` (vertex handles are `u32`).
    pub fn new(dim: u32) -> Self {
        assert!((1..=30).contains(&dim), "dimension must be in 1..=30");
        Self { dim }
    }
}

impl Oracle for ImplicitHypercube {
    fn vertex_count(&self) -> usize {
        1usize << self.dim
    }

    fn degree(&self, v: VertexId) -> usize {
        assert!(v.index() < self.vertex_count(), "vertex {v} out of range");
        self.dim as usize
    }

    fn neighbor(&self, v: VertexId, i: usize) -> Option<VertexId> {
        assert!(v.index() < self.vertex_count(), "vertex {v} out of range");
        if i < self.dim as usize {
            Some(VertexId::from(v.raw() ^ (1u32 << i)))
        } else {
            None
        }
    }

    fn adjacency(&self, u: VertexId, v: VertexId) -> Option<usize> {
        assert!(u.index() < self.vertex_count(), "vertex {u} out of range");
        let x = u.raw() ^ v.raw();
        if x.count_ones() == 1 && (x.trailing_zeros() as usize) < self.dim as usize {
            Some(x.trailing_zeros() as usize)
        } else {
            None
        }
    }

    fn label(&self, v: VertexId) -> u64 {
        v.index() as u64
    }
    fn probe_cost_hint(&self) -> crate::ProbeCost {
        crate::ProbeCost::Compute
    }
}

impl ImplicitOracle for ImplicitHypercube {
    fn family(&self) -> &'static str {
        "implicit-hypercube"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_corners_edges_interior() {
        let o = ImplicitGrid::new(5, 7);
        assert_eq!(o.vertex_count(), 35);
        assert_eq!(o.degree(VertexId::new(0)), 2);
        assert_eq!(o.degree(VertexId::new(3)), 3);
        assert_eq!(o.degree(VertexId::new(8)), 4);
        // Interior order: north, west, east, south.
        assert_eq!(o.neighbor(VertexId::new(8), 0), Some(VertexId::new(1)));
        assert_eq!(o.neighbor(VertexId::new(8), 3), Some(VertexId::new(15)));
    }

    #[test]
    fn torus_is_four_regular_and_wraps() {
        let o = ImplicitTorus::new(3, 4);
        for v in 0..12 {
            assert_eq!(o.degree(VertexId::new(v)), 4);
        }
        // Vertex 0 wraps west to vertex 3 and north to vertex 8.
        assert_eq!(o.neighbor(VertexId::new(0), 2), Some(VertexId::new(3)));
        assert_eq!(o.neighbor(VertexId::new(0), 3), Some(VertexId::new(8)));
    }

    #[test]
    #[should_panic(expected = "torus needs both dimensions ≥ 3")]
    fn tiny_torus_panics() {
        let _ = ImplicitTorus::new(2, 5);
    }

    #[test]
    fn hypercube_adjacency_is_xor() {
        let o = ImplicitHypercube::new(10);
        assert_eq!(o.vertex_count(), 1024);
        let v = VertexId::new(0b1010101010);
        assert_eq!(o.degree(v), 10);
        for i in 0..10 {
            let w = o.neighbor(v, i).unwrap();
            assert_eq!(o.adjacency(v, w), Some(i));
            assert_eq!(o.adjacency(w, v), Some(i));
        }
        assert_eq!(o.neighbor(v, 10), None);
        assert_eq!(o.adjacency(v, VertexId::new(0)), None); // distance > 1
    }
}
