//! Generator-backed implicit oracles: serve probes on graphs too large to
//! materialize.
//!
//! The whole point of the LCA model is that the input is accessed only
//! through probes — yet a materialized [`Graph`] caps every workload at
//! whatever fits in memory. The oracles here close that gap: each is a pure
//! function of `(seed, n)` that answers `Degree`/`Neighbor`/`Adjacency`
//! probes by *recomputing* the relevant slice of the graph on demand, in
//! O(K) time and O(1) memory per probe, for `n` up to the `u32` handle
//! limit (4.2 billion vertices).
//!
//! | Oracle | Family | Mechanism |
//! |--------|--------|-----------|
//! | [`ImplicitRegular`] | random d-regular | union of `d` pairing-function matchings (§6 table model) |
//! | [`ImplicitGnp`] | sparse G(n, c/n)-style | matchings thinned by a symmetric hash coin |
//! | [`ImplicitChungLu`] | power-law Chung–Lu | matchings thinned by weight-product hash coins |
//! | [`ImplicitGrid`] / [`ImplicitTorus`] / [`ImplicitHypercube`] | lattices | closed-form neighborhoods |
//!
//! Every oracle satisfies the oracle laws (see `tests/oracle_laws.rs` at the
//! workspace root) by construction, and [`ImplicitOracle::materialize`]
//! builds the probe-for-probe identical [`Graph`] — same adjacency order,
//! same labels — so equivalence with the materialized path is testable
//! exactly, answers and probe transcripts alike.
//!
//! # Example: a billion-vertex query
//!
//! ```
//! use lca_graph::implicit::ImplicitGnp;
//! use lca_graph::{Oracle, VertexId};
//! use lca_rand::Seed;
//!
//! let oracle = ImplicitGnp::new(1_000_000_000, 3.0, Seed::new(7));
//! let v = VertexId::new(123_456_789);
//! for i in 0..oracle.degree(v) {
//!     let w = oracle.neighbor(v, i).unwrap();
//!     assert_eq!(oracle.neighbor(w, oracle.adjacency(w, v).unwrap()), Some(v));
//! }
//! ```

mod chung_lu;
mod lattice;
mod matchings;
mod permute;
mod regular;
mod scratch;
mod sparse;

pub use chung_lu::ImplicitChungLu;
pub use lattice::{ImplicitGrid, ImplicitHypercube, ImplicitTorus};
pub use regular::ImplicitRegular;
pub use sparse::ImplicitGnp;

use crate::{Graph, Oracle, VertexId};

/// Largest `n` [`ImplicitOracle::materialize`] accepts — materialization is
/// a test/verification device, not a serving path.
pub const MATERIALIZE_CAP: usize = 1 << 24;

/// An [`Oracle`] that is generated, not stored: a deterministic function of
/// `(seed, n)` whose small-`n` instances can be materialized exactly for
/// equivalence testing.
pub trait ImplicitOracle: Oracle {
    /// A short family name for reports (e.g. `"implicit-gnp"`).
    fn family(&self) -> &'static str;

    /// Builds the [`Graph`] this oracle describes, probe-for-probe
    /// identical: same vertex count, same labels, and each `Γ(v)` in the
    /// oracle's own adjacency order — so any algorithm run against the
    /// materialized graph issues the same probes and gets the same answers.
    ///
    /// # Panics
    ///
    /// Panics if `vertex_count()` exceeds [`MATERIALIZE_CAP`]: asking to
    /// materialize a graph this subsystem exists to avoid materializing is a
    /// bug at the call site.
    fn materialize(&self) -> Graph {
        let n = self.vertex_count();
        assert!(
            n <= MATERIALIZE_CAP,
            "refusing to materialize n = {n} > {MATERIALIZE_CAP} vertices"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut adjacency = Vec::new();
        let mut edges = Vec::new();
        for u in 0..n {
            let vu = VertexId::new(u);
            let d = self.degree(vu);
            for i in 0..d {
                let w = self
                    .neighbor(vu, i)
                    .expect("oracle law violated: neighbor(v, i) = ⊥ for i < degree(v)");
                adjacency.push(w);
                if vu < w {
                    edges.push((vu, w));
                }
            }
            offsets.push(adjacency.len());
        }
        let labels = (0..n).map(|v| self.label(VertexId::new(v))).collect();
        Graph::from_parts(offsets, adjacency, labels, edges)
    }
}

impl<O: ImplicitOracle + ?Sized> ImplicitOracle for &O {
    fn family(&self) -> &'static str {
        (**self).family()
    }

    fn materialize(&self) -> Graph {
        (**self).materialize()
    }
}

impl<O: ImplicitOracle + ?Sized> ImplicitOracle for Box<O> {
    fn family(&self) -> &'static str {
        (**self).family()
    }

    fn materialize(&self) -> Graph {
        (**self).materialize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lca_rand::Seed;

    fn assert_materialization_matches<O: ImplicitOracle>(o: &O) {
        let g = o.materialize();
        assert_eq!(g.vertex_count(), o.vertex_count(), "{}", o.family());
        for v in g.vertices() {
            assert_eq!(g.degree(v), o.degree(v), "{} degree({v})", o.family());
            assert_eq!(g.label(v), o.label(v), "{} label({v})", o.family());
            for i in 0..g.degree(v) {
                assert_eq!(
                    g.neighbor(v, i),
                    o.neighbor(v, i),
                    "{} neighbor({v}, {i})",
                    o.family()
                );
                let w = g.neighbor(v, i).unwrap();
                assert_eq!(
                    g.adjacency_index(v, w),
                    o.adjacency(v, w),
                    "{} adjacency({v}, {w})",
                    o.family()
                );
            }
        }
    }

    #[test]
    fn materialization_is_probe_for_probe_identical() {
        let seed = Seed::new(0xABC);
        assert_materialization_matches(&ImplicitRegular::new(300, 4, seed));
        assert_materialization_matches(&ImplicitGnp::new(300, 3.0, seed));
        assert_materialization_matches(&ImplicitChungLu::power_law(300, 2.5, 5.0, seed));
        assert_materialization_matches(&ImplicitGrid::new(9, 11));
        assert_materialization_matches(&ImplicitTorus::new(5, 6));
        assert_materialization_matches(&ImplicitHypercube::new(6));
    }

    #[test]
    fn materialized_graphs_are_valid_and_symmetric() {
        let o = ImplicitGnp::new(500, 4.0, Seed::new(1));
        let g = o.materialize();
        let handshake: usize = g.vertices().map(|v| g.degree(v)).sum();
        assert_eq!(handshake, 2 * g.edge_count());
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    #[should_panic(expected = "refusing to materialize")]
    fn materialize_cap_is_enforced() {
        let o = ImplicitRegular::new(MATERIALIZE_CAP + 1, 3, Seed::new(0));
        let _ = o.materialize();
    }
}
