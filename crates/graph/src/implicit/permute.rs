//! Seeded pseudorandom permutations of `[0, n)` with O(1) evaluation in
//! *both* directions.
//!
//! The implicit matching families need, per matching slot, a bijection
//! `π : [0, n) → [0, n)` such that both `π(x)` and `π⁻¹(y)` are computable
//! without materializing the permutation — that is what lets an oracle
//! recover "which cell of the matching table does `v` occupy?" in constant
//! time. The classical construction is a balanced Feistel network over the
//! smallest even-bit-width power-of-two domain `≥ n`, combined with
//! cycle-walking to restrict it to `[0, n)`: repeatedly re-encrypt until the
//! value lands below `n`. The domain is at most `4n`, so a walk terminates
//! after an expected `< 4` rounds, and termination is certain because Feistel
//! networks are permutations of the full domain.

use lca_rand::Seed;

/// Number of Feistel rounds. Four rounds of a keyed avalanche function give
/// statistically well-mixed permutations (Luby–Rackoff needs three for
/// pseudorandomness; the fourth is margin, not security — nothing here is
/// cryptographic).
const ROUNDS: usize = 4;

/// The SplitMix64 finalizer, used as the keyed round function.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded bijection on `[0, n)`, evaluable forwards and backwards in
/// expected O(1).
#[derive(Debug, Clone)]
pub(crate) struct SeededPermutation {
    n: u64,
    /// Bits in each Feistel half; the domain is `2^(2·half_bits)`.
    half_bits: u32,
    /// `2^half_bits − 1`.
    mask: u64,
    keys: [u64; ROUNDS],
}

impl SeededPermutation {
    /// Builds the permutation for domain size `n ≥ 1` from a seed.
    pub(crate) fn new(n: u64, seed: Seed) -> Self {
        assert!(n >= 1, "permutation domain must be non-empty");
        // Smallest even bit width 2k with 2^(2k) >= n (so the domain splits
        // into two k-bit halves and never exceeds 4n).
        let bits_needed = 64 - (n - 1).max(1).leading_zeros();
        let half_bits = bits_needed.div_ceil(2).max(1);
        let mut stream = seed.stream();
        let keys = std::array::from_fn(|_| stream.next_u64());
        Self {
            n,
            half_bits,
            mask: (1u64 << half_bits) - 1,
            keys,
        }
    }

    /// One Feistel round: `(L, R) → (R, L ⊕ F(R, key))`.
    #[inline]
    fn round(&self, x: u64, key: u64) -> u64 {
        let l = x >> self.half_bits;
        let r = x & self.mask;
        let f = mix(r ^ key) & self.mask;
        (r << self.half_bits) | (l ^ f)
    }

    /// Inverse round: `(L', R') → (R' ⊕ F(L', key), L')`.
    #[inline]
    fn round_inv(&self, x: u64, key: u64) -> u64 {
        let l = x >> self.half_bits;
        let r = x & self.mask;
        let f = mix(l ^ key) & self.mask;
        ((r ^ f) << self.half_bits) | l
    }

    #[inline]
    fn encrypt(&self, mut x: u64) -> u64 {
        for &k in &self.keys {
            x = self.round(x, k);
        }
        x
    }

    #[inline]
    fn decrypt(&self, mut x: u64) -> u64 {
        for &k in self.keys.iter().rev() {
            x = self.round_inv(x, k);
        }
        x
    }

    /// `π(x)` for `x < n`.
    #[inline]
    pub(crate) fn forward(&self, x: u64) -> u64 {
        debug_assert!(x < self.n);
        let mut y = x;
        loop {
            y = self.encrypt(y);
            if y < self.n {
                return y;
            }
        }
    }

    /// `π⁻¹(y)` for `y < n`.
    #[inline]
    pub(crate) fn backward(&self, y: u64) -> u64 {
        debug_assert!(y < self.n);
        let mut x = y;
        loop {
            x = self.decrypt(x);
            if x < self.n {
                return x;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_a_bijection_on_odd_and_even_sizes() {
        for n in [1u64, 2, 3, 7, 16, 100, 1023] {
            let p = SeededPermutation::new(n, Seed::new(42).derive(n));
            let mut seen = vec![false; n as usize];
            for x in 0..n {
                let y = p.forward(x);
                assert!(y < n, "forward escaped the domain");
                assert!(!seen[y as usize], "collision at n={n}, x={x}");
                seen[y as usize] = true;
                assert_eq!(p.backward(y), x, "inverse failed at n={n}, x={x}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let a = SeededPermutation::new(500, Seed::new(1));
        let b = SeededPermutation::new(500, Seed::new(1));
        let c = SeededPermutation::new(500, Seed::new(2));
        let same_ab = (0..500).all(|x| a.forward(x) == b.forward(x));
        assert!(same_ab);
        let same_ac = (0..500).filter(|&x| a.forward(x) == c.forward(x)).count();
        assert!(same_ac < 50, "seeds 1 and 2 agree on {same_ac}/500 points");
    }

    #[test]
    fn output_looks_shuffled() {
        // Not a fixed-point-free or statistical test — just a guard against
        // the identity permutation sneaking in through a key bug.
        let p = SeededPermutation::new(1000, Seed::new(7));
        let fixed = (0..1000).filter(|&x| p.forward(x) == x).count();
        assert!(fixed < 20, "{fixed} fixed points in 1000");
    }
}
