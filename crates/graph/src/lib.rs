//! Static graph substrate for local computation algorithms.
//!
//! The LCA model of the paper (Section 1.4) assumes a simple undirected graph
//! in adjacency-list representation where **each neighbor set has a fixed but
//! arbitrary order** — the order is part of the input and every tie-breaking
//! rule of the algorithms depends on it. This crate provides:
//!
//! * [`Graph`] — an immutable CSR graph with per-vertex 64-bit labels
//!   (the paper's `ID(v)`, not required to be a bijection onto `[n]`),
//!   insertion-ordered adjacency lists, and an O(1) adjacency index
//!   (the backing store for `Adjacency` probes, which return the *position*
//!   of `v` inside `Γ(u)`).
//! * [`GraphBuilder`] — validated construction (simple graphs only), with
//!   deterministic label and adjacency-order shuffling for adversarial tests.
//! * [`gen`] — synthetic workload generators: G(n,p), G(n,m), random regular
//!   (the §6 matching-table model), Chung–Lu power-law, and structured
//!   families.
//! * [`Oracle`] — the probe interface itself (re-exported by `lca-probe`,
//!   which layers the accounting wrappers on top).
//! * [`implicit`] — generator-backed oracles that serve probes on graphs too
//!   large to materialize: the same families as [`gen`], recomputed per
//!   probe from a seed instead of stored.
//! * [`analysis`] — BFS, truncated distances, connectivity, degree statistics.
//! * [`Subgraph`] — an edge-subset view used to verify spanner stretch.
//!
//! # Example
//!
//! ```
//! use lca_graph::{GraphBuilder, VertexId};
//!
//! let g = GraphBuilder::new(4)
//!     .edge(0, 1)
//!     .edge(1, 2)
//!     .edge(2, 3)
//!     .build()
//!     .unwrap();
//! assert_eq!(g.vertex_count(), 4);
//! assert_eq!(g.edge_count(), 3);
//! assert_eq!(g.degree(VertexId::new(1)), 2);
//! assert_eq!(g.adjacency_index(VertexId::new(1), VertexId::new(2)), Some(1));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
mod builder;
mod error;
pub mod gen;
mod graph;
pub mod implicit;
pub mod io;
mod oracle;
mod subgraph;
mod vertex;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{Edge, Edges, Graph, Vertices};
pub use oracle::{Oracle, ProbeCost};
pub use subgraph::Subgraph;
pub use vertex::VertexId;
