//! Error types for graph construction.

use crate::VertexId;

/// Errors raised while constructing a [`crate::Graph`].
///
/// The LCA model is defined over *simple* undirected graphs (Section 1.4), so
/// the builder rejects anything else.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge had both endpoints equal.
    SelfLoop {
        /// The offending vertex.
        vertex: VertexId,
    },
    /// The same undirected edge was added twice.
    ParallelEdge {
        /// One endpoint of the duplicated edge.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
    /// An endpoint index was `>= n`.
    VertexOutOfRange {
        /// The offending index.
        index: usize,
        /// The number of vertices in the graph under construction.
        vertex_count: usize,
    },
    /// A label vector had the wrong length or repeated labels.
    InvalidLabels {
        /// Human-readable reason.
        reason: String,
    },
    /// A generator could not satisfy its constraints (e.g. a d-regular graph
    /// with `n * d` odd, or repeated matching-fix-up failure).
    Unsatisfiable {
        /// Human-readable reason.
        reason: String,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::SelfLoop { vertex } => write!(f, "self-loop at {vertex}"),
            GraphError::ParallelEdge { u, v } => write!(f, "parallel edge {u}-{v}"),
            GraphError::VertexOutOfRange {
                index,
                vertex_count,
            } => write!(f, "vertex index {index} out of range for n={vertex_count}"),
            GraphError::InvalidLabels { reason } => write!(f, "invalid labels: {reason}"),
            GraphError::Unsatisfiable { reason } => write!(f, "unsatisfiable: {reason}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::SelfLoop {
            vertex: VertexId::new(3),
        };
        assert!(format!("{e}").contains("v3"));
        let e = GraphError::ParallelEdge {
            u: VertexId::new(1),
            v: VertexId::new(2),
        };
        assert!(format!("{e}").contains("v1-v2"));
        let e = GraphError::VertexOutOfRange {
            index: 9,
            vertex_count: 4,
        };
        assert!(format!("{e}").contains("n=4"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_err(GraphError::InvalidLabels {
            reason: "dup".into(),
        });
    }
}
