//! Vertex handles.

/// A handle to a vertex: its dense internal index in `[0, n)`.
///
/// `VertexId` is the *handle* used to address probes; the paper's `ID(v)`
/// (an arbitrary unique O(log n)-bit value used for tie-breaking and hashing)
/// is the vertex *label*, accessed via [`crate::Graph::label`]. Keeping the
/// two separate lets tests permute labels adversarially without touching the
/// graph topology.
///
/// # Example
///
/// ```
/// use lca_graph::VertexId;
/// let v = VertexId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(u32);

impl VertexId {
    /// Creates a handle from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        Self(u32::try_from(index).expect("vertex index exceeds u32"))
    }

    /// The dense index in `[0, n)`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` representation.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for VertexId {
    fn from(raw: u32) -> Self {
        Self(raw)
    }
}

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = VertexId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.raw(), 42);
        assert_eq!(VertexId::from(42u32), v);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(VertexId::new(1) < VertexId::new(2));
    }

    #[test]
    #[should_panic(expected = "vertex index exceeds u32")]
    fn oversized_index_panics() {
        let _ = VertexId::new(usize::MAX);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", VertexId::new(7)), "v7");
    }
}
