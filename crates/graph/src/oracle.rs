//! The probe interface (the paper's adjacency-list oracle `O_G`).
//!
//! The trait lives in `lca-graph` — the crate that owns both backing stores
//! for it: the materialized [`Graph`] and the generator-backed
//! [`crate::implicit`] oracles. `lca-probe` re-exports it unchanged and
//! layers the accounting wrappers on top.

use crate::{Graph, VertexId};

/// A coarse classification of how expensive **one probe** is to answer —
/// the per-oracle cost hint budget enforcement adapts to.
///
/// The LCA model counts probes; wall-clock enforcement (deadlines,
/// cancellation) has to *poll* a clock between probes, and how often it can
/// afford to poll depends on what a probe costs. An in-memory CSR lookup is
/// nanoseconds — polling every probe would dominate the query — while a
/// probe against a remote store is milliseconds, where skipping 63 polls
/// means a deadline can overshoot by 63 round trips. [`ProbeCost::poll_stride`]
/// turns the class into the deadline-poll stride `lca-core`'s `QueryCtx`
/// uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProbeCost {
    /// A probe is a memory lookup (materialized [`Graph`], warmed cache):
    /// nanoseconds, poll rarely.
    Memory,
    /// A probe recomputes its answer (the implicit generator oracles:
    /// Feistel walks, hash coins): sub-microsecond but not free, poll more
    /// often.
    Compute,
    /// A probe leaves the process (remote stores, disk): poll every probe —
    /// each one is worth a clock read.
    Remote,
}

impl ProbeCost {
    /// The deadline/cancellation poll stride this cost class affords: how
    /// many probes may pass between `Instant::now()` polls without the
    /// polling overhead (Memory) or the blind spot (Remote) dominating.
    pub fn poll_stride(self) -> u64 {
        match self {
            ProbeCost::Memory => 64,
            ProbeCost::Compute => 16,
            ProbeCost::Remote => 1,
        }
    }
}

/// Probe access to an input graph (the paper's adjacency-list oracle `O_G`).
///
/// Everything an LCA may learn about the graph flows through these three
/// methods plus the two *free* facts the model grants: the vertex count `n`
/// and the label `ID(v)` of any vertex handle it already holds (labels ride
/// along with handles; learning a *new* handle always costs a probe).
///
/// Implementations must be deterministic and side-effect-free with respect to
/// the graph; wrappers add accounting. The executable form of the contract is
/// the conformance suite in `tests/oracle_laws.rs` at the workspace root:
/// `neighbor(v, i)` is `Some` exactly for `i < degree(v)`, `adjacency` is the
/// inverse index of `neighbor`, adjacency is symmetric, and the degree sum is
/// even.
pub trait Oracle {
    /// Number of vertices `n` (known to the algorithm up front).
    fn vertex_count(&self) -> usize;

    /// `Degree⟨v⟩` probe: the degree of `v`.
    fn degree(&self, v: VertexId) -> usize;

    /// `Neighbor⟨v, i⟩` probe: the `i`-th neighbor (0-based) of `v`, or
    /// `None` (⊥) if `i >= deg(v)`.
    fn neighbor(&self, v: VertexId, i: usize) -> Option<VertexId>;

    /// `Adjacency⟨u, v⟩` probe: the index of `v` inside `Γ(u)`, or `None`.
    fn adjacency(&self, u: VertexId, v: VertexId) -> Option<usize>;

    /// Buffered neighbor scan: clears `out` and fills it with `Γ(v)` in
    /// adjacency order, returning `deg(v)`.
    ///
    /// This is **exactly** `Degree⟨v⟩` followed by `Neighbor⟨v, i⟩` for
    /// `i in 0..deg(v)` — `deg(v) + 1` logical probes — packaged so callers
    /// can reuse one buffer and implementations can amortize per-vertex
    /// setup across the whole scan. Accounting wrappers charge and record it
    /// as those `deg(v) + 1` probes; a bulk override must produce the same
    /// answers the per-probe path would (the differential suite in
    /// `tests/buffered_equivalence.rs` at the workspace root checks both
    /// answers and transcripts). If a probe is refused mid-scan (a budgeted
    /// view ran dry), `out` holds the prefix that was answered, which is
    /// what the equivalent `neighbor` loop would have collected before its
    /// first `None`.
    fn neighbors_into(&self, v: VertexId, out: &mut Vec<VertexId>) -> usize {
        out.clear();
        let d = self.degree(v);
        out.reserve(d);
        for i in 0..d {
            match self.neighbor(v, i) {
                Some(w) => out.push(w),
                None => break,
            }
        }
        d
    }

    /// The label `ID(v)` (free: labels travel with handles in this model).
    fn label(&self, v: VertexId) -> u64;

    /// How expensive one probe is to answer (see [`ProbeCost`]). The
    /// default is [`ProbeCost::Memory`]; generator-backed oracles override
    /// with [`ProbeCost::Compute`], remote stores with
    /// [`ProbeCost::Remote`]. Wrappers forward their inner oracle's hint
    /// (a cache may *reduce* the effective cost, but a miss still pays the
    /// inner price, so forwarding is the conservative choice).
    fn probe_cost_hint(&self) -> ProbeCost {
        ProbeCost::Memory
    }
}

impl Oracle for Graph {
    fn vertex_count(&self) -> usize {
        Graph::vertex_count(self)
    }

    fn degree(&self, v: VertexId) -> usize {
        Graph::degree(self, v)
    }

    fn neighbor(&self, v: VertexId, i: usize) -> Option<VertexId> {
        Graph::neighbor(self, v, i)
    }

    fn adjacency(&self, u: VertexId, v: VertexId) -> Option<usize> {
        Graph::adjacency_index(self, u, v)
    }

    fn neighbors_into(&self, v: VertexId, out: &mut Vec<VertexId>) -> usize {
        let nbrs = Graph::neighbors(self, v);
        out.clear();
        out.extend_from_slice(nbrs);
        nbrs.len()
    }

    fn label(&self, v: VertexId) -> u64 {
        Graph::label(self, v)
    }
}

impl<O: Oracle + ?Sized> Oracle for Box<O> {
    fn vertex_count(&self) -> usize {
        (**self).vertex_count()
    }

    fn degree(&self, v: VertexId) -> usize {
        (**self).degree(v)
    }

    fn neighbor(&self, v: VertexId, i: usize) -> Option<VertexId> {
        (**self).neighbor(v, i)
    }

    fn adjacency(&self, u: VertexId, v: VertexId) -> Option<usize> {
        (**self).adjacency(u, v)
    }

    fn neighbors_into(&self, v: VertexId, out: &mut Vec<VertexId>) -> usize {
        (**self).neighbors_into(v, out)
    }

    fn label(&self, v: VertexId) -> u64 {
        (**self).label(v)
    }

    fn probe_cost_hint(&self) -> ProbeCost {
        (**self).probe_cost_hint()
    }
}

impl<O: Oracle + ?Sized> Oracle for std::sync::Arc<O> {
    fn vertex_count(&self) -> usize {
        (**self).vertex_count()
    }

    fn degree(&self, v: VertexId) -> usize {
        (**self).degree(v)
    }

    fn neighbor(&self, v: VertexId, i: usize) -> Option<VertexId> {
        (**self).neighbor(v, i)
    }

    fn adjacency(&self, u: VertexId, v: VertexId) -> Option<usize> {
        (**self).adjacency(u, v)
    }

    fn neighbors_into(&self, v: VertexId, out: &mut Vec<VertexId>) -> usize {
        (**self).neighbors_into(v, out)
    }

    fn label(&self, v: VertexId) -> u64 {
        (**self).label(v)
    }

    fn probe_cost_hint(&self) -> ProbeCost {
        (**self).probe_cost_hint()
    }
}

impl<O: Oracle + ?Sized> Oracle for &O {
    fn vertex_count(&self) -> usize {
        (**self).vertex_count()
    }

    fn degree(&self, v: VertexId) -> usize {
        (**self).degree(v)
    }

    fn neighbor(&self, v: VertexId, i: usize) -> Option<VertexId> {
        (**self).neighbor(v, i)
    }

    fn adjacency(&self, u: VertexId, v: VertexId) -> Option<usize> {
        (**self).adjacency(u, v)
    }

    fn neighbors_into(&self, v: VertexId, out: &mut Vec<VertexId>) -> usize {
        (**self).neighbors_into(v, out)
    }

    fn label(&self, v: VertexId) -> u64 {
        (**self).label(v)
    }

    fn probe_cost_hint(&self) -> ProbeCost {
        (**self).probe_cost_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::structured;

    #[test]
    fn graph_implements_oracle() {
        let g = structured::cycle(5);
        let o: &dyn Oracle = &g;
        assert_eq!(o.vertex_count(), 5);
        assert_eq!(o.degree(VertexId::new(0)), 2);
        let w = o.neighbor(VertexId::new(0), 0).unwrap();
        assert!(o.adjacency(VertexId::new(0), w).is_some());
        assert_eq!(o.label(VertexId::new(3)), 3);
    }

    #[test]
    fn neighbor_out_of_range_is_bottom() {
        let g = structured::path(3);
        assert_eq!(g.neighbor(VertexId::new(0), 5), None);
    }

    #[test]
    fn reference_forwarding() {
        let g = structured::path(4);
        fn takes_oracle<O: Oracle>(o: O) -> usize {
            o.vertex_count()
        }
        assert_eq!(takes_oracle(&g), 4);
        assert_eq!(takes_oracle(&g), 4);
    }
}
