//! Validated graph construction.

use std::collections::HashSet;

use lca_rand::Seed;

use crate::graph::Edge;
use crate::{Graph, GraphError, VertexId};

/// Builder for [`Graph`].
///
/// Enforces the simple-graph invariants of the LCA model (no self-loops, no
/// parallel edges) and controls the two “arbitrary but fixed” inputs the
/// algorithms are sensitive to: adjacency-list order and vertex labels.
///
/// By default, adjacency lists are in edge-insertion order and labels are
/// `0..n`. [`GraphBuilder::shuffle_labels`] and
/// [`GraphBuilder::shuffle_adjacency`] derange both deterministically — the
/// adversarial inputs used by the test suite.
///
/// # Example
///
/// ```
/// use lca_graph::GraphBuilder;
/// let g = GraphBuilder::new(3).edge(0, 1).edge(1, 2).build()?;
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), lca_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(usize, usize)>,
    labels: Option<Vec<u64>>,
    shuffle_labels: Option<Seed>,
    shuffle_adjacency: Option<Seed>,
    dedup: bool,
}

impl GraphBuilder {
    /// Starts a graph on `n` vertices with no edges.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
            labels: None,
            shuffle_labels: None,
            shuffle_adjacency: None,
            dedup: false,
        }
    }

    /// Adds the undirected edge `{u, v}` (validated at [`build`]).
    ///
    /// [`build`]: GraphBuilder::build
    pub fn edge(mut self, u: usize, v: usize) -> Self {
        self.edges.push((u, v));
        self
    }

    /// Adds many edges.
    pub fn edges<I: IntoIterator<Item = (usize, usize)>>(mut self, iter: I) -> Self {
        self.edges.extend(iter);
        self
    }

    /// Sets explicit labels (must be unique and of length `n`).
    pub fn labels(mut self, labels: Vec<u64>) -> Self {
        self.labels = Some(labels);
        self
    }

    /// Replaces the default `0..n` labels with a deterministic pseudorandom
    /// permutation of a sparse 48-bit label space.
    pub fn shuffle_labels(mut self, seed: Seed) -> Self {
        self.shuffle_labels = Some(seed);
        self
    }

    /// Deterministically shuffles every adjacency list (the “arbitrary
    /// order” adversary).
    pub fn shuffle_adjacency(mut self, seed: Seed) -> Self {
        self.shuffle_adjacency = Some(seed);
        self
    }

    /// Silently drops duplicate edges and self-loops instead of failing.
    /// Used by generators that may produce collisions.
    pub fn dedup(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Number of edges currently staged (before dedup).
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] on out-of-range endpoints, self-loops or
    /// parallel edges (unless [`dedup`](GraphBuilder::dedup) is set), or
    /// invalid label vectors.
    pub fn build(self) -> Result<Graph, GraphError> {
        let n = self.n;
        // Validate and normalize edges.
        let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(self.edges.len());
        let mut edges: Vec<Edge> = Vec::with_capacity(self.edges.len());
        for &(a, b) in &self.edges {
            if a >= n {
                return Err(GraphError::VertexOutOfRange {
                    index: a,
                    vertex_count: n,
                });
            }
            if b >= n {
                return Err(GraphError::VertexOutOfRange {
                    index: b,
                    vertex_count: n,
                });
            }
            if a == b {
                if self.dedup {
                    continue;
                }
                return Err(GraphError::SelfLoop {
                    vertex: VertexId::new(a),
                });
            }
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            if !seen.insert((lo as u32, hi as u32)) {
                if self.dedup {
                    continue;
                }
                return Err(GraphError::ParallelEdge {
                    u: VertexId::new(lo),
                    v: VertexId::new(hi),
                });
            }
            edges.push((VertexId::new(lo), VertexId::new(hi)));
        }

        // Labels.
        let labels = match (self.labels, self.shuffle_labels) {
            (Some(_), Some(_)) => {
                return Err(GraphError::InvalidLabels {
                    reason: "both explicit labels and shuffle_labels were set".into(),
                })
            }
            (Some(labels), None) => {
                if labels.len() != n {
                    return Err(GraphError::InvalidLabels {
                        reason: format!("expected {n} labels, got {}", labels.len()),
                    });
                }
                let distinct: HashSet<&u64> = labels.iter().collect();
                if distinct.len() != n {
                    return Err(GraphError::InvalidLabels {
                        reason: "labels are not unique".into(),
                    });
                }
                labels
            }
            (None, Some(seed)) => sparse_label_permutation(n, seed),
            (None, None) => (0..n as u64).collect(),
        };

        // CSR assembly, preserving insertion order of the directed arcs.
        let mut degree = vec![0usize; n];
        for &(u, v) in &edges {
            degree[u.index()] += 1;
            degree[v.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adjacency = vec![VertexId::new(0); acc];
        for &(u, v) in &edges {
            adjacency[cursor[u.index()]] = v;
            cursor[u.index()] += 1;
            adjacency[cursor[v.index()]] = u;
            cursor[v.index()] += 1;
        }

        if let Some(seed) = self.shuffle_adjacency {
            for u in 0..n {
                let slice = &mut adjacency[offsets[u]..offsets[u + 1]];
                fisher_yates(slice, seed.derive2(0xAD7A, u as u64));
            }
        }

        Ok(Graph::from_parts(offsets, adjacency, labels, edges))
    }
}

/// Deterministic Fisher–Yates shuffle driven by a [`Seed`].
fn fisher_yates<T>(slice: &mut [T], seed: Seed) {
    let mut stream = seed.stream();
    let len = slice.len();
    for i in (1..len).rev() {
        let j = stream.next_below(i as u64 + 1) as usize;
        slice.swap(i, j);
    }
}

/// Unique pseudorandom 48-bit labels: a random base permutation of `0..n`
/// offset into a sparse space so labels are far from indices.
fn sparse_label_permutation(n: usize, seed: Seed) -> Vec<u64> {
    let mut labels: Vec<u64> = (0..n as u64).collect();
    fisher_yates(&mut labels, seed.derive(0x4C41_4245));
    let offset = seed.derive(0x4F46_4653).value() & 0xFFFF_FFFF;
    // Spread: label = π(i) * stride + offset keeps uniqueness.
    let stride = 2_654_435_761u64; // odd ⇒ injective modulo 2^64
    labels
        .iter()
        .map(|&l| l.wrapping_mul(stride).wrapping_add(offset) & 0xFFFF_FFFF_FFFF)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let err = GraphBuilder::new(2).edge(1, 1).build().unwrap_err();
        assert!(matches!(err, GraphError::SelfLoop { .. }));
    }

    #[test]
    fn rejects_parallel_edges_in_both_orientations() {
        let err = GraphBuilder::new(2)
            .edge(0, 1)
            .edge(1, 0)
            .build()
            .unwrap_err();
        assert!(matches!(err, GraphError::ParallelEdge { .. }));
    }

    #[test]
    fn rejects_out_of_range() {
        let err = GraphBuilder::new(2).edge(0, 5).build().unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
    }

    #[test]
    fn dedup_drops_instead_of_failing() {
        let g = GraphBuilder::new(3)
            .edge(0, 1)
            .edge(1, 0)
            .edge(2, 2)
            .dedup(true)
            .build()
            .unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn explicit_labels_are_validated() {
        let err = GraphBuilder::new(2).labels(vec![5]).build().unwrap_err();
        assert!(matches!(err, GraphError::InvalidLabels { .. }));
        let err = GraphBuilder::new(2).labels(vec![5, 5]).build().unwrap_err();
        assert!(matches!(err, GraphError::InvalidLabels { .. }));
        let g = GraphBuilder::new(2)
            .edge(0, 1)
            .labels(vec![100, 7])
            .build()
            .unwrap();
        assert_eq!(g.label(VertexId::new(0)), 100);
    }

    #[test]
    fn shuffled_labels_are_unique_and_deterministic() {
        let mk = || {
            GraphBuilder::new(50)
                .shuffle_labels(Seed::new(3))
                .build()
                .unwrap()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.labels(), b.labels());
        let distinct: HashSet<u64> = a.labels().iter().copied().collect();
        assert_eq!(distinct.len(), 50);
        // Labels should not be the identity.
        assert!(a.labels().iter().enumerate().any(|(i, &l)| l != i as u64));
    }

    #[test]
    fn explicit_plus_shuffled_labels_conflict() {
        let err = GraphBuilder::new(1)
            .labels(vec![1])
            .shuffle_labels(Seed::new(0))
            .build()
            .unwrap_err();
        assert!(matches!(err, GraphError::InvalidLabels { .. }));
    }

    #[test]
    fn shuffle_adjacency_permutes_but_preserves_sets() {
        let base = GraphBuilder::new(6).edges((1..6).map(|i| (0, i)));
        let plain = base.clone().build().unwrap();
        let shuffled = base.shuffle_adjacency(Seed::new(9)).build().unwrap();
        let mut a: Vec<usize> = plain
            .neighbors(VertexId::new(0))
            .iter()
            .map(|v| v.index())
            .collect();
        let mut b: Vec<usize> = shuffled
            .neighbors(VertexId::new(0))
            .iter()
            .map(|v| v.index())
            .collect();
        assert_ne!(a, b, "shuffle should change the order");
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "shuffle must preserve the neighbor set");
        // Positions stay consistent with the adjacency index.
        for (i, &w) in shuffled.neighbors(VertexId::new(0)).iter().enumerate() {
            assert_eq!(shuffled.adjacency_index(VertexId::new(0), w), Some(i));
        }
    }

    #[test]
    fn staged_edges_counts_prevalidation() {
        let b = GraphBuilder::new(3).edge(0, 1).edge(0, 1);
        assert_eq!(b.staged_edges(), 2);
    }

    #[test]
    fn build_is_deterministic() {
        let mk = || {
            GraphBuilder::new(5)
                .edges([(0, 1), (1, 2), (3, 4), (0, 4)])
                .shuffle_adjacency(Seed::new(11))
                .build()
                .unwrap()
        };
        let a = mk();
        let b = mk();
        for v in a.vertices() {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }
}
