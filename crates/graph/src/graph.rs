//! The immutable CSR graph.

use std::collections::HashMap;

use crate::VertexId;

/// An undirected edge, stored with `u.index() < v.index()`.
pub type Edge = (VertexId, VertexId);

/// An immutable simple undirected graph in CSR (compressed sparse row) form.
///
/// Three properties matter for the LCA model:
///
/// * **Fixed adjacency order.** `Γ(u)` is exposed in a fixed (arbitrary)
///   order; [`Graph::neighbor`]`(u, i)` is the `Neighbor` probe and every
///   tie-breaking rule in the algorithms depends on this order.
/// * **O(1) adjacency index.** [`Graph::adjacency_index`]`(u, v)` returns the
///   position of `v` inside `Γ(u)` (the paper's `Adjacency` probe semantics).
/// * **Labels.** Each vertex carries a unique `u64` label — the paper's
///   `ID(v)` — used for lexicographic tie-breaks and as hash keys. Labels
///   need not be `0..n`.
///
/// Construct via [`crate::GraphBuilder`] or a generator in [`crate::gen`].
#[derive(Clone)]
pub struct Graph {
    offsets: Vec<usize>,
    adjacency: Vec<VertexId>,
    labels: Vec<u64>,
    /// `(u << 32 | v) -> position of v in Γ(u)`.
    position: HashMap<u64, u32>,
    /// Undirected edges with `u.index() < v.index()`, in insertion order.
    edges: Vec<Edge>,
}

impl Graph {
    pub(crate) fn from_parts(
        offsets: Vec<usize>,
        adjacency: Vec<VertexId>,
        labels: Vec<u64>,
        edges: Vec<Edge>,
    ) -> Self {
        let mut position = HashMap::with_capacity(adjacency.len());
        let n = offsets.len() - 1;
        for u in 0..n {
            for (i, &w) in adjacency[offsets[u]..offsets[u + 1]].iter().enumerate() {
                position.insert(((u as u64) << 32) | w.raw() as u64, i as u32);
            }
        }
        Self {
            offsets,
            adjacency,
            labels,
            position,
            edges,
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let i = v.index();
        self.offsets[i + 1] - self.offsets[i]
    }

    /// The neighbor list `Γ(v)` in its fixed order.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let i = v.index();
        &self.adjacency[self.offsets[i]..self.offsets[i + 1]]
    }

    /// The `i`-th neighbor of `v` (0-based), or `None` if `i >= deg(v)` —
    /// the `Neighbor` probe.
    #[inline]
    pub fn neighbor(&self, v: VertexId, i: usize) -> Option<VertexId> {
        self.neighbors(v).get(i).copied()
    }

    /// The position of `v` inside `Γ(u)` (0-based), or `None` if the edge
    /// does not exist — the `Adjacency` probe.
    #[inline]
    pub fn adjacency_index(&self, u: VertexId, v: VertexId) -> Option<usize> {
        self.position
            .get(&(((u.index() as u64) << 32) | v.raw() as u64))
            .map(|&p| p as usize)
    }

    /// Whether the undirected edge `{u, v}` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.adjacency_index(u, v).is_some()
    }

    /// The label `ID(v)`.
    #[inline]
    pub fn label(&self, v: VertexId) -> u64 {
        self.labels[v.index()]
    }

    /// All labels, indexed by vertex index.
    #[inline]
    pub fn labels(&self) -> &[u64] {
        &self.labels
    }

    /// Iterator over all vertex handles `0..n`.
    pub fn vertices(&self) -> Vertices {
        Vertices {
            next: 0,
            n: self.vertex_count() as u32,
        }
    }

    /// All undirected edges, each reported once with
    /// `u.index() < v.index()`, in insertion order.
    pub fn edges(&self) -> Edges<'_> {
        Edges {
            inner: self.edges.iter(),
        }
    }

    /// Endpoints of the `i`-th inserted edge.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.edge_count()`.
    pub fn edge_endpoints(&self, i: usize) -> Edge {
        self.edges[i]
    }

    /// Maximum degree ∆.
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree.
    pub fn min_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Average degree `2m / n` (0 for the empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.vertex_count() == 0 {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / self.vertex_count() as f64
        }
    }

    /// Looks up a vertex handle by label (linear scan; test/debug helper).
    pub fn vertex_by_label(&self, label: u64) -> Option<VertexId> {
        self.labels
            .iter()
            .position(|&l| l == label)
            .map(VertexId::new)
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.vertex_count())
            .field("m", &self.edge_count())
            .field("max_degree", &self.max_degree())
            .finish()
    }
}

/// Iterator over vertex handles. Produced by [`Graph::vertices`].
#[derive(Debug, Clone)]
pub struct Vertices {
    next: u32,
    n: u32,
}

impl Iterator for Vertices {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        if self.next < self.n {
            let v = VertexId::from(self.next);
            self.next += 1;
            Some(v)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.n - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Vertices {}

/// Iterator over undirected edges. Produced by [`Graph::edges`].
#[derive(Debug, Clone)]
pub struct Edges<'a> {
    inner: std::slice::Iter<'a, Edge>,
}

impl Iterator for Edges<'_> {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        self.inner.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for Edges<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path4() -> Graph {
        GraphBuilder::new(4)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .build()
            .unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = path4();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 1);
        assert!((g.avg_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn neighbor_probe_semantics() {
        let g = path4();
        let v1 = VertexId::new(1);
        assert_eq!(g.neighbor(v1, 0), Some(VertexId::new(0)));
        assert_eq!(g.neighbor(v1, 1), Some(VertexId::new(2)));
        assert_eq!(g.neighbor(v1, 2), None); // ⊥ beyond the degree
    }

    #[test]
    fn adjacency_probe_returns_position() {
        let g = path4();
        // Insertion order: Γ(2) = [1, 3].
        assert_eq!(
            g.adjacency_index(VertexId::new(2), VertexId::new(3)),
            Some(1)
        );
        assert_eq!(
            g.adjacency_index(VertexId::new(2), VertexId::new(1)),
            Some(0)
        );
        assert_eq!(g.adjacency_index(VertexId::new(0), VertexId::new(3)), None);
    }

    #[test]
    fn adjacency_order_is_insertion_order() {
        let g = GraphBuilder::new(4)
            .edge(0, 3)
            .edge(0, 1)
            .edge(0, 2)
            .build()
            .unwrap();
        let nbrs: Vec<usize> = g
            .neighbors(VertexId::new(0))
            .iter()
            .map(|v| v.index())
            .collect();
        assert_eq!(nbrs, vec![3, 1, 2]);
    }

    #[test]
    fn edges_are_normalized_and_ordered() {
        let g = GraphBuilder::new(3).edge(2, 0).edge(1, 2).build().unwrap();
        let e: Vec<(usize, usize)> = g.edges().map(|(u, v)| (u.index(), v.index())).collect();
        assert_eq!(e, vec![(0, 2), (1, 2)]);
        assert_eq!(g.edge_endpoints(1), (VertexId::new(1), VertexId::new(2)));
    }

    #[test]
    fn default_labels_are_indices() {
        let g = path4();
        for v in g.vertices() {
            assert_eq!(g.label(v), v.index() as u64);
        }
        assert_eq!(g.vertex_by_label(2), Some(VertexId::new(2)));
        assert_eq!(g.vertex_by_label(99), None);
    }

    #[test]
    fn vertices_iterator_is_exact() {
        let g = path4();
        assert_eq!(g.vertices().len(), 4);
        assert_eq!(g.vertices().count(), 4);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(format!("{:?}", path4()).contains("Graph"));
    }
}
