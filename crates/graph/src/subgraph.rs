//! Edge-subset views for spanner verification.

use std::collections::{HashSet, VecDeque};

use crate::{Graph, VertexId};

/// A subgraph of a host [`Graph`] defined by an edge subset, with its own
/// adjacency structure for distance queries.
///
/// This is what an LCA's answers *mean*: the set of edges it says YES to.
/// The verification harness materializes that set into a `Subgraph` and
/// checks stretch/connectivity against the host.
///
/// # Example
///
/// ```
/// use lca_graph::{gen::structured, Subgraph, VertexId};
/// let g = structured::cycle(4);
/// // Keep three of the four cycle edges: still connected, stretch 3.
/// let h = Subgraph::from_edges(&g, g.edges().take(3));
/// assert_eq!(h.edge_count(), 3);
/// assert!(h.distance_within(VertexId::new(0), VertexId::new(3), 3).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Subgraph {
    n: usize,
    adjacency: Vec<Vec<VertexId>>,
    edges: HashSet<(u32, u32)>,
}

impl Subgraph {
    /// Builds a subgraph from an edge iterator. Edges are normalized and
    /// de-duplicated; each must exist in the host graph.
    ///
    /// # Panics
    ///
    /// Panics if an edge is not present in `host` (that would mean an LCA
    /// answered YES on a non-edge, which the harness treats as a bug).
    pub fn from_edges<I>(host: &Graph, edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let n = host.vertex_count();
        let mut adjacency = vec![Vec::new(); n];
        let mut set = HashSet::new();
        for (u, v) in edges {
            assert!(
                host.has_edge(u, v),
                "subgraph edge {u}-{v} does not exist in the host graph"
            );
            let key = normalize(u, v);
            if set.insert(key) {
                adjacency[u.index()].push(v);
                adjacency[v.index()].push(u);
            }
        }
        Self {
            n,
            adjacency,
            edges: set,
        }
    }

    /// Number of vertices (same as the host).
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of edges kept.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether `{u, v}` was kept.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edges.contains(&normalize(u, v))
    }

    /// Neighbors of `v` within the subgraph.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adjacency[v.index()]
    }

    /// Iterates over the kept edges (normalized, arbitrary order).
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.edges
            .iter()
            .map(|&(a, b)| (VertexId::from(a), VertexId::from(b)))
    }

    /// Shortest-path distance within the subgraph if at most `bound`.
    pub fn distance_within(&self, u: VertexId, v: VertexId, bound: u32) -> Option<u32> {
        if u == v {
            return Some(0);
        }
        let mut dist = std::collections::HashMap::new();
        let mut queue = VecDeque::new();
        dist.insert(u, 0u32);
        queue.push_back(u);
        while let Some(x) = queue.pop_front() {
            let dx = dist[&x];
            if dx >= bound {
                continue;
            }
            for &w in self.neighbors(x) {
                if w == v {
                    return Some(dx + 1);
                }
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                    e.insert(dx + 1);
                    queue.push_back(w);
                }
            }
        }
        None
    }

    /// The maximum, over host edges `(u,v)` *not* kept, of the subgraph
    /// distance between `u` and `v` — i.e. the realized stretch of the
    /// subgraph as a spanner of `host` (∞ ⇒ `None`).
    ///
    /// For spanners it suffices to check host *edges*: if every host edge is
    /// stretched by at most `t`, every pairwise distance is too.
    pub fn max_edge_stretch(&self, host: &Graph, cap: u32) -> Option<u32> {
        let mut worst = 1u32;
        for (u, v) in host.edges() {
            if self.has_edge(u, v) {
                continue;
            }
            match self.distance_within(u, v, cap) {
                Some(d) => worst = worst.max(d),
                None => return None,
            }
        }
        Some(worst)
    }
}

fn normalize(u: VertexId, v: VertexId) -> (u32, u32) {
    if u.raw() < v.raw() {
        (u.raw(), v.raw())
    } else {
        (v.raw(), u.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::structured;

    #[test]
    fn keeps_and_queries_edges() {
        let g = structured::cycle(5);
        let h = Subgraph::from_edges(&g, g.edges());
        assert_eq!(h.edge_count(), 5);
        assert!(h.has_edge(VertexId::new(0), VertexId::new(1)));
        assert!(h.has_edge(VertexId::new(1), VertexId::new(0)));
    }

    #[test]
    fn deduplicates_and_normalizes() {
        let g = structured::path(3);
        let e = (VertexId::new(0), VertexId::new(1));
        let h = Subgraph::from_edges(&g, [e, (e.1, e.0)]);
        assert_eq!(h.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn rejects_non_host_edges() {
        let g = structured::path(3);
        let _ = Subgraph::from_edges(&g, [(VertexId::new(0), VertexId::new(2))]);
    }

    #[test]
    fn stretch_of_spanning_tree_of_cycle() {
        let g = structured::cycle(6);
        let tree: Vec<_> = g.edges().take(5).collect();
        let h = Subgraph::from_edges(&g, tree);
        // Dropping one cycle edge forces a 5-hop detour.
        assert_eq!(h.max_edge_stretch(&g, 10), Some(5));
    }

    #[test]
    fn stretch_is_none_when_disconnected() {
        let g = structured::path(3);
        let h = Subgraph::from_edges(&g, [(VertexId::new(0), VertexId::new(1))]);
        assert_eq!(h.max_edge_stretch(&g, 10), None);
    }

    #[test]
    fn full_subgraph_has_stretch_one() {
        let g = structured::complete(5);
        let h = Subgraph::from_edges(&g, g.edges());
        assert_eq!(h.max_edge_stretch(&g, 10), Some(1));
    }

    #[test]
    fn distance_within_subgraph_only_uses_kept_edges() {
        let g = structured::cycle(4);
        let kept: Vec<_> = g
            .edges()
            .filter(|&(u, v)| !(u.index() == 0 && v.index() == 1))
            .collect();
        let h = Subgraph::from_edges(&g, kept);
        assert_eq!(
            h.distance_within(VertexId::new(0), VertexId::new(1), 5),
            Some(3)
        );
    }
}
