//! Plain-text graph I/O.
//!
//! In the LCA model the *adjacency order* is part of the input (every
//! tie-break depends on it), so the native format serializes it exactly:
//!
//! ```text
//! # comments
//! v <label>            one line per vertex, in index order
//! a <index>: <i> <j> …  the full neighbor list of that vertex, in order
//! ```
//!
//! [`read_edge_list`] also accepts plain `<label> <label>` edge lines (one
//! undirected edge each) for hand-written files; adjacency order is then
//! file order.

use std::collections::HashMap;
use std::io::{BufRead, Write};

use crate::{Graph, GraphBuilder, GraphError, VertexId};

/// Writes `graph` in the native format (lossless, including adjacency
/// order).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_edge_list<W: Write>(graph: &Graph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# n = {}", graph.vertex_count())?;
    writeln!(w, "# m = {}", graph.edge_count())?;
    for v in graph.vertices() {
        writeln!(w, "v {}", graph.label(v))?;
    }
    for v in graph.vertices() {
        write!(w, "a {}:", v.index())?;
        for nbr in graph.neighbors(v) {
            write!(w, " {}", nbr.index())?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads a graph written by [`write_edge_list`], or a plain edge list of
/// `<label> <label>` lines.
///
/// # Errors
///
/// Returns [`GraphError::InvalidLabels`] on malformed lines or an
/// inconsistent adjacency section, and builder validation errors for plain
/// edge lists.
pub fn read_edge_list<R: BufRead>(r: R) -> Result<Graph, GraphError> {
    let mut labels: Vec<u64> = Vec::new();
    let mut index: HashMap<u64, usize> = HashMap::new();
    let mut plain_edges: Vec<(usize, usize)> = Vec::new();
    let mut adjacency: Vec<(usize, Vec<usize>)> = Vec::new();
    let bad = |lineno: usize, why: String| GraphError::InvalidLabels {
        reason: format!("line {}: {why}", lineno + 1),
    };
    for (lineno, line) in r.lines().enumerate() {
        let line = line.map_err(|e| bad(lineno, format!("I/O error: {e}")))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some(decl) = trimmed.strip_prefix("v ") {
            let label: u64 = decl
                .trim()
                .parse()
                .map_err(|_| bad(lineno, format!("invalid vertex label {decl:?}")))?;
            if index.insert(label, labels.len()).is_some() {
                return Err(bad(lineno, format!("vertex {label} declared twice")));
            }
            labels.push(label);
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("a ") {
            let (head, tail) = rest
                .split_once(':')
                .ok_or_else(|| bad(lineno, "adjacency line without ':'".into()))?;
            let v: usize = head
                .trim()
                .parse()
                .map_err(|_| bad(lineno, format!("invalid vertex index {head:?}")))?;
            let mut nbrs = Vec::new();
            for tok in tail.split_whitespace() {
                nbrs.push(
                    tok.parse::<usize>()
                        .map_err(|_| bad(lineno, format!("invalid neighbor index {tok:?}")))?,
                );
            }
            adjacency.push((v, nbrs));
            continue;
        }
        // Plain edge line: two labels.
        let mut parts = trimmed.split_whitespace();
        let (a, b) = match (parts.next(), parts.next(), parts.next()) {
            (Some(a), Some(b), None) => (a, b),
            _ => return Err(bad(lineno, format!("expected `u v`, got {trimmed:?}"))),
        };
        let mut parse_intern = |s: &str| -> Result<usize, GraphError> {
            let label: u64 = s
                .parse()
                .map_err(|_| bad(lineno, format!("invalid label {s:?}")))?;
            Ok(*index.entry(label).or_insert_with(|| {
                labels.push(label);
                labels.len() - 1
            }))
        };
        let ia = parse_intern(a)?;
        let ib = parse_intern(b)?;
        plain_edges.push((ia, ib));
    }

    if adjacency.is_empty() {
        return GraphBuilder::new(labels.len())
            .edges(plain_edges)
            .labels(labels)
            .build();
    }
    if !plain_edges.is_empty() {
        return Err(GraphError::InvalidLabels {
            reason: "file mixes adjacency lines with plain edge lines".into(),
        });
    }
    // Reconstruct CSR with exact order from the adjacency section.
    let n = labels.len();
    let mut lists: Vec<Option<Vec<usize>>> = vec![None; n];
    for (v, nbrs) in adjacency {
        if v >= n {
            return Err(GraphError::InvalidLabels {
                reason: format!("adjacency for undeclared vertex {v}"),
            });
        }
        if lists[v].replace(nbrs).is_some() {
            return Err(GraphError::InvalidLabels {
                reason: format!("duplicate adjacency for vertex {v}"),
            });
        }
    }
    let mut offsets = Vec::with_capacity(n + 1);
    let mut flat: Vec<VertexId> = Vec::new();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    offsets.push(0);
    for (v, slot) in lists.iter_mut().enumerate() {
        let nbrs = slot.take().unwrap_or_default();
        for &w in &nbrs {
            if w >= n || w == v {
                return Err(GraphError::InvalidLabels {
                    reason: format!("invalid neighbor {w} of vertex {v}"),
                });
            }
            flat.push(VertexId::new(w));
            if v < w {
                edges.push((VertexId::new(v), VertexId::new(w)));
            }
        }
        offsets.push(flat.len());
    }
    // Validate symmetry: every arc must have its reverse.
    let mut arcs: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    for v in 0..n {
        for &w in &flat[offsets[v]..offsets[v + 1]] {
            if !arcs.insert((v as u32, w.raw())) {
                return Err(GraphError::ParallelEdge {
                    u: VertexId::new(v),
                    v: w,
                });
            }
        }
    }
    for &(a, b) in &arcs {
        if !arcs.contains(&(b, a)) {
            return Err(GraphError::InvalidLabels {
                reason: format!("arc {a}->{b} has no reverse; adjacency is not symmetric"),
            });
        }
    }
    Ok(Graph::from_parts(offsets, flat, labels, edges))
}

/// Round-trip helper used by tests: serialize then parse.
///
/// # Errors
///
/// Propagates serialization and parse errors.
pub fn roundtrip(graph: &Graph) -> Result<Graph, GraphError> {
    let mut buf = Vec::new();
    write_edge_list(graph, &mut buf).map_err(|e| GraphError::InvalidLabels {
        reason: format!("serialize failed: {e}"),
    })?;
    read_edge_list(std::io::BufReader::new(buf.as_slice()))
}

/// Whether two graphs are probe-for-probe identical: same handles, labels,
/// and adjacency order.
pub fn probe_equivalent(a: &Graph, b: &Graph) -> bool {
    if a.vertex_count() != b.vertex_count() || a.edge_count() != b.edge_count() {
        return false;
    }
    for v in a.vertices() {
        if a.label(v) != b.label(v) || a.neighbors(v) != b.neighbors(v) {
            return false;
        }
    }
    true
}

/// `VertexId` of the vertex with a given label (error helper for CLIs).
///
/// # Errors
///
/// Returns [`GraphError::InvalidLabels`] if no vertex carries `label`.
pub fn require_label(graph: &Graph, label: u64) -> Result<VertexId, GraphError> {
    graph
        .vertex_by_label(label)
        .ok_or(GraphError::InvalidLabels {
            reason: format!("no vertex labeled {label}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{structured, GnpBuilder};
    use lca_rand::Seed;

    #[test]
    fn roundtrip_preserves_probe_view() {
        let g = GnpBuilder::new(60, 0.2)
            .seed(Seed::new(1))
            .shuffle_labels(true)
            .build();
        let back = roundtrip(&g).unwrap();
        assert!(probe_equivalent(&g, &back));
    }

    #[test]
    fn roundtrip_preserves_shuffled_adjacency_order() {
        let g = crate::GraphBuilder::new(8)
            .edges([(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (3, 4)])
            .shuffle_adjacency(Seed::new(9))
            .build()
            .unwrap();
        let back = roundtrip(&g).unwrap();
        assert!(probe_equivalent(&g, &back));
        for v in g.vertices() {
            assert_eq!(g.neighbors(v), back.neighbors(v));
        }
    }

    #[test]
    fn roundtrip_preserves_isolated_vertices() {
        let g = crate::GraphBuilder::new(5).edge(0, 1).build().unwrap();
        let back = roundtrip(&g).unwrap();
        assert_eq!(back.vertex_count(), 5);
        assert_eq!(back.edge_count(), 1);
    }

    #[test]
    fn reads_hand_written_edge_lists() {
        let text = "# a comment\n10 20\n20 30\n\n30 10\n";
        let g = read_edge_list(std::io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.label(VertexId::new(0)), 10);
        assert!(require_label(&g, 30).is_ok());
        assert!(require_label(&g, 99).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "1\n",
            "1 2 3\n",
            "x y\n",
            "1 1\n",
            "v 5\nv 5\n",
            "v 1\na 0: 9\n",
            "v 1\nv 2\na 0: 1\na 1:\n", // asymmetric adjacency
            "v 1\nv 2\na 0: 1\n2 3\n",  // mixed sections
        ] {
            assert!(
                read_edge_list(std::io::BufReader::new(bad.as_bytes())).is_err(),
                "{bad:?} should fail"
            );
        }
    }

    #[test]
    fn structured_families_roundtrip() {
        for g in [
            structured::complete(6),
            structured::grid(3, 3),
            structured::star(7),
            structured::hypercube(3),
        ] {
            assert!(probe_equivalent(&g, &roundtrip(&g).unwrap()));
        }
    }
}
