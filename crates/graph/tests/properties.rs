//! Property-style tests for the graph substrate, driven by a deterministic
//! `SplitMix64` case stream (no registry access for proptest in this
//! container). Failure messages carry the case tuple for reproduction.

use lca_graph::gen::{GnmBuilder, GnpBuilder, RegularBuilder};
use lca_graph::{analysis, io, GraphBuilder, VertexId};
use lca_rand::{Seed, SplitMix64};

const CASES: u64 = 48;

fn cases(tag: u64) -> impl Iterator<Item = SplitMix64> {
    let mut rng = SplitMix64::new(0x6A4A_F000 ^ tag);
    (0..CASES).map(move |_| SplitMix64::new(rng.next_u64()))
}

/// The two probe views agree: the i-th neighbor of v reports v at the
/// index the adjacency probe returns, and degree equals list length.
#[test]
fn probe_views_are_coherent() {
    for mut rng in cases(1) {
        let n = 2 + rng.next_below(58) as usize;
        let p = (rng.next_below(60) as f64) / 100.0;
        let seed = rng.next_u64();
        let g = GnpBuilder::new(n, p).seed(Seed::new(seed)).build();
        for v in g.vertices() {
            assert_eq!(g.degree(v), g.neighbors(v).len());
            for (i, &w) in g.neighbors(v).iter().enumerate() {
                assert_eq!(
                    g.adjacency_index(v, w),
                    Some(i),
                    "case (n={n}, p={p}, seed={seed})"
                );
                // Undirectedness: the reverse arc exists too.
                assert!(g.adjacency_index(w, v).is_some());
            }
            assert_eq!(g.neighbor(v, g.degree(v)), None);
        }
    }
}

/// Handshake lemma and symmetric edge iteration.
#[test]
fn degree_sum_is_twice_edges() {
    for mut rng in cases(2) {
        let n = 2 + rng.next_below(78) as usize;
        let p = (rng.next_below(50) as f64) / 100.0;
        let g = GnpBuilder::new(n, p)
            .seed(Seed::new(rng.next_u64()))
            .build();
        let sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        assert_eq!(sum, 2 * g.edge_count());
        for (u, v) in g.edges() {
            assert!(u.index() < v.index());
            assert!(g.has_edge(u, v) && g.has_edge(v, u));
        }
    }
}

/// G(n, m) hits its edge count exactly and stays simple.
#[test]
fn gnm_has_exact_size() {
    for mut rng in cases(3) {
        let n = 3 + rng.next_below(47) as usize;
        let frac = (rng.next_below(90) as f64) / 100.0;
        let max = n * (n - 1) / 2;
        let m = (frac * max as f64) as usize;
        let g = GnmBuilder::new(n, m)
            .seed(Seed::new(rng.next_u64()))
            .build();
        assert_eq!(g.edge_count(), m, "case (n={n}, m={m})");
    }
}

/// Random regular graphs are exactly regular.
#[test]
fn regular_graphs_are_regular() {
    for mut rng in cases(4) {
        let n = 6 + rng.next_below(54) as usize;
        let d = 1 + rng.next_below(4) as usize;
        if !(n * d).is_multiple_of(2) || d >= n {
            continue;
        }
        let seed = rng.next_u64();
        let g = RegularBuilder::new(n, d)
            .seed(Seed::new(seed))
            .build()
            .unwrap();
        assert!(
            g.vertices().all(|v| g.degree(v) == d),
            "case (n={n}, d={d}, seed={seed})"
        );
    }
}

/// Edge-list round-trip is probe-for-probe lossless.
#[test]
fn io_roundtrip() {
    for mut rng in cases(5) {
        let n = 1 + rng.next_below(39) as usize;
        let p = (rng.next_below(50) as f64) / 100.0;
        let g = GnpBuilder::new(n, p)
            .seed(Seed::new(rng.next_u64()))
            .shuffle_labels(true)
            .build();
        let back = io::roundtrip(&g).unwrap();
        assert!(io::probe_equivalent(&g, &back), "case (n={n}, p={p})");
    }
}

/// Component labels agree with pairwise reachability (spot check).
#[test]
fn components_match_reachability() {
    for mut rng in cases(6) {
        let n = 2 + rng.next_below(38) as usize;
        let p = (rng.next_below(20) as f64) / 100.0;
        let g = GnpBuilder::new(n, p)
            .seed(Seed::new(rng.next_u64()))
            .build();
        let (labels, _) = analysis::connected_components(&g);
        let d0 = analysis::bfs_distances(&g, VertexId::new(0));
        for v in g.vertices() {
            let reachable = d0[v.index()] != u32::MAX;
            assert_eq!(reachable, labels[v.index()] == labels[0]);
        }
    }
}

/// Builder validation refuses anything non-simple, regardless of input
/// order.
#[test]
fn builder_rejects_duplicates() {
    for mut rng in cases(7) {
        let n = 2 + rng.next_below(18) as usize;
        let a = rng.next_below(20) as usize;
        let b = rng.next_below(20) as usize;
        if !(a < n && b < n && a != b) {
            continue;
        }
        let r = GraphBuilder::new(n).edge(a, b).edge(b, a).build();
        assert!(r.is_err(), "case (n={n}, a={a}, b={b})");
    }
}

/// Shuffled adjacency preserves the neighbor multiset.
#[test]
fn shuffle_preserves_sets() {
    for mut rng in cases(8) {
        let n = 3 + rng.next_below(37) as usize;
        let p = 0.1 + (rng.next_below(50) as f64) / 100.0;
        let (s1, s2) = (rng.next_u64(), rng.next_u64());
        let base = GnpBuilder::new(n, p)
            .seed(Seed::new(s1))
            .shuffle_adjacency(false)
            .build();
        let edges: Vec<(usize, usize)> =
            base.edges().map(|(u, v)| (u.index(), v.index())).collect();
        let shuffled = GraphBuilder::new(n)
            .edges(edges.iter().copied())
            .shuffle_adjacency(Seed::new(s2))
            .build()
            .unwrap();
        for v in base.vertices() {
            let mut a: Vec<u32> = base.neighbors(v).iter().map(|w| w.raw()).collect();
            let mut b: Vec<u32> = shuffled.neighbors(v).iter().map(|w| w.raw()).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "case (n={n}, p={p}, s1={s1}, s2={s2})");
        }
    }
}
